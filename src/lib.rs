//! # distributed-matching
//!
//! A full reproduction of **"Improved Distributed Approximate Matching"**
//! (Zvi Lotker, Boaz Patt-Shamir, Seth Pettie; SPAA 2008) as a Rust
//! workspace, including the synchronous network model the paper assumes,
//! the exact reference solvers it compares against, all four algorithm
//! families it contributes, and the switch-scheduling application its
//! introduction motivates.
//!
//! This umbrella crate re-exports the workspace members:
//!
//! * [`simnet`] — synchronous LOCAL/CONGEST round simulator with message
//!   bit accounting.
//! * [`dgraph`] — graph substrate: generators and exact matching solvers
//!   (Hopcroft–Karp, Edmonds blossom, Hungarian, exact MWM).
//! * [`dmatch`] — the paper's algorithms: the generic `(1-ε)`-MCM
//!   (Theorem 3.1), the bipartite small-message algorithm (Theorem 3.8),
//!   the red/blue reduction for general graphs (Theorem 3.11), and the
//!   weighted `(½-ε)`-MWM reduction (Theorem 4.5), plus the
//!   Israeli–Itai and weighted baselines.
//! * [`dchurn`] — dynamic-network engine: epoch-based churn (edge
//!   insert/delete, node join/leave, degree-preserving rewiring, trace
//!   replay) with incremental matching repair over a rewired message
//!   plane.
//! * [`switchsim`] — input-queued switch simulator with PIM, iSLIP and a
//!   matching-based scheduler, under optionally time-varying port
//!   topologies (link failures mid-run).
//! * [`dobs`] — observability plane: a bounded flight recorder of typed
//!   simulator events (install one with `dobs::TraceSession`),
//!   log-bucketed percentile histograms and a metrics registry,
//!   JSONL/Perfetto exporters, and the bench-record diff engine behind
//!   the `benchdiff` binary. Observation only: traced runs are
//!   bit-identical to untraced ones.
//!
//! Every algorithm is driven through the builder-first
//! [`dmatch::Session`] (re-exported here): static runs, `dchurn` churn
//! epochs (via `Session::resume_after_rewire`), and `switchsim` cycles
//! all share the same driver, with a per-round/per-phase
//! [`dmatch::Observer`] plane for mid-run visibility.
//!
//! See `README.md` for a tour and `EXPERIMENTS.md` for the experiment
//! index mapping every theorem and figure of the paper to a reproducible
//! measurement.

pub use dchurn;
pub use dgraph;
pub use dmatch;
pub use dobs;
pub use simnet;
pub use switchsim;

pub use dmatch::{
    Algorithm, ConvergenceCurve, Observer, RewirePatch, RoundBudget, RunReport, Session,
    TerminationMode,
};
