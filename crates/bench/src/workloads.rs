//! The workload registry: one place that turns *(family × size ×
//! weight model × seed)* into a ready-to-run [`Session`] builder.
//!
//! Before this module every `exp_e*` binary hand-rolled its own
//! `gnp(n, 8.0 / n as f64, seed)` line, which is exactly why the
//! experiments never left the Erdős–Rényi neighborhood. A
//! [`ScenarioSpec`] names a point of the sweep space, [`Workload`]
//! is its materialization (graph + optional bipartition + label),
//! and [`WorkloadSuite`] enumerates the cross product the E18
//! conformance matrix walks.
//!
//! ```
//! use bench_harness::workloads::{Family, ScenarioSpec};
//! use dgraph::generators::weights::WeightModel;
//! use dmatch::Algorithm;
//!
//! let spec = ScenarioSpec::new(Family::ChungLu, 200, WeightModel::Unit, 1);
//! let w = spec.build();
//! let report = w
//!     .session(Algorithm::IsraeliItai, 7)
//!     .build()
//!     .run_to_completion();
//! assert!(report.matching.validate(&w.graph).is_ok());
//! ```

use dgraph::generators::random::{barabasi_albert, gnp};
use dgraph::generators::weights::{apply_weights, WeightModel};
use dgraph::generators::zoo::{chung_lu, d_regular, random_geometric, zipf_bipartite};
use dgraph::Graph;
use dmatch::session::SessionBuilder;
use dmatch::{Algorithm, Session};

/// A topology family of the zoo, instantiable at any size. Each
/// family fixes its shape knobs to paper-style defaults scaled to
/// `n` (average degree ≈ 8 where the notion applies) so that sweeps
/// vary *structure*, not density.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Erdős–Rényi `G(n, 8/n)` — the legacy baseline.
    Gnp,
    /// Barabási–Albert preferential attachment (`m = 4`).
    BarabasiAlbert,
    /// Chung–Lu power law (`β = 2.5`, nominal mean degree 8).
    ChungLu,
    /// Random geometric in the unit square (radius for mean degree ≈ 8).
    Geometric,
    /// Random 8-regular (configuration model).
    DRegular,
    /// Zipf-skewed bipartite (`2n/5 + 3n/5` sides, `m = 4n`, skew 1.1).
    ZipfBipartite,
}

impl Family {
    /// The five new zoo families (everything but the `Gnp` baseline).
    pub const ZOO: [Family; 5] = [
        Family::BarabasiAlbert,
        Family::ChungLu,
        Family::Geometric,
        Family::DRegular,
        Family::ZipfBipartite,
    ];

    /// All families, baseline included.
    pub const ALL: [Family; 6] = [
        Family::Gnp,
        Family::BarabasiAlbert,
        Family::ChungLu,
        Family::Geometric,
        Family::DRegular,
        Family::ZipfBipartite,
    ];

    /// Stable lowercase label (also the accepted [`Family::parse`]
    /// spelling and the JSON/env name).
    pub fn label(&self) -> &'static str {
        match self {
            Family::Gnp => "gnp",
            Family::BarabasiAlbert => "ba",
            Family::ChungLu => "chung-lu",
            Family::Geometric => "geometric",
            Family::DRegular => "regular",
            Family::ZipfBipartite => "zipf-bipartite",
        }
    }

    /// Parse a [`Family::label`] string (used by the `*_FAMILY` env
    /// knobs of the experiment binaries).
    pub fn parse(s: &str) -> Option<Family> {
        Family::ALL.into_iter().find(|f| f.label() == s)
    }

    /// Does the family come with a bipartition (required by
    /// [`Algorithm::Bipartite`])?
    pub fn is_bipartite(&self) -> bool {
        matches!(self, Family::ZipfBipartite)
    }

    /// Materialize the family at `n` total nodes with unit weights.
    pub fn instantiate(&self, n: usize, seed: u64) -> Workload {
        let (graph, sides) = match self {
            Family::Gnp => (gnp(n, (8.0 / n as f64).min(1.0), seed), None),
            Family::BarabasiAlbert => {
                let m = 4.min(n.saturating_sub(1)).max(1);
                (barabasi_albert(n, m, seed), None)
            }
            Family::ChungLu => (chung_lu(n, 2.5, 8.0, seed), None),
            Family::Geometric => {
                // n·π·r² ≈ 8 away from the boundary.
                let r = (8.0 / (std::f64::consts::PI * n as f64)).sqrt().min(1.5);
                (random_geometric(n, r, seed), None)
            }
            Family::DRegular => {
                // d = 8 or n-1; in the latter case n is even (n-1 < 8
                // odd forces it), so n·d is always even.
                let d = 8.min(n.saturating_sub(1));
                (d_regular(n, d, seed), None)
            }
            Family::ZipfBipartite => {
                let nx = (2 * n / 5).max(1);
                let ny = (n - nx).max(1);
                let m = (4 * n).min(nx * ny);
                let (g, sides) = zipf_bipartite(nx, ny, m, 1.1, seed);
                (g, Some(sides))
            }
        };
        Workload {
            label: format!("{}(n={n}, seed={seed})", self.label()),
            graph,
            sides,
        }
    }

    /// Like [`Family::instantiate`], but `Gnp` draws `G(n, deg/n)`
    /// with the given average degree instead of the registry default
    /// of 8. The zoo families keep their registry shapes — their
    /// density is part of the family definition. This is the single
    /// home of the churn experiments' `CHURN_DEG` semantics.
    pub fn instantiate_with_deg(&self, n: usize, deg: f64, seed: u64) -> Workload {
        match self {
            Family::Gnp => Workload {
                label: format!("gnp(n={n}, d\u{304}={deg}, seed={seed})"),
                graph: gnp(n, (deg / n as f64).min(1.0), seed),
                sides: None,
            },
            other => other.instantiate(n, seed),
        }
    }
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One point of the sweep space: family × size × weight model × seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioSpec {
    /// The topology family.
    pub family: Family,
    /// Total node count (bipartite families split it across sides).
    pub n: usize,
    /// Edge-weight model applied on top of the topology.
    pub weights: WeightModel,
    /// Generation seed (topology and weights derive from it).
    pub seed: u64,
}

impl ScenarioSpec {
    /// Bundle the four coordinates.
    pub fn new(family: Family, n: usize, weights: WeightModel, seed: u64) -> Self {
        ScenarioSpec {
            family,
            n,
            weights,
            seed,
        }
    }

    /// Human/JSON label, e.g. `chung-lu(n=2000, seed=3)+uniform`.
    pub fn label(&self) -> String {
        let w = match self.weights {
            WeightModel::Unit => String::new(),
            other => format!("+{other:?}"),
        };
        format!(
            "{}(n={}, seed={}){w}",
            self.family.label(),
            self.n,
            self.seed
        )
    }

    /// Generate the graph (and weights; the weight seed is derived so
    /// topology and weights stay independent streams).
    pub fn build(&self) -> Workload {
        let mut w = self.family.instantiate(self.n, self.seed);
        if self.weights != WeightModel::Unit {
            w.graph = apply_weights(&w.graph, self.weights, self.seed ^ 0x5EED_0001);
            w.label = self.label();
        }
        w
    }
}

/// A materialized scenario: the graph, its bipartition when the
/// family has one, and a display label.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Display label (family, size, seed, weight model).
    pub label: String,
    /// The communication graph.
    pub graph: Graph,
    /// Bipartition, for families that carry one (`false` = X side).
    pub sides: Option<Vec<bool>>,
}

impl Workload {
    /// A ready-to-configure [`Session`] builder over this workload:
    /// graph, algorithm, seed, and — when the family carries one —
    /// the bipartition are pre-wired; chain further knobs
    /// (`.exec(..)`, `.termination(..)`, `.observe(..)`) as needed.
    ///
    /// # Panics
    ///
    /// Via `build()` later if `alg` is [`Algorithm::Bipartite`] and
    /// the family carries no bipartition.
    pub fn session(&self, alg: Algorithm, seed: u64) -> SessionBuilder<'_> {
        let mut b = Session::on(&self.graph).algorithm(alg).seed(seed);
        if let Some(sides) = &self.sides {
            b = b.sides(sides);
        }
        b
    }
}

/// An enumerated sweep: the cross product of families, sizes, weight
/// models, and seeds.
#[derive(Debug, Clone, Default)]
pub struct WorkloadSuite {
    specs: Vec<ScenarioSpec>,
}

impl WorkloadSuite {
    /// The full zoo sweep: `Family::ZOO × sizes × weights × seeds`.
    pub fn zoo(sizes: &[usize], weights: &[WeightModel], seeds: &[u64]) -> Self {
        Self::cross(&Family::ZOO, sizes, weights, seeds)
    }

    /// Arbitrary cross product.
    pub fn cross(
        families: &[Family],
        sizes: &[usize],
        weights: &[WeightModel],
        seeds: &[u64],
    ) -> Self {
        let mut specs =
            Vec::with_capacity(families.len() * sizes.len() * weights.len() * seeds.len());
        for &family in families {
            for &n in sizes {
                for &w in weights {
                    for &seed in seeds {
                        specs.push(ScenarioSpec::new(family, n, w, seed));
                    }
                }
            }
        }
        WorkloadSuite { specs }
    }

    /// The enumerated specs, in deterministic (family-major) order.
    pub fn specs(&self) -> &[ScenarioSpec] {
        &self.specs
    }

    /// Number of scenarios.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True when the sweep is empty.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Iterate specs by value.
    pub fn iter(&self) -> impl Iterator<Item = ScenarioSpec> + '_ {
        self.specs.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_family_round_trips_through_parse() {
        for f in Family::ALL {
            assert_eq!(Family::parse(f.label()), Some(f), "{f}");
        }
        assert_eq!(Family::parse("nonesuch"), None);
    }

    #[test]
    fn instantiation_is_deterministic_and_sized() {
        for f in Family::ALL {
            let a = f.instantiate(200, 3);
            let b = f.instantiate(200, 3);
            assert_eq!(a.graph.edge_list(), b.graph.edge_list(), "{f}");
            assert_eq!(a.graph.n(), 200, "{f}: node budget respected");
            assert!(a.graph.m() > 0, "{f}: non-trivial");
            assert_eq!(f.is_bipartite(), a.sides.is_some(), "{f}");
        }
    }

    #[test]
    fn suite_enumerates_the_cross_product() {
        let suite = WorkloadSuite::zoo(
            &[50, 100],
            &[WeightModel::Unit, WeightModel::Exponential(2.0)],
            &[1, 2, 3],
        );
        assert_eq!(suite.len(), 5 * 2 * 2 * 3);
        // Weighted specs actually produce non-unit weights.
        let weighted = suite
            .iter()
            .find(|s| s.weights != WeightModel::Unit)
            .unwrap()
            .build();
        assert!(weighted.graph.weight_list().iter().any(|&w| w != 1.0));
    }

    #[test]
    fn workload_sessions_run_on_every_family() {
        for f in Family::ALL {
            let w = f.instantiate(60, 5);
            let alg = if f.is_bipartite() {
                Algorithm::Bipartite { k: 2 }
            } else {
                Algorithm::IsraeliItai
            };
            let r = w.session(alg, 9).build().run_to_completion();
            assert!(r.matching.validate(&w.graph).is_ok(), "{f}");
        }
    }
}
