//! E11 — approximation vs. locality: the Kuhn–Moscibroda–Wattenhofer
//! context.
//!
//! The paper cites the Ω(√(log n / log log n)) lower bound for constant
//! approximation \[17\]: approximation quality is bought with rounds. We
//! run Algorithm 1 once with `k = 4` and read the frontier (cumulative
//! rounds, achieved ratio) off the per-phase observer — each phase buys
//! a `1/(k(k+1))` slice of the optimum for `O(k²)` extra rounds. The
//! phase schedule is prefix-stable, so the curve after phase `j` equals
//! a standalone `k = j` run with the same seed.

use bench_harness::{banner, f2, f3, Table};
use dgraph::generators::random::gnp;
use dmatch::{Algorithm, ConvergenceCurve, Session};

fn main() {
    banner(
        "E11",
        "approximation/locality frontier",
        "Algorithm 1 phases + Kuhn et al. [17]",
    );

    let kmax = 4usize;
    let mut t = Table::new(vec![
        "n",
        "phase ℓ",
        "guarantee",
        "ratio(mean)",
        "cum. rounds(mean)",
    ]);
    for &n in &[128usize, 512] {
        let p = 4.0 / n as f64;
        // One run per seed; the observer records the (round, size)
        // point after every phase — no truncated re-runs needed.
        let mut ratios = vec![Vec::new(); kmax];
        let mut rounds = vec![Vec::new(); kmax];
        for seed in 0..3u64 {
            let g = gnp(n, p, 400 + seed);
            let curve = ConvergenceCurve::new();
            Session::on(&g)
                .algorithm(Algorithm::Generic { k: kmax })
                .seed(seed)
                .observe(curve.clone())
                .build()
                .run_to_completion();
            let opt = dgraph::blossom::max_matching(&g).size().max(1);
            for (phase, pt) in curve.points().iter().enumerate() {
                ratios[phase].push(pt.matching_size as f64 / opt as f64);
                rounds[phase].push(pt.round as f64);
            }
        }
        for k in 1..=kmax {
            t.row(vec![
                n.to_string(),
                (2 * k - 1).to_string(),
                f3(1.0 - 1.0 / (k as f64 + 1.0)),
                f3(bench_harness::mean(&ratios[k - 1])),
                f2(bench_harness::mean(&rounds[k - 1])),
            ]);
        }
    }
    t.print();
    println!(
        "\nExpected shape: ratio climbs 0.5 → 0.67 → 0.75 → 0.8 as phases accumulate,\n\
         with steeply growing round cost per increment — the approximation/time\n\
         trade-off that [17] proves is inherent."
    );
}
