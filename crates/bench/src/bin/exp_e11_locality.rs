//! E11 — approximation vs. locality: the Kuhn–Moscibroda–Wattenhofer
//! context.
//!
//! The paper cites the Ω(√(log n / log log n)) lower bound for constant
//! approximation [17]: approximation quality is bought with rounds. We
//! truncate Algorithm 1 after each phase and plot the frontier
//! (cumulative rounds, achieved ratio): each additional phase buys a
//! `1/(k(k+1))` slice of the optimum for `O(k²)` extra rounds.

use bench_harness::{banner, f2, f3, Table};
use dgraph::generators::random::gnp;

fn main() {
    banner(
        "E11",
        "approximation/locality frontier",
        "Algorithm 1 phases + Kuhn et al. [17]",
    );

    let mut t = Table::new(vec![
        "n",
        "phase ℓ",
        "guarantee",
        "ratio(mean)",
        "cum. rounds(mean)",
    ]);
    for &n in &[128usize, 512] {
        let p = 4.0 / n as f64;
        for k in 1..=4usize {
            let mut ratios = Vec::new();
            let mut rounds = Vec::new();
            for seed in 0..3u64 {
                let g = gnp(n, p, 400 + seed);
                let r = dmatch::generic::run(&g, k, seed);
                let opt = dgraph::blossom::max_matching(&g).size().max(1);
                ratios.push(r.matching.size() as f64 / opt as f64);
                rounds.push(r.stats.rounds as f64);
            }
            t.row(vec![
                n.to_string(),
                (2 * k - 1).to_string(),
                f3(1.0 - 1.0 / (k as f64 + 1.0)),
                f3(bench_harness::mean(&ratios)),
                f2(bench_harness::mean(&rounds)),
            ]);
        }
    }
    t.print();
    println!(
        "\nExpected shape: ratio climbs 0.5 → 0.67 → 0.75 → 0.8 as phases accumulate,\n\
         with steeply growing round cost per increment — the approximation/time\n\
         trade-off that [17] proves is inherent."
    );
}
