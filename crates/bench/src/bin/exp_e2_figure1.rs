//! E2 — Figure 1: the counting BFS of Algorithm 3, layer by layer.
//!
//! The published figure is an illustration (its exact 17-node topology
//! is not recoverable from the text), so we reproduce the *mechanism*
//! on a concrete instance and print it in the figure's layout: layers
//! X, Y, X, Y …, each node annotated with the sum of numbers received
//! from the previous level. The counts are verified against exhaustive
//! augmenting-path enumeration (the number printed at a free Y node
//! equals the number of augmenting paths of that length ending there —
//! Lemma 3.6).

use bench_harness::banner;
use dgraph::{Graph, Matching};
use dmatch::bipartite::{count, SubgraphSpec};

fn main() {
    banner(
        "E2",
        "Algorithm 3 counting BFS, layer by layer",
        "Figure 1 + Lemma 3.6",
    );

    // A bipartite graph with X = {0..4}, Y = {5..9}:
    // free X = {0, 1}; matched pairs (2,6), (3,7), (4,8); free Y = {5, 9}.
    let edges = vec![
        (0u32, 5u32),
        (0, 6),
        (0, 7), // free X 0 fans out
        (1, 6),
        (1, 7), // free X 1
        (2, 6),
        (3, 7),
        (4, 8), // matching edges
        (2, 9),
        (3, 9), // matched X nodes reach free Y 9
        (2, 8),
        (4, 9), // a longer detour via (4,8)
    ];
    let g = Graph::new(10, edges);
    let sides: Vec<bool> = (0..10).map(|v| v >= 5).collect();
    let m = Matching::from_edges(
        &g,
        &[
            g.edge_between(2, 6).unwrap(),
            g.edge_between(3, 7).unwrap(),
            g.edge_between(4, 8).unwrap(),
        ],
    );
    println!("matching M = {{(2,6), (3,7), (4,8)}}; free X = {{0,1}}, free Y = {{5,9}}\n");

    let ell = 5;
    let spec = SubgraphSpec::full_bipartite(&g, &sides);
    let pass = count::run(&g, &m, &spec, ell, 0);

    // Print by BFS layer, exactly like the figure's annotations.
    for d in 0..=ell as u64 {
        let layer: Vec<String> = (0..g.n() as u32)
            .filter(|&v| pass.dist[v as usize] == Some(d))
            .map(|v| {
                format!(
                    "{}{}={}",
                    if sides[v as usize] { "Y" } else { "X" },
                    v,
                    if d == 0 {
                        1
                    } else {
                        pass.total[v as usize] as u64
                    }
                )
            })
            .collect();
        if !layer.is_empty() {
            println!("layer d={d}:  {}", layer.join("   "));
        }
    }

    // Cross-check every reached free Y against exhaustive enumeration.
    println!("\nverification against exhaustive path enumeration:");
    let paths = dgraph::augmenting::enumerate_augmenting_paths(&g, &m, ell);
    for y in [5u32, 9] {
        if let Some(d) = pass.dist[y as usize] {
            let expect = paths
                .iter()
                .filter(|p| (p[0] == y || *p.last().unwrap() == y) && p.len() as u64 == d + 1)
                .count();
            println!(
                "  free Y {y}: d = {d}, counted n_y = {}, enumerated shortest paths = {expect}  {}",
                pass.total[y as usize],
                if pass.total[y as usize] == expect as u128 {
                    "✓"
                } else {
                    "✗ MISMATCH"
                }
            );
            assert_eq!(pass.total[y as usize], expect as u128);
        }
    }
    println!(
        "\ncounting messages: {} total, largest {} bits (Lemma 3.6: n_v ≤ Δ^⌈d/2⌉)",
        pass.stats.messages, pass.stats.max_msg_bits
    );
}
