//! E20 — the observability plane: trace fidelity and tracing overhead.
//!
//! Two claims are on trial:
//!
//! 1. **Fidelity.** A traced churn run must come out of the flight
//!    recorder as a Perfetto-loadable Chrome trace with per-round
//!    spans, per-worker tracks, and per-epoch instants — checked here
//!    by re-parsing the export with `dobs`'s own JSON parser, not by
//!    eyeballing. The binary writes the artifacts next to the
//!    `BENCH_*.json` records: `e20_obs.trace.json` (load it at
//!    <https://ui.perfetto.dev>) and `e20_obs.trace.jsonl` (grep/jq).
//! 2. **Overhead.** The recorder hooks sit inside `Network::step`; with
//!    no recorder installed they must cost nothing measurable. Two
//!    *identical* untraced runs (A/A′, best-of-`E20_RUNS` each) must
//!    agree within 2% — the hooks are a TLS flag read, so any stable
//!    gap would mean the disabled path grew real work. The traced run's
//!    overhead is *reported* (it buys the whole event stream) but not
//!    gated.
//!
//! Knobs: `E20_N` (default 6000), `E20_EPOCHS` (default 16), `E20_DEG`
//! (default 8), `E20_RUNS` (best-of for the timing pairs, default 3),
//! `E20_TRACE_CAP` (ring capacity, default 65536), `E20_ASSERT=0`
//! (report instead of asserting the 2% bound — for noisy shared hosts).

use bench_harness::workloads::Family;
use bench_harness::{banner, env_or, f2, host, Table};
use dchurn::{ChurnModel, DynEngine, RepairAlgo};
use dobs::TraceSession;
use simnet::ExecCfg;
use std::fmt::Write as _;
use std::time::Instant;

/// One full churn run: bootstrap + `epochs` repair epochs. Returns the
/// engine for inspection (metrics registry, reports).
fn churn_run(n: usize, deg: f64, epochs: u64, cfg: ExecCfg) -> DynEngine {
    let g = Family::Gnp.instantiate_with_deg(n, deg, 7).graph;
    let mut eng = DynEngine::with_cfg(
        g,
        ChurnModel::EdgeChurn { rate: 0.02 },
        RepairAlgo::IncrementalMaximal,
        1007,
        cfg,
    );
    eng.bootstrap();
    for _ in 0..epochs {
        let rep = eng.step_epoch();
        assert!(rep.maximal, "every epoch must end maximal");
    }
    eng
}

/// Best-of-`runs` wall time of one untraced churn run.
fn best_of(runs: u64, n: usize, deg: f64, epochs: u64, cfg: ExecCfg) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..runs {
        let t = Instant::now();
        let eng = churn_run(n, deg, epochs, cfg);
        best = best.min(t.elapsed().as_nanos() as u64);
        std::hint::black_box(eng.matching().size());
    }
    best
}

fn main() {
    let n = env_or("E20_N", 6000) as usize;
    let epochs = env_or("E20_EPOCHS", 16);
    let deg = env_or("E20_DEG", 8) as f64;
    let runs = env_or("E20_RUNS", 3).max(1);
    let cap = env_or("E20_TRACE_CAP", 65536) as usize;
    let gate = env_or("E20_ASSERT", 1) == 1;
    let fp = host::fingerprint();

    banner(
        "E20",
        "observability: trace fidelity and disabled-tracing overhead",
        "implementation artifact (dobs plane); CONGEST accounting unchanged",
    );
    println!(
        "  host: {} cores available ({}/{}, {} build)",
        fp.available_parallelism, fp.os, fp.arch, fp.profile
    );
    println!("  gnp n={n}, d̄≈{deg}, {epochs} epochs, 2% churn/epoch\n");

    // --- Part 1: traced run → exported artifacts → re-parse and check.
    // Two forced workers so the per-worker tracks exist even on a
    // 1-core container (forced() bypasses the fan-out cost model; the
    // results stay bit-identical by the parallel plane's contract).
    let session = TraceSession::start(cap);
    let eng = churn_run(n, deg, epochs, ExecCfg::parallel(2).forced());
    let rec = session.finish();

    let trace = dobs::export::chrome_trace(&rec);
    let lines = dobs::export::jsonl(&rec);
    std::fs::write("e20_obs.trace.json", &trace).expect("write trace");
    std::fs::write("e20_obs.trace.jsonl", &lines).expect("write jsonl");

    let v = dobs::json::parse(&trace).expect("exported trace must be valid JSON");
    let events = v
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    let ph = |e: &dobs::json::Value| {
        e.get("ph")
            .and_then(|p| p.as_str())
            .unwrap_or("")
            .to_string()
    };
    let round_spans = events
        .iter()
        .filter(|e| ph(e) == "X" && e.get("tid").and_then(|t| t.as_f64()) == Some(0.0))
        .count();
    let mut worker_tids: Vec<u64> = events
        .iter()
        .filter(|e| ph(e) == "X")
        .filter_map(|e| e.get("tid")?.as_f64())
        .filter(|&t| t >= 10.0)
        .map(|t| t as u64)
        .collect();
    worker_tids.sort_unstable();
    worker_tids.dedup();
    let epoch_instants = events
        .iter()
        .filter(|e| {
            ph(e) == "i"
                && e.get("name")
                    .and_then(|n| n.as_str())
                    .is_some_and(|n| n.starts_with("epoch"))
        })
        .count();
    let track_names: Vec<String> = events
        .iter()
        .filter(|e| ph(e) == "M")
        .filter_map(|e| Some(e.get("args")?.get("name")?.as_str()?.to_string()))
        .collect();

    let mut t = Table::new(vec!["trace check", "value", "require"]);
    t.row(vec![
        "events kept (ring)".to_string(),
        format!("{} of {} recorded", rec.len(), rec.recorded()),
        format!("cap {cap}"),
    ]);
    t.row(vec![
        "round spans (tid 0)".to_string(),
        round_spans.to_string(),
        "> 0".to_string(),
    ]);
    t.row(vec![
        "worker tracks".to_string(),
        format!("{:?}", worker_tids),
        ">= 2 tids".to_string(),
    ]);
    t.row(vec![
        "epoch instants".to_string(),
        epoch_instants.to_string(),
        format!("{} (bootstrap + epochs)", epochs + 1),
    ]);
    t.print();
    assert!(round_spans > 0, "trace must carry per-round spans");
    assert!(
        worker_tids.len() >= 2,
        "trace must carry >= 2 per-worker tracks (got {worker_tids:?})"
    );
    assert!(
        track_names.iter().any(|s| s == "rounds")
            && track_names.iter().any(|s| s.starts_with("worker")),
        "trace must name its tracks for Perfetto"
    );
    // The ring may evict early rounds, but epoch instants are rare and
    // recent: all of them must survive a 64k ring at this size.
    assert!(
        epoch_instants as u64 == epochs + 1 || rec.dropped() > 0,
        "all epoch instants must reach the trace"
    );

    // --- dchurn repair distributions, straight off the engine.
    println!("\n--- per-epoch repair distributions (dchurn metrics registry)");
    let mut t = Table::new(vec!["histogram", "p50", "p90", "p99", "max"]);
    for name in ["repair_rounds", "repair_messages", "damage_nodes", "woken"] {
        if let Some(h) = eng.metrics().hist(name) {
            t.row(vec![
                name.to_string(),
                h.quantile(0.5).to_string(),
                h.quantile(0.9).to_string(),
                h.p99().to_string(),
                h.max().to_string(),
            ]);
        }
    }
    t.print();

    // --- Part 2: overhead. A/A′ untraced (gated), traced (reported).
    println!("\n--- overhead: best-of-{runs} untraced A/A′ pair, then traced");
    let cfg = ExecCfg::sequential();
    let a_ns = best_of(runs, n, deg, epochs, cfg);
    let a2_ns = best_of(runs, n, deg, epochs, cfg);
    let base = a_ns.min(a2_ns) as f64;
    let disabled_overhead_pct = (a_ns.max(a2_ns) as f64 / base - 1.0) * 100.0;

    let mut traced_best = u64::MAX;
    for _ in 0..runs {
        let session = TraceSession::start(cap);
        let t = Instant::now();
        let eng = churn_run(n, deg, epochs, cfg);
        traced_best = traced_best.min(t.elapsed().as_nanos() as u64);
        std::hint::black_box(eng.matching().size());
        session.finish();
    }
    let traced_overhead_pct = (traced_best as f64 / base - 1.0) * 100.0;

    let mut t = Table::new(vec!["run", "best ns", "vs base"]);
    t.row(vec![
        "untraced A".to_string(),
        a_ns.to_string(),
        "-".to_string(),
    ]);
    t.row(vec![
        "untraced A′".to_string(),
        a2_ns.to_string(),
        format!("{}%", f2(disabled_overhead_pct)),
    ]);
    t.row(vec![
        "traced".to_string(),
        traced_best.to_string(),
        format!("{}%", f2(traced_overhead_pct)),
    ]);
    t.print();
    println!(
        "\n  disabled-path hooks: {}% A/A′ spread (gate < 2%{}); tracing itself: {}%",
        f2(disabled_overhead_pct),
        if gate {
            ""
        } else {
            ", E20_ASSERT=0: report only"
        },
        f2(traced_overhead_pct)
    );
    if gate {
        assert!(
            disabled_overhead_pct < 2.0,
            "acceptance: untraced A/A′ runs must agree within 2% \
             (got {disabled_overhead_pct:.2}% — the disabled hook path must stay a flag read)"
        );
    }

    // --- Machine-readable record (see EXPERIMENTS.md: committed
    // records carry the host fingerprint so benchdiff can tell a
    // regression from a different machine).
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"e20_obs\",");
    let _ = writeln!(json, "  \"host\": {},", fp.to_json());
    let _ = writeln!(json, "  \"n\": {n},");
    let _ = writeln!(json, "  \"epochs\": {epochs},");
    let _ = writeln!(json, "  \"runs\": {runs},");
    let _ = writeln!(json, "  \"trace_cap\": {cap},");
    let _ = writeln!(json, "  \"events_recorded\": {},", rec.recorded());
    let _ = writeln!(json, "  \"events_kept\": {},", rec.len());
    let _ = writeln!(json, "  \"round_spans\": {round_spans},");
    let _ = writeln!(json, "  \"worker_tracks\": {},", worker_tids.len());
    let _ = writeln!(json, "  \"epoch_instants\": {epoch_instants},");
    let _ = writeln!(json, "  \"untraced_a_ns\": {a_ns},");
    let _ = writeln!(json, "  \"untraced_a2_ns\": {a2_ns},");
    let _ = writeln!(json, "  \"traced_ns\": {traced_best},");
    let _ = writeln!(
        json,
        "  \"disabled_aa_overhead_pct\": {},",
        f2(disabled_overhead_pct)
    );
    let _ = writeln!(
        json,
        "  \"traced_overhead_pct\": {},",
        f2(traced_overhead_pct)
    );
    let _ = writeln!(json, "  \"repair_metrics\": {}", eng.metrics().to_json());
    let _ = writeln!(json, "}}");
    std::fs::write("BENCH_e20_obs.json", &json).expect("write BENCH_e20_obs.json");
    println!("\n  wrote BENCH_e20_obs.json, e20_obs.trace.json, e20_obs.trace.jsonl");
}
