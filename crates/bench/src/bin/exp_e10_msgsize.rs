//! E10 — CONGEST compliance: maximum message size vs. `n` and `Δ`.
//!
//! The paper's central contrast: Theorem 3.1 uses `O(|V|+|E|)`-bit
//! messages, while Theorems 3.8/3.11/4.5 use `O(log n)`-bit (indeed
//! `O(log Δ)`-bit counting) messages. We grow `n` and `Δ` and report
//! the largest message each algorithm ever sent.

use bench_harness::{banner, Table};
use dgraph::generators::random::{bipartite_regular, gnp};
use dmatch::{Algorithm, Session};

fn main() {
    banner(
        "E10",
        "max message bits vs n and Δ",
        "Thm 3.1 (large) vs Thms 3.8/3.11 (small)",
    );

    println!("--- growing n (Δ ≈ const): bits of the largest message");
    let mut t = Table::new(vec![
        "n",
        "generic k=2",
        "bipartite k=3",
        "general k=2",
        "II",
    ]);
    for &exp in &[6u32, 7, 8] {
        let n = 1usize << exp;
        let g = gnp(n, 5.0 / n as f64, exp as u64);
        let (bg, sides) = bipartite_regular(n / 2, 3, exp as u64);
        let run = |alg, sides: Option<&[bool]>, seed| {
            let mut b = Session::on(if sides.is_some() { &bg } else { &g })
                .algorithm(alg)
                .seed(seed);
            if let Some(sides) = sides {
                b = b.sides(sides);
            }
            b.build().run_to_completion()
        };
        let gen = run(Algorithm::Generic { k: 2 }, None, 1);
        let bip = run(Algorithm::Bipartite { k: 3 }, Some(&sides), 2);
        let gal = run(
            Algorithm::General {
                k: 2,
                early_stop: Some(8),
            },
            None,
            3,
        );
        let ii = run(Algorithm::IsraeliItai, None, 4);
        t.row(vec![
            n.to_string(),
            gen.stats.max_msg_bits.to_string(),
            bip.stats.max_msg_bits.to_string(),
            gal.stats.max_msg_bits.to_string(),
            ii.stats.max_msg_bits.to_string(),
        ]);
    }
    t.print();

    println!("\n--- growing Δ (bipartite d-regular, side 256): one ℓ=5 counting pass over a maximal matching —");
    println!("    count values reach Δ^⌈d/2⌉ (Lemma 3.6), so count messages carry O(ℓ·logΔ) bits");
    let mut t = Table::new(vec!["Δ", "count-msg max (bits)", "≈ 4+3·log2(Δ)"]);
    for &d in &[2usize, 4, 8, 16, 32] {
        let (bg, sides) = bipartite_regular(256, d, 5 + d as u64);
        let m = Session::on(&bg)
            .algorithm(Algorithm::IsraeliItai)
            .seed(1)
            .build()
            .run_to_completion()
            .matching;
        let spec = dmatch::bipartite::SubgraphSpec::full_bipartite(&bg, &sides);
        let pass = dmatch::bipartite::count::run(&bg, &m, &spec, 5, 2);
        t.row(vec![
            d.to_string(),
            pass.stats.max_msg_bits.to_string(),
            format!("{:.0}", 4.0 + 3.0 * (d as f64).log2()),
        ]);
    }
    t.print();
    println!(
        "\nExpected shape: the generic algorithm's messages grow with n (subgraph views,\n\
         the O(|V|+|E|) regime); all other columns stay bounded by ~100 bits as n grows,\n\
         and the counting-message size grows additively with log Δ (Lemma 3.6/3.7)."
    );
}
