//! `benchdiff` — regression-gate two benchmark records (or directories
//! of records) produced by the `exp_*` binaries.
//!
//! ```text
//! benchdiff OLD NEW [--threshold R] [--counter-threshold R] [--report-only]
//! ```
//!
//! `OLD` and `NEW` are either two `BENCH_*.json` files or two
//! directories; in directory mode every `BENCH_*.json` filename present
//! in *both* sides is diffed pairwise (names present on only one side
//! are listed, not gated — new experiments must be addable without
//! failing the gate).
//!
//! Every numeric path in the records is classified (see [`dobs::diff`]):
//!
//! - **perf** (wall-clock and derived): gated at `--threshold`
//!   (default 25%) — but *only* when both records embed the same host
//!   fingerprint. Across differing hosts benchdiff reports the ratios
//!   and explicitly refuses the verdict: a number measured on another
//!   machine is not a regression, it is a different machine.
//! - **counter** (rounds, messages, bits, ratios): deterministic, gated
//!   at `--counter-threshold` (default 5%) on any pair of hosts.
//! - **meta** (host object, thread capacities, sizes, seeds): never
//!   gated.
//!
//! Exit status: `0` clean, `1` at least one gated regression,
//! `2` usage or I/O error. `--report-only` prints everything but always
//! exits `0`/`2` — the mode CI uses when comparing against records
//! committed from a different machine class.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use dobs::diff::{diff, Class, DiffCfg, DiffReport};
use dobs::json::{parse, Value};

struct Args {
    old: PathBuf,
    new: PathBuf,
    cfg: DiffCfg,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: benchdiff OLD NEW [--threshold R] [--counter-threshold R] [--report-only]\n\
         \n\
         OLD/NEW: two BENCH_*.json files, or two directories of them\n\
         --threshold R           perf gate, relative (default 0.25)\n\
         --counter-threshold R   counter gate, relative (default 0.05)\n\
         --report-only           classify and print, never fail"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut cfg = DiffCfg::default();
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--report-only" => cfg.report_only = true,
            "--threshold" | "--counter-threshold" => {
                let Some(v) = it.next().and_then(|s| s.parse::<f64>().ok()) else {
                    eprintln!("benchdiff: {a} needs a numeric value");
                    return Err(usage());
                };
                if v < 0.0 || !v.is_finite() {
                    eprintln!("benchdiff: {a} must be a finite non-negative ratio");
                    return Err(usage());
                }
                if a == "--threshold" {
                    cfg.perf_threshold = v;
                } else {
                    cfg.counter_threshold = v;
                }
            }
            "-h" | "--help" => return Err(usage()),
            _ if a.starts_with('-') => {
                eprintln!("benchdiff: unknown flag {a}");
                return Err(usage());
            }
            _ => paths.push(PathBuf::from(a)),
        }
    }
    if paths.len() != 2 {
        return Err(usage());
    }
    let new = paths.pop().expect("len checked");
    let old = paths.pop().expect("len checked");
    Ok(Args { old, new, cfg })
}

fn load(path: &Path) -> Result<Value, ExitCode> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        eprintln!("benchdiff: cannot read {}: {e}", path.display());
        ExitCode::from(2)
    })?;
    parse(&text).map_err(|e| {
        eprintln!("benchdiff: {} is not valid JSON: {e}", path.display());
        ExitCode::from(2)
    })
}

/// `BENCH_*.json` filenames in a directory, sorted for stable output.
fn bench_files(dir: &Path) -> Result<Vec<String>, ExitCode> {
    let rd = std::fs::read_dir(dir).map_err(|e| {
        eprintln!("benchdiff: cannot list {}: {e}", dir.display());
        ExitCode::from(2)
    })?;
    let mut names: Vec<String> = rd
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .collect();
    names.sort();
    Ok(names)
}

fn fmt_val(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.4}")
    }
}

fn class_tag(c: Class) -> &'static str {
    match c {
        Class::Perf => "perf",
        Class::Counter => "counter",
        Class::Meta => "meta",
    }
}

/// Print one report; returns its gated regression count.
fn render(label: &str, rep: &DiffReport, cfg: &DiffCfg) -> usize {
    println!("== {label}");
    if !rep.hosts_match {
        println!(
            "   host fingerprints differ or are missing: perf paths \
             reported but NOT gated (counters still gate)"
        );
    }
    // Significant movement first, one quiet summary line for the rest.
    let noise_floor = cfg.counter_threshold.min(cfg.perf_threshold) / 2.0;
    let mut quiet = 0usize;
    for d in &rep.deltas {
        let moved = d.regression_ratio.abs() > noise_floor;
        if !moved && !d.regressed {
            quiet += 1;
            continue;
        }
        let verdict = if d.regressed {
            "REGRESSED"
        } else if d.regression_ratio > 0.0 {
            if d.class == Class::Perf && !rep.hosts_match {
                "worse (cross-host: not gated)"
            } else if d.class == Class::Meta {
                "changed (meta: not gated)"
            } else {
                "worse (within threshold)"
            }
        } else {
            "improved"
        };
        // Zero-valued baselines produce an infinite ratio (the 0→k
        // verdict); print it honestly rather than as "+inf%".
        let pct = if d.regression_ratio.is_infinite() {
            if d.regression_ratio > 0.0 {
                "from-zero".to_string()
            } else {
                "to-zero".to_string()
            }
        } else {
            format!("{:+.1}%", d.regression_ratio * 100.0)
        };
        println!(
            "   {:<9} {:<44} {:>14} -> {:<14} {}  {}",
            class_tag(d.class),
            d.path,
            fmt_val(d.old),
            fmt_val(d.new),
            pct,
            verdict
        );
    }
    if quiet > 0 {
        println!("   ({quiet} paths within noise)");
    }
    if !rep.unmatched.is_empty() {
        println!(
            "   only in one record ({}): {}",
            rep.unmatched.len(),
            rep.unmatched.join(", ")
        );
    }
    println!(
        "   {} regression(s) over {} compared paths",
        rep.regressions,
        rep.deltas.len()
    );
    rep.regressions
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(code) => return code,
    };

    // Assemble (label, old-file, new-file) pairs.
    let mut pairs: Vec<(String, PathBuf, PathBuf)> = Vec::new();
    match (args.old.is_dir(), args.new.is_dir()) {
        (true, true) => {
            let old_names = match bench_files(&args.old) {
                Ok(n) => n,
                Err(c) => return c,
            };
            let new_names = match bench_files(&args.new) {
                Ok(n) => n,
                Err(c) => return c,
            };
            for n in &old_names {
                if new_names.contains(n) {
                    pairs.push((n.clone(), args.old.join(n), args.new.join(n)));
                } else {
                    println!("-- {n}: only in {}", args.old.display());
                }
            }
            for n in &new_names {
                if !old_names.contains(n) {
                    println!(
                        "-- {n}: only in {} (new record, not gated)",
                        args.new.display()
                    );
                }
            }
            if pairs.is_empty() {
                eprintln!("benchdiff: no common BENCH_*.json names between the directories");
                return ExitCode::from(2);
            }
        }
        (false, false) => {
            let label = format!("{} vs {}", args.old.display(), args.new.display());
            pairs.push((label, args.old.clone(), args.new.clone()));
        }
        _ => {
            eprintln!("benchdiff: OLD and NEW must both be files or both be directories");
            return ExitCode::from(2);
        }
    }

    let mut total = 0usize;
    for (label, old_path, new_path) in &pairs {
        let old = match load(old_path) {
            Ok(v) => v,
            Err(c) => return c,
        };
        let new = match load(new_path) {
            Ok(v) => v,
            Err(c) => return c,
        };
        let rep = diff(&old, &new, &args.cfg);
        total += render(label, &rep, &args.cfg);
    }

    if total > 0 {
        eprintln!("benchdiff: FAIL — {total} gated regression(s)");
        ExitCode::from(1)
    } else {
        println!(
            "benchdiff: OK{}",
            if args.cfg.report_only {
                " (report-only)"
            } else {
                ""
            }
        );
        ExitCode::SUCCESS
    }
}
