//! E0 — headline summary: every algorithm side by side.
//!
//! The "Table 1" the paper never printed: on one set of workloads,
//! compare the classical baseline, the paper's three unweighted
//! algorithms, and the weighted family — ratio, rounds, messages, and
//! maximum message size. This is the at-a-glance version of the claims
//! detailed in E1–E13.

use bench_harness::{banner, f3, Table};
use dgraph::generators::random::{bipartite_regular, gnp};
use dgraph::generators::weights::{apply_weights, WeightModel};
use dmatch::runner;
use dmatch::weighted::MwmBox;
use dmatch::{Algorithm, Session, TerminationMode};

fn main() {
    banner("E0", "all algorithms at a glance", "the whole paper");

    println!("--- unweighted, general graph: G(n=512, d̄=6)");
    let g = gnp(512, 6.0 / 512.0, 99);
    let opt = dgraph::blossom::max_matching(&g).size();
    println!("    blossom optimum = {opt} edges\n");
    let mut t = Table::new(vec![
        "algorithm",
        "guarantee",
        "ratio",
        "rounds",
        "messages",
        "maxmsg(bits)",
    ]);
    for (alg, bound) in [
        (Algorithm::IsraeliItai, "1/2".to_string()),
        (Algorithm::Generic { k: 2 }, "2/3".to_string()),
        (Algorithm::Generic { k: 3 }, "3/4".to_string()),
        (
            Algorithm::General {
                k: 2,
                early_stop: Some(15),
            },
            "1/2 whp".to_string(),
        ),
        (
            Algorithm::General {
                k: 3,
                early_stop: Some(15),
            },
            "2/3 whp".to_string(),
        ),
    ] {
        let r = Session::on(&g)
            .algorithm(alg)
            .seed(5)
            .termination(TerminationMode::Oracle)
            .build()
            .run_to_completion();
        t.row(vec![
            r.name.clone(),
            bound,
            f3(r.mcm_ratio(&g)),
            r.stats.rounds.to_string(),
            r.stats.messages.to_string(),
            r.stats.max_msg_bits.to_string(),
        ]);
    }
    t.print();

    println!("\n--- unweighted, bipartite: 3-regular, 512 + 512 nodes");
    let (bg, sides) = bipartite_regular(512, 3, 7);
    let bopt = dgraph::hopcroft_karp::max_matching(&bg, &sides).size();
    println!("    Hopcroft–Karp optimum = {bopt} edges\n");
    let mut t = Table::new(vec![
        "algorithm",
        "guarantee",
        "ratio",
        "rounds",
        "messages",
        "maxmsg(bits)",
    ]);
    for k in [2usize, 3, 5] {
        let r = Session::on(&bg)
            .algorithm(Algorithm::Bipartite { k })
            .sides(&sides)
            .seed(3)
            .build()
            .run_to_completion();
        t.row(vec![
            r.name.clone(),
            format!("1-1/{k}"),
            f3(r.mcm_ratio(&bg)),
            r.stats.rounds.to_string(),
            r.stats.messages.to_string(),
            r.stats.max_msg_bits.to_string(),
        ]);
    }
    t.print();

    println!("\n--- weighted, general graph: G(n=256, d̄=6), exponential weights");
    let wg = apply_weights(
        &gnp(256, 6.0 / 256.0, 42),
        WeightModel::Exponential(2.0),
        43,
    );
    let wref = runner::mwm_reference(&wg, None);
    println!("    reference optimum/bound = {wref:.2}\n");
    let mut t = Table::new(vec![
        "algorithm",
        "guarantee",
        "ratio",
        "rounds",
        "messages",
        "maxmsg(bits)",
    ]);
    for (alg, bound) in [
        (
            Algorithm::DeltaMwm {
                mwm_box: MwmBox::LocalDominant,
            },
            "1/2 (O(n) rds)".to_string(),
        ),
        (
            Algorithm::DeltaMwm {
                mwm_box: MwmBox::SeqClass,
            },
            "1/4".to_string(),
        ),
        (
            Algorithm::Weighted {
                epsilon: 0.2,
                mwm_box: MwmBox::SeqClass,
            },
            "1/2-0.2".to_string(),
        ),
        (
            Algorithm::Weighted {
                epsilon: 0.05,
                mwm_box: MwmBox::SeqClass,
            },
            "1/2-0.05".to_string(),
        ),
    ] {
        let r = Session::on(&wg)
            .algorithm(alg)
            .seed(9)
            .build()
            .run_to_completion();
        t.row(vec![
            r.name.clone(),
            bound,
            f3(r.mwm_ratio(&wg, None)),
            r.stats.rounds.to_string(),
            r.stats.messages.to_string(),
            r.stats.max_msg_bits.to_string(),
        ]);
    }
    // The Remark extension, on a size the exact DP can certify.
    let small = apply_weights(&gnp(18, 0.3, 8), WeightModel::Uniform(0.5, 4.0), 9);
    let sopt = dgraph::mwm_exact::max_weight_exact(&small);
    let fa = dmatch::weighted::full_approx::run(&small, 3, 0.02, 1);
    t.row(vec![
        "(1-ε)-MWM remark (n=18, exact ref)".to_string(),
        "3/4·0.98".to_string(),
        f3(fa.matching.weight(&small) / sopt),
        fa.stats.rounds.to_string(),
        fa.stats.messages.to_string(),
        fa.stats.max_msg_bits.to_string(),
    ]);
    t.print();
    println!("\n(Ratios for n=256 weighted rows are against a certified upper bound, so they\nunderstate true quality; the exact-reference row shows the real headroom.)");
}
