//! E5 — Theorem 4.5 / Algorithm 5: `(½-ε)`-MWM.
//!
//! Three measurements:
//!
//! * **E5a** — ε sweep: achieved weight ratio vs. the `(½-ε)` bound and
//!   Lemma 4.3's convergence prediction `½(1-e^{-2δi/3})`, plus rounds
//!   (paper shape: `O(log(1/ε)·log n)` up to the black box's own round
//!   complexity).
//! * **E5b** — black-box ablation: the δ-MWM substitutes (sequential
//!   classes, parallel classes, local-dominant) standalone — measured δ
//!   vs. the exact optimum — and plugged into Algorithm 5.
//! * **E5c** — baseline contrast: the ½-MWM local-dominant baseline's
//!   rounds explode on adversarial weights while Algorithm 5 with the
//!   class box stays polylogarithmic.

use bench_harness::{banner, f2, f3, mean, Table};
use dgraph::generators::random::{bipartite_gnp, gnp};
use dgraph::generators::weights::{apply_weights, WeightModel};
use dgraph::{Graph, NodeId};
use dmatch::weighted::MwmBox;
use dmatch::{Algorithm, Session};

fn weighted_case(n: usize, seed: u64) -> (Graph, Vec<bool>) {
    let (g0, sides) = bipartite_gnp(n / 2, n / 2, 6.0 / (n / 2) as f64, seed);
    (
        apply_weights(&g0, WeightModel::Exponential(2.0), seed + 1),
        sides,
    )
}

fn main() {
    banner(
        "E5",
        "(½-ε)-MWM reduction and its black boxes",
        "Theorem 4.5 / Algorithm 5, Lemma 4.3",
    );

    // ---- E5a: ε sweep --------------------------------------------------
    println!("--- E5a: ε sweep (bipartite, exponential weights, n = 64; exact = Hungarian)");
    let mut t = Table::new(vec![
        "ε",
        "bound ½-ε",
        "ratio(min/mean)",
        "lemma4.3 pred",
        "iters",
        "rounds",
        "rounds/log(1/ε)",
    ]);
    for &eps in &[0.3, 0.2, 0.1, 0.05] {
        let mut ratios = Vec::new();
        let mut rounds = Vec::new();
        let mut iters = 0;
        for seed in 0..4u64 {
            let (g, sides) = weighted_case(64, 100 + seed);
            let mut s = Session::on(&g)
                .algorithm(Algorithm::Weighted {
                    epsilon: eps,
                    mwm_box: MwmBox::SeqClass,
                })
                .seed(seed)
                .build();
            let r = s.run_to_completion();
            let opt = dgraph::hungarian::max_weight_matching(&g, &sides).weight(&g);
            ratios.push(if opt <= 0.0 {
                1.0
            } else {
                r.matching.weight(&g) / opt
            });
            rounds.push(r.stats.rounds as f64);
            iters = s.phase_log().len() as u64;
        }
        let delta = MwmBox::SeqClass.nominal_delta();
        let pred = 0.5 * (1.0 - (-2.0 * delta * iters as f64 / 3.0).exp());
        let rmean = mean(&rounds);
        t.row(vec![
            f2(eps),
            f3(0.5 - eps),
            format!(
                "{}/{}",
                f3(ratios.iter().cloned().fold(f64::INFINITY, f64::min)),
                f3(mean(&ratios))
            ),
            f3(pred),
            iters.to_string(),
            f2(rmean),
            f2(rmean / (1.0 / eps).ln()),
        ]);
    }
    t.print();

    // ---- E5b: black-box ablation ---------------------------------------
    println!("\n--- E5b: δ-MWM black boxes, standalone and inside Algorithm 5 (n = 18 general, exact = DP)");
    let mut t = Table::new(vec![
        "box",
        "nominal δ",
        "standalone δ(min)",
        "alg5 ratio(min)",
        "alg5 rounds(mean)",
    ]);
    for &mwm_box in &[MwmBox::SeqClass, MwmBox::ParClass, MwmBox::LocalDominant] {
        let mut standalone = Vec::new();
        let mut alg5 = Vec::new();
        let mut rounds = Vec::new();
        for seed in 0..6u64 {
            let g = apply_weights(
                &gnp(18, 0.25, 200 + seed),
                WeightModel::PowerLaw {
                    lo: 1.0,
                    alpha: 1.1,
                },
                seed,
            );
            let opt = dgraph::mwm_exact::max_weight_exact(&g);
            if opt <= 0.0 {
                continue;
            }
            let (m, _) = mwm_box.run(&g, seed);
            standalone.push(m.weight(&g) / opt);
            let r = Session::on(&g)
                .algorithm(Algorithm::Weighted {
                    epsilon: 0.1,
                    mwm_box,
                })
                .seed(seed)
                .build()
                .run_to_completion();
            alg5.push(r.matching.weight(&g) / opt);
            rounds.push(r.stats.rounds as f64);
        }
        t.row(vec![
            format!("{mwm_box:?}"),
            f3(mwm_box.nominal_delta()),
            f3(standalone.iter().cloned().fold(f64::INFINITY, f64::min)),
            f3(alg5.iter().cloned().fold(f64::INFINITY, f64::min)),
            f2(mean(&rounds)),
        ]);
    }
    t.print();

    // ---- E5c: adversarial weights --------------------------------------
    println!("\n--- E5c: increasing-weight path (local-dominant worst case), n = 1000");
    let n = 1000usize;
    let edges: Vec<(NodeId, NodeId)> = (0..n - 1).map(|i| (i as NodeId, i as NodeId + 1)).collect();
    let weights: Vec<f64> = (0..n - 1).map(|i| 1.0 + i as f64 / (n as f64)).collect();
    let g = Graph::with_weights(n, edges, weights);
    let sides = dgraph::bipartite::two_color(&g).unwrap();
    let opt = dgraph::hungarian::max_weight_matching(&g, &sides).weight(&g);
    let mut t = Table::new(vec!["algorithm", "ratio", "rounds"]);
    let (ld, ld_stats) = dmatch::weighted::local_dominant::run(&g, 1);
    t.row(vec![
        "local-dominant (½, Hoepman-style)".to_string(),
        f3(ld.weight(&g) / opt),
        ld_stats.rounds.to_string(),
    ]);
    let r = Session::on(&g)
        .algorithm(Algorithm::Weighted {
            epsilon: 0.1,
            mwm_box: MwmBox::SeqClass,
        })
        .seed(2)
        .build()
        .run_to_completion();
    t.row(vec![
        "Algorithm 5 (SeqClass box)".to_string(),
        f3(r.matching.weight(&g) / opt),
        r.stats.rounds.to_string(),
    ]);
    t.print();
    println!(
        "\nExpected shape: E5a ratios ≥ ½-ε and tracking the Lemma 4.3 prediction;\n\
         E5b standalone δ ≥ nominal δ, all boxes reaching ≥ ½-ε inside Algorithm 5;\n\
         E5c local-dominant serializes (rounds ≈ n) where the reduction stays polylog."
    );
}
