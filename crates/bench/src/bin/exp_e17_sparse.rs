//! E17 — the sparse activity-driven step plane: round cost ∝ active
//! nodes, not n.
//!
//! Two measurements, one claim (the LCA-style "work ∝ probed region"
//! principle of Alon–Rubinfeld–Vardi–Xie / Reingold–Vardi, applied to
//! the round loop):
//!
//! **Part A — activity-fraction sweep.** A gossip workload in which
//! only a fraction `f` of nodes is ever active; the rest have nothing
//! to do. Three executions of the *same* workload:
//!
//! * `dense, no sleep` — idle nodes are stepped every round and return
//!   immediately: the pre-sparse behavior, where every round cost O(n)
//!   regardless of activity;
//! * `dense sweep` — idle nodes `Ctx::sleep`, the dense fallback skips
//!   them but still scans all n slots per round;
//! * `sparse` — the activity-driven wake list: idle nodes cost nothing.
//!
//! All three must agree bit-for-bit on final states and message
//! counts (asserted), the sparse run must keep `plane_allocs` at zero
//! per steady-state round (asserted — the CI perf-smoke contract),
//! and at ≤10% activity the sparse plane must beat `dense, no sleep`
//! by ≥ `E17_MIN_SPEEDUP` (default 3, asserted unless `E17_ASSERT=0`).
//!
//! **Part B — repair-epoch cost vs n at fixed damage.** A ring of
//! `dchurn::RepairNode`s; each epoch churns away exactly one matched
//! edge and runs a fixed budget of repair rounds. The damage is O(1),
//! so the sparse plane's timed round cost stays flat as n grows while
//! the dense sweep's grows linearly — `node_steps` per epoch (identical
//! in both modes) shows the active set staying near the damage.
//!
//! Knobs: `E17_N` (default 120000), `E17_ROUNDS` (default 60),
//! `E17_RUNS` (default 3), `E17_REPAIR_LADDER` (default
//! "10000,20000,40000,80000"), `E17_MIN_SPEEDUP` (default 3),
//! `E17_ASSERT` (default 1).
//!
//! Writes `BENCH_e17_sparse.json` (machine-readable mirror of the
//! tables) for the CI artifact trail.

use bench_harness::{banner, env_or, f2, Table};
use dgraph::generators::random::gnp;
use simnet::{Ctx, Inbox, Network, NodeId, Protocol, SchedMode, Topology};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Gossip among the first `threshold` node ids; everyone else is idle.
/// `sleepy` controls whether idle nodes use the activity API
/// (`Ctx::sleep`) or busy-wait like pre-sparse protocols had to.
struct FracGossip {
    threshold: NodeId,
    sleepy: bool,
    acc: u64,
}

impl Protocol for FracGossip {
    type Msg = u64;
    fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: Inbox<'_, u64>) {
        for e in inbox.iter() {
            self.acc = self.acc.rotate_left(9) ^ *e.msg;
        }
        if ctx.id() < self.threshold {
            // Active: gossip to active neighbors only, every round.
            let token = ctx.rng().next() ^ self.acc;
            for p in 0..ctx.degree() {
                if ctx.neighbor(p) < self.threshold {
                    ctx.send(p, token);
                }
            }
        } else if self.sleepy {
            ctx.sleep(); // idle: cost the round loop nothing
        }
        // else: idle but stepped every round (the old way).
    }
}

struct Measured {
    per_round: Duration,
    avg_active: f64,
}

/// Time `rounds` steady-state rounds (after warmup), best of `runs`.
fn measure_rounds(net: &mut Network<FracGossip>, rounds: u64, runs: u32) -> Measured {
    net.run_rounds(2); // warmup: idle nodes reach their steady state
    let r0 = net.stats().rounds;
    let steps0 = net.stats().node_steps;
    let mut best = Duration::MAX;
    for _ in 0..runs {
        let t0 = Instant::now();
        net.run_rounds(rounds);
        best = best.min(t0.elapsed());
        black_box(net.nodes().len());
    }
    let measured_rounds = net.stats().rounds - r0;
    let avg_active = (net.stats().node_steps - steps0) as f64 / measured_rounds as f64;
    Measured {
        per_round: best / rounds as u32,
        avg_active,
    }
}

struct FractionRow {
    fraction: f64,
    avg_active: f64,
    dense_busy_ns: u128,
    dense_ns: u128,
    sparse_ns: u128,
    speedup: f64,
}

#[allow(clippy::too_many_arguments)]
fn sweep_fraction(
    topo: &Topology,
    n: usize,
    fraction: f64,
    rounds: u64,
    runs: u32,
    seed: u64,
) -> FractionRow {
    let threshold = (n as f64 * fraction).round() as NodeId;
    let mk = |sleepy: bool, sched: SchedMode| {
        let nodes = (0..n)
            .map(|_| FracGossip {
                threshold,
                sleepy,
                acc: 0,
            })
            .collect();
        Network::new(topo.clone(), nodes, seed).with_sched(sched)
    };

    // Correctness gate: all three executions agree bit-for-bit.
    let gate_rounds = 5;
    let mut gate_busy = mk(false, SchedMode::Dense);
    let mut gate_dense = mk(true, SchedMode::Dense);
    let mut gate_sparse = mk(true, SchedMode::Sparse);
    gate_busy.run_rounds(gate_rounds);
    gate_dense.run_rounds(gate_rounds);
    gate_sparse.run_rounds(gate_rounds);
    assert!(
        gate_busy
            .nodes()
            .iter()
            .zip(gate_sparse.nodes())
            .all(|(a, b)| a.acc == b.acc),
        "sparse diverged from the busy-idle baseline"
    );
    assert!(
        gate_dense
            .nodes()
            .iter()
            .zip(gate_sparse.nodes())
            .all(|(a, b)| a.acc == b.acc),
        "sparse diverged from the dense sweep"
    );
    assert_eq!(gate_busy.stats().messages, gate_sparse.stats().messages);
    assert_eq!(gate_dense.stats().messages, gate_sparse.stats().messages);

    let mut busy = mk(false, SchedMode::Dense);
    let m_busy = measure_rounds(&mut busy, rounds, runs);
    let mut dense = mk(true, SchedMode::Dense);
    let m_dense = measure_rounds(&mut dense, rounds, runs);
    let mut sparse = mk(true, SchedMode::Sparse);
    let m_sparse = measure_rounds(&mut sparse, rounds, runs);

    // The CI perf-smoke contract: the sparse plane allocates nothing
    // per steady-state round.
    let s = sparse.stats();
    assert!(
        s.per_round[1..].iter().all(|r| r.plane_allocs == 0),
        "sparse plane allocated mid-run"
    );

    FractionRow {
        fraction,
        avg_active: m_sparse.avg_active,
        dense_busy_ns: m_busy.per_round.as_nanos(),
        dense_ns: m_dense.per_round.as_nanos(),
        sparse_ns: m_sparse.per_round.as_nanos(),
        speedup: m_busy.per_round.as_secs_f64() / m_sparse.per_round.as_secs_f64(),
    }
}

// --------------------------------------------------------- Part B

struct RepairRow {
    n: usize,
    dense_ms: f64,
    sparse_ms: f64,
    steps_per_epoch: f64,
}

/// Fixed round budget per repair epoch: one sync round, ten 3-round
/// iterations (far more than one lost edge ever needs), one drain.
const REPAIR_ROUNDS: u64 = 1 + 3 * 10 + 1;

/// Ring of RepairNodes: bootstrap to maximality (untimed), then per
/// epoch churn away one matched edge (untimed rewire — inherently
/// O(n)) and run the fixed repair-round budget (timed). Returns the
/// mean timed cost per epoch.
fn repair_epochs(n: usize, sched: SchedMode, epochs: u64, seed: u64) -> (f64, f64) {
    use dchurn::RepairNode;
    let edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
    let topo = Topology::from_edges(n, &edges);
    let nodes: Vec<RepairNode> = (0..n as u32)
        .map(|v| RepairNode::new(topo.degree(v)))
        .collect();
    let mut net = Network::new(topo, nodes, seed).with_sched(sched);
    // Bootstrap: run iterations until the ring is maximally matched.
    let mates = |net: &Network<RepairNode>| -> Vec<Option<u32>> {
        net.nodes()
            .iter()
            .enumerate()
            .map(|(v, s)| s.mate_port().map(|p| net.topology().neighbor(v as u32, p)))
            .collect()
    };
    let is_maximal_ring = |m: &[Option<u32>], net: &Network<RepairNode>| {
        (0..net.topology().len() as u32).all(|v| {
            m[v as usize].is_some()
                || net
                    .topology()
                    .neighbors(v)
                    .iter()
                    .all(|&u| m[u as usize].is_some())
        })
    };
    net.run_rounds(1); // sync round
    for _ in 0..200 {
        net.run_rounds(3);
        if is_maximal_ring(&mates(&net), &net) {
            break;
        }
    }
    assert!(is_maximal_ring(&mates(&net), &net), "bootstrap failed");

    let mut timed = Duration::ZERO;
    let steps0 = net.stats().node_steps;
    let rounds0 = net.stats().rounds;
    for e in 0..epochs {
        // Damage: one matched edge, rotated around the ring so epochs
        // do not compound in one place.
        let m = mates(&net);
        let start = (e as u32).wrapping_mul(0x9E37) % n as u32;
        let u = (0..n as u32)
            .map(|i| (start + i) % n as u32)
            .find(|&v| m[v as usize] == Some((v + 1) % n as u32))
            .expect("a matched ring edge");
        let v = (u + 1) % n as u32;
        let patch = net.topology().rewired(&[(u, v)], &[]);
        net.rewire(&patch); // untimed: inherently O(n)
        let t0 = Instant::now();
        net.run_rounds(REPAIR_ROUNDS);
        timed += t0.elapsed();
        black_box(net.stats().rounds);
    }
    let m = mates(&net);
    assert!(is_maximal_ring(&m, &net), "repair budget was insufficient");
    let steps = (net.stats().node_steps - steps0) as f64 / epochs as f64;
    let _ = rounds0;
    (timed.as_secs_f64() * 1e3 / epochs as f64, steps)
}

fn main() {
    banner(
        "E17",
        "sparse activity-driven step plane",
        "round cost ∝ active nodes (LCA principle), not n",
    );
    let n = env_or("E17_N", 120_000) as usize;
    let rounds = env_or("E17_ROUNDS", 60);
    let runs = env_or("E17_RUNS", 3) as u32;
    let min_speedup = env_or("E17_MIN_SPEEDUP", 3) as f64;
    let do_assert = env_or("E17_ASSERT", 1) == 1;
    let seed = 17u64;

    println!(
        "Part A: activity-fraction sweep on gnp(n={n}, d̄=8), {rounds} rounds/run, {runs} runs"
    );
    let g = gnp(n, 8.0 / n as f64, 7);
    let topo = dmatch::topology_of(&g);
    let mut rows = Vec::new();
    let mut t = Table::new(vec![
        "active",
        "avg active/round",
        "dense no-sleep/round",
        "dense sweep/round",
        "sparse/round",
        "speedup vs no-sleep",
    ]);
    for fraction in [1.0, 0.5, 0.1, 0.01] {
        let row = sweep_fraction(&topo, n, fraction, rounds, runs, seed);
        t.row(vec![
            format!("{:.0}%", fraction * 100.0),
            format!("{:.0}", row.avg_active),
            format!("{}ns", row.dense_busy_ns),
            format!("{}ns", row.dense_ns),
            format!("{}ns", row.sparse_ns),
            format!("{}x", f2(row.speedup)),
        ]);
        rows.push(row);
    }
    t.print();
    let at_10pct = rows
        .iter()
        .find(|r| (r.fraction - 0.1).abs() < 1e-9)
        .expect("10% row");
    println!(
        "\n  quiet-tail speedup at 10% activity: {}x (floor: {min_speedup}x)",
        f2(at_10pct.speedup)
    );
    if do_assert {
        assert!(
            at_10pct.speedup >= min_speedup,
            "sparse plane speedup {:.2}x at 10% activity is below the {min_speedup}x floor",
            at_10pct.speedup
        );
    }

    println!("\nPart B: repair-epoch round cost vs n, one churned edge per epoch ({REPAIR_ROUNDS} repair rounds timed)");
    let ladder: Vec<usize> = std::env::var("E17_REPAIR_LADDER")
        .unwrap_or_else(|_| "10000,20000,40000,80000".into())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let epochs = 5u64;
    let mut repair_rows = Vec::new();
    let mut t = Table::new(vec![
        "n",
        "dense ms/epoch",
        "sparse ms/epoch",
        "node steps/epoch",
    ]);
    for &rn in &ladder {
        let (dense_ms, _) = repair_epochs(rn, SchedMode::Dense, epochs, 3);
        let (sparse_ms, steps) = repair_epochs(rn, SchedMode::Sparse, epochs, 3);
        t.row(vec![
            rn.to_string(),
            format!("{:.3}", dense_ms),
            format!("{:.3}", sparse_ms),
            format!("{steps:.0}"),
        ]);
        repair_rows.push(RepairRow {
            n: rn,
            dense_ms,
            sparse_ms,
            steps_per_epoch: steps,
        });
    }
    t.print();
    if repair_rows.len() >= 2 {
        let first = &repair_rows[0];
        let last = &repair_rows[repair_rows.len() - 1];
        println!(
            "\n  n grew {:.1}x: dense repair rounds {:.1}x slower, sparse {:.1}x, active set {:.1}x",
            last.n as f64 / first.n as f64,
            last.dense_ms / first.dense_ms,
            last.sparse_ms / first.sparse_ms,
            last.steps_per_epoch / first.steps_per_epoch,
        );
    }

    // Machine-readable mirror for the CI artifact trail.
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"e17_sparse\",\n");
    let _ = writeln!(
        json,
        "  \"host\": {},",
        bench_harness::host::fingerprint().to_json()
    );
    // This experiment measures the scheduler, not the executor: every
    // run is sequential by construction.
    json.push_str("  \"threads_requested\": 1,\n  \"threads_used_peak\": 1,\n");
    let _ = writeln!(json, "  \"n\": {n},");
    let _ = writeln!(json, "  \"rounds_per_run\": {rounds},");
    let _ = writeln!(json, "  \"runs\": {runs},");
    json.push_str("  \"fractions\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"fraction\": {}, \"avg_active\": {:.0}, \"dense_no_sleep_ns\": {}, \"dense_sweep_ns\": {}, \"sparse_ns\": {}, \"speedup\": {:.2}}}",
            r.fraction, r.avg_active, r.dense_busy_ns, r.dense_ns, r.sparse_ns, r.speedup
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"speedup_at_10pct\": {:.2},", at_10pct.speedup);
    let _ = writeln!(json, "  \"repair_rounds_per_epoch\": {REPAIR_ROUNDS},");
    json.push_str("  \"repair_ladder\": [\n");
    for (i, r) in repair_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"n\": {}, \"dense_ms_per_epoch\": {:.3}, \"sparse_ms_per_epoch\": {:.3}, \"node_steps_per_epoch\": {:.0}}}",
            r.n, r.dense_ms, r.sparse_ms, r.steps_per_epoch
        );
        json.push_str(if i + 1 < repair_rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n  \"plane_allocs_steady_state\": 0\n}\n");
    std::fs::write("BENCH_e17_sparse.json", &json).expect("write BENCH_e17_sparse.json");
    println!("\n  wrote BENCH_e17_sparse.json");
}
