//! E9 — round-complexity scaling: rounds vs. `log n`.
//!
//! Every headline bound of the paper is `O(f(k,ε) · log n)` rounds. We
//! double `n` on sparse random graphs with all parameters fixed and
//! report rounds and the ratio `rounds / log₂ n`, which should converge
//! to a constant per algorithm (straight line on a log-x plot).

use bench_harness::{banner, f2, Table};
use dgraph::generators::random::{bipartite_regular, gnp};
use dgraph::generators::weights::{apply_weights, WeightModel};
use dmatch::weighted::MwmBox;
use dmatch::{Algorithm, Session};

fn main() {
    banner(
        "E9",
        "rounds vs log n (fixed k / ε)",
        "Theorems 3.1, 3.8, 3.11, 4.5",
    );

    let mut t = Table::new(vec![
        "n",
        "II rounds",
        "II/logn",
        "bip(k=3)",
        "bip/logn",
        "gen(k=2)",
        "gen/logn",
        "mwm(ε=.2)",
        "mwm/log²n",
    ]);
    for &exp in &[7u32, 8, 9, 10, 11, 12] {
        let n = 1usize << exp;
        let logn = n as f64;
        let logn = logn.log2();

        // Israeli–Itai on sparse gnp.
        let g = gnp(n, 6.0 / n as f64, 31 + exp as u64);
        let ii = Session::on(&g)
            .algorithm(Algorithm::IsraeliItai)
            .seed(exp as u64)
            .build()
            .run_to_completion();

        // Bipartite Theorem 3.8 on 3-regular bipartite (n/2 per side).
        let (bg, sides) = bipartite_regular(n / 2, 3, 77 + exp as u64);
        let bip = Session::on(&bg)
            .algorithm(Algorithm::Bipartite { k: 3 })
            .sides(&sides)
            .seed(exp as u64)
            .build()
            .run_to_completion();

        // General Algorithm 4 with early stop.
        let gen = Session::on(&g)
            .algorithm(Algorithm::General {
                k: 2,
                early_stop: Some(10),
            })
            .seed(exp as u64)
            .build()
            .run_to_completion();

        // Weighted Algorithm 5 (SeqClass box is O(log² n) itself).
        let wg = apply_weights(&g, WeightModel::Exponential(1.0), exp as u64);
        let mwm = Session::on(&wg)
            .algorithm(Algorithm::Weighted {
                epsilon: 0.2,
                mwm_box: MwmBox::SeqClass,
            })
            .seed(exp as u64)
            .build()
            .run_to_completion();

        t.row(vec![
            n.to_string(),
            ii.stats.rounds.to_string(),
            f2(ii.stats.rounds as f64 / logn),
            bip.stats.rounds.to_string(),
            f2(bip.stats.rounds as f64 / logn),
            gen.stats.rounds.to_string(),
            f2(gen.stats.rounds as f64 / logn),
            mwm.stats.rounds.to_string(),
            f2(mwm.stats.rounds as f64 / (logn * logn)),
        ]);
    }
    t.print();
    println!(
        "\nExpected shape: each */logn column roughly flat as n doubles (logarithmic\n\
         round complexity); the weighted column is normalized by log²n because our\n\
         sequential-class δ-MWM box spends O(log n) maximal matchings (see DESIGN.md —\n\
         the original [18] box would make it O(log n))."
    );
}
