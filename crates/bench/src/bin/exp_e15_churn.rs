//! E15 — incremental repair vs. full recompute under churn.
//!
//! The dynamic-network engine (`dchurn`) repairs the maximal matching
//! after each churn epoch instead of recomputing it. This experiment
//! measures what that buys: per-epoch repair rounds and messages
//! against a from-scratch Israeli–Itai run on the same (current)
//! graph, across churn rates, plus the locality of repair (how far
//! from the damage any message travels) and how the advantage *grows*
//! with n — the LCA-style payoff: repair work scales with the damage,
//! recompute work with the graph.
//!
//! Knobs: `CHURN_N` (default 2000), `CHURN_EPOCHS` (default 20),
//! `CHURN_DEG` (average degree, default 8).

use bench_harness::{banner, env_or, f2, mean, Table};
use dchurn::{ChurnModel, DynEngine, RepairAlgo};
use dgraph::generators::random::gnp;

struct Sweep {
    repair_rounds: f64,
    repair_msgs: f64,
    recompute_rounds: f64,
    recompute_msgs: f64,
    damage: f64,
    woken: f64,
    max_radius: usize,
}

fn sweep(n: usize, deg: f64, rate: f64, epochs: u64, seed: u64) -> Sweep {
    let g = gnp(n, deg / n as f64, seed);
    let mut eng = DynEngine::new(
        g,
        ChurnModel::EdgeChurn { rate },
        RepairAlgo::IncrementalMaximal,
        seed.wrapping_add(100),
    );
    eng.bootstrap();
    let (mut rr, mut rm, mut cr, mut cm, mut dmg, mut wok) =
        (vec![], vec![], vec![], vec![], vec![], vec![]);
    let mut max_radius = 0usize;
    for _ in 0..epochs {
        let rep = eng.step_epoch().clone();
        assert!(rep.maximal, "every epoch must end maximal");
        rr.push(rep.rounds as f64);
        rm.push(rep.messages as f64);
        dmg.push(rep.damage as f64);
        wok.push(rep.woken as f64);
        if let Some(r) = rep.locality_radius {
            max_radius = max_radius.max(r);
        }
        let (m, stats) = eng.recompute_baseline();
        assert!(m.is_maximal(eng.graph()));
        cr.push(stats.rounds as f64);
        cm.push(stats.messages as f64);
    }
    Sweep {
        repair_rounds: mean(&rr),
        repair_msgs: mean(&rm),
        recompute_rounds: mean(&cr),
        recompute_msgs: mean(&cm),
        damage: mean(&dmg),
        woken: mean(&wok),
        max_radius,
    }
}

fn main() {
    let n = env_or("CHURN_N", 2000) as usize;
    let epochs = env_or("CHURN_EPOCHS", 20);
    let deg = env_or("CHURN_DEG", 8) as f64;
    banner(
        "E15",
        "incremental repair vs. full recompute under churn",
        "dynamic extension; LCA context (Alon et al., Reingold–Vardi)",
    );
    println!("gnp(n={n}, d̄={deg}), {epochs} epochs per point, per-epoch means\n");

    // --- Part 1: churn-rate sweep at fixed n.
    let mut t = Table::new(vec![
        "churn/epoch",
        "damage",
        "woken",
        "radius≤",
        "repair rnds",
        "recomp rnds",
        "repair msgs",
        "recomp msgs",
        "msg ratio",
    ]);
    let mut low_churn_ok = true;
    for &rate in &[0.01, 0.02, 0.05, 0.10] {
        let s = sweep(n, deg, rate, epochs, 7);
        let ratio = s.recompute_msgs / s.repair_msgs.max(1.0);
        if rate <= 0.05 {
            low_churn_ok &=
                s.repair_msgs < s.recompute_msgs && s.repair_rounds <= s.recompute_rounds;
        }
        t.row(vec![
            format!("{:.0}%", rate * 100.0),
            f2(s.damage),
            f2(s.woken),
            s.max_radius.to_string(),
            f2(s.repair_rounds),
            f2(s.recompute_rounds),
            f2(s.repair_msgs),
            f2(s.recompute_msgs),
            format!("{}x", f2(ratio)),
        ]);
    }
    t.print();

    // --- Part 2: the asymptotic claim. Fix the *absolute* damage
    // (≈16 churned edges per epoch, the LCA regime of localized
    // updates) and grow n: repair cost tracks the damage and stays
    // flat, recompute cost tracks the graph and grows, so the ratio
    // grows ~linearly in n.
    println!("\n--- scaling at ~16 churned edges/epoch: repair advantage vs. n");
    let mut t = Table::new(vec!["n", "repair msgs", "recomp msgs", "msg ratio"]);
    let mut ratios = Vec::new();
    for &ni in &[n / 4, n / 2, n] {
        let ni = ni.max(64);
        let m_est = ni as f64 * deg / 2.0;
        let s = sweep(ni, deg, (16.0 / m_est).min(1.0), epochs, 11);
        let ratio = s.recompute_msgs / s.repair_msgs.max(1.0);
        ratios.push(ratio);
        t.row(vec![
            ni.to_string(),
            f2(s.repair_msgs),
            f2(s.recompute_msgs),
            format!("{}x", f2(ratio)),
        ]);
    }
    t.print();

    println!(
        "\nExpected shape: repair wakes O(damage) nodes within a constant radius and\n\
         its message cost tracks the churn, not the graph; at a fixed number of\n\
         churned edges per epoch the recompute/repair ratio grows ~linearly in n —\n\
         the incremental engine is asymptotically cheaper, the dynamic analogue of\n\
         polylog-radius local repair."
    );
    assert!(
        low_churn_ok,
        "acceptance: at ≤5% churn, repair must beat full recompute in rounds and messages"
    );
    assert!(
        ratios.last().unwrap() >= ratios.first().unwrap(),
        "acceptance: the repair advantage must not shrink as n grows"
    );
}
