//! E15 — incremental repair vs. full recompute under churn.
//!
//! The dynamic-network engine (`dchurn`) repairs the maximal matching
//! after each churn epoch instead of recomputing it. This experiment
//! measures what that buys: per-epoch repair rounds and messages
//! against a from-scratch Israeli–Itai run on the same (current)
//! graph, across churn rates, plus the locality of repair (how far
//! from the damage any message travels) and how the advantage *grows*
//! with n — the LCA-style payoff: repair work scales with the damage,
//! recompute work with the graph.
//!
//! Knobs: `CHURN_N` (default 2000), `CHURN_EPOCHS` (default 20),
//! `CHURN_DEG` (average degree, default 8), `CHURN_FAMILY` (a
//! `workloads::Family` label — `gnp`, `ba`, `chung-lu`, `geometric`,
//! `regular`, `zipf-bipartite`; default `gnp`). Part 3 always runs
//! hub-death churn on a heavy-tailed family: the adversarial case
//! where one epoch's damage is a whole hub star, probing whether
//! damage-ball repair stays `O(ball)` when the ball itself is large.

use bench_harness::workloads::Family;
use bench_harness::{banner, env_or, f2, mean, Table};
use dchurn::{ChurnModel, DynEngine, RepairAlgo};

struct Sweep {
    repair_rounds: f64,
    repair_msgs: f64,
    recompute_rounds: f64,
    recompute_msgs: f64,
    damage: f64,
    woken: f64,
    max_radius: usize,
}

fn sweep(family: Family, n: usize, deg: f64, rate: f64, epochs: u64, seed: u64) -> Sweep {
    sweep_model(family, n, deg, ChurnModel::EdgeChurn { rate }, epochs, seed)
}

fn sweep_model(
    family: Family,
    n: usize,
    deg: f64,
    model: ChurnModel,
    epochs: u64,
    seed: u64,
) -> Sweep {
    let g = family.instantiate_with_deg(n, deg, seed).graph;
    let mut eng = DynEngine::new(
        g,
        model,
        RepairAlgo::IncrementalMaximal,
        seed.wrapping_add(100),
    );
    eng.bootstrap();
    let (mut rr, mut rm, mut cr, mut cm, mut dmg, mut wok) =
        (vec![], vec![], vec![], vec![], vec![], vec![]);
    let mut max_radius = 0usize;
    for _ in 0..epochs {
        let rep = eng.step_epoch().clone();
        assert!(rep.maximal, "every epoch must end maximal");
        rr.push(rep.rounds as f64);
        rm.push(rep.messages as f64);
        dmg.push(rep.damage as f64);
        wok.push(rep.woken as f64);
        if let Some(r) = rep.locality_radius {
            max_radius = max_radius.max(r);
        }
        let (m, stats) = eng.recompute_baseline();
        assert!(m.is_maximal(eng.graph()));
        cr.push(stats.rounds as f64);
        cm.push(stats.messages as f64);
    }
    Sweep {
        repair_rounds: mean(&rr),
        repair_msgs: mean(&rm),
        recompute_rounds: mean(&cr),
        recompute_msgs: mean(&cm),
        damage: mean(&dmg),
        woken: mean(&wok),
        max_radius,
    }
}

fn main() {
    let n = env_or("CHURN_N", 2000) as usize;
    let epochs = env_or("CHURN_EPOCHS", 20);
    let deg = env_or("CHURN_DEG", 8) as f64;
    let family = std::env::var("CHURN_FAMILY")
        .ok()
        .map(|s| Family::parse(&s).unwrap_or_else(|| panic!("unknown CHURN_FAMILY '{s}'")))
        .unwrap_or(Family::Gnp);
    banner(
        "E15",
        "incremental repair vs. full recompute under churn",
        "dynamic extension; LCA context (Alon et al., Reingold–Vardi)",
    );
    println!("family {family}, n={n}, d̄≈{deg}, {epochs} epochs per point, per-epoch means\n");

    // --- Part 1: churn-rate sweep at fixed n.
    let mut t = Table::new(vec![
        "churn/epoch",
        "damage",
        "woken",
        "radius≤",
        "repair rnds",
        "recomp rnds",
        "repair msgs",
        "recomp msgs",
        "msg ratio",
    ]);
    let mut low_churn_ok = true;
    for &rate in &[0.01, 0.02, 0.05, 0.10] {
        let s = sweep(family, n, deg, rate, epochs, 7);
        let ratio = s.recompute_msgs / s.repair_msgs.max(1.0);
        if rate <= 0.05 {
            low_churn_ok &=
                s.repair_msgs < s.recompute_msgs && s.repair_rounds <= s.recompute_rounds;
        }
        t.row(vec![
            format!("{:.0}%", rate * 100.0),
            f2(s.damage),
            f2(s.woken),
            s.max_radius.to_string(),
            f2(s.repair_rounds),
            f2(s.recompute_rounds),
            f2(s.repair_msgs),
            f2(s.recompute_msgs),
            format!("{}x", f2(ratio)),
        ]);
    }
    t.print();

    // --- Part 2: the asymptotic claim. Fix the *absolute* damage
    // (≈16 churned edges per epoch, the LCA regime of localized
    // updates) and grow n: repair cost tracks the damage and stays
    // flat, recompute cost tracks the graph and grows, so the ratio
    // grows ~linearly in n.
    println!("\n--- scaling at ~16 churned edges/epoch: repair advantage vs. n");
    let mut t = Table::new(vec!["n", "repair msgs", "recomp msgs", "msg ratio"]);
    let mut ratios = Vec::new();
    for &ni in &[n / 4, n / 2, n] {
        let ni = ni.max(64);
        let m_est = ni as f64 * deg / 2.0;
        let s = sweep(family, ni, deg, (16.0 / m_est).min(1.0), epochs, 11);
        let ratio = s.recompute_msgs / s.repair_msgs.max(1.0);
        ratios.push(ratio);
        t.row(vec![
            ni.to_string(),
            f2(s.repair_msgs),
            f2(s.recompute_msgs),
            format!("{}x", f2(ratio)),
        ]);
    }
    t.print();

    // --- Part 3: hub death on heavy-tailed families. Under uniform
    // node churn the expected damage per leaver is O(d̄); hub churn
    // instead tears out the highest-degree node each epoch, so the
    // damage *is* the hub star. The locality claim survives exactly
    // when woken stays proportional to that (large) damage and the
    // radius stays constant — repair cost O(ball), not O(n).
    let hub_family = if matches!(family, Family::Gnp) {
        Family::BarabasiAlbert
    } else {
        family
    };
    println!("\n--- hub death on {hub_family}(n={n}): damage = the hub star, per-epoch means");
    let mut t = Table::new(vec![
        "model",
        "damage",
        "woken",
        "woken/damage",
        "radius≤",
        "repair msgs",
        "recomp msgs",
    ]);
    let mut hub_local = true;
    for (label, model) in [
        (
            "node churn",
            ChurnModel::NodeChurn {
                rate: 0.002,
                degree: 8,
            },
        ),
        (
            "hub death",
            ChurnModel::HubChurn {
                rate: 0.002,
                degree: 8,
            },
        ),
    ] {
        let s = sweep_model(hub_family, n, deg, model, epochs, 13);
        let wd = s.woken / s.damage.max(1.0);
        hub_local &= s.max_radius <= 2 && wd <= 4.0;
        t.row(vec![
            label.to_string(),
            f2(s.damage),
            f2(s.woken),
            f2(wd),
            s.max_radius.to_string(),
            f2(s.repair_msgs),
            f2(s.recompute_msgs),
        ]);
    }
    t.print();
    assert!(
        hub_local,
        "acceptance: hub-death repair must stay damage-local (radius ≤ 2, woken ≲ 4·damage)"
    );

    println!(
        "\nExpected shape: repair wakes O(damage) nodes within a constant radius and\n\
         its message cost tracks the churn, not the graph — even when the damage is\n\
         a whole hub star; at a fixed number of churned edges per epoch the\n\
         recompute/repair ratio grows ~linearly in n — the incremental engine is\n\
         asymptotically cheaper, the dynamic analogue of polylog-radius local repair."
    );
    assert!(
        low_churn_ok,
        "acceptance: at ≤5% churn, repair must beat full recompute in rounds and messages"
    );
    assert!(
        ratios.last().unwrap() >= ratios.first().unwrap(),
        "acceptance: the repair advantage must not shrink as n grows"
    );
}
