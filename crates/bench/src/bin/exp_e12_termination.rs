//! E12 — ablation: oracle vs. honest termination detection.
//!
//! The paper (standard in the field) does not charge for detecting
//! "no augmenting path remains". Our runner supports an honest mode in
//! which every global check runs a measured BFS-tree convergecast +
//! broadcast (`O(D)` rounds). This experiment quantifies the overhead.

use bench_harness::{banner, f2, Table};
use dgraph::generators::random::gnp;
use dmatch::{Algorithm, Session, TerminationMode};

fn main() {
    banner(
        "E12",
        "termination detection: oracle vs honest convergecast",
        "Section 2 conventions (ablation)",
    );

    let (oracle, honest) = (TerminationMode::Oracle, TerminationMode::Honest);
    let mut t = Table::new(vec![
        "n".to_string(),
        "algorithm".to_string(),
        "checks".to_string(),
        format!("{oracle} rounds"),
        format!("{honest} rounds"),
        "overhead×".to_string(),
    ]);
    for &n in &[64usize, 256, 1024] {
        // Dense enough to be connected (honest mode needs connectivity).
        let g = gnp(n, (2.5 * (n as f64).ln()) / n as f64, 3);
        assert_eq!(g.components(), 1, "test graph must be connected");
        for alg in [
            Algorithm::General {
                k: 2,
                early_stop: Some(10),
            },
            Algorithm::Weighted {
                epsilon: 0.2,
                mwm_box: dmatch::weighted::MwmBox::SeqClass,
            },
        ] {
            let run = |termination: TerminationMode| {
                Session::on(&g)
                    .algorithm(alg)
                    .seed(5)
                    .termination(termination)
                    .build()
                    .run_to_completion()
            };
            let (o, h) = (run(TerminationMode::Oracle), run(TerminationMode::Honest));
            assert_eq!(
                o.matching.size(),
                h.matching.size(),
                "modes must agree on output"
            );
            t.row(vec![
                n.to_string(),
                o.name.clone(),
                o.oracle_checks.to_string(),
                o.stats.rounds.to_string(),
                h.stats.rounds.to_string(),
                f2(h.stats.rounds as f64 / o.stats.rounds.max(1) as f64),
            ]);
        }
    }
    t.print();
    println!(
        "\nExpected shape: honest mode multiplies rounds by a modest constant — each of\n\
         the `checks` global consultations costs one convergecast (O(D) rounds, small on\n\
         these low-diameter graphs). The computed matchings are identical in both modes."
    );
}
