//! E21 — the adversary plane: guarantee re-verification under faults.
//!
//! Theorems 3.1/3.8/3.11/4.5 assume a fault-free synchronous CONGEST
//! network. This sweep measures what actually survives when the
//! [`simnet::adversary`] plane breaks that assumption: every algorithm
//! family runs under message drop, bounded delay, crash-stop with
//! rejoin, a combined storm, and a degrade-mode CONGEST budget, and we
//! record
//!
//! * **safety** — every returned matching must still validate
//!   (mutually-agreed, adjacent, disjoint pairs). The sweep-wide
//!   violation count is written to the record as `safety_violations`
//!   and must be **0** — benchdiff gates it as a deterministic counter
//!   and the binary itself asserts it.
//! * **rounds inflation** — rounds under the plan vs. the fault-free
//!   baseline at the same seeds. Drop/delay stretch the bounded
//!   re-verification windows; this is the measured price of broken
//!   synchrony.
//! * **retained quality** — matching size (weight for the MWM
//!   families) vs. the fault-free baseline. Liveness degrades
//!   gracefully: faults may shrink the matching, never corrupt it.
//! * **fault gauges** — `dropped` / `delayed` / `crashed` /
//!   `deferred_bits` straight from `NetStats`, proving the plan was
//!   actually exercised (a zero-fault "fault run" would be vacuous).
//!
//! Everything here is deterministic in the built-in seeds — the
//! adversary draws from the same per-node seeded streams as the
//! simulator — so every number below gates at benchdiff's counter
//! threshold on any host.
//!
//! Knobs: `E21_N` (default 400), `E21_SEEDS` (default 2).
//! Writes `BENCH_e21_faults.json`.

use bench_harness::workloads::{Family, ScenarioSpec, Workload};
use bench_harness::{banner, env_or, f2, host, mean, Table};
use dgraph::generators::weights::WeightModel;
use dmatch::weighted::MwmBox;
use dmatch::Algorithm;
use simnet::{Budget, FaultPlan};
use std::fmt::Write as _;

/// One (algorithm × plan) cell, averaged over seeds.
struct Cell {
    alg: &'static str,
    plan: &'static str,
    rounds: f64,
    inflation: f64,
    retained: f64,
    messages: f64,
    dropped: f64,
    delayed: f64,
    crashed: f64,
    deferred_bits: f64,
    violations: u64,
}

/// Matching quality: weight for the weighted families (their guarantee
/// is about weight), cardinality otherwise.
fn quality(w: &Workload, alg: &Algorithm, m: &dgraph::Matching) -> f64 {
    match alg {
        Algorithm::Weighted { .. } | Algorithm::DeltaMwm { .. } => m.weight(&w.graph),
        _ => m.size() as f64,
    }
}

fn sweep_cell(
    label: &'static str,
    alg: Algorithm,
    plan_label: &'static str,
    plan: FaultPlan,
    n: usize,
    seeds: u64,
    weighted: bool,
) -> Cell {
    let model = if weighted {
        WeightModel::Exponential(2.0)
    } else {
        WeightModel::Unit
    };
    let mut cell = Cell {
        alg: label,
        plan: plan_label,
        rounds: 0.0,
        inflation: 0.0,
        retained: 0.0,
        messages: 0.0,
        dropped: 0.0,
        delayed: 0.0,
        crashed: 0.0,
        deferred_bits: 0.0,
        violations: 0,
    };
    let (mut rounds, mut infl, mut ret, mut msgs) = (vec![], vec![], vec![], vec![]);
    for seed in 0..seeds {
        let w = ScenarioSpec::new(Family::Gnp, n, model, 100 + seed).build();
        let base = w.session(alg, seed).build().run_to_completion();
        let r = w
            .session(alg, seed)
            .adversary(plan)
            .build()
            .run_to_completion();
        if r.matching.validate(&w.graph).is_err() {
            cell.violations += 1;
        }
        rounds.push(r.stats.rounds as f64);
        if base.stats.rounds > 0 {
            infl.push(r.stats.rounds as f64 / base.stats.rounds as f64);
        }
        let base_q = quality(&w, &alg, &base.matching);
        if base_q > 0.0 {
            ret.push(quality(&w, &alg, &r.matching) / base_q);
        }
        msgs.push(r.stats.messages as f64);
        cell.dropped += r.stats.dropped as f64;
        cell.delayed += r.stats.delayed as f64;
        cell.crashed += r.stats.crashed as f64;
        cell.deferred_bits += r.stats.deferred_bits as f64;
    }
    cell.rounds = mean(&rounds);
    cell.inflation = mean(&infl);
    cell.retained = mean(&ret);
    cell.messages = mean(&msgs);
    cell
}

fn main() {
    let n = env_or("E21_N", 400) as usize;
    let seeds = env_or("E21_SEEDS", 2);
    let fp = host::fingerprint();

    banner(
        "E21",
        "adversary plane: safety and degradation under faults",
        "robustness artifact; Theorems 3.1/3.8/3.11/4.5 re-verified off-model",
    );
    println!(
        "  host: {} cores available ({}/{}, {} build)",
        fp.available_parallelism, fp.os, fp.arch, fp.profile
    );
    println!("  gnp n={n}, {seeds} seed(s) per cell, oracle termination\n");

    let algorithms: [(&str, Algorithm, bool); 4] = [
        ("israeli-itai", Algorithm::IsraeliItai, false),
        ("generic-k2", Algorithm::Generic { k: 2 }, false),
        (
            "general-k2",
            Algorithm::General {
                k: 2,
                early_stop: Some(6),
            },
            false,
        ),
        (
            "mwm-local-dominant",
            Algorithm::DeltaMwm {
                mwm_box: MwmBox::LocalDominant,
            },
            true,
        ),
    ];
    let plans: [(&str, FaultPlan); 7] = [
        ("baseline", FaultPlan::NONE),
        ("drop-10", FaultPlan::drop(0.1)),
        ("drop-30", FaultPlan::drop(0.3)),
        ("delay-3", FaultPlan::NONE.with_delay(3)),
        ("crash-2", FaultPlan::NONE.with_crash(0.02, 5)),
        (
            "combined",
            FaultPlan::drop(0.1)
                .with_delay(2)
                .with_stall(0.1)
                .with_crash(0.01, 4),
        ),
        (
            "congest-degrade",
            FaultPlan::NONE.with_budget(Budget::Bits(128)),
        ),
    ];

    let mut cells: Vec<Cell> = Vec::new();
    for (label, alg, weighted) in &algorithms {
        for (plan_label, plan) in &plans {
            cells.push(sweep_cell(
                label, *alg, plan_label, *plan, n, seeds, *weighted,
            ));
        }
    }

    let mut t = Table::new(vec![
        "algorithm",
        "plan",
        "rounds",
        "inflate",
        "retained",
        "dropped",
        "delayed",
        "crashed",
        "defer bits",
    ]);
    for c in &cells {
        t.row(vec![
            c.alg.to_string(),
            c.plan.to_string(),
            f2(c.rounds),
            f2(c.inflation),
            f2(c.retained),
            f2(c.dropped),
            f2(c.delayed),
            f2(c.crashed),
            f2(c.deferred_bits),
        ]);
    }
    t.print();

    let violations: u64 = cells.iter().map(|c| c.violations).sum();
    println!(
        "\n  safety violations across {} cells: {} (acceptance: 0)",
        cells.len(),
        violations
    );

    // Machine-readable record (host fingerprint header so benchdiff can
    // tell a regression from a different machine; every cell value is a
    // deterministic counter).
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"e21_faults\",");
    let _ = writeln!(json, "  \"host\": {},", fp.to_json());
    let _ = writeln!(json, "  \"n\": {n},");
    let _ = writeln!(json, "  \"seeds\": {seeds},");
    let _ = writeln!(json, "  \"safety_violations\": {violations},");
    let _ = writeln!(json, "  \"cells\": {{");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 < cells.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    \"{}+{}\": {{ \"rounds\": {}, \"rounds_inflation\": {}, \
             \"retained_ratio\": {}, \"messages\": {}, \"dropped\": {}, \
             \"delayed\": {}, \"crashed\": {}, \"deferred_bits\": {} }}{comma}",
            c.alg,
            c.plan,
            f2(c.rounds),
            f2(c.inflation),
            f2(c.retained),
            f2(c.messages),
            f2(c.dropped),
            f2(c.delayed),
            f2(c.crashed),
            f2(c.deferred_bits),
        );
    }
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");
    std::fs::write("BENCH_e21_faults.json", &json).expect("write BENCH_e21_faults.json");
    println!("  wrote BENCH_e21_faults.json");

    assert_eq!(
        violations, 0,
        "acceptance: every matching returned under faults must validate"
    );
}
