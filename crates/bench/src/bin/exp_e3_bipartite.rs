//! E3 — Theorem 3.8: bipartite `(1-1/k)`-MCM with small messages.
//!
//! Paper claim: `O(k³ log Δ + k² log n)` rounds with `O(log Δ)`-bit
//! messages. We sweep `k` and the degree `Δ` on random regular and
//! G(n,p) bipartite graphs, reporting the achieved ratio (vs. the
//! Hopcroft–Karp optimum), measured rounds, the normalization
//! `rounds / (k³ log₂Δ + k² log₂n)` (should be roughly flat), and the
//! maximum message size (should track `log Δ`, not `n`).

use bench_harness::{banner, f2, f3, Table};
use dgraph::generators::random::{bipartite_gnp, bipartite_regular};
use dmatch::{Algorithm, Session};

fn main() {
    banner(
        "E3",
        "bipartite small-message algorithm",
        "Theorem 3.8 / Section 3.2",
    );

    let mut t = Table::new(vec![
        "graph",
        "n",
        "Δ",
        "k",
        "bound",
        "ratio",
        "rounds",
        "rounds/norm",
        "maxmsg(bits)",
    ]);
    let mut run_case = |label: &str, g: &dgraph::Graph, sides: &[bool], k: usize, seed: u64| {
        let out = Session::on(g)
            .algorithm(Algorithm::Bipartite { k })
            .sides(sides)
            .seed(seed)
            .build()
            .run_to_completion();
        let opt = dgraph::hopcroft_karp::max_matching(g, sides).size();
        let ratio = if opt == 0 {
            1.0
        } else {
            out.matching.size() as f64 / opt as f64
        };
        let delta = g.max_degree().max(2) as f64;
        let norm = (k as f64).powi(3) * delta.log2() + (k as f64).powi(2) * (g.n() as f64).log2();
        t.row(vec![
            label.to_string(),
            g.n().to_string(),
            g.max_degree().to_string(),
            k.to_string(),
            f3(1.0 - 1.0 / k as f64),
            f3(ratio),
            out.stats.rounds.to_string(),
            f2(out.stats.rounds as f64 / norm),
            out.stats.max_msg_bits.to_string(),
        ]);
    };

    for &side in &[128usize, 512, 2048] {
        for k in [2usize, 3, 5] {
            let (g, sides) = bipartite_regular(side, 3, 42 + side as u64);
            run_case("3-regular", &g, &sides, k, 7 * k as u64);
        }
    }
    for &side in &[128usize, 512] {
        for k in [2usize, 3] {
            let (g, sides) = bipartite_gnp(side, side, 8.0 / side as f64, 9 + side as u64);
            run_case("gnp(d̄=8)", &g, &sides, k, 11 * k as u64);
        }
    }
    t.print();
    println!(
        "\nExpected shape: ratio ≥ bound always; rounds/norm roughly constant (the\n\
         O(k³logΔ + k²logn) shape); max message a few dozen bits regardless of n\n\
         (tokens: 98 bits; counts: O(ℓ·logΔ) bits) — the CONGEST claim."
    );
}
