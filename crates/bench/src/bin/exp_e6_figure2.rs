//! E6 — Figure 2: the derived weights `w_M`, `wrap()`, and Lemma 4.1.
//!
//! The figure's headline: a matching `M` with `w(M) = 14`, a matching
//! `M'` with `w_M(M') = 10` in the derived graph, and the augmented
//! `M'' = M ⊕ ⋃ wrap(e)` with `w(M'') = 26 ≥ w(M) + w_M(M')` —
//! strictly greater because overlapping wraps double-count removed `M`
//! edges ("adding the individual gains is, if anything, an
//! underestimate").
//!
//! The published drawing's full topology is not recoverable from text,
//! so we reproduce its exact *numbers* on a minimal instance with
//! overlapping wraps, then validate Lemma 4.1 on 1000 random instances.

use bench_harness::banner;
use dgraph::generators::random::gnp;
use dgraph::generators::weights::{apply_weights, WeightModel};
use dgraph::{EdgeId, Graph, Matching};
use dmatch::weighted::{apply_wraps, derived_weight};

fn main() {
    banner(
        "E6",
        "derived gains and wrap augmentation",
        "Figure 2 + Lemma 4.1",
    );

    // Nodes: x=0, a=1, b=2, y=3, c=4, d=5.
    // M = {(a,b) w=2, (c,d) w=12}  →  w(M) = 14 (the figure's top panel).
    // Derived positive gains: f1=(x,a) w=6 → w_M = 4; f2=(y,b) w=8 → w_M = 6.
    // M' = {f1, f2}, w_M(M') = 10 (the middle panel).
    // wraps overlap at (a,b): M'' = {f1, f2, (c,d)} → w(M'') = 26 (bottom).
    let g = Graph::with_weights(
        6,
        vec![(1, 2), (4, 5), (0, 1), (2, 3)],
        vec![2.0, 12.0, 6.0, 8.0],
    );
    let m = Matching::from_edges(&g, &[0, 1]);
    println!(
        "M = {{(a,b) w=2, (c,d) w=12}}          w(M)  = {}",
        m.weight(&g)
    );

    let f1: EdgeId = 2;
    let f2: EdgeId = 3;
    let wm1 = derived_weight(&g, &m, f1);
    let wm2 = derived_weight(&g, &m, f2);
    println!(
        "w_M(x,a) = {wm1},  w_M(y,b) = {wm2}         w_M(M') = {}",
        wm1 + wm2
    );

    let (m2, realized) = apply_wraps(&g, &m, &[f1, f2]);
    println!(
        "M'' = M ⊕ (wrap(x,a) ∪ wrap(y,b))     w(M'') = {}  (gain realized {realized})",
        m2.weight(&g)
    );
    assert_eq!(m.weight(&g), 14.0);
    assert_eq!(wm1 + wm2, 10.0);
    assert_eq!(m2.weight(&g), 26.0);
    assert!(m2.weight(&g) >= m.weight(&g) + wm1 + wm2);
    println!(
        "figure check: 26 ≥ 14 + 10 ✓  (strict: the two wraps share the removed edge (a,b),\n\
         whose weight 2 is double-subtracted in w_M — exactly the figure's point)\n"
    );

    // Lemma 4.1 at scale.
    let mut checked = 0u64;
    for seed in 0..1000u64 {
        let g = apply_weights(&gnp(12, 0.3, seed), WeightModel::Integer(1, 9), seed + 1);
        // An id-order maximal matching (weight-greedy would leave no
        // positive gains by construction).
        let m = dgraph::greedy::greedy_maximal(&g);
        let (gp, back) = dmatch::weighted::derived_graph(&g, &m);
        if gp.m() == 0 {
            continue;
        }
        let mp = dgraph::greedy::greedy_by_weight(&gp);
        if mp.is_empty() {
            continue;
        }
        let mprime: Vec<EdgeId> = mp.edge_ids(&gp).iter().map(|&e| back[e as usize]).collect();
        let wm: f64 = mprime.iter().map(|&e| derived_weight(&g, &m, e)).sum();
        let (m2, realized) = apply_wraps(&g, &m, &mprime);
        assert!(m2.validate(&g).is_ok(), "seed {seed}: M'' not a matching");
        assert!(realized >= wm - 1e-9, "seed {seed}: Lemma 4.1 violated");
        checked += 1;
    }
    println!("Lemma 4.1 validated on {checked} random instances: M'' is always a matching and\nw(M'') ≥ w(M) + w_M(M') always holds.");
}
