//! E13 — the Section 4 Remark: `(1-ε)`-MWM via short weighted
//! augmentations (Hougardy–Vinkemeier adapted with Algorithm 2).
//!
//! The paper states the result and omits the details; we implement it
//! (`dmatch::weighted::full_approx`) and measure: achieved ratio vs.
//! the `k/(k+1)` target for growing `k`, the contrast with Algorithm
//! 5's `(½-ε)` on the same instances, and the cost in rounds and
//! message size (linear-size messages, like Theorem 3.1).

use bench_harness::{banner, f3, mean, Table};
use dgraph::generators::random::gnp;
use dgraph::generators::weights::{apply_weights, WeightModel};
use dmatch::weighted::{full_approx, MwmBox};

fn main() {
    banner(
        "E13",
        "(1-ε)-MWM extension (Remark, Section 4)",
        "Hougardy–Vinkemeier [14] + Algorithm 2",
    );

    let mut t = Table::new(vec![
        "k",
        "target k/(k+1)",
        "ratio(min/mean)",
        "alg5 ½-ε ratio(mean)",
        "iters(mean)",
        "rounds(mean)",
    ]);
    for k in [1usize, 2, 3, 4] {
        let mut ratios = Vec::new();
        let mut alg5 = Vec::new();
        let mut iters = Vec::new();
        let mut rounds = Vec::new();
        for seed in 0..5u64 {
            let g = apply_weights(
                &gnp(16, 0.3, 700 + seed),
                WeightModel::Uniform(0.5, 4.0),
                seed,
            );
            let opt = dgraph::mwm_exact::max_weight_exact(&g);
            if opt <= 0.0 {
                continue;
            }
            let r = full_approx::run(&g, k, 0.02, seed);
            ratios.push(r.matching.weight(&g) / opt);
            iters.push(r.iterations as f64);
            rounds.push(r.stats.rounds as f64);
            let a5 = dmatch::Session::on(&g)
                .algorithm(dmatch::Algorithm::Weighted {
                    epsilon: 0.1,
                    mwm_box: MwmBox::SeqClass,
                })
                .seed(seed)
                .build()
                .run_to_completion();
            alg5.push(a5.matching.weight(&g) / opt);
        }
        t.row(vec![
            k.to_string(),
            f3(k as f64 / (k as f64 + 1.0)),
            format!(
                "{}/{}",
                f3(ratios.iter().cloned().fold(f64::INFINITY, f64::min)),
                f3(mean(&ratios))
            ),
            f3(mean(&alg5)),
            f3(mean(&iters)),
            f3(mean(&rounds)),
        ]);
    }
    t.print();
    println!(
        "\nExpected shape: the min ratio clears k/(k+1)·(1-δ) at every k and approaches 1,\n\
         strictly dominating Algorithm 5's ½-ε guarantee on the same instances (though\n\
         Algorithm 5 often overshoots its bound on random inputs). Cost: O(k²) improvement\n\
         iterations, each with a radius-2(2k+1) gathering of linear-size messages."
    );
}
