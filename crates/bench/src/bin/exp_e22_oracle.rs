//! E22 — `MatchingOracle`: LCA point queries over a graph that is
//! never run end-to-end.
//!
//! The LCA claim (Alon–Rubinfeld–Vardi–Xie; Reingold–Vardi), measured:
//! answering "who is `v`'s mate?" costs work proportional to a local
//! ball around `v` whose radius tracks the *algorithm's* locality (the
//! halt horizon, `O(log n)` rounds), not the graph size. The probe
//! cells use a **bounded-growth topology** (the cycle: `|ball(r)| =
//! 2r+1`) and a **fresh oracle per query**, because both choices are
//! load-bearing for an honest measurement:
//!
//! - On an expander, `|ball(r)|` is exponential in `r`, so the
//!   exactness cone engulfs the whole component within the halt
//!   horizon — the known LCA caveat, not a bug. Bounded growth is
//!   where ball-local really means cheap.
//! - With a shared memo, one resolved ball certifies (and memoizes)
//!   many vertices, so amortized probed-per-query *falls* as the
//!   radius grows. A fresh oracle per query isolates the single-query
//!   cost the LCA model talks about; the memo contract is gated
//!   separately in `tests/oracle.rs`.
//!
//! **Part A — probe cost vs. starting radius (fixed n).** Starting
//! radii at/above the certification radius probe exactly one ball of
//! `2r+1` nodes: probed-per-query must grow from the smallest to the
//! largest radius cell (asserted unless `E22_ASSERT=0`).
//!
//! **Part B — probe cost vs. n (adaptive radius).** The default
//! radius doubles until the exactness cone certifies the queried
//! vertex, i.e. until the radius clears the local halt round. Across
//! a 4× range of n, probed-per-query may creep logarithmically but
//! must stay within `E22_FLAT_FACTOR` (×10, default 25 = 2.5×;
//! asserted). This is the headline: query cost does not scale with n.
//!
//! **Part C — Generic consistency spot-check.** A `Generic { k: 2 }`
//! oracle against the full `Session` run on a small gnp instance —
//! every queried vertex must agree bit-for-bit (always asserted; the
//! cheap twin of the `tests/oracle.rs` consistency gate).
//!
//! Knobs: `E22_N` (default 8192), `E22_QUERIES` (default 200),
//! `E22_RUNS` (default 3), `E22_FLAT_FACTOR` (×10, default 25),
//! `E22_ASSERT` (default 1).
//!
//! Writes `BENCH_e22_oracle.json` (host-fingerprinted) for the CI
//! artifact trail; `throughput_qps` is a perf metric (host-gated),
//! the probed/ball counters are deterministic and gate cross-host.

use bench_harness::{banner, env_or, f2, host, timing, Table};
use dgraph::generators::random::gnp;
use dgraph::generators::structured::cycle;
use dgraph::{Graph, NodeId};
use dmatch::{Algorithm, MatchingOracle, Session};
use simnet::SplitMix64;
use std::fmt::Write as _;
use std::hint::black_box;

/// Seeded query set: `q` distinct-ish vertices drawn with replacement.
fn sample_queries(n: usize, q: usize, tag: u64) -> Vec<NodeId> {
    let mut rng = SplitMix64::for_node(0xE22, tag);
    (0..q).map(|_| rng.below(n as u64) as NodeId).collect()
}

struct Cell {
    probed_per_query: f64,
    balls_per_query: f64,
    qps: f64,
}

/// One measurement cell: a fresh oracle per query (no memo
/// amortization — see the module docs), deterministic probe counters
/// summed across queries, throughput over `runs` passes (fastest run).
fn fresh_cell(g: &Graph, seed: u64, radius: usize, queries: &[NodeId], runs: u32) -> Cell {
    let (mut probed, mut balls) = (0u64, 0u64);
    for &v in queries {
        let mut o = MatchingOracle::on(g)
            .seed(seed)
            .initial_radius(radius)
            .build();
        black_box(o.query_node(v));
        probed += o.metrics().counter("oracle_probed_nodes");
        balls += o.metrics().counter("oracle_balls");
    }
    let q = queries.len() as f64;
    let s = timing::bench(runs, || {
        for &v in queries {
            let mut o = MatchingOracle::on(g)
                .seed(seed)
                .initial_radius(radius)
                .build();
            black_box(o.query_node(v));
        }
    });
    Cell {
        probed_per_query: probed as f64 / q,
        balls_per_query: balls as f64 / q,
        qps: q / s.min.as_secs_f64(),
    }
}

fn main() {
    banner(
        "E22",
        "MatchingOracle: LCA point queries",
        "work ∝ probed ball, flat in n (ARVX / Reingold–Vardi model)",
    );
    let n = env_or("E22_N", 8192) as usize;
    let q = env_or("E22_QUERIES", 200) as usize;
    let runs = env_or("E22_RUNS", 3) as u32;
    let flat_factor = env_or("E22_FLAT_FACTOR", 25) as f64 / 10.0;
    let do_assert = env_or("E22_ASSERT", 1) == 1;
    let seed = 22u64;
    let radii = [4usize, 16, 64];

    // Part A: radius sweep at fixed n on the cycle.
    println!("Part A: probed region vs starting radius, cycle(n={n}), {q} fresh queries");
    let g = cycle(n);
    let queries = sample_queries(n, q, 1);
    let mut t = Table::new(vec!["radius", "probed/query", "balls/query", "queries/sec"]);
    let mut radius_cells = Vec::new();
    for &r in &radii {
        let c = fresh_cell(&g, seed, r, &queries, runs);
        t.row(vec![
            format!("{r}"),
            format!("{:.1}", c.probed_per_query),
            format!("{}", f2(c.balls_per_query)),
            format!("{:.0}", c.qps),
        ]);
        radius_cells.push((r, c));
    }
    t.print();
    let (first, last) = (&radius_cells[0].1, &radius_cells[radii.len() - 1].1);
    println!(
        "  probed/query grows {}x from radius {} to {}",
        f2(last.probed_per_query / first.probed_per_query),
        radii[0],
        radii[radii.len() - 1]
    );
    if do_assert {
        assert!(
            last.probed_per_query > first.probed_per_query,
            "probed nodes/query must grow with the starting radius \
             ({} at r={} vs {} at r={})",
            last.probed_per_query,
            radii[radii.len() - 1],
            first.probed_per_query,
            radii[0]
        );
    }

    // Part B: n sweep at the adaptive default radius on the cycle.
    println!("\nPart B: probed region vs n at the adaptive default radius");
    let ns = [n / 4, n / 2, n];
    let mut t = Table::new(vec!["n", "probed/query", "balls/query", "queries/sec"]);
    let mut n_cells = Vec::new();
    for &ni in &ns {
        let gi = cycle(ni);
        let qi = sample_queries(ni, q, 2);
        let c = fresh_cell(&gi, seed, 2, &qi, runs);
        t.row(vec![
            format!("{ni}"),
            format!("{:.1}", c.probed_per_query),
            format!("{}", f2(c.balls_per_query)),
            format!("{:.0}", c.qps),
        ]);
        n_cells.push((ni, c));
    }
    t.print();
    let (small, big) = (&n_cells[0].1, &n_cells[ns.len() - 1].1);
    println!(
        "  probed/query ratio across 4x n: {}",
        f2(big.probed_per_query / small.probed_per_query)
    );
    if do_assert {
        assert!(
            big.probed_per_query <= flat_factor * small.probed_per_query,
            "probed nodes/query must stay flat in n: {} at n={} vs {} at n={} \
             (allowed factor {flat_factor})",
            big.probed_per_query,
            ns[ns.len() - 1],
            small.probed_per_query,
            ns[0]
        );
    }

    // Part C: Generic consistency spot-check (always asserted).
    let gn = 512usize;
    let gg = gnp(gn, 3.0 / gn as f64, 221);
    let alg = Algorithm::Generic { k: 2 };
    let mut session = Session::on(&gg).algorithm(alg).seed(seed).build();
    session.run_to_completion();
    let mut go = MatchingOracle::on(&gg).seed(seed).algorithm(alg).build();
    let gqueries = sample_queries(gn, 40, 3);
    for &v in &gqueries {
        assert_eq!(
            go.query_node(v),
            session.matching().mate(v),
            "Generic oracle diverged from the session at vertex {v}"
        );
    }
    println!(
        "\nPart C: generic(k=2) oracle agrees with the session on {} queries at n={gn}",
        gqueries.len()
    );

    // Machine-readable mirror.
    let mut json = String::from("{\n  \"bench\": \"e22_oracle\",\n");
    let _ = writeln!(json, "  \"host\": {},", host::fingerprint().to_json());
    let _ = writeln!(json, "  \"n\": {n},");
    let _ = writeln!(json, "  \"queries\": {q},");
    let _ = writeln!(json, "  \"runs\": {runs},");
    json.push_str("  \"radius_cells\": [\n");
    for (i, (r, c)) in radius_cells.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"radius\": {r}, \"probed_per_query\": {:.2}, \"balls_per_query\": {:.3}, \
             \"throughput_qps\": {:.0}}}",
            c.probed_per_query, c.balls_per_query, c.qps
        );
        json.push_str(if i + 1 < radius_cells.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n  \"n_cells\": [\n");
    for (i, (ni, c)) in n_cells.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"cell_n\": {ni}, \"probed_per_query\": {:.2}, \"balls_per_query\": {:.3}, \
             \"throughput_qps\": {:.0}}}",
            c.probed_per_query, c.balls_per_query, c.qps
        );
        json.push_str(if i + 1 < n_cells.len() { ",\n" } else { "\n" });
    }
    let _ = writeln!(
        json,
        "  ],\n  \"generic_spot_check\": {{\"cell_n\": {gn}, \"queries\": {}, \"consistent\": 1}}\n}}",
        gqueries.len()
    );
    std::fs::write("BENCH_e22_oracle.json", &json).expect("write BENCH_e22_oracle.json");
    println!("\n  wrote BENCH_e22_oracle.json");
}
