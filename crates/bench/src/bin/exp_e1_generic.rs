//! E1 — Theorem 3.1: the generic `(1-ε)`-MCM algorithm.
//!
//! Paper claim: Algorithm 1 with `k = ⌈1/ε⌉` phases computes a
//! `(1 - 1/(k+1))`-MCM in `O(ε⁻³ log n)` rounds with `O(|V|+|E|)`-bit
//! messages. We sweep `n` and `k` on sparse G(n,p) (expected degree 4)
//! and report the measured ratio against the blossom optimum, the
//! measured rounds (and rounds normalized by `log₂ n`), and the largest
//! message.

use bench_harness::{banner, f2, f3, Table};
use dgraph::generators::random::gnp;
use dmatch::{Algorithm, Session};

fn main() {
    banner(
        "E1",
        "generic (1-ε)-MCM — ratio, rounds, message size",
        "Theorem 3.1 / Algorithms 1+2",
    );
    let mut t = Table::new(vec![
        "n",
        "k",
        "bound 1-1/(k+1)",
        "ratio(min/mean)",
        "rounds",
        "rounds/log2(n)",
        "maxmsg(bits)",
    ]);
    for &n in &[64usize, 128, 256, 512] {
        let p = 4.0 / n as f64;
        for k in 1..=3usize {
            let mut ratios = Vec::new();
            let mut rounds = Vec::new();
            let mut maxmsg = 0u64;
            for seed in 0..3u64 {
                let g = gnp(n, p, 1000 + seed);
                let r = Session::on(&g)
                    .algorithm(Algorithm::Generic { k })
                    .seed(seed)
                    .build()
                    .run_to_completion();
                ratios.push(r.mcm_ratio(&g));
                rounds.push(r.stats.rounds as f64);
                maxmsg = maxmsg.max(r.stats.max_msg_bits);
            }
            let bound = 1.0 - 1.0 / (k as f64 + 1.0);
            let rmean = bench_harness::mean(&rounds);
            let rmin = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
            t.row(vec![
                n.to_string(),
                k.to_string(),
                f3(bound),
                format!("{}/{}", f3(rmin), f3(bench_harness::mean(&ratios))),
                f2(rmean),
                f2(rmean / (n as f64).log2()),
                maxmsg.to_string(),
            ]);
        }
    }
    t.print();
    println!(
        "\nExpected shape: every ratio ≥ its bound (deterministic guarantee); rounds/log2(n)\n\
         roughly constant per k and growing ~k³ across k; max message far above CONGEST\n\
         (the generic algorithm ships subgraph views — that is Theorem 3.1's trade-off)."
    );
}
