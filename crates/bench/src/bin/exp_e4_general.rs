//! E4 — Theorem 3.11 / Algorithm 4: general graphs by red/blue
//! sampling.
//!
//! Paper claim: `2^{2k+1}(k+1)ln k` sampling iterations suffice for a
//! `(1-1/k)`-MCM whp. We compare (a) the paper's iteration budget with
//! (b) the empirically sufficient iterations (early stop once 25
//! consecutive iterations find nothing), on non-bipartite inputs where
//! odd cycles make the bipartite machinery inapplicable directly.

use bench_harness::{banner, f3, Table};
use dgraph::generators::random::gnp;
use dgraph::generators::structured::cycle;
use dmatch::{general, Algorithm, Session};

fn main() {
    banner(
        "E4",
        "general graphs via random bipartization",
        "Theorem 3.11 / Algorithm 4",
    );

    let mut t = Table::new(vec![
        "graph",
        "n",
        "k",
        "bound",
        "ratio",
        "paper iters",
        "used iters",
        "applied",
        "rounds",
    ]);
    let cases: Vec<(&str, dgraph::Graph)> = vec![
        ("gnp(0.1)", gnp(60, 0.1, 5)),
        ("gnp(0.25)", gnp(40, 0.25, 6)),
        ("C51", cycle(51)),
        ("gnp(0.05)", gnp(120, 0.05, 7)),
    ];
    for (label, g) in &cases {
        for k in [2usize, 3] {
            let mut s = Session::on(g)
                .algorithm(Algorithm::General {
                    k,
                    early_stop: Some(25),
                })
                .seed(17 + k as u64)
                .build();
            let r = s.run_to_completion();
            let iterations = s.phase_log().len() as u64;
            let applied: u64 = s.phase_log().iter().map(|p| p.applied).sum();
            let ratio = r.mcm_ratio(g);
            t.row(vec![
                label.to_string(),
                g.n().to_string(),
                k.to_string(),
                f3(1.0 - 1.0 / k as f64),
                f3(ratio),
                general::iteration_bound(k).to_string(),
                iterations.to_string(),
                applied.to_string(),
                r.stats.rounds.to_string(),
            ]);
        }
    }
    t.print();
    println!(
        "\nExpected shape: ratio ≥ bound on every row (whp); the empirically sufficient\n\
         iteration count sits far below the paper's worst-case budget 2^(2k+1)(k+1)ln k —\n\
         the bound is driven by the 2^-2k survival probability of a whole path, which is\n\
         pessimistic on average inputs."
    );
}
