//! E19 — hybrid sparse/dense **parallel frontier**: does multi-threaded
//! stepping actually win, and does it ever lose?
//!
//! The paper's algorithms are round-synchronous, so a round is an
//! embarrassingly parallel map over the active nodes. E19 sweeps a
//! threads × n × activity ladder over the hybrid scheduler
//! (`SchedMode::Hybrid` + the per-round cost model of
//! `simnet::parallel`) and records, machine-readably:
//!
//! * `par_speedup` per (n, activity, threads) cell — sequential time
//!   over parallel time, so > 1 means parallel won;
//! * the **crossover n**: the smallest network at which any thread
//!   count beats sequential at 100% activity (null on boxes without
//!   usable cores — which is why the header carries the host
//!   fingerprint);
//! * the **seq-fallback overhead**: how much a `threads = 8` config
//!   pays over `threads = 1` on a workload the cost model (correctly)
//!   refuses to fan out — the acceptance bound is < 5%, asserted here
//!   whenever the model did keep everything sequential;
//! * the hybrid-vs-sparse scheduler ratio at full activity (the wake
//!   list's sort/push/dedup tax that the dense representation avoids);
//! * a per-phase wall-clock breakdown (the `dobs` timing-histogram
//!   registry behind `ExecCfg::timing`) of one
//!   low-activity hybrid run, showing where rounds actually go
//!   (sparse vs. dense stepping, representation conversion, merge).
//!
//! Correctness is not sampled here, it is gated: every measured
//! configuration first re-runs a short prefix against the sequential
//! sparse reference and must agree bit-for-bit.
//!
//! Knobs: `E19_NMAX` (default 131072) caps the n-ladder, `E19_THREADS`
//! (default 8) caps the thread ladder, `E19_ROUNDS` (default 30)
//! measured rounds, `E19_RUNS` (default 3) timing repeats,
//! `E19_ASSERT` (default 1) enables the fallback-overhead assertion.
//!
//! Writes `BENCH_e19_parallel.json` for the CI artifact trail.

use bench_harness::{banner, env_or, f2, host, Table};
use dgraph::generators::random::gnp;
use simnet::{Ctx, ExecCfg, Inbox, Network, NodeId, Protocol, Topology};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// The E17 activity workload: the first `threshold` ids gossip every
/// round, everyone else sleeps. Activity is exact and steady, which is
/// what a scheduler ladder needs (matching runs wind down, so their
/// activity is a moving target).
struct FracGossip {
    threshold: NodeId,
    acc: u64,
}

impl Protocol for FracGossip {
    type Msg = u64;
    fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: Inbox<'_, u64>) {
        for e in inbox.iter() {
            self.acc = self.acc.rotate_left(9) ^ *e.msg;
        }
        if ctx.id() < self.threshold {
            let token = ctx.rng().next() ^ self.acc;
            for p in 0..ctx.degree() {
                if ctx.neighbor(p) < self.threshold {
                    ctx.send(p, token);
                }
            }
        } else {
            ctx.sleep();
        }
    }
}

fn mk(topo: &Topology, threshold: NodeId, seed: u64, cfg: ExecCfg) -> Network<FracGossip> {
    let nodes = (0..topo.len())
        .map(|_| FracGossip { threshold, acc: 0 })
        .collect();
    Network::new(topo.clone(), nodes, seed).with_cfg(cfg)
}

/// Best-of-`runs` time per steady-state round.
fn time_rounds(net: &mut Network<FracGossip>, rounds: u64, runs: u32) -> Duration {
    net.run_rounds(2); // warmup: sleepers park, cost model sees a round
    let mut best = Duration::MAX;
    for _ in 0..runs {
        let t0 = Instant::now();
        net.run_rounds(rounds);
        best = best.min(t0.elapsed());
        black_box(net.nodes().len());
    }
    best / rounds as u32
}

/// Bit-identity gate: `cfg` must reproduce the sequential sparse
/// reference exactly (accumulators and message count) on a short run.
fn gate(topo: &Topology, threshold: NodeId, seed: u64, cfg: ExecCfg) {
    let gate_rounds = 6;
    let mut reference = mk(topo, threshold, seed, ExecCfg::sequential());
    let mut candidate = mk(topo, threshold, seed, cfg);
    reference.run_rounds(gate_rounds);
    candidate.run_rounds(gate_rounds);
    assert!(
        reference
            .nodes()
            .iter()
            .zip(candidate.nodes())
            .all(|(a, b)| a.acc == b.acc),
        "{cfg:?} diverged from the sequential reference"
    );
    assert_eq!(reference.stats().messages, candidate.stats().messages);
    assert_eq!(reference.stats().node_steps, candidate.stats().node_steps);
}

struct Cell {
    n: usize,
    activity: f64,
    threads: usize,
    seq_ns: u128,
    par_ns: u128,
    speedup: f64,
    peak_workers: usize,
}

fn main() {
    banner(
        "E19",
        "hybrid parallel frontier: threads x n x activity",
        "round-synchronous model; rounds are parallel maps over active nodes",
    );
    let fp = host::fingerprint();
    println!(
        "  host: {} cores available ({}/{}, {} build)\n",
        fp.available_parallelism, fp.os, fp.arch, fp.profile
    );

    let n_max = env_or("E19_NMAX", 131_072) as usize;
    let t_max = (env_or("E19_THREADS", 8) as usize).max(2);
    let rounds = env_or("E19_ROUNDS", 30);
    let runs = env_or("E19_RUNS", 3) as u32;
    let seed = 0xE19;

    let ns: Vec<usize> = [2_000usize, 8_000, 32_000, 131_072, 524_288]
        .into_iter()
        .filter(|&x| x <= n_max)
        .collect();
    let thread_ladder: Vec<usize> = [2usize, 4, 8, 16]
        .into_iter()
        .filter(|&t| t <= t_max)
        .collect();
    let activities = [1.0f64, 0.25, 0.05];

    let mut cells: Vec<Cell> = Vec::new();
    let mut peak_overall = 1usize;
    let mut t = Table::new(vec![
        "n",
        "activity",
        "threads",
        "seq/round",
        "par/round",
        "speedup",
        "workers",
    ]);
    for &n in &ns {
        let g = gnp(n, 8.0 / n as f64, 7);
        let topo = dmatch::topology_of(&g);
        for &activity in &activities {
            let threshold = (n as f64 * activity).round() as NodeId;
            let seq_ns = {
                let mut net = mk(&topo, threshold, seed, ExecCfg::sequential().hybrid());
                time_rounds(&mut net, rounds, runs).as_nanos()
            };
            for &threads in &thread_ladder {
                let cfg = ExecCfg::parallel(threads).hybrid();
                gate(&topo, threshold, seed, cfg);
                let mut net = mk(&topo, threshold, seed, cfg);
                let par_ns = time_rounds(&mut net, rounds, runs).as_nanos();
                let speedup = seq_ns as f64 / par_ns as f64;
                let peak = net.peak_workers();
                peak_overall = peak_overall.max(peak);
                t.row(vec![
                    n.to_string(),
                    format!("{activity:.2}"),
                    threads.to_string(),
                    format!("{}us", seq_ns / 1_000),
                    format!("{}us", par_ns / 1_000),
                    f2(speedup),
                    peak.to_string(),
                ]);
                cells.push(Cell {
                    n,
                    activity,
                    threads,
                    seq_ns,
                    par_ns,
                    speedup,
                    peak_workers: peak,
                });
            }
        }
    }
    t.print();

    // Crossover: smallest n where some thread count wins at 100%
    // activity by more than timer noise. `peak_workers > 1` keeps the
    // claim honest: a "win" in which the cost model never actually
    // spawned a worker is two sequential runs plus noise, not a
    // parallel victory (observed on a 1-core container: 1.4x "speedup"
    // between two identical sequential paths).
    let crossover_n = ns
        .iter()
        .find(|&&n| {
            cells
                .iter()
                .any(|c| c.n == n && c.activity == 1.0 && c.speedup > 1.05 && c.peak_workers > 1)
        })
        .copied();
    match crossover_n {
        Some(c) => println!("\n  sequential/parallel crossover: n = {c}"),
        None => println!(
            "\n  sequential/parallel crossover: none up to n={} on this host \
             ({} cores available)",
            ns.last().copied().unwrap_or(0),
            fp.available_parallelism
        ),
    }

    // Seq-fallback overhead: a tiny workload with a big thread request.
    // The cost model must keep it sequential, and asking for threads
    // must then cost (almost) nothing.
    let fallback_n = 1_000usize;
    let g = gnp(fallback_n, 8.0 / fallback_n as f64, 7);
    let topo = dmatch::topology_of(&g);
    let fb_rounds = rounds.max(50);
    let seq_ns = {
        let mut net = mk(&topo, fallback_n as NodeId, seed, ExecCfg::sequential());
        time_rounds(&mut net, fb_rounds, runs).as_nanos()
    };
    let mut fb_net = mk(&topo, fallback_n as NodeId, seed, ExecCfg::parallel(t_max));
    let fb_ns = time_rounds(&mut fb_net, fb_rounds, runs).as_nanos();
    let fb_peak = fb_net.peak_workers();
    let fallback_overhead_pct = (fb_ns as f64 / seq_ns as f64 - 1.0) * 100.0;
    println!(
        "  seq-fallback overhead (n={fallback_n}, {t_max} threads requested, \
         {fb_peak} worker(s) spawned): {}%",
        f2(fallback_overhead_pct)
    );
    if fb_peak == 1 && env_or("E19_ASSERT", 1) == 1 {
        assert!(
            fallback_overhead_pct < 5.0,
            "cost-model fallback cost {fallback_overhead_pct:.1}% over sequential \
             (acceptance bound: < 5%)"
        );
    }

    // Scheduler tax at full activity, sequentially: hybrid (which goes
    // dense) against pure sparse (which pays sort/push/dedup per round).
    let tax_n = ns.last().copied().unwrap_or(2_000);
    let g = gnp(tax_n, 8.0 / tax_n as f64, 7);
    let topo = dmatch::topology_of(&g);
    let sparse_ns = {
        let mut net = mk(&topo, tax_n as NodeId, seed, ExecCfg::sequential());
        time_rounds(&mut net, rounds, runs).as_nanos()
    };
    let hybrid_ns = {
        let mut net = mk(&topo, tax_n as NodeId, seed, ExecCfg::sequential().hybrid());
        time_rounds(&mut net, rounds, runs).as_nanos()
    };
    let hybrid_speedup_full_activity = sparse_ns as f64 / hybrid_ns as f64;
    println!(
        "  hybrid vs sparse at 100% activity (n={tax_n}, seq): {}x",
        f2(hybrid_speedup_full_activity)
    );

    // Phase breakdown of one low-activity hybrid run: round 0 schedules
    // everyone (dense), then activity drops to 5% and the judge
    // converts back to sparse — all three phases show up.
    let pb_n = ns.last().copied().unwrap_or(2_000);
    let g = gnp(pb_n, 8.0 / pb_n as f64, 7);
    let topo = dmatch::topology_of(&g);
    let mut pb_net = mk(
        &topo,
        (pb_n / 20) as NodeId,
        seed,
        ExecCfg::parallel(t_max).hybrid().timed(),
    );
    pb_net.run_rounds(rounds);
    // The timing registry holds per-round histograms; `sum()` is the
    // old scalar accumulator, the p99 column is what the scalars hid.
    let pt = pb_net.stats().timings.clone();
    let (sparse_sum, dense_sum, conv_sum, merge_sum) = (
        pt.sum(simnet::stats::timing::SPARSE_UPDATE_NS),
        pt.sum(simnet::stats::timing::DENSE_UPDATE_NS),
        pt.sum(simnet::stats::timing::CONVERSION_NS),
        pt.sum(simnet::stats::timing::MERGE_NS),
    );
    println!(
        "  phase breakdown (n={pb_n}, 5% activity, {} rounds): \
         sparse {}us, dense {}us, conversion {}us, merge {}us",
        rounds,
        sparse_sum / 1_000,
        dense_sum / 1_000,
        conv_sum / 1_000,
        merge_sum / 1_000
    );
    if let Some(h) = pt.hist(simnet::stats::timing::SPARSE_UPDATE_NS) {
        println!(
            "  sparse round distribution: p50 {}us, p99 {}us, max {}us over {} rounds",
            h.p50() / 1_000,
            h.p99() / 1_000,
            h.max() / 1_000,
            h.count()
        );
    }

    // Machine-readable mirror for the CI artifact trail.
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"e19_parallel\",\n");
    let _ = writeln!(json, "  \"host\": {},", fp.to_json());
    let _ = writeln!(json, "  \"threads_requested_max\": {t_max},");
    let _ = writeln!(json, "  \"threads_used_peak\": {peak_overall},");
    let _ = writeln!(json, "  \"rounds_per_run\": {rounds},");
    let _ = writeln!(json, "  \"runs\": {runs},");
    json.push_str("  \"ladder\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"n\": {}, \"activity\": {}, \"threads\": {}, \"seq_ns\": {}, \
             \"par_ns\": {}, \"par_speedup\": {:.2}, \"peak_workers\": {}}}",
            c.n, c.activity, c.threads, c.seq_ns, c.par_ns, c.speedup, c.peak_workers
        );
        json.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"sequential_parallel_crossover_n\": {},",
        crossover_n.map_or("null".to_string(), |c| c.to_string())
    );
    let _ = writeln!(
        json,
        "  \"seq_fallback\": {{\"n\": {fallback_n}, \"threads_requested\": {t_max}, \
         \"peak_workers\": {fb_peak}, \"overhead_pct\": {fallback_overhead_pct:.2}}},"
    );
    let _ = writeln!(
        json,
        "  \"hybrid_over_sparse_full_activity\": {hybrid_speedup_full_activity:.2},"
    );
    let _ = writeln!(
        json,
        "  \"phase_breakdown_ns\": {{\"sparse_update\": {sparse_sum}, \
         \"dense_update\": {dense_sum}, \"conversion\": {conv_sum}, \"merge\": {merge_sum}}},"
    );
    let _ = writeln!(json, "  \"timings\": {}", pt.to_json());
    json.push_str("}\n");
    std::fs::write("BENCH_e19_parallel.json", &json).expect("write BENCH_e19_parallel.json");
    println!("\n  wrote BENCH_e19_parallel.json");
}
