//! E14 — related work \[12\]: constant-round matching on trees.
//!
//! Hoepman, Kutten & Lotker (cited in the paper's history section)
//! show a `(½-ε)`-MCM on trees in *expected constant* time. We measure
//! the truncated-Israeli–Itai flavor of that regime: the approximation
//! ratio (vs. ½ of optimum, the maximal-matching target) as a function
//! of a constant iteration budget, across tree sizes — the ratio
//! depends on the budget, not on `n`.

use bench_harness::{banner, f3, mean, Table};
use dgraph::generators::random::random_tree;
use dmatch::israeli_itai;

fn main() {
    banner(
        "E14",
        "constant-round matching on trees",
        "Hoepman–Kutten–Lotker [12] (related work)",
    );

    let mut t = Table::new(vec![
        "n", "iters=1", "iters=2", "iters=3", "iters=5", "iters=8",
    ]);
    for &n in &[256usize, 1024, 4096, 16384] {
        let mut row = vec![n.to_string()];
        for &iters in &[1u64, 2, 3, 5, 8] {
            let mut ratios = Vec::new();
            for seed in 0..5u64 {
                let g = random_tree(n, 500 + seed);
                let (m, _) = israeli_itai::truncated_matching(&g, seed * 13 + iters, iters);
                let opt = dgraph::blossom::max_matching(&g).size().max(1);
                ratios.push(m.size() as f64 / opt as f64);
            }
            row.push(f3(mean(&ratios)));
        }
        t.row(row);
    }
    t.print();
    println!(
        "\nExpected shape: each column is flat as n grows 64× — the achieved fraction of\n\
         the optimum is a function of the (constant) iteration budget alone, converging\n\
         toward the maximal-matching plateau within a handful of iterations. That is the\n\
         [12] phenomenon: on trees, constant time buys a constant-factor matching."
    );
}
