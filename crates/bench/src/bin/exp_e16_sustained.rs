//! E16 — guarantee preservation under sustained churn.
//!
//! Runs the dynamic engine for many consecutive epochs and verifies
//! that the repaired matching *never* leaves its guarantee envelope:
//!
//! * incremental Israeli–Itai: valid and maximal (⇒ ½-MCM) after
//!   every epoch, with no quality drift relative to a from-scratch
//!   maximal matching on the same graph;
//! * warm-started generic `(1-1/(k+1))`-MCM: meets its bound against
//!   the exact (blossom) optimum after every epoch.
//!
//! Knobs: `CHURN16_N` (default 800), `CHURN16_EPOCHS` (default 60),
//! `CHURN16_RATE` (percent, default 5), `CHURN16_FAMILY` (a
//! `workloads::Family` label, default `gnp`) — heavy-tailed families
//! plus the hub-death model probe guarantee preservation when whole
//! hub stars fall each epoch.

use bench_harness::workloads::Family;
use bench_harness::{banner, env_or, f2, f3, mean, Table};
use dchurn::{ChurnModel, DynEngine, RepairAlgo};

fn main() {
    let n = env_or("CHURN16_N", 800) as usize;
    let epochs = env_or("CHURN16_EPOCHS", 60);
    let rate = env_or("CHURN16_RATE", 5) as f64 / 100.0;
    let family = std::env::var("CHURN16_FAMILY")
        .ok()
        .map(|s| Family::parse(&s).unwrap_or_else(|| panic!("unknown CHURN16_FAMILY '{s}'")))
        .unwrap_or(Family::Gnp);
    banner(
        "E16",
        "guarantee preservation under sustained churn",
        "dynamic extension of Theorems 3.1 / Israeli–Itai",
    );

    // --- Incremental maximal matching, across churn models.
    println!(
        "incremental Israeli–Itai: {family}(n={n}, d̄≈8), {epochs} epochs @ {:.0}% churn\n",
        rate * 100.0
    );
    let mut t = Table::new(vec![
        "churn model",
        "violations",
        "mean |M|",
        "mean |M|/recompute",
        "worst |M|/recompute",
        "mean msgs/epoch",
    ]);
    for (label, model) in [
        ("edge churn", ChurnModel::EdgeChurn { rate }),
        ("node join/leave", ChurnModel::NodeChurn { rate, degree: 8 }),
        ("hub death", ChurnModel::HubChurn { rate, degree: 8 }),
        ("rewiring", ChurnModel::Rewire { rate }),
    ] {
        let g = family.instantiate_with_deg(n, 8.0, 3).graph;
        let mut eng = DynEngine::new(g, model, RepairAlgo::IncrementalMaximal, 17);
        eng.bootstrap();
        let mut violations = 0u64;
        let (mut sizes, mut ratios, mut msgs) = (vec![], vec![], vec![]);
        let mut worst: f64 = f64::INFINITY;
        for _ in 0..epochs {
            let rep = eng.step_epoch().clone();
            let ok = rep.maximal
                && eng.matching().validate(eng.graph()).is_ok()
                && eng.check_liveness_invariant();
            if !ok {
                violations += 1;
            }
            sizes.push(rep.matching_size as f64);
            msgs.push(rep.messages as f64);
            let (fresh, _) = eng.recompute_baseline();
            if fresh.size() > 0 {
                let r = rep.matching_size as f64 / fresh.size() as f64;
                ratios.push(r);
                worst = worst.min(r);
            }
        }
        assert_eq!(
            violations, 0,
            "{label}: guarantee violated under sustained churn"
        );
        // Maximal matchings are within a factor 2 of each other; warm
        // repair must not drift below that envelope over time.
        assert!(
            worst >= 0.5,
            "{label}: repaired matching degraded to {worst}"
        );
        t.row(vec![
            label.to_string(),
            violations.to_string(),
            f2(mean(&sizes)),
            f3(mean(&ratios)),
            f3(worst),
            f2(mean(&msgs)),
        ]);
    }
    t.print();

    // --- Generic (1-1/(k+1))-MCM under churn, vs. the exact optimum.
    let gn = (n / 4).max(60);
    let gepochs = (epochs / 4).max(8);
    let k = 2;
    println!(
        "\nwarm-started generic (k={k}): {family}(n={gn}, d̄≈6), {gepochs} epochs @ {:.0}% churn\n",
        rate * 100.0
    );
    let g = family.instantiate_with_deg(gn, 6.0, 5).graph;
    let mut eng = DynEngine::new(
        g,
        ChurnModel::EdgeChurn { rate },
        RepairAlgo::IncrementalGeneric { k },
        23,
    );
    eng.bootstrap();
    let bound = 1.0 - 1.0 / (k as f64 + 1.0);
    let mut t = Table::new(vec!["epoch", "|M|", "opt", "ratio", "bound", "msgs"]);
    let mut worst: f64 = f64::INFINITY;
    for e in 0..gepochs {
        let rep = eng.step_epoch().clone();
        let opt = dgraph::blossom::max_matching(eng.graph()).size();
        let ratio = if opt == 0 {
            1.0
        } else {
            rep.matching_size as f64 / opt as f64
        };
        worst = worst.min(ratio);
        assert!(
            ratio >= bound - 1e-9,
            "epoch {e}: ratio {ratio} below the deterministic bound {bound}"
        );
        if e < 5 || e == gepochs - 1 {
            t.row(vec![
                e.to_string(),
                rep.matching_size.to_string(),
                opt.to_string(),
                f3(ratio),
                f3(bound),
                rep.messages.to_string(),
            ]);
        }
    }
    t.print();
    println!(
        "\nEvery epoch stayed inside its guarantee envelope (worst generic ratio {}).",
        f3(worst)
    );
}
