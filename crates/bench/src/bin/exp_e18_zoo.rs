//! E18 — the topology zoo: every algorithm family across
//! heavy-tailed, geometric, regular, and skewed-bipartite workloads.
//!
//! The paper's guarantees are *graph-universal* — (½)-MCM from
//! maximality, `(1-ε)`-MCM via k-augmenting phases, `(½-ε)`-MWM —
//! yet E0–E17 exercised only Erdős–Rényi-style families. This sweep
//! runs the whole algorithm matrix over the zoo of
//! `bench_harness::workloads` and reports, per (family × algorithm):
//!
//! * **ratio** — cardinality vs. the exact blossom optimum
//!   (unweighted algorithms), or weight vs. the certified per-vertex
//!   upper bound (weighted algorithms; understates, never
//!   overstates);
//! * **rounds / messages / bits** — the paper's cost metrics;
//! * **active %** — mean stepped-nodes fraction per round from the
//!   sparse activity scheduler (`node_steps / (rounds·n)`), the
//!   LCA-style "work ∝ probed region" gauge: heavy-tailed families
//!   quiesce their periphery early, so this drops well below 100%.
//!
//! The bipartite algorithm (Theorem 3.8) needs a bipartition, so it
//! runs where the family carries one (`zipf-bipartite`); the
//! conformance suite additionally runs it on every family's double
//! cover.
//!
//! Knobs: `E18_N` (default 800), `E18_SEEDS` (default 2).
//! Writes `BENCH_e18_zoo.json` (machine-readable mirror) for the CI
//! artifact trail.

use bench_harness::workloads::{Family, ScenarioSpec, Workload};
use bench_harness::{banner, env_or, f3, mean, Table};
use dgraph::generators::weights::WeightModel;
use dmatch::runner::mwm_upper_bound;
use dmatch::weighted::MwmBox;
use dmatch::Algorithm;
use std::fmt::Write as _;

/// One (family × algorithm) cell, averaged over seeds.
struct Cell {
    family: &'static str,
    alg: String,
    ratio: f64,
    rounds: f64,
    messages: f64,
    bits: f64,
    active_pct: f64,
}

/// Quality metric: exact blossom ratio for cardinality algorithms,
/// certified-upper-bound ratio for weight algorithms.
fn quality(w: &Workload, alg: &Algorithm, r: &dmatch::RunReport) -> f64 {
    match alg {
        Algorithm::Weighted { .. } | Algorithm::DeltaMwm { .. } => {
            let ub = mwm_upper_bound(&w.graph);
            if ub <= 0.0 {
                1.0
            } else {
                r.matching.weight(&w.graph) / ub
            }
        }
        _ => r.mcm_ratio(&w.graph),
    }
}

fn sweep_cell(family: Family, alg: Algorithm, n: usize, seeds: u64, weighted: bool) -> Cell {
    let model = if weighted {
        WeightModel::Exponential(2.0)
    } else {
        WeightModel::Unit
    };
    let (mut ratios, mut rounds, mut msgs, mut bits, mut active) =
        (vec![], vec![], vec![], vec![], vec![]);
    for seed in 0..seeds {
        let w = ScenarioSpec::new(family, n, model, 100 + seed).build();
        let r = w.session(alg, seed).build().run_to_completion();
        assert!(
            r.matching.validate(&w.graph).is_ok(),
            "{family}/{alg}: invalid matching"
        );
        ratios.push(quality(&w, &alg, &r));
        rounds.push(r.stats.rounds as f64);
        msgs.push(r.stats.messages as f64);
        bits.push(r.stats.bits as f64);
        if r.stats.rounds > 0 {
            active.push(r.stats.node_steps as f64 / (r.stats.rounds as f64 * n as f64));
        }
    }
    Cell {
        family: family.label(),
        alg: alg.name(),
        ratio: mean(&ratios),
        rounds: mean(&rounds),
        messages: mean(&msgs),
        bits: mean(&bits),
        active_pct: 100.0 * mean(&active),
    }
}

fn main() {
    let n = env_or("E18_N", 800) as usize;
    let seeds = env_or("E18_SEEDS", 2);
    banner(
        "E18",
        "topology zoo: algorithm × family conformance sweep",
        "graph-universality of Theorems 3.1/3.8/3.11/4.5; LCA stress families",
    );
    println!("n={n}, {seeds} seed(s) per cell, sparse scheduler, oracle termination\n");

    let unweighted: Vec<Algorithm> = vec![
        Algorithm::IsraeliItai,
        Algorithm::Generic { k: 2 },
        Algorithm::General {
            k: 2,
            early_stop: Some(8),
        },
    ];
    let weighted: Vec<Algorithm> = vec![
        Algorithm::Weighted {
            epsilon: 0.25,
            mwm_box: MwmBox::SeqClass,
        },
        Algorithm::DeltaMwm {
            mwm_box: MwmBox::LocalDominant,
        },
    ];

    let mut cells: Vec<Cell> = Vec::new();
    for family in Family::ALL {
        for alg in &unweighted {
            cells.push(sweep_cell(family, *alg, n, seeds, false));
        }
        if family.is_bipartite() {
            cells.push(sweep_cell(
                family,
                Algorithm::Bipartite { k: 2 },
                n,
                seeds,
                false,
            ));
        }
        for alg in &weighted {
            cells.push(sweep_cell(family, *alg, n, seeds, true));
        }
    }

    let mut t = Table::new(vec![
        "family",
        "algorithm",
        "ratio",
        "rounds",
        "messages",
        "bits",
        "active %",
    ]);
    for c in &cells {
        t.row(vec![
            c.family.to_string(),
            c.alg.clone(),
            f3(c.ratio),
            format!("{:.0}", c.rounds),
            format!("{:.0}", c.messages),
            format!("{:.0}", c.bits),
            format!("{:.1}", c.active_pct),
        ]);
    }
    t.print();

    // The graph-universal floors (the conformance suite asserts the
    // exact per-algorithm bounds; here we sanity-gate the sweep).
    for c in &cells {
        assert!(
            c.ratio >= 0.25,
            "{}/{}: ratio {} collapsed",
            c.family,
            c.alg,
            c.ratio
        );
    }
    println!(
        "\n  all cells above the sanity floor; exact bounds are asserted by tests/conformance.rs"
    );

    // Machine-readable mirror for the CI artifact trail.
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"e18_zoo\",\n");
    let _ = writeln!(
        json,
        "  \"host\": {},",
        bench_harness::host::fingerprint().to_json()
    );
    // Conformance cells run sequentially (quality, not wall-clock).
    json.push_str("  \"threads_requested\": 1,\n  \"threads_used_peak\": 1,\n");
    let _ = writeln!(json, "  \"n\": {n},");
    let _ = writeln!(json, "  \"seeds\": {seeds},");
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"family\": \"{}\", \"algorithm\": \"{}\", \"ratio\": {:.4}, \"rounds\": {:.1}, \"messages\": {:.0}, \"bits\": {:.0}, \"active_pct\": {:.2}}}",
            c.family, c.alg, c.ratio, c.rounds, c.messages, c.bits, c.active_pct
        );
        json.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_e18_zoo.json", &json).expect("write BENCH_e18_zoo.json");
    println!("  wrote BENCH_e18_zoo.json");
}
