//! E8 — the introduction's application: input-queued switch scheduling.
//!
//! The paper motivates matching quality with switch throughput and
//! cites PIM \[3\] and iSLIP \[23\] as the practical lineage of
//! Israeli–Itai. We sweep offered load under uniform, diagonal, and
//! bursty traffic and report normalized throughput and mean delay per
//! scheduler, including the paper's algorithms as schedulers.

use bench_harness::{banner, f2, f3, Table};
use switchsim::{SchedulerKind, SimConfig, Simulator, TrafficModel};

fn main() {
    banner(
        "E8",
        "switch scheduling: throughput & delay under load",
        "Introduction ¶2 + [3], [23]",
    );

    let ports = 8usize;
    let cycles = 3000u64;
    let schedulers = [
        SchedulerKind::Pim { iterations: 1 },
        SchedulerKind::Islip { iterations: 1 },
        SchedulerKind::Islip { iterations: 3 },
        SchedulerKind::DistMaximal,
        SchedulerKind::Ilqf { iterations: 2 },
        SchedulerKind::LpsBipartite { k: 2 },
        SchedulerKind::MaxCardinality,
        SchedulerKind::MaxWeight,
    ];
    let mut any_inadmissible = false;
    for traffic in [
        TrafficModel::Uniform { load: 0.0 },
        TrafficModel::Diagonal { load: 0.0 },
        TrafficModel::Bursty {
            load: 0.0,
            mean_burst: 16.0,
        },
        // frac 0.1 on 8 ports: output 0 sees 1.7ρ — admissible at
        // ρ=0.5, oversubscribed beyond ρ≈0.59, so the sweep shows both
        // regimes.
        TrafficModel::Hotspot {
            load: 0.0,
            frac: 0.1,
        },
    ] {
        println!(
            "\n--- traffic: {} ({} ports, {} cycles) — delivery ratio | mean delay",
            traffic.label(),
            ports,
            cycles
        );
        let mut t = Table::new(vec!["scheduler", "ρ=0.5", "ρ=0.7", "ρ=0.85", "ρ=0.95"]);
        for kind in schedulers {
            let mut cells = Vec::new();
            for &load in &[0.5, 0.7, 0.85, 0.95] {
                let model = match traffic {
                    TrafficModel::Uniform { .. } => TrafficModel::Uniform { load },
                    TrafficModel::Diagonal { .. } => TrafficModel::Diagonal { load },
                    TrafficModel::Bursty { mean_burst, .. } => {
                        TrafficModel::Bursty { load, mean_burst }
                    }
                    TrafficModel::Hotspot { frac, .. } => TrafficModel::Hotspot { load, frac },
                };
                let cfg = SimConfig {
                    ports,
                    cycles,
                    warmup: cycles / 5,
                    traffic: model,
                    seed: 11,
                };
                let r = Simulator::new(cfg, kind).run();
                // Degraded throughput under an oversubscribed pattern
                // is the *pattern's* fault, not the scheduler's: flag
                // it instead of letting the row read as a regression.
                let flag = if model.is_admissible(ports) {
                    ""
                } else {
                    any_inadmissible = true;
                    "†"
                };
                cells.push(format!(
                    "{}{flag}|{}",
                    f3(r.delivery_ratio()),
                    f2(r.mean_delay)
                ));
            }
            let name = {
                let cfg = SimConfig {
                    ports,
                    cycles: 1,
                    warmup: 0,
                    traffic: TrafficModel::Uniform { load: 0.0 },
                    seed: 0,
                };
                Simulator::new(cfg, kind).run().scheduler
            };
            let mut row = vec![name];
            row.extend(cells);
            t.row(row);
        }
        t.print();
    }
    if any_inadmissible {
        println!(
            "\n† inadmissible (TrafficModel::is_admissible): the pattern oversubscribes an\n\
             output, so no scheduler — not even the max-weight oracle — can deliver 1.0."
        );
    }
    println!(
        "\nExpected shape: all schedulers deliver ≈1.0 at ρ=0.5; under diagonal/bursty\n\
         traffic at high load, PIM(1) degrades first, iSLIP(1) holds on uniform but slips\n\
         on diagonal, and the larger matchings (LPS-MCM, max-cardinality, max-weight)\n\
         sustain the highest loads — the throughput motivation of the paper's intro."
    );
}
