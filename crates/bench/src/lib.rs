//! Shared support for the experiment binaries (`src/bin/exp_*.rs`).
//!
//! Each binary regenerates one experiment of `EXPERIMENTS.md`, printing
//! an aligned table of *paper expectation vs. measured value*. The
//! binaries are deterministic in their built-in seeds. Graph setup
//! goes through the [`workloads`] registry (family × size × weight
//! model × seed) rather than per-binary ad-hoc generator calls.

pub mod workloads;

/// Minimal aligned-table printer (no external dependencies).
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Render to stdout.
    pub fn print(&self) {
        let ncols = self.headers.len();
        let mut width = vec![0usize; ncols];
        for (i, h) in self.headers.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                s.push_str(&format!("{:>w$}  ", c, w = width[i]));
            }
            println!("{}", s.trim_end());
        };
        line(&self.headers);
        println!("{}", "-".repeat(width.iter().sum::<usize>() + 2 * ncols));
        for row in &self.rows {
            line(row);
        }
    }
}

/// Format a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Print an experiment banner.
pub fn banner(id: &str, title: &str, paper_ref: &str) {
    println!("\n=== {id}: {title}");
    println!("    paper artifact: {paper_ref}\n");
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Integer knob from the environment (experiment binaries and benches
/// scale themselves down in CI through these).
pub fn env_or(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Host execution-environment fingerprint for BENCH_*.json headers.
///
/// Every benchmark JSON embeds this next to the *requested* thread
/// counts, so a `par_speedup ≈ 1.0` row or a `null` crossover is
/// interpretable at a glance: on a 1-core CI container the cost model
/// is *supposed* to keep everything sequential, and without the
/// `available_parallelism` field that outcome is indistinguishable
/// from a parallel path that failed to win on real cores.
pub mod host {
    /// What the machine offers (probed once per process).
    #[derive(Debug, Clone)]
    pub struct Fingerprint {
        /// `std::thread::available_parallelism()` — cgroup/affinity
        /// aware, so a 64-core box capped to 1 CPU reports 1.
        pub available_parallelism: usize,
        /// Target triple components baked in at compile time.
        pub os: &'static str,
        pub arch: &'static str,
        /// Optimization profile the binary was built under ("release"
        /// or "debug") — a debug-build bench number is not a number.
        pub profile: &'static str,
    }

    /// Probe the host.
    pub fn fingerprint() -> Fingerprint {
        Fingerprint {
            available_parallelism: std::thread::available_parallelism()
                .map_or(1, std::num::NonZeroUsize::get),
            os: std::env::consts::OS,
            arch: std::env::consts::ARCH,
            profile: if cfg!(debug_assertions) {
                "debug"
            } else {
                "release"
            },
        }
    }

    impl Fingerprint {
        /// Render as a JSON object fragment, for the hand-rolled
        /// BENCH_*.json writers:
        /// `"host": {"available_parallelism": 8, ...}`.
        pub fn to_json(&self) -> String {
            format!(
                "{{\"available_parallelism\": {}, \"os\": \"{}\", \"arch\": \"{}\", \"profile\": \"{}\"}}",
                self.available_parallelism, self.os, self.arch, self.profile
            )
        }
    }
}

/// Minimal wall-clock micro-benchmark support for the `benches/`
/// targets (the workspace is dependency-free, so the benches are plain
/// `harness = false` binaries rather than criterion suites).
pub mod timing {
    use std::time::{Duration, Instant};

    /// Timing summary over the measured samples.
    #[derive(Debug, Clone, Copy)]
    pub struct Sample {
        /// Fastest observed run.
        pub min: Duration,
        /// Arithmetic mean of the runs.
        pub mean: Duration,
        /// Number of measured runs.
        pub runs: u32,
    }

    impl Sample {
        /// `"min 12.3ms / mean 13.1ms (10 runs)"`.
        pub fn display(&self) -> String {
            format!(
                "min {:>9.3?} / mean {:>9.3?} ({} runs)",
                self.min, self.mean, self.runs
            )
        }
    }

    /// Run `f` once for warmup, then `runs` measured times.
    pub fn bench<F: FnMut()>(runs: u32, mut f: F) -> Sample {
        assert!(runs > 0);
        f(); // warmup
        let mut min = Duration::MAX;
        let mut total = Duration::ZERO;
        for _ in 0..runs {
            let t = Instant::now();
            f();
            let d = t.elapsed();
            min = min.min(d);
            total += d;
        }
        Sample {
            min,
            mean: total / runs,
            runs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new(vec!["a", "bb"]);
        t.row(vec!["1", "2"]);
        t.print(); // smoke: must not panic
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        Table::new(vec!["a"]).row(vec!["1", "2"]);
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn host_fingerprint_is_sane() {
        let fp = host::fingerprint();
        assert!(fp.available_parallelism >= 1);
        let json = fp.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"available_parallelism\""));
        assert!(json.contains("\"profile\""));
    }
}
