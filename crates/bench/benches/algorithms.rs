//! Criterion wall-clock benchmarks.
//!
//! One group per experiment family: the distributed algorithms (their
//! full simulated executions), the exact reference solvers, and the
//! switch schedulers. These measure *simulator* wall-clock — the
//! theorem-level metrics (rounds, bits) come from the `exp_*` binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dgraph::generators::random::{bipartite_gnp, bipartite_regular, gnp};
use dgraph::generators::weights::{apply_weights, WeightModel};
use dmatch::weighted::MwmBox;
use std::hint::black_box;

fn bench_distributed(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributed");
    group.sample_size(10);
    for &n in &[256usize, 1024] {
        let g = gnp(n, 6.0 / n as f64, 1);
        group.bench_with_input(BenchmarkId::new("israeli_itai", n), &g, |b, g| {
            b.iter(|| dmatch::israeli_itai::maximal_matching(black_box(g), 7))
        });
        let (bg, sides) = bipartite_regular(n / 2, 3, 2);
        group.bench_with_input(BenchmarkId::new("bipartite_k3", n), &bg, |b, bg| {
            b.iter(|| dmatch::bipartite::run(black_box(bg), &sides, 3, 5))
        });
    }
    let g = gnp(96, 0.06, 3);
    group.bench_function("generic_k2_n96", |b| {
        b.iter(|| dmatch::generic::run(black_box(&g), 2, 9))
    });
    group.bench_function("general_k2_n96", |b| {
        b.iter(|| {
            dmatch::general::run_with(
                black_box(&g),
                2,
                9,
                dmatch::general::GeneralOpts { iterations: None, early_stop_after: Some(8) },
            )
        })
    });
    let wg = apply_weights(&gnp(256, 0.03, 4), WeightModel::Exponential(1.0), 5);
    group.bench_function("weighted_eps02_n256", |b| {
        b.iter(|| dmatch::weighted::run(black_box(&wg), 0.2, MwmBox::SeqClass, 3))
    });
    group.finish();
}

fn bench_exact_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact");
    group.sample_size(10);
    for &n in &[256usize, 1024] {
        let (bg, sides) = bipartite_gnp(n / 2, n / 2, 8.0 / (n / 2) as f64, 6);
        group.bench_with_input(BenchmarkId::new("hopcroft_karp", n), &bg, |b, bg| {
            b.iter(|| dgraph::hopcroft_karp::max_matching(black_box(bg), &sides))
        });
        let g = gnp(n, 8.0 / n as f64, 7);
        group.bench_with_input(BenchmarkId::new("blossom", n), &g, |b, g| {
            b.iter(|| dgraph::blossom::max_matching(black_box(g)))
        });
    }
    let (bg, sides) = bipartite_gnp(64, 64, 0.2, 8);
    let wg = apply_weights(&bg, WeightModel::Uniform(0.1, 5.0), 9);
    group.bench_function("hungarian_128", |b| {
        b.iter(|| dgraph::hungarian::max_weight_matching(black_box(&wg), &sides))
    });
    let small = apply_weights(&gnp(18, 0.4, 10), WeightModel::Integer(1, 9), 11);
    group.bench_function("mwm_exact_dp_18", |b| {
        b.iter(|| dgraph::mwm_exact::max_weight_exact(black_box(&small)))
    });
    group.finish();
}

fn bench_parallel_stepping(c: &mut Criterion) {
    // Ablation: sequential vs parallel node stepping in the simulator.
    use simnet::{Network, Protocol};
    struct Spin(u64);
    impl Protocol for Spin {
        type Msg = u64;
        fn on_round(&mut self, ctx: &mut simnet::Ctx<'_, u64>, inbox: &[simnet::Envelope<u64>]) {
            for e in inbox {
                self.0 = self.0.wrapping_add(e.msg);
            }
            // Busy local computation plus gossip.
            for _ in 0..200 {
                self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            }
            if ctx.round() < 10 {
                ctx.send_all(self.0);
            } else {
                ctx.halt();
            }
        }
    }
    let n = 2048usize;
    let g = gnp(n, 8.0 / n as f64, 12);
    let topo = dmatch::topology_of(&g);
    let mut group = c.benchmark_group("simnet_stepping");
    group.sample_size(10);
    for &threads in &[1usize, 4] {
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &threads| {
            b.iter(|| {
                let nodes = (0..n as u64).map(Spin).collect();
                let mut net = Network::new(topo.clone(), nodes, 3).with_threads(threads);
                net.run_until_halt(64);
                black_box(net.stats().messages)
            })
        });
    }
    group.finish();
}

fn bench_switch(c: &mut Criterion) {
    use switchsim::{SchedulerKind, SimConfig, Simulator, TrafficModel};
    let mut group = c.benchmark_group("switch");
    group.sample_size(10);
    for kind in [
        SchedulerKind::Pim { iterations: 1 },
        SchedulerKind::Islip { iterations: 1 },
        SchedulerKind::MaxWeight,
        SchedulerKind::LpsBipartite { k: 2 },
    ] {
        let cfg = SimConfig {
            ports: 8,
            cycles: 200,
            warmup: 40,
            traffic: TrafficModel::Uniform { load: 0.8 },
            seed: 5,
        };
        let name = Simulator::new(
            SimConfig { cycles: 1, ..cfg },
            kind,
        )
        .run()
        .scheduler;
        group.bench_function(format!("200cycles_{name}"), |b| {
            b.iter(|| Simulator::new(black_box(cfg), kind).run())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_distributed,
    bench_exact_solvers,
    bench_parallel_stepping,
    bench_switch
);
criterion_main!(benches);
