//! Wall-clock benchmarks (plain `harness = false` binary; the
//! workspace carries no external bench framework).
//!
//! One group per experiment family: the distributed algorithms (their
//! full simulated executions), the exact reference solvers, and the
//! switch schedulers. These measure *simulator* wall-clock — the
//! theorem-level metrics (rounds, bits) come from the `exp_*` binaries.

use bench_harness::timing::bench;
use dgraph::generators::random::{bipartite_gnp, bipartite_regular, gnp};
use dgraph::generators::weights::{apply_weights, WeightModel};
use dmatch::weighted::MwmBox;
use dmatch::{Algorithm, Session};
use std::hint::black_box;

fn report(group: &str, name: &str, runs: u32, f: impl FnMut()) {
    let s = bench(runs, f);
    println!("{group:<16} {name:<24} {}", s.display());
}

fn bench_distributed() {
    for &n in &[256usize, 1024] {
        let g = gnp(n, 6.0 / n as f64, 1);
        report("distributed", &format!("israeli_itai/{n}"), 10, || {
            black_box(
                Session::on(black_box(&g))
                    .algorithm(Algorithm::IsraeliItai)
                    .seed(7)
                    .build()
                    .run_to_completion(),
            );
        });
        let (bg, sides) = bipartite_regular(n / 2, 3, 2);
        report("distributed", &format!("bipartite_k3/{n}"), 10, || {
            black_box(
                Session::on(black_box(&bg))
                    .algorithm(Algorithm::Bipartite { k: 3 })
                    .sides(&sides)
                    .seed(5)
                    .build()
                    .run_to_completion(),
            );
        });
    }
    let g = gnp(96, 0.06, 3);
    report("distributed", "generic_k2_n96", 10, || {
        black_box(
            Session::on(black_box(&g))
                .algorithm(Algorithm::Generic { k: 2 })
                .seed(9)
                .build()
                .run_to_completion(),
        );
    });
    report("distributed", "general_k2_n96", 10, || {
        black_box(
            Session::on(black_box(&g))
                .algorithm(Algorithm::General {
                    k: 2,
                    early_stop: Some(8),
                })
                .seed(9)
                .build()
                .run_to_completion(),
        );
    });
    let wg = apply_weights(&gnp(256, 0.03, 4), WeightModel::Exponential(1.0), 5);
    report("distributed", "weighted_eps02_n256", 10, || {
        black_box(
            Session::on(black_box(&wg))
                .algorithm(Algorithm::Weighted {
                    epsilon: 0.2,
                    mwm_box: MwmBox::SeqClass,
                })
                .seed(3)
                .build()
                .run_to_completion(),
        );
    });
}

fn bench_exact_solvers() {
    for &n in &[256usize, 1024] {
        let (bg, sides) = bipartite_gnp(n / 2, n / 2, 8.0 / (n / 2) as f64, 6);
        report("exact", &format!("hopcroft_karp/{n}"), 10, || {
            black_box(dgraph::hopcroft_karp::max_matching(black_box(&bg), &sides));
        });
        let g = gnp(n, 8.0 / n as f64, 7);
        report("exact", &format!("blossom/{n}"), 10, || {
            black_box(dgraph::blossom::max_matching(black_box(&g)));
        });
    }
    let (bg, sides) = bipartite_gnp(64, 64, 0.2, 8);
    let wg = apply_weights(&bg, WeightModel::Uniform(0.1, 5.0), 9);
    report("exact", "hungarian_128", 10, || {
        black_box(dgraph::hungarian::max_weight_matching(
            black_box(&wg),
            &sides,
        ));
    });
    let small = apply_weights(&gnp(18, 0.4, 10), WeightModel::Integer(1, 9), 11);
    report("exact", "mwm_exact_dp_18", 10, || {
        black_box(dgraph::mwm_exact::max_weight_exact(black_box(&small)));
    });
}

fn bench_parallel_stepping() {
    // Ablation: sequential vs parallel node stepping in the simulator.
    use simnet::{Inbox, Network, Protocol};
    struct Spin(u64);
    impl Protocol for Spin {
        type Msg = u64;
        fn on_round(&mut self, ctx: &mut simnet::Ctx<'_, u64>, inbox: Inbox<'_, u64>) {
            for e in inbox.iter() {
                self.0 = self.0.wrapping_add(*e.msg);
            }
            // Busy local computation plus gossip.
            for _ in 0..200 {
                self.0 = self
                    .0
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
            }
            if ctx.round() < 10 {
                ctx.send_all(self.0);
            } else {
                ctx.halt();
            }
        }
    }
    let n = 2048usize;
    let g = gnp(n, 8.0 / n as f64, 12);
    let topo = dmatch::topology_of(&g);
    for &threads in &[1usize, 4] {
        report("simnet_stepping", &format!("threads/{threads}"), 10, || {
            let nodes = (0..n as u64).map(Spin).collect();
            let mut net = Network::new(topo.clone(), nodes, 3).with_threads(threads);
            net.run_until_halt(64);
            black_box(net.stats().messages);
        });
    }
}

fn bench_switch() {
    use switchsim::{SchedulerKind, SimConfig, Simulator, TrafficModel};
    for kind in [
        SchedulerKind::Pim { iterations: 1 },
        SchedulerKind::Islip { iterations: 1 },
        SchedulerKind::MaxWeight,
        SchedulerKind::LpsBipartite { k: 2 },
    ] {
        let cfg = SimConfig {
            ports: 8,
            cycles: 200,
            warmup: 40,
            traffic: TrafficModel::Uniform { load: 0.8 },
            seed: 5,
        };
        let name = Simulator::new(SimConfig { cycles: 1, ..cfg }, kind)
            .run()
            .scheduler;
        report("switch", &format!("200cycles_{name}"), 10, || {
            black_box(Simulator::new(black_box(cfg), kind).run());
        });
    }
}

fn main() {
    println!("{:<16} {:<24} timing", "group", "benchmark");
    println!("{}", "-".repeat(80));
    bench_distributed();
    bench_exact_solvers();
    bench_parallel_stepping();
    bench_switch();
}
