//! `bench_step_plane` — old vs. new message plane on `gnp(50k, d̄=8)`.
//!
//! The old plane (reimplemented here verbatim as `LegacyNet`) collected
//! every sent message into a fresh global `Vec<(from, port, msg)>`,
//! pushed envelopes one-by-one into per-node inbox `Vec`s, and sorted
//! **every inbox in the network every round**. The new plane
//! (`simnet::mailbox`) writes sends into a preallocated double-buffered
//! slot slab which receivers read in place: no sort, no copy, no
//! steady-state allocation.
//!
//! Both planes drive the identical gossip protocol from identical
//! per-node RNG streams, so their final states must agree bit-for-bit
//! (asserted). A counting global allocator measures allocations per
//! round in the steady state; the run reports wall-clock and allocation
//! ratios, and asserts the ≥2× allocation reduction the plane was built
//! to deliver.
//!
//! The run also sweeps an n-ladder to locate the **sequential/parallel
//! crossover**: the smallest network at which 8-thread stepping beats
//! sequential. Below the crossover the executor's per-round cost model
//! (measured ns/node EWMAs plus a spawn-cost floor; see
//! `simnet::parallel`) keeps parallel runs on the sequential path, so
//! "8 threads" is never slower than sequential — the earlier capture
//! of this file measured a ~100x parallel *slowdown* at n=10 because
//! every round paid thread-spawn latency for five node steps.
//!
//! Knobs: `STEP_PLANE_N` (default 50000), `STEP_PLANE_ROUNDS`
//! (default 10), `STEP_PLANE_RUNS` (default 5), `STEP_PLANE_THREADS`
//! (default 8).
//!
//! Besides the human-readable table, the run writes
//! `BENCH_step_plane.json` (machine-readable: time/round in ns and
//! allocs/round per plane, plus the crossover ladder) so the perf
//! trajectory is trackable across PRs; CI uploads it as an artifact.

use bench_harness::{env_or, f2, Table};
use dgraph::generators::random::gnp;
use simnet::{Ctx, Inbox, Network, NodeId, Port, Protocol, SplitMix64, Topology};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Global allocator that counts allocation events (alloc/realloc), the
/// quantity the new plane is engineered to hold at zero per round.
struct CountingAlloc;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

// SAFETY: a pure pass-through wrapper around `System` — every method
// delegates with the caller's own layout/pointer arguments unchanged,
// so `System`'s contract (the layout fits the allocation, the pointer
// came from this allocator) is upheld exactly when the caller upholds
// it. The only addition is a relaxed atomic increment, which cannot
// allocate or unwind.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same `layout` the caller passed; delegation only.
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` are the caller's, and every allocation
        // this wrapper hands out comes from `System`, so the pair is
        // valid for `System.dealloc` exactly when the caller's call to
        // us was valid.
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: as in `dealloc`: unmodified caller arguments, and the
        // allocation being resized originated from `System`.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same `layout` the caller passed; delegation only.
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOC_EVENTS.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------
// The workload: a gossip protocol identical on both planes.
// ---------------------------------------------------------------------

#[inline]
fn fold(acc: u64, msg: u64, port: usize) -> u64 {
    acc.rotate_left(9) ^ msg ^ (port as u64)
}

struct GossipNode {
    acc: u64,
}

impl Protocol for GossipNode {
    type Msg = u64;
    fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: Inbox<'_, u64>) {
        for e in inbox.iter() {
            self.acc = fold(self.acc, *e.msg, e.port);
        }
        let salt = ctx.rng().next();
        ctx.send_all(self.acc ^ salt);
    }
}

// ---------------------------------------------------------------------
// The old message plane, reimplemented as it was before the rewrite:
// global `sent` vector + per-inbox pushes + per-round inbox sorting.
// ---------------------------------------------------------------------

struct LegacyEnvelope {
    port: Port,
    msg: u64,
}

struct LegacyNet {
    topo: Topology,
    accs: Vec<u64>,
    rngs: Vec<SplitMix64>,
    inboxes: Vec<Vec<LegacyEnvelope>>,
}

impl LegacyNet {
    fn new(topo: Topology, seed: u64) -> Self {
        let n = topo.len();
        LegacyNet {
            topo,
            accs: vec![0; n],
            rngs: (0..n)
                .map(|v| SplitMix64::for_node(seed, v as u64))
                .collect(),
            inboxes: (0..n).map(|_| Vec::new()).collect(),
        }
    }

    fn step(&mut self) {
        let n = self.topo.len();
        let mut sent: Vec<(NodeId, Port, u64)> = Vec::new();
        let mut out: Vec<(Port, u64)> = Vec::new();
        for v in 0..n {
            let inbox = std::mem::take(&mut self.inboxes[v]);
            for e in &inbox {
                self.accs[v] = fold(self.accs[v], e.msg, e.port);
            }
            let salt = self.rngs[v].next();
            let msg = self.accs[v] ^ salt;
            for port in 0..self.topo.degree(v as NodeId) {
                out.push((port, msg));
            }
            for (port, msg) in out.drain(..) {
                sent.push((v as NodeId, port, msg));
            }
        }
        for (from, port, msg) in sent {
            let to = self.topo.neighbor(from, port);
            let rev = self.topo.reverse_port(from, port);
            self.inboxes[to as usize].push(LegacyEnvelope { port: rev, msg });
        }
        for inbox in &mut self.inboxes {
            inbox.sort_by_key(|e| e.port);
        }
    }
}

// ---------------------------------------------------------------------

struct Measured {
    time_per_round: Duration,
    allocs_per_round: f64,
}

fn measure(rounds: u64, runs: u32, mut step: impl FnMut()) -> Measured {
    // Warmup past the cold-start rounds so only steady state is timed.
    step();
    step();
    let mut best = Duration::MAX;
    let mut alloc_total = 0u64;
    for _ in 0..runs {
        let a0 = allocs();
        let t0 = Instant::now();
        for _ in 0..rounds {
            step();
        }
        let dt = t0.elapsed();
        alloc_total += allocs() - a0;
        best = best.min(dt);
    }
    Measured {
        time_per_round: best / rounds as u32,
        allocs_per_round: alloc_total as f64 / (runs as u64 * rounds) as f64,
    }
}

fn main() {
    let n = env_or("STEP_PLANE_N", 50_000) as usize;
    let rounds = env_or("STEP_PLANE_ROUNDS", 10);
    let runs = env_or("STEP_PLANE_RUNS", 5) as u32;
    let seed = 42u64;

    println!("bench_step_plane: gnp(n={n}, d̄=8), {rounds} rounds/run, {runs} runs");
    let g = gnp(n, 8.0 / n as f64, 7);
    let topo = dmatch::topology_of(&g);
    println!(
        "  topology: {} nodes, {} edges, max degree {}",
        topo.len(),
        topo.num_edges(),
        topo.max_degree()
    );

    // -- Correctness gate: both planes, and both executors of the new
    //    plane, must produce bit-identical results.
    let check_rounds = 6;
    let mut legacy = LegacyNet::new(topo.clone(), seed);
    for _ in 0..check_rounds {
        legacy.step();
    }
    let mk = |threads: usize| {
        let nodes = (0..n).map(|_| GossipNode { acc: 0 }).collect();
        Network::new(topo.clone(), nodes, seed).with_threads(threads)
    };
    let mut seq = mk(1);
    seq.run_rounds(check_rounds);
    let mut par = mk(8);
    par.run_rounds(check_rounds);
    assert!(
        legacy
            .accs
            .iter()
            .zip(seq.nodes())
            .all(|(a, b)| *a == b.acc),
        "new plane diverged from the legacy plane"
    );
    assert!(
        seq.nodes()
            .iter()
            .zip(par.nodes())
            .all(|(a, b)| a.acc == b.acc),
        "parallel stepping diverged from sequential"
    );
    assert_eq!(seq.stats(), par.stats(), "sequential vs parallel NetStats");
    println!("  correctness: legacy == new(seq) == new(8 threads)  [bit-identical]");

    // -- Measurements.
    let mut legacy = LegacyNet::new(topo.clone(), seed);
    let m_legacy = measure(rounds, runs, || {
        legacy.step();
        black_box(&legacy.accs);
    });
    let mut net = mk(1);
    let m_new = measure(rounds, runs, || {
        net.step();
        black_box(net.nodes().len());
    });
    let mut netp = mk(8);
    let m_par = measure(rounds, runs, || {
        netp.step();
        black_box(netp.nodes().len());
    });

    let mut t = Table::new(vec!["plane", "time/round", "allocs/round"]);
    t.row(vec![
        "legacy (vec+sort)".to_string(),
        format!("{:?}", m_legacy.time_per_round),
        format!("{:.1}", m_legacy.allocs_per_round),
    ]);
    t.row(vec![
        "new (slab, seq)".to_string(),
        format!("{:?}", m_new.time_per_round),
        format!("{:.1}", m_new.allocs_per_round),
    ]);
    t.row(vec![
        "new (slab, 8 thr)".to_string(),
        format!("{:?}", m_par.time_per_round),
        format!("{:.1}", m_par.allocs_per_round),
    ]);
    t.print();

    // -- Sequential/parallel crossover sweep: smallest n where
    //    multi-thread stepping actually wins. Thanks to the fan-out
    //    throttle, sub-crossover parallel runs ride the sequential
    //    path instead of losing to thread-spawn latency.
    let threads = env_or("STEP_PLANE_THREADS", 8) as usize;
    let ladder: Vec<usize> = [500usize, 1000, 2000, 4000, 8000, 16000, 32000, 64000]
        .into_iter()
        .filter(|&x| x <= n.max(500))
        .collect();
    let mut crossover_n: Option<usize> = None;
    let mut ladder_rows = Vec::new();
    println!("\n  crossover sweep ({threads} threads vs sequential):");
    for &ln in &ladder {
        let lg = gnp(ln, 8.0 / ln as f64, 7);
        let ltopo = dmatch::topology_of(&lg);
        let mk = |threads: usize| {
            let nodes = (0..ln).map(|_| GossipNode { acc: 0 }).collect();
            Network::new(ltopo.clone(), nodes, seed).with_threads(threads)
        };
        let mut s = mk(1);
        let m_s = measure(rounds, runs, || {
            s.step();
            black_box(s.nodes().len());
        });
        let mut p = mk(threads);
        let m_p = measure(rounds, runs, || {
            p.step();
            black_box(p.nodes().len());
        });
        let ratio = m_s.time_per_round.as_secs_f64() / m_p.time_per_round.as_secs_f64();
        println!(
            "    n={ln:>6}: seq {:>9?}  par {:>9?}  ({}x)",
            m_s.time_per_round,
            m_p.time_per_round,
            f2(ratio)
        );
        // First n where parallel wins by a margin beyond timer noise.
        // A "win" in which the cost model never actually spawned a
        // worker is two sequential runs plus noise, not a crossover.
        if crossover_n.is_none() && ratio > 1.05 && p.peak_workers() > 1 {
            crossover_n = Some(ln);
        }
        ladder_rows.push((ln, m_s.time_per_round, m_p.time_per_round, ratio));
    }
    match crossover_n {
        Some(c) => println!("  sequential/parallel crossover: n ≈ {c}"),
        None => println!("  sequential/parallel crossover: beyond n={n} on this machine"),
    }

    let alloc_ratio = m_legacy.allocs_per_round / m_new.allocs_per_round.max(1.0);
    let time_ratio = m_legacy.time_per_round.as_secs_f64() / m_new.time_per_round.as_secs_f64();
    println!(
        "\n  allocation reduction: {}x fewer allocations/round (legacy {:.0} vs new {:.0})",
        f2(alloc_ratio),
        m_legacy.allocs_per_round,
        m_new.allocs_per_round
    );
    println!("  speedup (sequential): {}x", f2(time_ratio));

    // Machine-readable record for cross-PR perf tracking (uploaded as
    // a CI artifact). Hand-rolled JSON: the workspace is std-only.
    let plane_json = |name: &str, m: &Measured| {
        format!(
            "    {{\"plane\": \"{name}\", \"time_per_round_ns\": {}, \"allocs_per_round\": {:.2}}}",
            m.time_per_round.as_nanos(),
            m.allocs_per_round
        )
    };
    let crossover_rows: Vec<String> = ladder_rows
        .iter()
        .map(|(ln, s, p, r)| {
            format!(
                "    {{\"n\": {ln}, \"seq_ns\": {}, \"par_ns\": {}, \"par_speedup\": {r:.2}}}",
                s.as_nanos(),
                p.as_nanos()
            )
        })
        .collect();
    let host = bench_harness::host::fingerprint();
    let json = format!
        ("{{\n  \"bench\": \"step_plane\",\n  \"host\": {},\n  \"threads_requested\": {threads},\n  \"threads_used_peak\": {},\n  \"n\": {n},\n  \"rounds_per_run\": {rounds},\n  \"runs\": {runs},\n  \"planes\": [\n{},\n{},\n{}\n  ],\n  \"alloc_ratio\": {:.2},\n  \"speedup_sequential\": {:.3},\n  \"crossover\": {{\n  \"threads\": {threads},\n  \"sequential_parallel_crossover_n\": {},\n  \"ladder\": [\n{}\n  ]\n  }}\n}}\n",
        host.to_json(),
        netp.peak_workers(),
        plane_json("legacy_vec_sort", &m_legacy),
        plane_json("slab_seq", &m_new),
        plane_json("slab_8_threads", &m_par),
        alloc_ratio,
        time_ratio,
        crossover_n.map_or("null".to_string(), |c| c.to_string()),
        crossover_rows.join(",\n"),
    );
    // Cargo runs benches with the package as working directory; the
    // record belongs at the workspace root, where CI picks it up.
    let path = std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| std::path::PathBuf::from(d).join("../../BENCH_step_plane.json"))
        .unwrap_or_else(|_| std::path::PathBuf::from("BENCH_step_plane.json"));
    std::fs::write(&path, &json).expect("write bench record");
    println!("  wrote {}", path.display());

    assert!(
        alloc_ratio >= 2.0,
        "acceptance: the new plane must allocate at least 2x less per round"
    );
}
