//! Mutation batches: the unit of change between epochs.

use dgraph::NodeId;

/// One epoch's worth of topology change. Edges are undirected; both
/// lists hold canonical `(min, max)` pairs with no duplicates and no
/// overlap (an edge is either inserted or deleted in one epoch, not
/// both — "replace" is expressed as a deletion in one epoch and an
/// insertion in a later one).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MutationBatch {
    /// Edges to insert (must not exist).
    pub added: Vec<(NodeId, NodeId)>,
    /// Edges to delete (must exist).
    pub removed: Vec<(NodeId, NodeId)>,
}

impl MutationBatch {
    /// A batch that changes nothing.
    pub fn empty() -> Self {
        MutationBatch::default()
    }

    /// True when the batch changes nothing.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// Total number of edge mutations.
    pub fn len(&self) -> usize {
        self.added.len() + self.removed.len()
    }

    /// Canonicalize endpoints (`u < v`), sort, and check the batch
    /// invariants (no duplicates, no add/remove overlap, no
    /// self-loops). Panics on violation — a malformed batch is a bug
    /// in the generator or trace.
    pub fn normalized(mut self) -> Self {
        let canon = |list: &mut Vec<(NodeId, NodeId)>, what: &str| {
            for e in list.iter_mut() {
                assert!(e.0 != e.1, "self-loop {} in {what} batch", e.0);
                *e = (e.0.min(e.1), e.0.max(e.1));
            }
            list.sort_unstable();
            assert!(
                list.windows(2).all(|w| w[0] != w[1]),
                "duplicate edge in {what} batch"
            );
        };
        canon(&mut self.added, "insert");
        canon(&mut self.removed, "delete");
        let mut i = 0;
        let mut j = 0;
        while i < self.added.len() && j < self.removed.len() {
            match self.added[i].cmp(&self.removed[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    panic!("edge {:?} both inserted and deleted", self.added[i])
                }
            }
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_canonicalizes_and_sorts() {
        let b = MutationBatch {
            added: vec![(3, 1), (0, 2)],
            removed: vec![(5, 4)],
        }
        .normalized();
        assert_eq!(b.added, vec![(0, 2), (1, 3)]);
        assert_eq!(b.removed, vec![(4, 5)]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
    }

    #[test]
    #[should_panic(expected = "both inserted and deleted")]
    fn overlap_rejected() {
        MutationBatch {
            added: vec![(1, 2)],
            removed: vec![(2, 1)],
        }
        .normalized();
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn duplicates_rejected() {
        MutationBatch {
            added: vec![(1, 2), (2, 1)],
            removed: vec![],
        }
        .normalized();
    }

    #[test]
    fn empty_batch() {
        assert!(MutationBatch::empty().is_empty());
        assert_eq!(MutationBatch::empty().normalized().len(), 0);
    }
}
