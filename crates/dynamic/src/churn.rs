//! Deterministic churn generators.
//!
//! A [`ChurnGen`] turns a seeded RNG stream plus the *current* graph
//! into one [`MutationBatch`] per epoch. All models are deterministic
//! in `(model, seed, history)`, so dynamic runs are reproducible
//! bit-for-bit like everything else in the workspace.

use crate::mutation::MutationBatch;
use dgraph::{Graph, NodeId};
use simnet::rng::streams;
use simnet::{CrashEvent, CrashKind, FaultPlan, SplitMix64};
use std::collections::{BTreeSet, HashSet, VecDeque};

/// Which kind of churn to generate each epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChurnModel {
    /// Replace a `rate` fraction of the current edges per epoch:
    /// delete `⌈rate·m⌉` random edges and insert the same number of
    /// random non-edges (graph size stays roughly constant).
    EdgeChurn { rate: f64 },
    /// Node join/leave: a `rate` fraction of the live nodes leave per
    /// epoch (losing all incident edges) and the longest-departed nodes
    /// rejoin with `degree` fresh random edges. The node *universe* is
    /// fixed — a departed node is simply isolated — which matches the
    /// fixed-capacity message plane.
    NodeChurn { rate: f64, degree: usize },
    /// Hub death: like [`ChurnModel::NodeChurn`], but the leavers are
    /// the *highest-degree* live nodes (ties broken by lower id)
    /// instead of a uniform sample. On heavy-tailed families this
    /// tears out a hub and its whole edge star every epoch — the
    /// adversarial case for damage-ball repair locality, whose damage
    /// is `Θ(max degree)` rather than `O(1)`.
    HubChurn { rate: f64, degree: usize },
    /// Degree-preserving rewiring: `⌈rate·m/2⌉` double-edge swaps per
    /// epoch (`{a,b},{c,d} → {a,d},{c,b}`), keeping every node degree
    /// exactly as it was.
    Rewire { rate: f64 },
    /// Crash-stop faults as churn: the adversary plane's pre-sampled
    /// schedule ([`FaultPlan::crash_schedule`] — the *same* single
    /// source of truth the simulator applies) is replayed in windows of
    /// `rounds_per_epoch` simulated rounds per epoch. A crash removes
    /// the node's current incident edges (the damage ball the repair
    /// machinery must heal around); a rejoin restores the stashed edges
    /// whose other endpoint is back up. Plans without crash faults
    /// yield empty batches forever.
    Crash {
        /// The adversary plan supplying `crash_p` / `rejoin_after`.
        plan: FaultPlan,
        /// How many simulated rounds of the schedule one epoch covers.
        rounds_per_epoch: u64,
    },
    /// Replay batches pushed with [`ChurnGen::push_trace`]; an
    /// exhausted trace yields empty batches.
    Trace,
}

/// Stateful churn generator.
#[derive(Debug)]
pub struct ChurnGen {
    model: ChurnModel,
    rng: SplitMix64,
    /// The raw construction seed — [`ChurnModel::Crash`] derives its
    /// schedule from this directly, so it matches what a
    /// `simnet::Network` seeded identically would apply.
    seed: u64,
    trace: VecDeque<MutationBatch>,
    /// NodeChurn bookkeeping: who is currently in the network, and the
    /// departure queue (rejoin order is FIFO).
    alive: Vec<bool>,
    departed: VecDeque<NodeId>,
    /// Crash bookkeeping: the pre-sampled schedule, replay cursor and
    /// epoch window, who is down, and the edges each down node lost
    /// (restored on rejoin once both endpoints are up).
    crash_events: Vec<CrashEvent>,
    crash_next: usize,
    crash_epoch: u64,
    crash_down: Vec<bool>,
    crash_stash: Vec<Vec<(NodeId, NodeId)>>,
}

/// Bounded rejection sampling: dense graphs can make random non-edges
/// scarce; generators give up (producing a smaller batch) rather than
/// spin.
const MAX_TRIES: usize = 64;

impl ChurnGen {
    /// New generator. Rates must lie in `[0, 1]`.
    pub fn new(model: ChurnModel, seed: u64) -> Self {
        if let ChurnModel::EdgeChurn { rate }
        | ChurnModel::NodeChurn { rate, .. }
        | ChurnModel::HubChurn { rate, .. }
        | ChurnModel::Rewire { rate } = model
        {
            assert!((0.0..=1.0).contains(&rate), "churn rate must be in [0,1]");
        }
        if let ChurnModel::Crash {
            rounds_per_epoch, ..
        } = model
        {
            assert!(rounds_per_epoch >= 1, "an epoch must cover ≥ 1 round");
        }
        ChurnGen {
            model,
            rng: SplitMix64::for_node(seed, streams::CHURN),
            seed,
            trace: VecDeque::new(),
            alive: Vec::new(),
            departed: VecDeque::new(),
            crash_events: Vec::new(),
            crash_next: 0,
            crash_epoch: 0,
            crash_down: Vec::new(),
            crash_stash: Vec::new(),
        }
    }

    /// Append a batch to the replay trace (used with
    /// [`ChurnModel::Trace`]).
    pub fn push_trace(&mut self, batch: MutationBatch) {
        self.trace.push_back(batch.normalized());
    }

    /// Produce the next epoch's batch against the current graph.
    pub fn next_batch(&mut self, g: &Graph) -> MutationBatch {
        match self.model {
            ChurnModel::EdgeChurn { rate } => self.edge_churn(g, rate),
            ChurnModel::NodeChurn { rate, degree } => self.node_churn(g, rate, degree, false),
            ChurnModel::HubChurn { rate, degree } => self.node_churn(g, rate, degree, true),
            ChurnModel::Rewire { rate } => self.rewire(g, rate),
            ChurnModel::Crash {
                plan,
                rounds_per_epoch,
            } => self.crash_churn(g, plan, rounds_per_epoch),
            ChurnModel::Trace => self.trace.pop_front().unwrap_or_default(),
        }
    }

    /// Replay one epoch window of the adversary's crash schedule as a
    /// mutation batch (see [`ChurnModel::Crash`]).
    fn crash_churn(&mut self, g: &Graph, plan: FaultPlan, rounds_per_epoch: u64) -> MutationBatch {
        let n = g.n();
        if n == 0 {
            return MutationBatch::empty();
        }
        if self.crash_down.len() != n {
            // First epoch: pre-sample the schedule exactly as a
            // `Network` with this seed and plan would.
            self.crash_events = plan.crash_schedule(self.seed, n);
            self.crash_next = 0;
            self.crash_epoch = 0;
            self.crash_down = vec![false; n];
            self.crash_stash = vec![Vec::new(); n];
        }
        self.crash_epoch += 1;
        let window_end = self.crash_epoch.saturating_mul(rounds_per_epoch);
        // Net effect of this window against the *current* graph: an
        // edge taken down and restored within one window cancels out.
        // BTreeSets so nothing about the batch depends on hash state
        // (`normalized()` sorts anyway; the ordered sets make the
        // intermediate iteration at the crash site deterministic too).
        let mut removed: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
        let mut added: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
        while self
            .crash_events
            .get(self.crash_next)
            .is_some_and(|e| e.round < window_end)
        {
            let ev = self.crash_events[self.crash_next];
            self.crash_next += 1;
            let v = ev.node;
            match ev.kind {
                CrashKind::Crash => {
                    if self.crash_down[v as usize] {
                        continue; // defensive: at most one crash per node
                    }
                    self.crash_down[v as usize] = true;
                    // Incident edges in the conceptual mid-window graph:
                    // g minus `removed` plus `added`.
                    let mut incident: Vec<(NodeId, NodeId)> = g
                        .incident(v)
                        .iter()
                        .map(|&(u, _)| (v.min(u), v.max(u)))
                        .filter(|e| !removed.contains(e))
                        .collect();
                    incident.extend(added.iter().copied().filter(|&(a, b)| a == v || b == v));
                    for e in incident {
                        if !added.remove(&e) {
                            removed.insert(e);
                        }
                        self.crash_stash[v as usize].push(e);
                    }
                }
                CrashKind::Rejoin => {
                    self.crash_down[v as usize] = false;
                    let stash = std::mem::take(&mut self.crash_stash[v as usize]);
                    for e in stash {
                        let other = if e.0 == v { e.1 } else { e.0 };
                        if self.crash_down[other as usize] {
                            // The other endpoint is still down; the edge
                            // comes back with *its* rejoin.
                            self.crash_stash[other as usize].push(e);
                        } else if !removed.remove(&e) {
                            added.insert(e);
                        }
                    }
                }
            }
        }
        MutationBatch {
            added: added.into_iter().collect(),
            removed: removed.into_iter().collect(),
        }
        .normalized()
    }

    fn edge_churn(&mut self, g: &Graph, rate: f64) -> MutationBatch {
        let m = g.m();
        if m == 0 || g.n() < 2 || rate <= 0.0 {
            return MutationBatch::empty();
        }
        let count = ((rate * m as f64).round() as usize).clamp(1, m);
        let mut removed: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
        while removed.len() < count {
            let e = self.rng.below(m as u64) as u32;
            removed.insert(g.endpoints(e));
        }
        let mut added: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
        let n = g.n() as u64;
        let mut tries = 0;
        while added.len() < count && tries < MAX_TRIES * count {
            tries += 1;
            let u = self.rng.below(n) as NodeId;
            let v = self.rng.below(n) as NodeId;
            if u == v {
                continue;
            }
            let e = (u.min(v), u.max(v));
            if g.edge_between(u, v).is_some() || removed.contains(&e) {
                continue;
            }
            added.insert(e);
        }
        MutationBatch {
            added: added.into_iter().collect(),
            removed: removed.into_iter().collect(),
        }
        .normalized()
    }

    fn node_churn(&mut self, g: &Graph, rate: f64, degree: usize, hubs: bool) -> MutationBatch {
        let n = g.n();
        if n < 2 || rate <= 0.0 {
            return MutationBatch::empty();
        }
        if self.alive.len() != n {
            self.alive = vec![true; n];
            self.departed.clear();
        }
        let live: Vec<NodeId> = (0..n as NodeId)
            .filter(|&v| self.alive[v as usize])
            .collect();
        if live.is_empty() {
            return MutationBatch::empty();
        }
        let k = ((rate * live.len() as f64).round() as usize).clamp(1, live.len());
        // Leavers (k distinct live nodes; all their edges disappear):
        // hub churn takes the top-degree live nodes (ties → lower id),
        // node churn a uniform sample. Kept as an *ordered* Vec — the
        // order feeds the departure FIFO, so iterating a HashSet here
        // would leak per-instance hash state into later epochs'
        // rejoin edges and break seed-determinism.
        let mut leaving: Vec<NodeId> = Vec::with_capacity(k);
        let mut is_leaving: HashSet<NodeId> = HashSet::new();
        if hubs {
            let mut ranked = live.clone();
            ranked.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
            leaving.extend(&ranked[..k]);
            is_leaving.extend(&leaving);
        } else {
            while leaving.len() < k {
                let v = live[self.rng.below(live.len() as u64) as usize];
                if is_leaving.insert(v) {
                    leaving.push(v);
                }
            }
        }
        let mut removed: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
        for &v in &leaving {
            for &(u, _) in g.incident(v) {
                removed.insert((v.min(u), v.max(u)));
            }
        }
        // Rejoiners: the longest-departed nodes come back with fresh
        // random edges to nodes that stay.
        let staying: Vec<NodeId> = live
            .iter()
            .copied()
            .filter(|v| !is_leaving.contains(v))
            .collect();
        let mut added: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
        for _ in 0..k.min(self.departed.len()) {
            let j = self.departed.pop_front().expect("checked length");
            self.alive[j as usize] = true;
            if staying.is_empty() {
                continue;
            }
            let want = degree.min(staying.len());
            let mut tries = 0;
            let mut got = 0;
            while got < want && tries < MAX_TRIES * want {
                tries += 1;
                let t = staying[self.rng.below(staying.len() as u64) as usize];
                let e = (j.min(t), j.max(t));
                if added.insert(e) {
                    got += 1;
                }
            }
        }
        for &v in &leaving {
            self.alive[v as usize] = false;
            self.departed.push_back(v);
        }
        MutationBatch {
            added: added.into_iter().collect(),
            removed: removed.into_iter().collect(),
        }
        .normalized()
    }

    fn rewire(&mut self, g: &Graph, rate: f64) -> MutationBatch {
        let m = g.m();
        if m < 2 || rate <= 0.0 {
            return MutationBatch::empty();
        }
        let swaps = ((rate * m as f64 / 2.0).round() as usize).max(1);
        let mut removed: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
        let mut added: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
        let exists = |u: NodeId,
                      v: NodeId,
                      g: &Graph,
                      removed: &BTreeSet<(NodeId, NodeId)>,
                      added: &BTreeSet<(NodeId, NodeId)>| {
            let e = (u.min(v), u.max(v));
            (g.edge_between(u, v).is_some() && !removed.contains(&e)) || added.contains(&e)
        };
        let mut done = 0;
        let mut tries = 0;
        while done < swaps && tries < MAX_TRIES * swaps {
            tries += 1;
            let e1 = g.endpoints(self.rng.below(m as u64) as u32);
            let e2 = g.endpoints(self.rng.below(m as u64) as u32);
            let (a, b) = e1;
            // Randomize the swap orientation so the rewiring mixes.
            let (c, d) = if self.rng.bernoulli(0.5) {
                e2
            } else {
                (e2.1, e2.0)
            };
            if a == c || a == d || b == c || b == d {
                continue; // edges must be vertex-disjoint
            }
            if removed.contains(&e1) || removed.contains(&(c.min(d), c.max(d))) {
                continue; // already consumed this epoch
            }
            if exists(a, d, g, &removed, &added) || exists(c, b, g, &removed, &added) {
                continue; // would create a parallel edge
            }
            if removed.contains(&(a.min(d), a.max(d))) || removed.contains(&(c.min(b), c.max(b))) {
                continue; // would resurrect an edge removed this epoch
            }
            removed.insert(e1);
            removed.insert((c.min(d), c.max(d)));
            added.insert((a.min(d), a.max(d)));
            added.insert((c.min(b), c.max(b)));
            done += 1;
        }
        MutationBatch {
            added: added.into_iter().collect(),
            removed: removed.into_iter().collect(),
        }
        .normalized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgraph::generators::random::gnp;

    fn apply(g: &Graph, b: &MutationBatch) -> Graph {
        let gone: HashSet<(NodeId, NodeId)> = b.removed.iter().copied().collect();
        let mut edges: Vec<(NodeId, NodeId)> = g
            .edge_list()
            .iter()
            .copied()
            .filter(|e| !gone.contains(e))
            .collect();
        edges.extend_from_slice(&b.added);
        Graph::new(g.n(), edges)
    }

    #[test]
    fn edge_churn_replaces_edges() {
        let g = gnp(100, 0.05, 1);
        let mut gen = ChurnGen::new(ChurnModel::EdgeChurn { rate: 0.05 }, 9);
        let m0 = g.m();
        let b = gen.next_batch(&g);
        assert!(!b.is_empty());
        assert_eq!(b.removed.len(), (0.05 * m0 as f64).round() as usize);
        let g2 = apply(&g, &b); // Graph::new re-validates everything
        assert!(g2.m() <= m0 + b.added.len());
    }

    #[test]
    fn edge_churn_is_deterministic() {
        let g = gnp(60, 0.08, 2);
        let mk = || {
            let mut gen = ChurnGen::new(ChurnModel::EdgeChurn { rate: 0.1 }, 77);
            let b1 = gen.next_batch(&g);
            let g2 = apply(&g, &b1);
            (b1, gen.next_batch(&g2))
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn node_churn_cycles_nodes() {
        let mut g = gnp(50, 0.1, 3);
        let mut gen = ChurnGen::new(
            ChurnModel::NodeChurn {
                rate: 0.1,
                degree: 3,
            },
            4,
        );
        // First epochs only drain (nobody departed yet to rejoin); later
        // epochs add fresh edges for rejoining nodes.
        let mut saw_addition = false;
        for _ in 0..6 {
            let b = gen.next_batch(&g);
            saw_addition |= !b.added.is_empty();
            g = apply(&g, &b);
        }
        assert!(saw_addition, "rejoining nodes must bring fresh edges");
    }

    #[test]
    fn node_churn_is_deterministic_across_epochs() {
        // Regression: the departure FIFO used to be filled by
        // iterating a HashSet, so the *rejoin order* (and with it the
        // added edges of later epochs) depended on per-instance hash
        // state rather than the seed alone.
        let mk = || {
            let mut g = gnp(60, 0.12, 3);
            let mut gen = ChurnGen::new(
                ChurnModel::NodeChurn {
                    rate: 0.15,
                    degree: 4,
                },
                21,
            );
            let mut batches = Vec::new();
            for _ in 0..8 {
                let b = gen.next_batch(&g);
                g = apply(&g, &b);
                batches.push(b);
            }
            batches
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn hub_churn_kills_the_highest_degree_node() {
        // Star: the center is the unique hub and must be the leaver.
        let n = 20;
        let edges: Vec<(NodeId, NodeId)> = (1..n as NodeId).map(|v| (0, v)).collect();
        let g = Graph::new(n, edges);
        let mut gen = ChurnGen::new(
            ChurnModel::HubChurn {
                rate: 0.05,
                degree: 2,
            },
            7,
        );
        let b = gen.next_batch(&g);
        assert_eq!(b.removed.len(), n - 1, "the whole star must fall");
        assert!(b.removed.iter().all(|&(u, _)| u == 0));
        let g2 = apply(&g, &b);
        // Next epoch the hub is gone; the top-degree survivor leaves.
        let b2 = gen.next_batch(&g2);
        assert!(
            b2.removed.is_empty(),
            "isolated survivors have no edges to lose"
        );
    }

    #[test]
    fn hub_churn_is_deterministic() {
        let mk = || {
            let mut g = gnp(60, 0.1, 8);
            let mut gen = ChurnGen::new(
                ChurnModel::HubChurn {
                    rate: 0.1,
                    degree: 3,
                },
                5,
            );
            let mut batches = Vec::new();
            for _ in 0..6 {
                let b = gen.next_batch(&g);
                g = apply(&g, &b);
                batches.push(b);
            }
            batches
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn rewiring_preserves_degrees() {
        let g = gnp(80, 0.06, 5);
        let mut gen = ChurnGen::new(ChurnModel::Rewire { rate: 0.2 }, 6);
        let b = gen.next_batch(&g);
        assert!(!b.is_empty());
        assert_eq!(b.added.len(), b.removed.len());
        let g2 = apply(&g, &b);
        for v in 0..g.n() as NodeId {
            assert_eq!(g.degree(v), g2.degree(v), "degree of {v} changed");
        }
    }

    #[test]
    fn trace_replays_then_goes_quiet() {
        let g = gnp(10, 0.2, 7);
        let mut gen = ChurnGen::new(ChurnModel::Trace, 0);
        let e = g.edge_list()[0];
        gen.push_trace(MutationBatch {
            added: vec![],
            removed: vec![e],
        });
        assert_eq!(gen.next_batch(&g).removed, vec![e]);
        assert!(gen.next_batch(&g).is_empty());
    }

    #[test]
    fn empty_graph_yields_empty_batches() {
        let g = Graph::new(0, vec![]);
        for model in [
            ChurnModel::EdgeChurn { rate: 0.5 },
            ChurnModel::NodeChurn {
                rate: 0.5,
                degree: 2,
            },
            ChurnModel::Rewire { rate: 0.5 },
            ChurnModel::Crash {
                plan: FaultPlan::NONE.with_crash(0.5, 2),
                rounds_per_epoch: 4,
            },
        ] {
            assert!(ChurnGen::new(model, 1).next_batch(&g).is_empty());
        }
    }

    #[test]
    fn crash_churn_replays_the_adversary_schedule() {
        // Aggressive plan so both fault directions show up quickly:
        // crashes take edges down, rejoins bring the same edges back.
        let plan = FaultPlan::NONE.with_crash(0.3, 3);
        let mut g = gnp(40, 0.12, 6);
        let baseline = g.clone();
        let mut gen = ChurnGen::new(
            ChurnModel::Crash {
                plan,
                rounds_per_epoch: 2,
            },
            11,
        );
        let (mut saw_removal, mut saw_addition) = (false, false);
        for _ in 0..30 {
            let b = gen.next_batch(&g);
            saw_removal |= !b.removed.is_empty();
            saw_addition |= !b.added.is_empty();
            g = apply(&g, &b); // Graph::new re-validates every batch
        }
        assert!(saw_removal, "crashes must take edges down");
        assert!(saw_addition, "rejoins must bring edges back");
        // crash_p = 0.3 ⇒ every node's geometric first-crash lands well
        // inside 60 rounds, and every crash rejoins 3 rounds later; once
        // the whole schedule has replayed the graph is healed in full.
        assert_eq!(g.m(), baseline.m(), "all crashed edges must return");
        let orig: HashSet<(NodeId, NodeId)> = baseline.edge_list().iter().copied().collect();
        assert!(g.edge_list().iter().all(|e| orig.contains(e)));
    }

    #[test]
    fn crash_churn_is_deterministic() {
        let plan = FaultPlan::NONE.with_crash(0.1, 4);
        let mk = || {
            let mut g = gnp(50, 0.1, 9);
            let mut gen = ChurnGen::new(
                ChurnModel::Crash {
                    plan,
                    rounds_per_epoch: 3,
                },
                42,
            );
            let mut batches = Vec::new();
            for _ in 0..10 {
                let b = gen.next_batch(&g);
                g = apply(&g, &b);
                batches.push(b);
            }
            batches
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn crash_of_a_star_center_takes_the_whole_star() {
        // Certain crash at round 0, rejoin at round 1: with one round
        // per epoch the first batch removes every incident edge of each
        // node (= all edges) and the second restores them all.
        let n = 12;
        let edges: Vec<(NodeId, NodeId)> = (1..n as NodeId).map(|v| (0, v)).collect();
        let g = Graph::new(n, edges.clone());
        let mut gen = ChurnGen::new(
            ChurnModel::Crash {
                plan: FaultPlan::NONE.with_crash(1.0, 1),
                rounds_per_epoch: 1,
            },
            3,
        );
        let b1 = gen.next_batch(&g);
        assert_eq!(b1.removed.len(), n - 1, "the whole star must fall");
        assert!(b1.added.is_empty());
        let g2 = apply(&g, &b1);
        assert_eq!(g2.m(), 0);
        let b2 = gen.next_batch(&g2);
        assert!(b2.removed.is_empty());
        assert_eq!(b2.added.len(), n - 1, "rejoin restores the star");
        assert_eq!(apply(&g2, &b2).m(), n - 1);
    }

    #[test]
    fn crashless_plan_yields_empty_batches_forever() {
        // Drop/delay faults are message-level; only crash faults map to
        // churn events.
        let g = gnp(30, 0.15, 2);
        let mut gen = ChurnGen::new(
            ChurnModel::Crash {
                plan: FaultPlan::drop(0.4).with_delay(3),
                rounds_per_epoch: 5,
            },
            8,
        );
        for _ in 0..5 {
            assert!(gen.next_batch(&g).is_empty());
        }
    }
}
