//! The epoch driver: churn → patch → repair, with full accounting.

use crate::churn::{ChurnGen, ChurnModel};
use crate::mutation::MutationBatch;
use crate::repair::RepairNode;
use dgraph::{Graph, Matching, NodeId, UNMATCHED};
use dmatch::session::{RewirePatch, Session};
use dmatch::Algorithm;
use simnet::{ExecCfg, NetStats, Network, SchedMode};
use std::collections::{BTreeSet, HashSet};

/// Which incremental algorithm repairs the matching each epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RepairAlgo {
    /// Incremental Israeli–Itai over a persistent, rewired network:
    /// maximal (⇒ ½-MCM) after every epoch. The flagship user of the
    /// message-plane remap — the same slabs live across all epochs.
    IncrementalMaximal,
    /// Warm-started generic `(1-1/(k+1))`-MCM with damage-local
    /// gathering, driven through a persistent [`Session`] via
    /// [`Session::resume_after_rewire`] (one epoch = one rewire +
    /// repair run).
    IncrementalGeneric { k: usize },
}

/// What one epoch did and what it cost.
#[derive(Debug, Clone)]
pub struct EpochReport {
    /// Epoch number (0 = bootstrap, building the initial matching).
    pub epoch: u64,
    /// Edges inserted by the churn batch.
    pub added: usize,
    /// Edges removed by the churn batch.
    pub removed: usize,
    /// Matched edges destroyed by the batch (each frees two nodes).
    pub invalidated: usize,
    /// Nodes whose incident edge set changed.
    pub damage: usize,
    /// Repair cost: synchronous rounds this epoch.
    pub rounds: u64,
    /// Repair cost: messages this epoch.
    pub messages: u64,
    /// Repair cost: bits this epoch.
    pub bits: u64,
    /// Repair iterations (algorithm-specific unit: Israeli–Itai
    /// 3-round iterations, or generic phases).
    pub iterations: u64,
    /// Distinct nodes that sent at least one message during repair.
    pub woken: usize,
    /// Maximum BFS distance from the damage set of any node that sent
    /// a message (`None` for the bootstrap epoch, where everything is
    /// damage, and for epochs with no damage).
    pub locality_radius: Option<usize>,
    /// Matching size after repair.
    pub matching_size: usize,
    /// Whether the repaired matching is maximal on the current graph.
    pub maximal: bool,
}

/// A dynamic network: current graph + matching, a churn stream, and
/// the persistent repair machinery.
pub struct DynEngine {
    g: Graph,
    m: Matching,
    churn: ChurnGen,
    algo: RepairAlgo,
    cfg: ExecCfg,
    seed: u64,
    epoch: u64,
    /// Persistent network for [`RepairAlgo::IncrementalMaximal`]; its
    /// slabs and RNG streams live across every epoch. This arm lives
    /// *below* the `Session` surface: its protocol state never leaves
    /// the simulator, which is what makes zero-rebuild epochs possible.
    net: Option<Network<RepairNode>>,
    /// Persistent session for [`RepairAlgo::IncrementalGeneric`]; each
    /// epoch resumes it with a [`RewirePatch`].
    session: Option<Session>,
    /// Per-epoch reports, in order (index 0 = bootstrap).
    pub reports: Vec<EpochReport>,
    /// Distributions over the churn epochs (bootstrap excluded):
    /// repair-latency histograms (`repair_rounds`, `repair_messages`,
    /// `repair_bits`) and damage-locality histograms (`damage_nodes`,
    /// `woken`, `damage_radius`), plus `epochs` / `invalidated_edges`
    /// counters. The [`EpochReport`] scalars answer "what did epoch
    /// `e` cost"; this registry answers "what does an epoch cost",
    /// p50/p99/max included.
    metrics: dobs::Registry,
}

impl DynEngine {
    /// New engine over `g` (call [`DynEngine::bootstrap`] next).
    pub fn new(g: Graph, model: ChurnModel, algo: RepairAlgo, seed: u64) -> Self {
        Self::with_cfg(g, model, algo, seed, ExecCfg::default())
    }

    /// [`DynEngine::new`] under explicit execution knobs. Repair is
    /// bit-identical across `cfg.threads`.
    ///
    /// A requested [`SchedMode::Hybrid`] is pinned down to
    /// [`SchedMode::Sparse`] here: repair traffic after the bootstrap is
    /// damage-local by design (the damage-locality gauges in
    /// [`EpochReport`] measure exactly that), so epochs live far below
    /// the hybrid judge's dense threshold and the dual-representation
    /// machinery would only add judge checks to every quiet round. The
    /// pin is sound because the modes are bit-identical by contract —
    /// it changes cost, never results.
    pub fn with_cfg(
        g: Graph,
        model: ChurnModel,
        algo: RepairAlgo,
        seed: u64,
        mut cfg: ExecCfg,
    ) -> Self {
        if cfg.sched == SchedMode::Hybrid {
            cfg.sched = SchedMode::Sparse;
        }
        let n = g.n();
        DynEngine {
            m: Matching::new(n),
            g,
            churn: ChurnGen::new(model, seed ^ 0xD15EA5E),
            algo,
            cfg,
            seed,
            epoch: 0,
            net: None,
            session: None,
            reports: Vec::new(),
            metrics: dobs::Registry::new(),
        }
    }

    /// The per-epoch repair distributions (see the `metrics` field
    /// docs for the histogram names). Empty until the first
    /// post-bootstrap epoch completes.
    pub fn metrics(&self) -> &dobs::Registry {
        &self.metrics
    }

    /// Record one epoch into the metrics registry and the flight
    /// recorder (if one is installed). Bootstrap epochs reach the
    /// trace but not the histograms — "everything is damage" would
    /// drown the distributions the churn epochs are measured by.
    fn observe_epoch(&mut self, rep: &EpochReport) {
        if dobs::plane::enabled() {
            dobs::plane::record(dobs::Event::Epoch {
                t_ns: dobs::plane::now_ns(),
                epoch: rep.epoch,
                rounds: rep.rounds,
                damage: rep.damage as u64,
                woken: rep.woken as u64,
                radius: rep.locality_radius.unwrap_or(0) as u64,
            });
        }
        if rep.epoch > 0 {
            self.metrics.inc("epochs", 1);
            self.metrics
                .inc("invalidated_edges", rep.invalidated as u64);
            self.metrics.record("repair_rounds", rep.rounds);
            self.metrics.record("repair_messages", rep.messages);
            self.metrics.record("repair_bits", rep.bits);
            self.metrics.record("damage_nodes", rep.damage as u64);
            self.metrics.record("woken", rep.woken as u64);
            if let Some(r) = rep.locality_radius {
                self.metrics.record("damage_radius", r as u64);
            }
        }
    }

    /// Append a batch to the replay trace ([`ChurnModel::Trace`]).
    pub fn push_trace(&mut self, batch: MutationBatch) {
        self.churn.push_trace(batch);
    }

    /// The current communication graph.
    pub fn graph(&self) -> &Graph {
        &self.g
    }

    /// The current matching.
    pub fn matching(&self) -> &Matching {
        &self.m
    }

    /// Epochs executed so far (including the bootstrap).
    pub fn epochs(&self) -> u64 {
        self.epoch
    }

    /// Cumulative statistics of the persistent repair network —
    /// including the scheduler gauges (`node_steps`, per-round
    /// `active`) that show each epoch's cost tracking the damage, not
    /// `n`. `None` for [`RepairAlgo::IncrementalGeneric`], whose
    /// phases run on throwaway networks.
    pub fn net_stats(&self) -> Option<&NetStats> {
        self.net.as_ref().map(Network::stats)
    }

    /// Epoch 0: build the initial matching from scratch (everything is
    /// damage). Must be called once, before [`DynEngine::step_epoch`].
    pub fn bootstrap(&mut self) -> &EpochReport {
        assert_eq!(self.epoch, 0, "bootstrap runs exactly once");
        let report = match self.algo {
            RepairAlgo::IncrementalMaximal => {
                let topo = dmatch::topology_of(&self.g);
                let nodes = (0..self.g.n() as NodeId)
                    .map(|v| RepairNode::new(topo.degree(v)))
                    .collect();
                let net = Network::new(topo, nodes, self.seed).with_cfg(self.cfg);
                self.net = Some(net);
                self.run_maximal_epoch(MutationBatch::empty(), 0, None, 0)
            }
            RepairAlgo::IncrementalGeneric { k } => {
                let session = Session::on(&self.g)
                    .algorithm(Algorithm::Generic { k })
                    .seed(self.seed)
                    .exec(self.cfg)
                    .build();
                self.session = Some(session);
                self.run_generic_epoch(MutationBatch::empty(), 0, None, 0)
            }
        };
        self.observe_epoch(&report);
        self.reports.push(report);
        self.epoch = 1;
        self.reports.last().expect("just pushed")
    }

    /// Run one epoch: draw a churn batch, patch the network, repair the
    /// matching, and append (and return) the epoch's report.
    pub fn step_epoch(&mut self) -> &EpochReport {
        assert!(self.epoch > 0, "call bootstrap first");
        let batch = self.churn.next_batch(&self.g);
        self.apply_batch(batch)
    }

    /// Run one epoch with an explicit batch (trace-style driving; the
    /// batch must be valid against the current graph).
    pub fn step_with(&mut self, batch: MutationBatch) -> &EpochReport {
        assert!(self.epoch > 0, "call bootstrap first");
        self.apply_batch(batch.normalized())
    }

    fn apply_batch(&mut self, batch: MutationBatch) -> &EpochReport {
        // Invalidate matched edges the batch destroys; their endpoints
        // are part of the damage.
        let mut invalidated = 0usize;
        // Ordered set: the damage set is iterated into the wake-up
        // schedule, so its order must come from node ids, not hash
        // state.
        let mut damage: BTreeSet<NodeId> = BTreeSet::new();
        for &(u, v) in &batch.removed {
            if self.m.mate(u) == Some(v) {
                let e = self.g.edge_between(u, v).expect("removed edge must exist");
                self.m.remove(&self.g, e);
                invalidated += 1;
                damage.insert(u);
                damage.insert(v);
            }
        }
        for &(u, v) in &batch.added {
            damage.insert(u);
            damage.insert(v);
        }
        // BTreeSet iterates in ascending id order, so the Vec is
        // already sorted.
        let damage: Vec<NodeId> = damage.into_iter().collect();
        // New graph (dgraph level; the simnet level is patched in
        // place below, slabs and all).
        let gone: HashSet<(NodeId, NodeId)> = batch.removed.iter().copied().collect();
        let mut edges: Vec<(NodeId, NodeId)> = self
            .g
            .edge_list()
            .iter()
            .copied()
            .filter(|e| !gone.contains(e))
            .collect();
        edges.extend_from_slice(&batch.added);
        self.g = Graph::new(self.g.n(), edges);
        debug_assert!(
            self.m.validate(&self.g).is_ok(),
            "surviving matching must stay valid on the new graph"
        );

        let epoch = self.epoch;
        self.epoch += 1;
        let report = match self.algo {
            RepairAlgo::IncrementalMaximal => {
                let patch = self
                    .net
                    .as_ref()
                    .expect("bootstrap created the network")
                    .topology()
                    .rewired(&batch.removed, &batch.added);
                self.net.as_mut().expect("checked").rewire(&patch);
                self.run_maximal_epoch(batch, epoch, Some(&damage), invalidated)
            }
            RepairAlgo::IncrementalGeneric { .. } => {
                let patch = RewirePatch::new(self.g.clone(), damage);
                self.run_generic_epoch(batch, epoch, Some(patch), invalidated)
            }
        };
        self.observe_epoch(&report);
        self.reports.push(report);
        self.reports.last().expect("just pushed")
    }

    /// Drive the persistent Israeli–Itai network until the matching is
    /// maximal on the current graph: one sync round, then 3-round
    /// iterations, then one drain round that absorbs the in-flight
    /// announcements (so liveness knowledge is exact at the boundary).
    /// Termination is an oracle check (the paper's convention).
    fn run_maximal_epoch(
        &mut self,
        batch: MutationBatch,
        epoch: u64,
        damage: Option<&[NodeId]>,
        invalidated: usize,
    ) -> EpochReport {
        let net = self.net.as_mut().expect("bootstrap created the network");
        let stats0 = snapshot(net.stats());
        let mut woken: BTreeSet<NodeId> = BTreeSet::new();
        let step = |net: &mut Network<RepairNode>, woken: &mut BTreeSet<NodeId>| {
            net.step();
            woken.extend(net.last_senders().iter().copied());
        };
        step(net, &mut woken); // sync round
        let budget = 200 + 60 * simnet::id_bits(self.g.n().max(2));
        let mut iterations = 0u64;
        loop {
            let m = extract_matching(net, &self.g);
            if m.is_maximal(&self.g) {
                self.m = m;
                break;
            }
            assert!(
                iterations < budget,
                "repair did not reach maximality within {budget} iterations"
            );
            for _ in 0..3 {
                step(net, &mut woken);
            }
            iterations += 1;
        }
        step(net, &mut woken); // drain round
        let stats1 = snapshot(net.stats());
        let locality_radius = damage.and_then(|d| locality_radius(&self.g, d, &woken));
        debug_assert!(self.check_liveness_invariant(), "stale liveness knowledge");
        EpochReport {
            epoch,
            added: batch.added.len(),
            removed: batch.removed.len(),
            invalidated,
            damage: damage.map_or(self.g.n(), <[NodeId]>::len),
            rounds: stats1.0 - stats0.0,
            messages: stats1.1 - stats0.1,
            bits: stats1.2 - stats0.2,
            iterations,
            woken: woken.len(),
            locality_radius,
            matching_size: self.m.size(),
            maximal: true, // the loop exits only on maximality
        }
    }

    /// One epoch of the session-driven generic arm: resume the
    /// persistent session with the rewire patch (epoch `e` seeds as
    /// `seed + e`, the engine's long-standing convention) and run the
    /// repair to completion; cost is the session's stats delta.
    fn run_generic_epoch(
        &mut self,
        batch: MutationBatch,
        epoch: u64,
        patch: Option<RewirePatch>,
        invalidated: usize,
    ) -> EpochReport {
        let session = self
            .session
            .as_mut()
            .expect("bootstrap created the session");
        let before = snapshot(session.stats());
        let phases_before = session.phase_log().len();
        if let Some(patch) = patch {
            session.resume_after_rewire(patch);
        }
        session.run_to_completion();
        self.m = session.matching().clone();
        let after = snapshot(session.stats());
        debug_assert_eq!(session.epoch(), epoch, "session epochs track engine epochs");
        let damage = if epoch == 0 {
            self.g.n()
        } else {
            2 * batch.len()
        };
        EpochReport {
            epoch,
            added: batch.added.len(),
            removed: batch.removed.len(),
            invalidated,
            damage,
            rounds: after.0 - before.0,
            messages: after.1 - before.1,
            bits: after.2 - before.2,
            iterations: (session.phase_log().len() - phases_before) as u64,
            woken: 0,
            locality_radius: None,
            matching_size: self.m.size(),
            maximal: self.m.is_maximal(&self.g),
        }
    }

    /// Cost of recomputing the current matching from scratch with the
    /// same algorithm family — the baseline E15 compares repair
    /// against. Deterministic in `(graph, seed, epoch)`.
    pub fn recompute_baseline(&self) -> (Matching, NetStats) {
        let seed = self.seed.wrapping_mul(0x9E37).wrapping_add(self.epoch);
        let alg = match self.algo {
            RepairAlgo::IncrementalMaximal => Algorithm::IsraeliItai,
            RepairAlgo::IncrementalGeneric { k } => Algorithm::Generic { k },
        };
        let r = Session::on(&self.g)
            .algorithm(alg)
            .seed(seed)
            .exec(self.cfg)
            .build()
            .run_to_completion();
        (r.matching, r.stats)
    }

    /// Ground-truth check of the protocol's liveness knowledge: every
    /// node's `active[p]` must equal "the neighbor on `p` is free".
    /// Exact at epoch boundaries (the drain round absorbed all
    /// announcements). Test hook; meaningless for the generic variant
    /// (always true).
    pub fn check_liveness_invariant(&self) -> bool {
        let Some(net) = self.net.as_ref() else {
            return true;
        };
        let topo = net.topology();
        net.nodes().iter().enumerate().all(|(v, s)| {
            s.active
                .iter()
                .enumerate()
                .all(|(p, &a)| a == self.m.is_free(topo.neighbor(v as NodeId, p)))
        })
    }
}

/// (rounds, messages, bits) triple for cheap before/after deltas.
fn snapshot(s: &NetStats) -> (u64, u64, u64) {
    (s.rounds, s.messages, s.bits)
}

/// Extract the matching from the persistent network's node states.
fn extract_matching(net: &Network<RepairNode>, g: &Graph) -> Matching {
    let topo = net.topology();
    let mates: Vec<NodeId> = net
        .nodes()
        .iter()
        .enumerate()
        .map(|(v, s)| match s.mate_port {
            Some(p) => topo.neighbor(v as NodeId, p),
            None => UNMATCHED,
        })
        .collect();
    let m = Matching::from_mates(mates);
    debug_assert!(
        m.validate(g).is_ok(),
        "protocol produced an invalid matching"
    );
    m
}

/// Max BFS distance (over the current graph) from the damage set to
/// any node that spoke; `None` when there was no damage or a speaker
/// is unreachable from it.
fn locality_radius(g: &Graph, damage: &[NodeId], woken: &BTreeSet<NodeId>) -> Option<usize> {
    if damage.is_empty() || woken.is_empty() {
        return None;
    }
    let mut dist = vec![usize::MAX; g.n()];
    let mut queue = std::collections::VecDeque::new();
    for &s in damage {
        if dist[s as usize] == usize::MAX {
            dist[s as usize] = 0;
            queue.push_back(s);
        }
    }
    while let Some(v) = queue.pop_front() {
        for &(u, _) in g.incident(v) {
            if dist[u as usize] == usize::MAX {
                dist[u as usize] = dist[v as usize] + 1;
                queue.push_back(u);
            }
        }
    }
    woken
        .iter()
        .map(|&v| dist[v as usize])
        .max()
        .filter(|&d| d != usize::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgraph::generators::random::gnp;

    #[test]
    fn bootstrap_reaches_maximality() {
        let g = gnp(120, 0.04, 1);
        let mut eng = DynEngine::new(
            g,
            ChurnModel::EdgeChurn { rate: 0.05 },
            RepairAlgo::IncrementalMaximal,
            7,
        );
        let rep = eng.bootstrap();
        assert!(rep.maximal);
        assert_eq!(rep.epoch, 0);
        assert!(rep.matching_size > 0);
        assert!(eng.matching().is_maximal(eng.graph()));
        assert!(eng.check_liveness_invariant());
    }

    #[test]
    fn epochs_repair_under_edge_churn() {
        let g = gnp(150, 0.04, 2);
        let mut eng = DynEngine::new(
            g,
            ChurnModel::EdgeChurn { rate: 0.05 },
            RepairAlgo::IncrementalMaximal,
            8,
        );
        eng.bootstrap();
        for _ in 0..8 {
            let rep = eng.step_epoch();
            assert!(rep.maximal);
            let (rounds, messages) = (rep.rounds, rep.messages);
            assert!(rounds >= 2, "sync + drain rounds are always charged");
            let _ = messages;
            assert!(eng.matching().validate(eng.graph()).is_ok());
            assert!(eng.matching().is_maximal(eng.graph()));
            assert!(eng.check_liveness_invariant());
        }
    }

    #[test]
    fn epochs_repair_under_crash_faults() {
        // Crash-stop faults from the adversary plane drive the churn:
        // each epoch replays a window of the pre-sampled schedule as
        // damage balls (crash tears out a node's edges, rejoin restores
        // them) and incremental repair must re-reach maximality.
        let g = gnp(120, 0.05, 4);
        let mut eng = DynEngine::new(
            g,
            ChurnModel::Crash {
                plan: simnet::FaultPlan::NONE.with_crash(0.08, 3),
                rounds_per_epoch: 2,
            },
            RepairAlgo::IncrementalMaximal,
            12,
        );
        eng.bootstrap();
        let mut saw_damage = false;
        for _ in 0..12 {
            let rep = eng.step_epoch();
            saw_damage |= rep.woken > 0;
            assert!(rep.maximal);
            assert!(eng.matching().validate(eng.graph()).is_ok());
            assert!(eng.matching().is_maximal(eng.graph()));
            assert!(eng.check_liveness_invariant());
        }
        assert!(saw_damage, "the crash schedule must inject real damage");
    }

    #[test]
    fn no_damage_epoch_is_nearly_free() {
        let g = gnp(80, 0.05, 3);
        let mut eng = DynEngine::new(g, ChurnModel::Trace, RepairAlgo::IncrementalMaximal, 9);
        eng.bootstrap();
        let rep = eng.step_with(MutationBatch::empty());
        assert_eq!(rep.messages, 0, "no damage ⇒ nobody speaks");
        assert_eq!(rep.rounds, 2, "just the sync and drain rounds");
        assert_eq!(rep.woken, 0);
    }

    #[test]
    fn locality_radius_is_small_for_local_damage() {
        // A long path; churn away one matched edge in the middle. The
        // repair must stay near the damage.
        let n = 200u32;
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = Graph::new(n as usize, edges);
        let mut eng = DynEngine::new(g, ChurnModel::Trace, RepairAlgo::IncrementalMaximal, 10);
        eng.bootstrap();
        let (u, v) = {
            let m = eng.matching();
            let mid = (0..n)
                .find(|&v| v > n / 2 && m.mate(v) == Some(v + 1))
                .expect("middle matched edge");
            (mid, mid + 1)
        };
        let rep = eng.step_with(MutationBatch {
            added: vec![],
            removed: vec![(u, v)],
        });
        assert!(rep.maximal);
        if let Some(r) = rep.locality_radius {
            assert!(r <= 6, "repair wandered {r} hops from the damage");
        }
        assert!(
            rep.woken <= 16,
            "{} nodes spoke for one lost edge",
            rep.woken
        );
    }

    #[test]
    fn generic_variant_meets_bound_each_epoch() {
        let g = gnp(50, 0.08, 4);
        let k = 2;
        let mut eng = DynEngine::new(
            g,
            ChurnModel::EdgeChurn { rate: 0.06 },
            RepairAlgo::IncrementalGeneric { k },
            11,
        );
        eng.bootstrap();
        for _ in 0..5 {
            eng.step_epoch();
            let opt = dgraph::blossom::max_matching(eng.graph()).size();
            let bound = 1.0 - 1.0 / (k as f64 + 1.0);
            assert!(eng.matching().validate(eng.graph()).is_ok());
            assert!(
                opt == 0 || eng.matching().size() as f64 >= bound * opt as f64 - 1e-9,
                "ratio {} < {bound}",
                eng.matching().size() as f64 / opt as f64
            );
        }
    }

    #[test]
    fn node_churn_keeps_validity() {
        let g = gnp(100, 0.05, 5);
        let mut eng = DynEngine::new(
            g,
            ChurnModel::NodeChurn {
                rate: 0.05,
                degree: 4,
            },
            RepairAlgo::IncrementalMaximal,
            12,
        );
        eng.bootstrap();
        for _ in 0..6 {
            let rep = eng.step_epoch();
            assert!(rep.maximal);
            assert!(eng.matching().validate(eng.graph()).is_ok());
        }
    }
}
