//! # dchurn — epoch-based churn and incremental matching repair
//!
//! Every other layer of this reproduction assumes a static graph; this
//! crate makes the network *dynamic*. The motivating application of
//! the paper — switch scheduling — is a repeated matching problem whose
//! instance changes every cycle, and the LCA line of work
//! (Alon–Rubinfeld–Vardi–Xie; Reingold–Vardi) shows that matching
//! answers can be maintained with polylog-radius local work. The engine
//! here makes that property *measurable*: how many rounds and messages
//! does it take to repair a matching after churn, compared to
//! recomputing it from scratch?
//!
//! Execution proceeds in **epochs**:
//!
//! 1. a deterministic churn generator ([`ChurnGen`]) produces a
//!    [`MutationBatch`] — seeded edge insert/delete batches, node
//!    join/leave, degree-preserving rewiring, or trace replay;
//! 2. the engine applies the batch: [`simnet::Topology::rewired`]
//!    patches the CSR and [`simnet::Network::rewire`] remaps the
//!    port-indexed message-plane slabs (surviving directed-edge slots
//!    keep their in-flight payloads; only new edges get fresh slots),
//!    while per-node protocol state crosses the boundary through the
//!    [`simnet::Rewire`] trait (old-port → new-port remap, invalidation
//!    of matched edges that vanished);
//! 3. a bounded number of **repair rounds** runs; only nodes in the
//!    neighborhood of the damage ever send, which the engine verifies
//!    by measuring the *locality radius* — the maximum BFS distance
//!    from the damage of any node that spoke.
//!
//! Two repair algorithms are provided: an incremental Israeli–Itai
//! ([`repair::RepairNode`], maximal ⇒ ½-MCM after every epoch) and the
//! warm-started generic `(1-1/(k+1))`-MCM
//! ([`dmatch::generic::repair`]). Both are bit-identical across worker
//! thread counts, like every other protocol in the workspace.
//!
//! ```
//! use dchurn::{ChurnModel, DynEngine, RepairAlgo};
//! use dgraph::generators::random::gnp;
//!
//! let g = gnp(200, 0.03, 7);
//! let mut eng = DynEngine::new(g, ChurnModel::EdgeChurn { rate: 0.05 },
//!                              RepairAlgo::IncrementalMaximal, 42);
//! eng.bootstrap();
//! for _ in 0..5 {
//!     let rep = eng.step_epoch();
//!     assert!(rep.maximal, "repair restores maximality every epoch");
//! }
//! ```

pub mod churn;
pub mod engine;
pub mod mutation;
pub mod repair;

pub use churn::{ChurnGen, ChurnModel};
pub use engine::{DynEngine, EpochReport, RepairAlgo};
pub use mutation::MutationBatch;
pub use repair::{RMsg, RepairNode};
