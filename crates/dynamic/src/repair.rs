//! Incremental Israeli–Itai: maximal-matching repair across epochs.
//!
//! The protocol keeps the classical three-phase iteration (propose /
//! accept / resolve+announce) but is built to *survive churn* and to
//! keep repair traffic inside the damage neighborhood:
//!
//! * **Nobody halts.** Nodes with nothing to do go *passive* (send
//!   nothing) instead of halting, so they keep processing liveness
//!   announcements and their knowledge of which neighbors are free
//!   never goes stale — the invariant that lets a proposal always
//!   target a genuinely free node. Passivity, not halting, is what
//!   makes the cost local: a node speaks only when churn near it gives
//!   it something to say.
//! * **Two liveness announcements.** `Matched` kills a port (classic);
//!   `Freed` — sent by a node whose matched edge was churned away —
//!   resurrects it. Both are processed in every round, whatever the
//!   phase.
//! * **Epoch boundaries are one sync round.** After a
//!   [`simnet::Network::rewire`], each node's [`simnet::Rewire`] hook
//!   has remapped its port state; in the first round of the epoch,
//!   newly freed nodes broadcast `Freed` and matched nodes announce
//!   `Matched` on born ports (a new neighbor starts optimistic). From
//!   round 1 on, the usual iterations run — and only nodes that heard
//!   about damage ever participate.
//!
//! Messages stay 2 bits, well inside CONGEST.

use simnet::{BitSize, Ctx, Inbox, Port, Protocol, Rewire, RewireCtx};

/// Wire messages (2 bits each).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RMsg {
    /// "Will you match with me?"
    Propose,
    /// "Yes" (sent only to the chosen proposer; consummates the match).
    Accept,
    /// "I am matched; stop considering this edge."
    Matched,
    /// "My matched edge was churned away; this edge is available again."
    Freed,
}

impl BitSize for RMsg {
    fn bit_size(&self) -> u64 {
        2
    }
}

/// Per-node state of the incremental matcher.
#[derive(Debug, Clone)]
pub struct RepairNode {
    /// Port of the mate once matched.
    pub(crate) mate_port: Option<Port>,
    /// `active[p]` = the neighbor on `p` is currently free. Maintained
    /// exactly (up to one round of message latency) by the `Matched` /
    /// `Freed` announcements.
    pub(crate) active: Vec<bool>,
    /// Network round at which the current epoch began (recorded by
    /// `on_rewire` from [`RewireCtx::round`]; 0 for the bootstrap
    /// epoch). The epoch-local round is `ctx.round() - epoch_start`:
    /// derived from the global clock — not a per-step counter — so
    /// nodes that sleep through quiet rounds stay phase-synchronized.
    epoch_start: u64,
    /// True while this node is male in the current iteration.
    male: bool,
    /// Port proposed to in the current iteration.
    proposed_to: Option<Port>,
    /// Set by `on_rewire` when the matched edge vanished: broadcast
    /// `Freed` in the sync round.
    freed_pending: bool,
    /// Born ports a matched node must announce `Matched` on in the
    /// sync round (the new neighbor starts optimistic).
    born_announce: Vec<Port>,
    /// Matched during the current iteration: announce in its phase 2.
    just_matched: bool,
}

impl RepairNode {
    /// Fresh node of the given degree: free, all ports presumed live.
    pub fn new(degree: usize) -> Self {
        RepairNode {
            mate_port: None,
            active: vec![true; degree],
            epoch_start: 0,
            male: false,
            proposed_to: None,
            freed_pending: false,
            born_announce: Vec::new(),
            just_matched: false,
        }
    }

    /// Port of the current mate, if matched.
    pub fn mate_port(&self) -> Option<Port> {
        self.mate_port
    }

    /// Nothing to say and nothing to decide: matched with no pending
    /// announcements, or free with every port dead. Idle nodes
    /// [`Ctx::sleep`] — the `Matched`/`Freed`/`Propose` mail that could
    /// change their situation is exactly what wakes them, so passivity
    /// costs the round loop nothing (this is what makes a repair epoch
    /// cost O(damage) node steps instead of O(n) per round).
    fn idle(&self) -> bool {
        !self.freed_pending
            && !self.just_matched
            && self.born_announce.is_empty()
            && (self.mate_port.is_some() || !self.active.iter().any(|&a| a))
    }
}

impl Protocol for RepairNode {
    type Msg = RMsg;

    fn on_round(&mut self, ctx: &mut Ctx<'_, RMsg>, inbox: Inbox<'_, RMsg>) {
        // Liveness bookkeeping first, in every round: announcements
        // sent in the previous round take effect before any decision.
        for env in inbox.iter() {
            match env.msg {
                RMsg::Matched => self.active[env.port] = false,
                RMsg::Freed => self.active[env.port] = true,
                _ => {}
            }
        }
        self.phase_round(ctx, inbox);
        if self.idle() {
            ctx.sleep();
        }
    }
}

impl RepairNode {
    /// The phase work of one round (split out so `on_round` can apply
    /// the idle/sleep decision after every branch, early returns
    /// included).
    fn phase_round(&mut self, ctx: &mut Ctx<'_, RMsg>, inbox: Inbox<'_, RMsg>) {
        let lr = ctx.round() - self.epoch_start;
        if lr == 0 {
            // Sync round: publish what the rewire changed about me.
            if self.freed_pending {
                self.freed_pending = false;
                for p in 0..ctx.degree() {
                    ctx.send(p, RMsg::Freed);
                }
            } else if self.mate_port.is_some() {
                for i in 0..self.born_announce.len() {
                    ctx.send(self.born_announce[i], RMsg::Matched);
                }
            }
            self.born_announce.clear();
            return;
        }
        match (lr - 1) % 3 {
            0 => {
                // Propose: free nodes with live ports flip a coin.
                if self.mate_port.is_some() {
                    return;
                }
                let live_count = self.active.iter().filter(|&&a| a).count();
                if live_count == 0 {
                    return; // passive, not halted: churn may revive us
                }
                self.male = ctx.rng().bernoulli(0.5);
                self.proposed_to = None;
                if self.male {
                    let pick = ctx.rng().below(live_count as u64) as usize;
                    let p = self
                        .active
                        .iter()
                        .enumerate()
                        .filter(|&(_, &a)| a)
                        .nth(pick)
                        .expect("pick < live_count")
                        .0;
                    self.proposed_to = Some(p);
                    ctx.send(p, RMsg::Propose);
                }
            }
            1 => {
                // Accept: free females take the lowest-port proposal.
                if self.mate_port.is_some() || self.male {
                    return;
                }
                if let Some(env) = inbox
                    .iter()
                    .find(|e| *e.msg == RMsg::Propose && self.active[e.port])
                {
                    self.mate_port = Some(env.port);
                    // The mate is no longer free; nobody announces this
                    // to us (announcements skip the mate), so record it
                    // first-hand.
                    self.active[env.port] = false;
                    self.just_matched = true;
                    ctx.send(env.port, RMsg::Accept);
                }
            }
            2 => {
                // Resolve: proposers learn their fate; fresh couples
                // announce to everyone else.
                if self.mate_port.is_none() {
                    if let Some(env) = inbox.iter().find(|e| *e.msg == RMsg::Accept) {
                        debug_assert_eq!(Some(env.port), self.proposed_to);
                        self.mate_port = Some(env.port);
                        self.active[env.port] = false; // mate is taken — by us
                        self.just_matched = true;
                    }
                }
                if self.just_matched {
                    self.just_matched = false;
                    let mate = self.mate_port.expect("just matched");
                    for p in 0..ctx.degree() {
                        if p != mate {
                            ctx.send(p, RMsg::Matched);
                        }
                    }
                }
            }
            _ => unreachable!(),
        }
    }
}

impl Rewire for RepairNode {
    fn on_rewire(&mut self, ctx: &RewireCtx<'_>) {
        let mut active = vec![true; ctx.new_degree()]; // born ports start optimistic
        for (p, &a) in self.active.iter().enumerate() {
            if let Some(np) = ctx.new_port(p) {
                active[np] = a;
            }
        }
        self.active = active;
        self.mate_port = match self.mate_port {
            Some(mp) => match ctx.new_port(mp) {
                Some(np) => Some(np),
                None => {
                    // The matched edge was churned away: I am free
                    // again and must tell the neighborhood.
                    self.freed_pending = true;
                    None
                }
            },
            None => None,
        };
        self.born_announce = if self.mate_port.is_some() {
            ctx.born_ports().to_vec()
        } else {
            Vec::new()
        };
        self.epoch_start = ctx.round();
        self.male = false;
        self.proposed_to = None;
        self.just_matched = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{Network, Topology};

    fn net_of(n: usize, edges: &[(u32, u32)], seed: u64) -> Network<RepairNode> {
        let topo = Topology::from_edges(n, edges);
        let nodes = (0..n as u32)
            .map(|v| RepairNode::new(topo.degree(v)))
            .collect();
        Network::new(topo, nodes, seed)
    }

    fn mates(net: &Network<RepairNode>) -> Vec<Option<u32>> {
        net.nodes()
            .iter()
            .enumerate()
            .map(|(v, s)| s.mate_port.map(|p| net.topology().neighbor(v as u32, p)))
            .collect()
    }

    fn run_iterations(net: &mut Network<RepairNode>, iters: u64) {
        net.run_rounds(1 + 3 * iters);
    }

    #[test]
    fn cold_start_matches_a_path() {
        let mut net = net_of(4, &[(0, 1), (1, 2), (2, 3)], 3);
        run_iterations(&mut net, 40);
        let m = mates(&net);
        // Symmetric, and maximal: no two adjacent free nodes.
        for (v, &mv) in m.iter().enumerate() {
            if let Some(u) = mv {
                assert_eq!(m[u as usize], Some(v as u32));
            }
        }
        for &(a, b) in &[(0u32, 1u32), (1, 2), (2, 3)] {
            assert!(
                m[a as usize].is_some() || m[b as usize].is_some(),
                "edge ({a},{b}) violates maximality"
            );
        }
    }

    #[test]
    fn matched_pair_goes_quiet() {
        let mut net = net_of(2, &[(0, 1)], 1);
        run_iterations(&mut net, 30);
        assert!(mates(&net)[0].is_some());
        // Once matched, the pair is passive: no further traffic.
        let sent = net.step();
        assert_eq!(sent, 0, "matched nodes must be silent");
    }

    #[test]
    fn rewire_frees_and_reannounces() {
        // Match the pair (0,1), then churn the edge away and connect
        // each to a fresh partner; repair must rematch both.
        let mut net = net_of(4, &[(0, 1)], 5);
        run_iterations(&mut net, 30);
        assert_eq!(mates(&net)[0], Some(1));
        let patch = net.topology().rewired(&[(0, 1)], &[(0, 2), (1, 3)]);
        net.rewire(&patch);
        run_iterations(&mut net, 40);
        let m = mates(&net);
        assert_eq!(m[0], Some(2));
        assert_eq!(m[1], Some(3));
    }

    #[test]
    fn freed_announcement_revives_third_party_knowledge() {
        // Triangle-free chain: 2 matched with 3; 0-1 matched. Node 4 is
        // adjacent to 3 only, so it ends free with a dead port. When
        // (2,3) is churned away, 3 must broadcast Freed and 4 must
        // regain the port and match with 3.
        let mut net = net_of(5, &[(0, 1), (2, 3), (3, 4)], 11);
        run_iterations(&mut net, 40);
        let m = mates(&net);
        assert_eq!(m[2], Some(3), "seeded run must match (2,3) first");
        assert_eq!(m[4], None);
        assert!(!net.nodes()[4].active[0], "4 learned its port is dead");
        let patch = net.topology().rewired(&[(2, 3)], &[]);
        net.rewire(&patch);
        run_iterations(&mut net, 40);
        let m = mates(&net);
        assert_eq!(m[3], Some(4), "Freed must revive the (3,4) edge");
    }
}
