//! Admissible traffic models for switch experiments.
//!
//! All models are parameterized by the offered load `ρ ∈ [0, 1]`: the
//! probability a given input receives a cell in a given cycle. No input
//! or output is oversubscribed, so a good scheduler should sustain any
//! `ρ < 1` (MWM does; maximal-matching schedulers saturate earlier
//! under skewed patterns — exactly what experiment E8 shows).

use simnet::rng::streams;
use simnet::SplitMix64;

/// Destination pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrafficModel {
    /// Each arrival picks a uniformly random output.
    Uniform { load: f64 },
    /// "Diagonal" skew: input `i` sends to output `i` with probability
    /// 2/3 and to `i+1 (mod N)` with probability 1/3 — the classic
    /// pattern on which maximal matchings underperform.
    Diagonal { load: f64 },
    /// Bursty on/off: arrivals come in geometric bursts (mean length
    /// `mean_burst`) all addressed to one output; the on/off duty cycle
    /// realizes load `ρ`.
    Bursty { load: f64, mean_burst: f64 },
    /// Hotspot: a `frac` fraction of arrivals target output 0, the
    /// rest are uniform. For `ρ·N·frac > 1` output 0 is oversubscribed
    /// (inadmissible) — no scheduler can deliver everything, which
    /// bounds the model-sanity tests.
    Hotspot { load: f64, frac: f64 },
}

impl TrafficModel {
    /// The offered load ρ.
    pub fn load(&self) -> f64 {
        match *self {
            TrafficModel::Uniform { load }
            | TrafficModel::Diagonal { load }
            | TrafficModel::Bursty { load, .. }
            | TrafficModel::Hotspot { load, .. } => load,
        }
    }

    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            TrafficModel::Uniform { .. } => "uniform",
            TrafficModel::Diagonal { .. } => "diagonal",
            TrafficModel::Bursty { .. } => "bursty",
            TrafficModel::Hotspot { .. } => "hotspot",
        }
    }

    /// True when the pattern oversubscribes no input or output of an
    /// `n`-port switch — the condition under which an ideal scheduler
    /// can deliver everything. Inputs offer at most `ρ ≤ 1` by
    /// construction; outputs are the binding constraint:
    ///
    /// * uniform / bursty: each output receives `ρ` in expectation
    ///   (bursts pick uniform destinations, so the long-run rate is
    ///   the same even though the short-run variance is not);
    /// * diagonal: output `i` receives `⅔ρ` from input `i` plus `⅓ρ`
    ///   from input `i−1`, i.e. exactly `ρ`;
    /// * hotspot: output 0 receives `n·ρ·(frac + (1−frac)/n)`, which
    ///   exceeds 1 — an *inadmissible* pattern no scheduler can fully
    ///   deliver — once `ρ·(n·frac + 1 − frac) > 1`.
    pub fn is_admissible(&self, n: usize) -> bool {
        let rho = self.load();
        if !(0.0..=1.0).contains(&rho) {
            return false;
        }
        match *self {
            TrafficModel::Uniform { .. }
            | TrafficModel::Diagonal { .. }
            | TrafficModel::Bursty { .. } => true,
            TrafficModel::Hotspot { frac, .. } => {
                rho * (n as f64 * frac + (1.0 - frac)) <= 1.0 + 1e-12
            }
        }
    }
}

/// Per-input burst state.
#[derive(Debug, Clone, Copy)]
struct Burst {
    /// Remaining cells of the current burst, and its destination.
    remaining: u64,
    dest: usize,
}

/// Stateful traffic generator for an `N`-port switch.
#[derive(Debug)]
pub struct TrafficGen {
    model: TrafficModel,
    n: usize,
    rng: SplitMix64,
    bursts: Vec<Burst>,
}

impl TrafficGen {
    /// Create a generator.
    pub fn new(model: TrafficModel, n: usize, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&model.load()), "load must be in [0,1]");
        TrafficGen {
            model,
            n,
            rng: SplitMix64::for_node(seed, streams::SWITCH_TRAFFIC),
            bursts: vec![
                Burst {
                    remaining: 0,
                    dest: 0
                };
                n
            ],
        }
    }

    /// Arrivals for one cycle: `Some(output)` per input.
    pub fn arrivals(&mut self) -> Vec<Option<usize>> {
        let n = self.n;
        (0..n)
            .map(|i| match self.model {
                TrafficModel::Uniform { load } => self
                    .rng
                    .bernoulli(load)
                    .then(|| self.rng.below(n as u64) as usize),
                TrafficModel::Diagonal { load } => self.rng.bernoulli(load).then(|| {
                    if self.rng.bernoulli(2.0 / 3.0) {
                        i
                    } else {
                        (i + 1) % n
                    }
                }),
                TrafficModel::Hotspot { load, frac } => self.rng.bernoulli(load).then(|| {
                    if self.rng.bernoulli(frac) {
                        0
                    } else {
                        self.rng.below(n as u64) as usize
                    }
                }),
                TrafficModel::Bursty { load, mean_burst } => {
                    let b = &mut self.bursts[i];
                    if b.remaining == 0 {
                        // Start a new burst with probability chosen so
                        // the long-run load is ρ: the on/off renewal has
                        // mean on-time B and mean off-time 1/p_on, so
                        // ρ = B / (B + 1/p_on) ⇒ p_on = ρ / (B(1-ρ)).
                        let p_on = if load >= 1.0 {
                            1.0
                        } else {
                            (load / (mean_burst * (1.0 - load))).min(1.0)
                        };
                        if self.rng.bernoulli(p_on) {
                            // Geometric burst length with the given mean.
                            let mut len = 1u64;
                            while self.rng.bernoulli(1.0 - 1.0 / mean_burst) {
                                len += 1;
                            }
                            b.remaining = len;
                            b.dest = self.rng.below(n as u64) as usize;
                        }
                    }
                    if b.remaining > 0 {
                        b.remaining -= 1;
                        Some(b.dest)
                    } else {
                        None
                    }
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measured_load(model: TrafficModel, n: usize, cycles: u64) -> f64 {
        let mut gen = TrafficGen::new(model, n, 1);
        let mut arrivals = 0u64;
        for _ in 0..cycles {
            arrivals += gen.arrivals().iter().flatten().count() as u64;
        }
        arrivals as f64 / (cycles * n as u64) as f64
    }

    #[test]
    fn uniform_load_is_calibrated() {
        let rho = measured_load(TrafficModel::Uniform { load: 0.6 }, 8, 20_000);
        assert!((rho - 0.6).abs() < 0.02, "measured {rho}");
    }

    #[test]
    fn diagonal_targets_two_outputs() {
        let mut gen = TrafficGen::new(TrafficModel::Diagonal { load: 1.0 }, 4, 2);
        for _ in 0..200 {
            for (i, d) in gen.arrivals().into_iter().enumerate() {
                let d = d.expect("load 1.0 always arrives");
                assert!(d == i || d == (i + 1) % 4);
            }
        }
    }

    #[test]
    fn bursty_load_is_roughly_calibrated() {
        let rho = measured_load(
            TrafficModel::Bursty {
                load: 0.5,
                mean_burst: 8.0,
            },
            8,
            40_000,
        );
        assert!((rho - 0.5).abs() < 0.08, "measured {rho}");
    }

    #[test]
    fn hotspot_concentrates_on_output_zero() {
        let mut gen = TrafficGen::new(
            TrafficModel::Hotspot {
                load: 1.0,
                frac: 0.5,
            },
            8,
            5,
        );
        let mut zero = 0usize;
        let mut total = 0usize;
        for _ in 0..2000 {
            for d in gen.arrivals().into_iter().flatten() {
                total += 1;
                if d == 0 {
                    zero += 1;
                }
            }
        }
        let frac = zero as f64 / total as f64;
        // 0.5 direct + 0.5/8 uniform spill ≈ 0.5625.
        assert!((frac - 0.5625).abs() < 0.04, "hotspot fraction {frac}");
    }

    #[test]
    fn zero_load_generates_nothing() {
        assert_eq!(
            measured_load(TrafficModel::Uniform { load: 0.0 }, 4, 100),
            0.0
        );
    }

    #[test]
    fn admissibility_matches_the_arithmetic() {
        assert!(TrafficModel::Uniform { load: 1.0 }.is_admissible(8));
        assert!(TrafficModel::Diagonal { load: 1.0 }.is_admissible(8));
        assert!(TrafficModel::Bursty {
            load: 1.0,
            mean_burst: 16.0
        }
        .is_admissible(8));
        // Hotspot on 8 ports: output 0 receives ρ·(8·frac + 1 − frac).
        let hot = |load, frac| TrafficModel::Hotspot { load, frac };
        assert!(hot(0.5, 0.12).is_admissible(8)); // 0.5·1.84 = 0.92
        assert!(!hot(0.5, 0.5).is_admissible(8)); // 0.5·4.5  = 2.25
        assert!(!hot(0.95, 0.2).is_admissible(8)); // 0.95·2.4 = 2.28
        assert!(hot(0.2, 0.5).is_admissible(2)); // 0.2·1.5  = 0.3
    }
}
