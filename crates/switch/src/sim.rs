//! The switch cycle loop and its statistics.
//!
//! The port topology can vary over time: a [`FailurePlan`] flips
//! individual input→output links down and up mid-run (a seeded
//! two-state Markov chain per link). A down link disappears from the
//! occupancy the scheduler sees — exactly the dynamic-network setting
//! of the `dchurn` crate, at the switch-fabric scale — and its cells
//! wait in the VOQ until the link heals.

use crate::sched::{is_valid_decision, Scheduler, SchedulerKind};
use crate::traffic::{TrafficGen, TrafficModel};
use crate::voq::{Cell, Voqs};
use simnet::rng::streams;
use simnet::SplitMix64;

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Port count `N`.
    pub ports: usize,
    /// Cycles to simulate.
    pub cycles: u64,
    /// Warm-up cycles excluded from delay statistics.
    pub warmup: u64,
    /// Traffic model.
    pub traffic: TrafficModel,
    /// RNG seed.
    pub seed: u64,
}

/// Time-varying link failures: each of the `N²` input→output links is
/// an independent two-state Markov chain, going down with probability
/// `fail` and back up with probability `repair` per cycle. Long-run
/// availability is `repair / (fail + repair)`. Deterministic in
/// `seed`; independent of the traffic and scheduler RNG streams.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailurePlan {
    /// Per-link per-cycle failure probability.
    pub fail: f64,
    /// Per-link per-cycle repair probability.
    pub repair: f64,
    /// RNG seed for the failure process.
    pub seed: u64,
}

/// Runtime link state driven by a [`FailurePlan`].
struct LinkState {
    up: Vec<Vec<bool>>,
    plan: FailurePlan,
    rng: SplitMix64,
    /// Down link-cycles accumulated (for the availability report).
    down_cycles: u64,
}

impl LinkState {
    fn new(n: usize, plan: FailurePlan) -> Self {
        assert!((0.0..=1.0).contains(&plan.fail) && (0.0..=1.0).contains(&plan.repair));
        LinkState {
            up: vec![vec![true; n]; n],
            plan,
            rng: SplitMix64::for_node(plan.seed, streams::SWITCH_FAILURE),
            down_cycles: 0,
        }
    }

    /// Advance every link one cycle (fixed row-major order, so the
    /// process is reproducible).
    fn tick(&mut self) {
        for row in &mut self.up {
            for up in row.iter_mut() {
                *up = if *up {
                    !self.rng.bernoulli(self.plan.fail)
                } else {
                    self.rng.bernoulli(self.plan.repair)
                };
                if !*up {
                    self.down_cycles += 1;
                }
            }
        }
    }

    /// Occupancy as the scheduler may see it: down links hidden.
    fn mask(&self, occ: &[Vec<usize>]) -> Vec<Vec<usize>> {
        occ.iter()
            .enumerate()
            .map(|(i, row)| {
                row.iter()
                    .enumerate()
                    .map(|(o, &q)| if self.up[i][o] { q } else { 0 })
                    .collect()
            })
            .collect()
    }
}

/// Aggregated results of one simulation.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Scheduler label.
    pub scheduler: String,
    /// Cells offered by the traffic source.
    pub offered: u64,
    /// Cells delivered through the fabric.
    pub delivered: u64,
    /// Normalized throughput: delivered / (cycles · N).
    pub throughput: f64,
    /// Mean cell delay (cycles), post-warm-up deliveries.
    pub mean_delay: f64,
    /// 99th-percentile cell delay (cycles), post-warm-up deliveries.
    pub p99_delay: u64,
    /// Mean total backlog (cells buffered, sampled each cycle).
    pub mean_backlog: f64,
    /// Backlog at the end of the run.
    pub final_backlog: usize,
    /// Total simulated distributed rounds consumed by the scheduler.
    pub sched_rounds: u64,
    /// Fraction of link-cycles spent down (0.0 without a
    /// [`FailurePlan`]).
    pub link_downtime: f64,
}

impl SimResult {
    /// Delivered fraction of offered cells (1.0 = kept up with load).
    pub fn delivery_ratio(&self) -> f64 {
        if self.offered == 0 {
            1.0
        } else {
            self.delivered as f64 / self.offered as f64
        }
    }
}

/// `q`-th percentile of `xs` (0 for an empty sample).
fn percentile(xs: &mut [u64], q: f64) -> u64 {
    if xs.is_empty() {
        return 0;
    }
    xs.sort_unstable();
    let idx = ((xs.len() as f64 - 1.0) * q).round() as usize;
    xs[idx.min(xs.len() - 1)]
}

/// An input-queued switch driven by a scheduler.
pub struct Simulator {
    cfg: SimConfig,
    kind: SchedulerKind,
    voqs: Voqs,
    traffic: TrafficGen,
    sched: Box<dyn Scheduler>,
    links: Option<LinkState>,
}

impl Simulator {
    /// Build a simulator for the given scheduler kind.
    pub fn new(cfg: SimConfig, kind: SchedulerKind) -> Self {
        Simulator {
            voqs: Voqs::new(cfg.ports),
            traffic: TrafficGen::new(cfg.traffic, cfg.ports, cfg.seed),
            sched: kind.build(cfg.ports, cfg.seed.wrapping_add(0x5C4ED)),
            kind,
            links: None,
            cfg,
        }
    }

    /// Run the distributed schedulers' per-cycle matching networks
    /// under explicit execution knobs (scheduler mode / threads /
    /// loss); see [`SchedulerKind::build_cfg`]. Results are
    /// bit-identical across `exec.threads` and `exec.sched`. Must be
    /// applied before [`Simulator::run`] (it rebuilds the scheduler,
    /// so call it construction-style, like the other builders).
    pub fn with_exec(mut self, exec: simnet::ExecCfg) -> Self {
        self.sched = self
            .kind
            .build_cfg(self.cfg.ports, self.cfg.seed.wrapping_add(0x5C4ED), exec);
        self
    }

    /// Inject time-varying link failures: the port topology the
    /// scheduler sees changes every cycle. Cells whose link is down
    /// wait in their VOQ; nothing is lost. Without this call the run
    /// is identical to earlier versions (no extra RNG draws).
    pub fn with_failures(mut self, plan: FailurePlan) -> Self {
        self.links = Some(LinkState::new(self.cfg.ports, plan));
        self
    }

    /// Run the configured number of cycles.
    pub fn run(mut self) -> SimResult {
        let mut offered = 0u64;
        let mut delivered = 0u64;
        let mut delay_sum = 0u64;
        let mut delay_count = 0u64;
        let mut delays: Vec<u64> = Vec::new();
        let mut backlog_sum = 0u64;
        for cycle in 0..self.cfg.cycles {
            // Arrivals.
            for (input, dest) in self.traffic.arrivals().into_iter().enumerate() {
                if let Some(output) = dest {
                    offered += 1;
                    self.voqs.push(input, output, Cell { arrived: cycle });
                }
            }
            // Evolve the port topology, then schedule over the links
            // that are up and transfer.
            let occ = match &mut self.links {
                Some(links) => {
                    links.tick();
                    links.mask(&self.voqs.occupancy())
                }
                None => self.voqs.occupancy(),
            };
            let decision = self.sched.schedule(&occ);
            debug_assert!(is_valid_decision(&occ, &decision));
            for (input, out) in decision.into_iter().enumerate() {
                if let Some(output) = out {
                    if let Some(cell) = self.voqs.pop(input, output) {
                        delivered += 1;
                        if cycle >= self.cfg.warmup {
                            delay_sum += cycle - cell.arrived;
                            delay_count += 1;
                            delays.push(cycle - cell.arrived);
                        }
                    }
                }
            }
            backlog_sum += self.voqs.total() as u64;
        }
        SimResult {
            scheduler: self.sched.name(),
            offered,
            delivered,
            throughput: delivered as f64 / (self.cfg.cycles * self.cfg.ports as u64) as f64,
            mean_delay: if delay_count == 0 {
                0.0
            } else {
                delay_sum as f64 / delay_count as f64
            },
            p99_delay: percentile(&mut delays, 0.99),
            mean_backlog: backlog_sum as f64 / self.cfg.cycles as f64,
            final_backlog: self.voqs.total(),
            sched_rounds: self.sched.rounds_used(),
            link_downtime: self.links.map_or(0.0, |l| {
                l.down_cycles as f64
                    / (self.cfg.cycles * (self.cfg.ports * self.cfg.ports) as u64) as f64
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(load: f64, cycles: u64) -> SimConfig {
        SimConfig {
            ports: 8,
            cycles,
            warmup: cycles / 5,
            traffic: TrafficModel::Uniform { load },
            seed: 42,
        }
    }

    #[test]
    fn low_load_is_fully_delivered_by_everyone() {
        for kind in [
            SchedulerKind::Pim { iterations: 1 },
            SchedulerKind::Islip { iterations: 1 },
            SchedulerKind::MaxCardinality,
        ] {
            let r = Simulator::new(cfg(0.3, 3000), kind).run();
            assert!(
                r.delivery_ratio() > 0.97,
                "{}: only {} of offered cells delivered",
                r.scheduler,
                r.delivery_ratio()
            );
            assert!(
                r.mean_delay < 5.0,
                "{}: delay {}",
                r.scheduler,
                r.mean_delay
            );
        }
    }

    #[test]
    fn oracle_sustains_high_uniform_load() {
        let r = Simulator::new(cfg(0.95, 4000), SchedulerKind::MaxWeight).run();
        assert!(r.delivery_ratio() > 0.95, "ratio {}", r.delivery_ratio());
    }

    #[test]
    fn single_iteration_pim_saturates_before_islip() {
        // Classic: PIM(1) peaks around 63% on uniform full load, while
        // iSLIP(1) desynchronizes to ~100%.
        let mk = |kind| {
            Simulator::new(
                SimConfig {
                    ports: 8,
                    cycles: 4000,
                    warmup: 800,
                    traffic: TrafficModel::Uniform { load: 1.0 },
                    seed: 7,
                },
                kind,
            )
            .run()
        };
        let pim = mk(SchedulerKind::Pim { iterations: 1 });
        let islip = mk(SchedulerKind::Islip { iterations: 1 });
        assert!(
            islip.throughput > pim.throughput + 0.05,
            "iSLIP {} vs PIM {}",
            islip.throughput,
            pim.throughput
        );
    }

    #[test]
    fn lps_scheduler_keeps_up_at_moderate_load() {
        let r = Simulator::new(
            SimConfig {
                ports: 4,
                cycles: 600,
                warmup: 100,
                traffic: TrafficModel::Uniform { load: 0.6 },
                seed: 3,
            },
            SchedulerKind::LpsBipartite { k: 2 },
        )
        .run();
        assert!(r.delivery_ratio() > 0.9, "ratio {}", r.delivery_ratio());
        assert!(
            r.sched_rounds > 0,
            "distributed scheduler must consume rounds"
        );
    }

    #[test]
    fn p99_dominates_mean() {
        let r = Simulator::new(cfg(0.8, 2000), SchedulerKind::Islip { iterations: 1 }).run();
        assert!(
            r.p99_delay as f64 >= r.mean_delay.floor(),
            "p99 {} < mean {}",
            r.p99_delay,
            r.mean_delay
        );
    }

    #[test]
    fn zero_load_runs_cleanly() {
        let r = Simulator::new(cfg(0.0, 200), SchedulerKind::Islip { iterations: 1 }).run();
        assert_eq!(r.offered, 0);
        assert_eq!(r.delivered, 0);
        assert_eq!(r.final_backlog, 0);
    }

    #[test]
    fn link_failures_conserve_cells_and_report_downtime() {
        let plan = FailurePlan {
            fail: 0.02,
            repair: 0.1,
            seed: 5,
        };
        let r = Simulator::new(cfg(0.6, 3000), SchedulerKind::MaxWeight)
            .with_failures(plan)
            .run();
        assert_eq!(r.offered, r.delivered + r.final_backlog as u64);
        // Long-run availability repair/(fail+repair) ≈ 5/6.
        assert!(
            (r.link_downtime - 1.0 / 6.0).abs() < 0.03,
            "downtime {} far from 1/6",
            r.link_downtime
        );
        assert!(r.delivery_ratio() > 0.8, "ratio {}", r.delivery_ratio());
    }

    #[test]
    fn heavy_failures_degrade_but_never_lose_cells() {
        let plan = FailurePlan {
            fail: 0.3,
            repair: 0.1,
            seed: 9,
        };
        let healthy = Simulator::new(cfg(0.8, 2000), SchedulerKind::MaxWeight).run();
        let failing = Simulator::new(cfg(0.8, 2000), SchedulerKind::MaxWeight)
            .with_failures(plan)
            .run();
        assert_eq!(
            failing.offered,
            failing.delivered + failing.final_backlog as u64
        );
        assert!(
            failing.delivered < healthy.delivered,
            "3/4 of links down must cost throughput"
        );
        assert!(failing.link_downtime > 0.5);
    }

    #[test]
    fn exec_knobs_are_unobservable_for_distributed_schedulers() {
        use simnet::ExecCfg;
        for kind in [
            SchedulerKind::DistMaximal,
            SchedulerKind::LpsBipartite { k: 2 },
        ] {
            let mk = |exec: ExecCfg| {
                Simulator::new(
                    SimConfig {
                        ports: 4,
                        cycles: 300,
                        warmup: 50,
                        traffic: TrafficModel::Uniform { load: 0.6 },
                        seed: 11,
                    },
                    kind,
                )
                .with_exec(exec)
                .run()
            };
            let sparse = mk(ExecCfg::sequential());
            let dense = mk(ExecCfg::sequential().dense());
            let par = mk(ExecCfg::parallel(4));
            for other in [&dense, &par] {
                assert_eq!(sparse.delivered, other.delivered, "{}", sparse.scheduler);
                assert_eq!(sparse.sched_rounds, other.sched_rounds);
                assert_eq!(sparse.final_backlog, other.final_backlog);
            }
        }
    }

    #[test]
    fn failure_runs_are_deterministic() {
        let mk = || {
            Simulator::new(cfg(0.7, 500), SchedulerKind::Islip { iterations: 2 })
                .with_failures(FailurePlan {
                    fail: 0.05,
                    repair: 0.2,
                    seed: 3,
                })
                .run()
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.link_downtime, b.link_downtime);
        assert_eq!(a.final_backlog, b.final_backlog);
    }
}
