//! # switchsim — input-queued switch scheduling
//!
//! The paper's introduction motivates distributed matching with
//! *"internal scheduling of a communication switch: … in each cycle,
//! the switch fabric can realize one partial permutation, and an
//! internal scheduling routine decides which ports will be connected"*,
//! and names **PIM** (Anderson et al., the DEC AN2 switch) and
//! **iSLIP** (McKeown) as the practical descendants of Israeli–Itai.
//!
//! This crate builds that application end to end:
//!
//! * [`voq`] — virtual output queues of an `N × N` input-queued switch;
//! * [`traffic`] — admissible Bernoulli traffic models (uniform,
//!   diagonal, bursty on/off);
//! * [`sched`] — schedulers: PIM, iSLIP, maximal-matching
//!   (Israeli–Itai), the paper's bipartite `(1-1/k)`-MCM, the weighted
//!   `(½-ε)`-MWM on queue lengths, and centralized optima (maximum
//!   cardinality / maximum weight) as oracles;
//! * [`sim`] — the cycle loop and throughput/delay statistics, with
//!   optional time-varying port topologies ([`FailurePlan`]): links
//!   fail and heal mid-run, and the scheduler must keep matching
//!   whatever fabric is currently up.
//!
//! Experiment E8 sweeps offered load and reproduces the classical
//! ordering: maximal-matching-family schedulers saturate early under
//! non-uniform traffic, while larger matchings sustain higher load.

pub mod sched;
pub mod sim;
pub mod traffic;
pub mod voq;

pub use sched::{Scheduler, SchedulerKind};
pub use sim::{FailurePlan, SimConfig, SimResult, Simulator};
pub use traffic::TrafficModel;
