//! Virtual output queues.
//!
//! An `N × N` input-queued switch keeps, at every input port, one FIFO
//! per output port ("VOQ") — the architecture PIM and iSLIP assume.
//! Cells carry their arrival cycle so delay can be measured.

use std::collections::VecDeque;

/// One cell (fixed-size packet).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cell {
    /// Cycle in which the cell arrived at the input.
    pub arrived: u64,
}

/// The VOQ state of an `N`-port switch.
#[derive(Debug, Clone)]
pub struct Voqs {
    n: usize,
    queues: Vec<VecDeque<Cell>>, // index = input * n + output
}

impl Voqs {
    /// Empty queues for an `n`-port switch.
    pub fn new(n: usize) -> Self {
        Voqs {
            n,
            queues: vec![VecDeque::new(); n * n],
        }
    }

    /// Port count.
    pub fn ports(&self) -> usize {
        self.n
    }

    #[inline]
    fn idx(&self, input: usize, output: usize) -> usize {
        debug_assert!(input < self.n && output < self.n);
        input * self.n + output
    }

    /// Enqueue a cell at `(input, output)`.
    pub fn push(&mut self, input: usize, output: usize, cell: Cell) {
        let i = self.idx(input, output);
        self.queues[i].push_back(cell);
    }

    /// Dequeue the head-of-line cell at `(input, output)`.
    pub fn pop(&mut self, input: usize, output: usize) -> Option<Cell> {
        let i = self.idx(input, output);
        self.queues[i].pop_front()
    }

    /// Queue length at `(input, output)`.
    pub fn len(&self, input: usize, output: usize) -> usize {
        self.queues[self.idx(input, output)].len()
    }

    /// True when every queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queues.iter().all(VecDeque::is_empty)
    }

    /// Total buffered cells.
    pub fn total(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Occupancy matrix (`occ[input][output]`), the scheduler's input.
    pub fn occupancy(&self) -> Vec<Vec<usize>> {
        (0..self.n)
            .map(|i| (0..self.n).map(|o| self.len(i, o)).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut v = Voqs::new(2);
        v.push(0, 1, Cell { arrived: 1 });
        v.push(0, 1, Cell { arrived: 2 });
        assert_eq!(v.len(0, 1), 2);
        assert_eq!(v.pop(0, 1), Some(Cell { arrived: 1 }));
        assert_eq!(v.pop(0, 1), Some(Cell { arrived: 2 }));
        assert_eq!(v.pop(0, 1), None);
    }

    #[test]
    fn occupancy_matrix() {
        let mut v = Voqs::new(3);
        v.push(2, 0, Cell { arrived: 0 });
        v.push(2, 0, Cell { arrived: 1 });
        v.push(1, 2, Cell { arrived: 0 });
        let occ = v.occupancy();
        assert_eq!(occ[2][0], 2);
        assert_eq!(occ[1][2], 1);
        assert_eq!(occ[0][0], 0);
        assert_eq!(v.total(), 3);
        assert!(!v.is_empty());
    }
}
