//! Switch schedulers.
//!
//! Every scheduler receives the VOQ occupancy matrix and must return a
//! partial permutation (a matching of inputs to outputs, restricted to
//! non-empty VOQs). The lineup spans the history the paper sketches:
//!
//! * [`Pim`] — Parallel Iterative Matching (Anderson et al. \[3\]),
//!   the AN2 scheduler built on Israeli–Itai's ideas;
//! * [`Islip`] — iSLIP (McKeown \[23\]), PIM with round-robin pointers,
//!   "the algorithm of choice in many of today's routers";
//! * [`DistMaximal`] — Israeli–Itai itself on the request graph;
//! * [`LpsBipartite`] — the paper's Theorem 3.8 `(1-1/k)`-MCM;
//! * [`LpsWeighted`] — the paper's Theorem 4.5 `(½-ε)`-MWM on queue
//!   lengths (longest-queue-first flavored);
//! * [`MaxCardinality`] / [`MaxWeight`] — centralized oracles
//!   (Hopcroft–Karp / Hungarian) bounding what any scheduler can do.

use dgraph::{Graph, GraphBuilder, NodeId};
use dmatch::session::Session;
use dmatch::Algorithm;
use simnet::rng::streams;
use simnet::{ExecCfg, SplitMix64};

/// A scheduling decision: `out[input] = Some(output)`.
pub type Decision = Vec<Option<usize>>;

/// Common scheduler interface.
pub trait Scheduler {
    /// Label for tables.
    fn name(&self) -> String;
    /// Compute a partial permutation for this cycle.
    fn schedule(&mut self, occ: &[Vec<usize>]) -> Decision;
    /// Simulated distributed rounds consumed so far (0 for centralized
    /// and constant-time hardware schedulers).
    fn rounds_used(&self) -> u64 {
        0
    }
}

/// Factory enum so experiments can sweep schedulers uniformly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedulerKind {
    /// PIM with the given number of iterations.
    Pim { iterations: usize },
    /// iSLIP with the given number of iterations.
    Islip { iterations: usize },
    /// Israeli–Itai maximal matching on the request graph.
    DistMaximal,
    /// The paper's bipartite `(1-1/k)`-MCM.
    LpsBipartite { k: usize },
    /// The paper's `(½-ε)`-MWM on queue lengths.
    LpsWeighted { epsilon: f64 },
    /// Centralized maximum-cardinality oracle.
    MaxCardinality,
    /// Centralized maximum-weight (queue-length) oracle.
    MaxWeight,
    /// Iterative longest-queue-first (iLQF): PIM-style iterations in
    /// which grants and accepts both prefer the longest VOQ.
    Ilqf { iterations: usize },
}

impl SchedulerKind {
    /// Instantiate for an `n`-port switch.
    pub fn build(self, n: usize, seed: u64) -> Box<dyn Scheduler> {
        self.build_cfg(n, seed, ExecCfg::default())
    }

    /// Instantiate for an `n`-port switch under explicit execution
    /// knobs: the distributed schedulers (Israeli–Itai and the paper's
    /// LPS algorithms) run their per-cycle matching networks with
    /// `exec`'s scheduler mode, thread count, and fault injection.
    /// Centralized and hardware schedulers ignore it.
    pub fn build_cfg(self, n: usize, seed: u64, exec: ExecCfg) -> Box<dyn Scheduler> {
        match self {
            SchedulerKind::Pim { iterations } => Box::new(Pim::new(n, iterations, seed)),
            SchedulerKind::Islip { iterations } => Box::new(Islip::new(n, iterations, seed)),
            SchedulerKind::DistMaximal => Box::new(DistMaximal::new(seed).with_exec(exec)),
            SchedulerKind::LpsBipartite { k } => {
                Box::new(LpsBipartite::new(k, seed).with_exec(exec))
            }
            SchedulerKind::LpsWeighted { epsilon } => {
                Box::new(LpsWeighted::new(epsilon, seed).with_exec(exec))
            }
            SchedulerKind::MaxCardinality => Box::new(MaxCardinality),
            SchedulerKind::MaxWeight => Box::new(MaxWeight),
            SchedulerKind::Ilqf { iterations } => Box::new(Ilqf::new(n, iterations)),
        }
    }
}

/// Check that a decision is a partial permutation over non-empty VOQs.
pub fn is_valid_decision(occ: &[Vec<usize>], d: &Decision) -> bool {
    let n = occ.len();
    let mut used = vec![false; n];
    d.iter().enumerate().all(|(i, &o)| match o {
        None => true,
        Some(o) => {
            let fresh = o < n && !used[o] && occ[i][o] > 0;
            if fresh {
                used[o] = true;
            }
            fresh
        }
    })
}

// ---------------------------------------------------------------- PIM

/// Parallel Iterative Matching \[3\].
pub struct Pim {
    n: usize,
    iterations: usize,
    rng: SplitMix64,
}

impl Pim {
    /// New PIM scheduler.
    pub fn new(n: usize, iterations: usize, seed: u64) -> Self {
        Pim {
            n,
            iterations: iterations.max(1),
            rng: SplitMix64::for_node(seed, streams::SWITCH_SCHED),
        }
    }
}

impl Scheduler for Pim {
    fn name(&self) -> String {
        format!("PIM({})", self.iterations)
    }

    fn schedule(&mut self, occ: &[Vec<usize>]) -> Decision {
        let n = self.n;
        let mut in_match: Decision = vec![None; n];
        let mut out_match: Vec<Option<usize>> = vec![None; n];
        for _ in 0..self.iterations {
            // Grant: each unmatched output picks a random requesting
            // unmatched input.
            let mut grants: Vec<Option<usize>> = vec![None; n];
            for (o, grant) in grants.iter_mut().enumerate() {
                if out_match[o].is_some() {
                    continue;
                }
                let requesters: Vec<usize> = (0..n)
                    .filter(|&i| in_match[i].is_none() && occ[i][o] > 0)
                    .collect();
                if !requesters.is_empty() {
                    *grant = Some(requesters[self.rng.below(requesters.len() as u64) as usize]);
                }
            }
            // Accept: each input picks a random grant addressed to it.
            #[allow(clippy::needless_range_loop)]
            for i in 0..n {
                if in_match[i].is_some() {
                    continue;
                }
                let offers: Vec<usize> = (0..n).filter(|&o| grants[o] == Some(i)).collect();
                if !offers.is_empty() {
                    let o = offers[self.rng.below(offers.len() as u64) as usize];
                    in_match[i] = Some(o);
                    out_match[o] = Some(i);
                }
            }
        }
        in_match
    }
}

// -------------------------------------------------------------- iSLIP

/// iSLIP \[23\]: PIM with deterministic round-robin pointers.
pub struct Islip {
    n: usize,
    iterations: usize,
    grant_ptr: Vec<usize>,
    accept_ptr: Vec<usize>,
}

impl Islip {
    /// New iSLIP scheduler (pointers start at 0; the seed is unused —
    /// iSLIP is deterministic — but kept for interface symmetry).
    pub fn new(n: usize, iterations: usize, _seed: u64) -> Self {
        Islip {
            n,
            iterations: iterations.max(1),
            grant_ptr: vec![0; n],
            accept_ptr: vec![0; n],
        }
    }
}

impl Scheduler for Islip {
    fn name(&self) -> String {
        format!("iSLIP({})", self.iterations)
    }

    fn schedule(&mut self, occ: &[Vec<usize>]) -> Decision {
        let n = self.n;
        let mut in_match: Decision = vec![None; n];
        let mut out_match: Vec<Option<usize>> = vec![None; n];
        for iter in 0..self.iterations {
            let mut grants: Vec<Option<usize>> = vec![None; n];
            for (o, grant) in grants.iter_mut().enumerate() {
                if out_match[o].is_some() {
                    continue;
                }
                // Round-robin from the grant pointer.
                for k in 0..n {
                    let i = (self.grant_ptr[o] + k) % n;
                    if in_match[i].is_none() && occ[i][o] > 0 {
                        *grant = Some(i);
                        break;
                    }
                }
            }
            #[allow(clippy::needless_range_loop)]
            for i in 0..n {
                if in_match[i].is_some() {
                    continue;
                }
                // Accept the first grant from the accept pointer.
                let mut chosen: Option<usize> = None;
                for k in 0..n {
                    let o = (self.accept_ptr[i] + k) % n;
                    if grants[o] == Some(i) {
                        chosen = Some(o);
                        break;
                    }
                }
                if let Some(o) = chosen {
                    in_match[i] = Some(o);
                    out_match[o] = Some(i);
                    // Pointers advance only on first-iteration accepts
                    // (the standard rule that gives iSLIP its
                    // desynchronization property).
                    if iter == 0 {
                        self.grant_ptr[o] = (i + 1) % n;
                        self.accept_ptr[i] = (o + 1) % n;
                    }
                }
            }
        }
        in_match
    }
}

// ------------------------------------------- request-graph scheduling

/// Build the bipartite request graph: inputs `0..n`, outputs `n..2n`,
/// an edge wherever the VOQ is non-empty, weighted by queue length.
fn request_graph(occ: &[Vec<usize>]) -> (Graph, Vec<bool>) {
    let n = occ.len();
    let mut b = GraphBuilder::new(2 * n);
    for (i, row) in occ.iter().enumerate() {
        for (o, &q) in row.iter().enumerate() {
            if q > 0 {
                b.add_weighted(i as NodeId, (n + o) as NodeId, q as f64);
            }
        }
    }
    let sides = (0..2 * n).map(|v| v >= n).collect();
    (b.build(), sides)
}

/// Translate a matching on the request graph back to a decision.
fn decision_from_matching(n: usize, m: &dgraph::Matching) -> Decision {
    (0..n as NodeId)
        .map(|i| m.mate(i).map(|o| o as usize - n))
        .collect()
}

/// Israeli–Itai maximal matching on the request graph.
pub struct DistMaximal {
    seed: u64,
    cycle: u64,
    rounds: u64,
    exec: ExecCfg,
}

impl DistMaximal {
    /// New scheduler.
    pub fn new(seed: u64) -> Self {
        DistMaximal {
            seed,
            cycle: 0,
            rounds: 0,
            exec: ExecCfg::default(),
        }
    }

    /// Run the per-cycle matching network under `exec`.
    pub fn with_exec(mut self, exec: ExecCfg) -> Self {
        self.exec = exec;
        self
    }
}

impl Scheduler for DistMaximal {
    fn name(&self) -> String {
        "II-maximal".into()
    }

    fn schedule(&mut self, occ: &[Vec<usize>]) -> Decision {
        self.cycle += 1;
        let (g, _) = request_graph(occ);
        let r = Session::on(&g)
            .algorithm(Algorithm::IsraeliItai)
            .seed(self.seed.wrapping_add(self.cycle))
            .exec(self.exec)
            .build()
            .run_to_completion();
        self.rounds += r.stats.rounds;
        decision_from_matching(occ.len(), &r.matching)
    }

    fn rounds_used(&self) -> u64 {
        self.rounds
    }
}

/// The paper's bipartite `(1-1/k)`-MCM (Theorem 3.8) as a scheduler.
pub struct LpsBipartite {
    k: usize,
    seed: u64,
    cycle: u64,
    rounds: u64,
    exec: ExecCfg,
}

impl LpsBipartite {
    /// New scheduler with approximation parameter `k`.
    pub fn new(k: usize, seed: u64) -> Self {
        LpsBipartite {
            k: k.max(1),
            seed,
            cycle: 0,
            rounds: 0,
            exec: ExecCfg::default(),
        }
    }

    /// Run the per-cycle matching network under `exec`.
    pub fn with_exec(mut self, exec: ExecCfg) -> Self {
        self.exec = exec;
        self
    }
}

impl Scheduler for LpsBipartite {
    fn name(&self) -> String {
        format!("LPS-MCM(k={})", self.k)
    }

    fn schedule(&mut self, occ: &[Vec<usize>]) -> Decision {
        self.cycle += 1;
        let (g, sides) = request_graph(occ);
        let r = Session::on(&g)
            .algorithm(Algorithm::Bipartite { k: self.k })
            .sides(&sides)
            .seed(self.seed.wrapping_add(self.cycle))
            .exec(self.exec)
            .build()
            .run_to_completion();
        self.rounds += r.stats.rounds;
        decision_from_matching(occ.len(), &r.matching)
    }

    fn rounds_used(&self) -> u64 {
        self.rounds
    }
}

/// The paper's `(½-ε)`-MWM (Theorem 4.5) on queue-length weights.
pub struct LpsWeighted {
    epsilon: f64,
    seed: u64,
    cycle: u64,
    rounds: u64,
    exec: ExecCfg,
}

impl LpsWeighted {
    /// New scheduler with slack `ε`.
    pub fn new(epsilon: f64, seed: u64) -> Self {
        LpsWeighted {
            epsilon,
            seed,
            cycle: 0,
            rounds: 0,
            exec: ExecCfg::default(),
        }
    }

    /// Run the per-cycle matching network under `exec`.
    pub fn with_exec(mut self, exec: ExecCfg) -> Self {
        self.exec = exec;
        self
    }
}

impl Scheduler for LpsWeighted {
    fn name(&self) -> String {
        format!("LPS-MWM(ε={})", self.epsilon)
    }

    fn schedule(&mut self, occ: &[Vec<usize>]) -> Decision {
        self.cycle += 1;
        let (g, _) = request_graph(occ);
        let r = Session::on(&g)
            .algorithm(Algorithm::Weighted {
                epsilon: self.epsilon,
                mwm_box: dmatch::weighted::MwmBox::SeqClass,
            })
            .seed(self.seed.wrapping_add(self.cycle))
            .exec(self.exec)
            .build()
            .run_to_completion();
        self.rounds += r.stats.rounds;
        decision_from_matching(occ.len(), &r.matching)
    }

    fn rounds_used(&self) -> u64 {
        self.rounds
    }
}

/// Iterative longest-queue-first: the greedy weighted cousin of PIM
/// (grants and accepts prefer the longest queue, ties by lower index).
/// A classical practical approximation of max-weight scheduling.
pub struct Ilqf {
    n: usize,
    iterations: usize,
}

impl Ilqf {
    /// New iLQF scheduler.
    pub fn new(n: usize, iterations: usize) -> Self {
        Ilqf {
            n,
            iterations: iterations.max(1),
        }
    }
}

impl Scheduler for Ilqf {
    fn name(&self) -> String {
        format!("iLQF({})", self.iterations)
    }

    fn schedule(&mut self, occ: &[Vec<usize>]) -> Decision {
        let n = self.n;
        let mut in_match: Decision = vec![None; n];
        let mut out_match: Vec<Option<usize>> = vec![None; n];
        for _ in 0..self.iterations {
            // Grant: each free output to its longest requesting queue.
            let mut grants: Vec<Option<usize>> = vec![None; n];
            for (o, grant) in grants.iter_mut().enumerate() {
                if out_match[o].is_some() {
                    continue;
                }
                *grant = (0..n)
                    .filter(|&i| in_match[i].is_none() && occ[i][o] > 0)
                    .max_by_key(|&i| (occ[i][o], std::cmp::Reverse(i)));
            }
            // Accept: each free input its longest granted queue.
            #[allow(clippy::needless_range_loop)]
            for i in 0..n {
                if in_match[i].is_some() {
                    continue;
                }
                let best = (0..n)
                    .filter(|&o| grants[o] == Some(i))
                    .max_by_key(|&o| (occ[i][o], std::cmp::Reverse(o)));
                if let Some(o) = best {
                    in_match[i] = Some(o);
                    out_match[o] = Some(i);
                }
            }
        }
        in_match
    }
}

/// Centralized maximum-cardinality oracle (Hopcroft–Karp).
pub struct MaxCardinality;

impl Scheduler for MaxCardinality {
    fn name(&self) -> String {
        "max-cardinality".into()
    }

    fn schedule(&mut self, occ: &[Vec<usize>]) -> Decision {
        let (g, sides) = request_graph(occ);
        let m = dgraph::hopcroft_karp::max_matching(&g, &sides);
        decision_from_matching(occ.len(), &m)
    }
}

/// Centralized maximum-weight oracle (Hungarian on queue lengths) —
/// the classical throughput-optimal MWM scheduler.
pub struct MaxWeight;

impl Scheduler for MaxWeight {
    fn name(&self) -> String {
        "max-weight".into()
    }

    fn schedule(&mut self, occ: &[Vec<usize>]) -> Decision {
        let (g, sides) = request_graph(occ);
        let m = dgraph::hungarian::max_weight_matching(&g, &sides);
        decision_from_matching(occ.len(), &m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_occ(n: usize) -> Vec<Vec<usize>> {
        vec![vec![1; n]; n]
    }

    fn sparse_occ() -> Vec<Vec<usize>> {
        // 4 ports; a few non-empty VOQs.
        vec![
            vec![0, 2, 0, 0],
            vec![1, 0, 0, 3],
            vec![0, 0, 0, 0],
            vec![0, 5, 0, 0],
        ]
    }

    #[test]
    fn all_schedulers_return_valid_decisions() {
        let occ = sparse_occ();
        for kind in [
            SchedulerKind::Pim { iterations: 2 },
            SchedulerKind::Islip { iterations: 2 },
            SchedulerKind::DistMaximal,
            SchedulerKind::LpsBipartite { k: 2 },
            SchedulerKind::LpsWeighted { epsilon: 0.2 },
            SchedulerKind::MaxCardinality,
            SchedulerKind::MaxWeight,
            SchedulerKind::Ilqf { iterations: 2 },
        ] {
            let mut s = kind.build(4, 7);
            for _ in 0..5 {
                let d = s.schedule(&occ);
                assert!(is_valid_decision(&occ, &d), "{} invalid", s.name());
            }
        }
    }

    #[test]
    fn oracle_matches_everything_on_full_occupancy() {
        let occ = full_occ(6);
        let mut s = MaxCardinality;
        let d = s.schedule(&occ);
        assert_eq!(d.iter().flatten().count(), 6, "perfect matching expected");
    }

    #[test]
    fn islip_desynchronizes_under_full_load() {
        // After a warm-up, iSLIP with 1 iteration achieves a perfect
        // rotation on full occupancy (its celebrated property).
        let occ = full_occ(4);
        let mut s = Islip::new(4, 1, 0);
        let mut last = 0;
        for _ in 0..10 {
            last = s.schedule(&occ).iter().flatten().count();
        }
        assert_eq!(
            last, 4,
            "iSLIP should desynchronize to 100% on uniform full load"
        );
    }

    #[test]
    fn max_weight_prefers_long_queues() {
        // Input 0 can go to output 1 (queue 2); input 3 also wants
        // output 1 with queue 5 — MWM must give output 1 to input 3
        // and let input 0 take nothing... except input 0 has no other
        // choice, so the matching is {(1,0) or (1,3)} etc. Check weight.
        let occ = sparse_occ();
        let mut s = MaxWeight;
        let d = s.schedule(&occ);
        assert!(is_valid_decision(&occ, &d));
        let weight: usize = d
            .iter()
            .enumerate()
            .filter_map(|(i, &o)| o.map(|o| occ[i][o]))
            .sum();
        // Optimum: (3,1)=5 + (1,3)=3 + (0, ...) 0? plus (0,1) blocked.
        // Best total = 5 + 3 = 8 with input 0 unmatched… but (0,1)
        // conflicts with (3,1). Check the exact optimum by hand: 8.
        assert_eq!(weight, 8);
    }

    #[test]
    fn pim_converges_with_more_iterations() {
        let occ = full_occ(8);
        let mut one = Pim::new(8, 1, 3);
        let mut four = Pim::new(8, 4, 3);
        let m1: usize = (0..20)
            .map(|_| one.schedule(&occ).iter().flatten().count())
            .sum();
        let m4: usize = (0..20)
            .map(|_| four.schedule(&occ).iter().flatten().count())
            .sum();
        assert!(m4 >= m1, "more PIM iterations cannot hurt: {m4} < {m1}");
    }

    #[test]
    fn ilqf_prefers_longest_queues() {
        let occ = sparse_occ();
        let mut s = Ilqf::new(4, 2);
        let d = s.schedule(&occ);
        assert!(is_valid_decision(&occ, &d));
        // Output 1's longest requester is input 3 (queue 5 beats 2).
        assert_eq!(d[3], Some(1));
    }

    #[test]
    fn request_graph_shape() {
        let (g, sides) = request_graph(&sparse_occ());
        assert_eq!(g.n(), 8);
        assert_eq!(g.m(), 4);
        assert!(dgraph::bipartite::is_valid_bipartition(&g, &sides));
        let e = g.edge_between(3, 4 + 1).expect("(3, out 1) requested");
        assert_eq!(g.weight(e), 5.0);
    }
}
