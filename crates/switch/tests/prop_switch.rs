//! Property-based tests for the switch simulator: decision validity
//! for every scheduler on arbitrary occupancy, cell conservation, and
//! work conservation at saturation.

use proptest::prelude::*;
use switchsim::sched::{is_valid_decision, SchedulerKind};
use switchsim::{SimConfig, Simulator, TrafficModel};

fn occ_strategy(n: usize) -> impl Strategy<Value = Vec<Vec<usize>>> {
    proptest::collection::vec(proptest::collection::vec(0usize..5, n), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_scheduler_emits_partial_permutations(occ in occ_strategy(5), seed in 0u64..500) {
        for kind in [
            SchedulerKind::Pim { iterations: 2 },
            SchedulerKind::Islip { iterations: 2 },
            SchedulerKind::DistMaximal,
            SchedulerKind::LpsBipartite { k: 2 },
            SchedulerKind::MaxCardinality,
            SchedulerKind::MaxWeight,
        ] {
            let mut s = kind.build(5, seed);
            for _ in 0..3 {
                let d = s.schedule(&occ);
                prop_assert!(is_valid_decision(&occ, &d), "{} invalid", s.name());
            }
        }
    }

    #[test]
    fn maximal_schedulers_leave_no_free_pair(occ in occ_strategy(5), seed in 0u64..500) {
        // Israeli–Itai is maximal: no (input, output) pair with traffic
        // can be left with both sides unmatched.
        let mut s = SchedulerKind::DistMaximal.build(5, seed);
        let d = s.schedule(&occ);
        let mut out_used = [false; 5];
        for o in d.iter().flatten() {
            out_used[*o] = true;
        }
        for (i, &di) in d.iter().enumerate() {
            if di.is_none() {
                for (o, &used) in out_used.iter().enumerate() {
                    prop_assert!(
                        occ[i][o] == 0 || used,
                        "input {} and output {} both idle despite occupancy", i, o
                    );
                }
            }
        }
    }

    #[test]
    fn cells_are_conserved(load_pct in 10u32..95, cycles in 50u64..300, seed in 0u64..500) {
        let cfg = SimConfig {
            ports: 4,
            cycles,
            warmup: 0,
            traffic: TrafficModel::Uniform { load: load_pct as f64 / 100.0 },
            seed,
        };
        let r = Simulator::new(cfg, SchedulerKind::Islip { iterations: 1 }).run();
        prop_assert_eq!(r.offered, r.delivered + r.final_backlog as u64);
    }

    #[test]
    fn oracle_dominates_single_iteration_pim(seed in 0u64..200) {
        let mk = |kind| {
            Simulator::new(
                SimConfig {
                    ports: 6,
                    cycles: 800,
                    warmup: 100,
                    traffic: TrafficModel::Uniform { load: 0.95 },
                    seed,
                },
                kind,
            )
            .run()
        };
        let pim = mk(SchedulerKind::Pim { iterations: 1 });
        let orc = mk(SchedulerKind::MaxCardinality);
        // With identical arrivals, the maximum matching can only move
        // at least as many cells (allow small slack for tie-breaking
        // effects on queue states over time).
        prop_assert!(
            orc.delivered + orc.final_backlog as u64 == orc.offered
                && orc.delivered as f64 >= 0.95 * pim.delivered as f64
        );
    }
}
