//! Randomized property tests for the switch simulator: decision
//! validity for every scheduler on arbitrary occupancy, cell
//! conservation, and work conservation at saturation.
//!
//! Dependency-free: cases are enumerated from seeded `SplitMix64`
//! streams, so every run explores the same (deterministic) case set.

use simnet::SplitMix64;
use switchsim::sched::{is_valid_decision, SchedulerKind};
use switchsim::{SimConfig, Simulator, TrafficModel};

fn random_occ(n: usize, rng: &mut SplitMix64) -> Vec<Vec<usize>> {
    (0..n)
        .map(|_| (0..n).map(|_| rng.below(5) as usize).collect())
        .collect()
}

#[test]
fn every_scheduler_emits_partial_permutations() {
    let mut rng = SplitMix64::new(0x51);
    for case in 0..32 {
        let occ = random_occ(5, &mut rng);
        let seed = rng.next();
        for kind in [
            SchedulerKind::Pim { iterations: 2 },
            SchedulerKind::Islip { iterations: 2 },
            SchedulerKind::DistMaximal,
            SchedulerKind::LpsBipartite { k: 2 },
            SchedulerKind::MaxCardinality,
            SchedulerKind::MaxWeight,
        ] {
            let mut s = kind.build(5, seed);
            for _ in 0..3 {
                let d = s.schedule(&occ);
                assert!(
                    is_valid_decision(&occ, &d),
                    "case {case}: {} invalid",
                    s.name()
                );
            }
        }
    }
}

#[test]
fn maximal_schedulers_leave_no_free_pair() {
    // Israeli–Itai is maximal: no (input, output) pair with traffic
    // can be left with both sides unmatched.
    let mut rng = SplitMix64::new(0x52);
    for case in 0..32 {
        let occ = random_occ(5, &mut rng);
        let seed = rng.next();
        let mut s = SchedulerKind::DistMaximal.build(5, seed);
        let d = s.schedule(&occ);
        let mut out_used = [false; 5];
        for o in d.iter().flatten() {
            out_used[*o] = true;
        }
        for (i, &di) in d.iter().enumerate() {
            if di.is_none() {
                for (o, &used) in out_used.iter().enumerate() {
                    assert!(
                        occ[i][o] == 0 || used,
                        "case {case}: input {i} and output {o} both idle despite occupancy"
                    );
                }
            }
        }
    }
}

#[test]
fn cells_are_conserved() {
    let mut rng = SplitMix64::new(0x53);
    for _ in 0..24 {
        let load = 0.10 + 0.85 * rng.f64();
        let cycles = 50 + rng.below(250);
        let seed = rng.next();
        let cfg = SimConfig {
            ports: 4,
            cycles,
            warmup: 0,
            traffic: TrafficModel::Uniform { load },
            seed,
        };
        let r = Simulator::new(cfg, SchedulerKind::Islip { iterations: 1 }).run();
        assert_eq!(r.offered, r.delivered + r.final_backlog as u64);
    }
}

fn run_once(
    traffic: TrafficModel,
    kind: SchedulerKind,
    cycles: u64,
    seed: u64,
) -> switchsim::SimResult {
    Simulator::new(
        SimConfig {
            ports: 8,
            cycles,
            warmup: cycles / 5,
            traffic,
            seed,
        },
        kind,
    )
    .run()
}

#[test]
fn bursty_moderate_load_is_delivered() {
    // Bursty traffic is admissible at any ρ ≤ 1 in the long run; at
    // moderate load a strong scheduler must keep up despite the
    // burst-induced backlog spikes.
    for seed in [1u64, 2, 3] {
        let model = TrafficModel::Bursty {
            load: 0.5,
            mean_burst: 8.0,
        };
        assert!(model.is_admissible(8));
        let r = run_once(model, SchedulerKind::MaxWeight, 6000, seed);
        assert!(
            r.delivery_ratio() > 0.9,
            "seed {seed}: bursty ratio {}",
            r.delivery_ratio()
        );
        assert_eq!(r.offered, r.delivered + r.final_backlog as u64);
    }
}

#[test]
fn hotspot_admissible_load_is_delivered() {
    for seed in [4u64, 5] {
        let model = TrafficModel::Hotspot {
            load: 0.5,
            frac: 0.12,
        };
        assert!(model.is_admissible(8), "0.5·(0.96+0.88) < 1");
        let r = run_once(model, SchedulerKind::MaxWeight, 6000, seed);
        assert!(
            r.delivery_ratio() > 0.93,
            "seed {seed}: hotspot ratio {}",
            r.delivery_ratio()
        );
    }
}

#[test]
fn hotspot_inadmissible_load_is_capped_but_sane() {
    // Half of all traffic aims at output 0: that output is offered
    // ≈4.5× its capacity, so even the oracle cannot deliver
    // everything — but cells are never lost and the uniform part
    // still flows.
    let model = TrafficModel::Hotspot {
        load: 0.9,
        frac: 0.5,
    };
    assert!(!model.is_admissible(8));
    let r = run_once(model, SchedulerKind::MaxWeight, 4000, 6);
    assert_eq!(r.offered, r.delivered + r.final_backlog as u64);
    assert!(
        r.delivery_ratio() < 0.9,
        "oversubscribed hotspot cannot be fully delivered, got {}",
        r.delivery_ratio()
    );
    assert!(
        r.delivery_ratio() > 0.3,
        "the admissible part must still flow, got {}",
        r.delivery_ratio()
    );
}

#[test]
fn bursty_and_hotspot_are_deterministic_per_seed() {
    for model in [
        TrafficModel::Bursty {
            load: 0.6,
            mean_burst: 12.0,
        },
        TrafficModel::Hotspot {
            load: 0.6,
            frac: 0.2,
        },
    ] {
        let a = run_once(model, SchedulerKind::Islip { iterations: 2 }, 1500, 42);
        let b = run_once(model, SchedulerKind::Islip { iterations: 2 }, 1500, 42);
        assert_eq!(a.offered, b.offered);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.mean_delay, b.mean_delay);
        assert_eq!(a.final_backlog, b.final_backlog);
        // A different seed must explore a different sample path.
        let c = run_once(model, SchedulerKind::Islip { iterations: 2 }, 1500, 43);
        assert_ne!(
            (a.offered, a.delivered),
            (c.offered, c.delivered),
            "{}: distinct seeds should not collide",
            model.label()
        );
    }
}

#[test]
fn oracle_dominates_single_iteration_pim() {
    let mut rng = SplitMix64::new(0x54);
    for _ in 0..8 {
        let seed = rng.next();
        let mk = |kind| {
            Simulator::new(
                SimConfig {
                    ports: 6,
                    cycles: 800,
                    warmup: 100,
                    traffic: TrafficModel::Uniform { load: 0.95 },
                    seed,
                },
                kind,
            )
            .run()
        };
        let pim = mk(SchedulerKind::Pim { iterations: 1 });
        let orc = mk(SchedulerKind::MaxCardinality);
        // With identical arrivals, the maximum matching can only move
        // at least as many cells (allow small slack for tie-breaking
        // effects on queue states over time).
        assert!(
            orc.delivered + orc.final_backlog as u64 == orc.offered
                && orc.delivered as f64 >= 0.95 * pim.delivered as f64,
            "seed {seed}"
        );
    }
}
