//! Log-bucketed percentile histogram.
//!
//! An HdrHistogram-style fixed-layout histogram over `u64` values:
//! the first octave is exact, every octave above it is split into 16
//! sub-buckets (`SUB`), giving a worst-case relative quantile error of
//! `1/SUB` (≈6%) across the full 64-bit range with a flat 7.6 KiB
//! footprint and no allocation after construction. Recording is a
//! handful of bit operations — cheap enough to sit on the round loop
//! behind the `timing` knob.

/// log2 of the sub-bucket count per octave.
const SUB_BITS: u32 = 4;
/// Sub-buckets per octave (and size of the exact first octave).
const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count: the exact octave plus `64 - SUB_BITS` scaled
/// octaves covering the rest of the `u64` range.
const N_BUCKETS: usize = (SUB as usize) * (64 - SUB_BITS as usize + 1);

/// Fixed-size log-bucketed histogram with exact count/sum/min/max.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: Box<[u64]>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: vec![0u64; N_BUCKETS].into_boxed_slice(),
        }
    }
}

/// Bucket index for a value: identity below [`SUB`], then
/// `(octave, top SUB_BITS bits under the MSB)` above it.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let octave = (msb - SUB_BITS + 1) as usize;
        let sub = ((v >> (msb - SUB_BITS)) & (SUB - 1)) as usize;
        octave * SUB as usize + sub
    }
}

/// Lower bound of the value range a bucket covers (its reported
/// representative; quantiles therefore never overestimate by more
/// than one bucket width).
#[inline]
fn bucket_floor(i: usize) -> u64 {
    let i = i as u64;
    if i < SUB {
        i
    } else {
        let octave = i / SUB;
        let sub = i % SUB;
        (SUB + sub) << (octave - 1)
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` observations of the same value in one step.
    #[inline]
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.count += n;
        self.sum += v * n;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        self.buckets[bucket_of(v)] += n;
    }

    /// Fold another histogram into this one (bucket layouts are
    /// identical by construction).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += *o;
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values (exact).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (exact; 0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (exact; 0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at quantile `q ∈ [0, 1]`: the floor of the bucket holding
    /// the `⌈q·count⌉`-th observation, clamped to the exact min/max.
    /// Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= target {
                return bucket_floor(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// `{"count":..,"sum":..,"p50":..,"p90":..,"p99":..,"max":..}`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}",
            self.count,
            self.sum,
            self.min(),
            self.p50(),
            self.p90(),
            self.p99(),
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_aligned() {
        // Every value maps into a bucket whose floor does not exceed it,
        // and bucket indices are monotone in the value.
        let mut probes: Vec<u64> = Vec::new();
        for shift in 0..60 {
            for off in [0u64, 1, 7] {
                probes.push((1u64 << shift) + off);
            }
        }
        probes.sort_unstable();
        let mut prev = 0usize;
        for v in probes {
            let b = bucket_of(v);
            assert!(bucket_floor(b) <= v, "floor({b}) > {v}");
            assert!(b >= prev, "bucket index not monotone at {v}");
            prev = b;
        }
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(SUB - 1), (SUB - 1) as usize);
        assert_eq!(bucket_floor(bucket_of(SUB)), SUB);
        assert!(bucket_of(u64::MAX) < N_BUCKETS);
    }

    #[test]
    fn exact_below_first_octave() {
        let mut h = Histogram::new();
        for v in 0..SUB {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), SUB / 2 - 1);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), SUB - 1);
    }

    #[test]
    fn quantiles_within_relative_error() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (q, exact) in [(0.50, 5_000.0), (0.90, 9_000.0), (0.99, 9_900.0)] {
            let got = h.quantile(q) as f64;
            let rel = (got - exact).abs() / exact;
            assert!(rel < 1.0 / SUB as f64 + 1e-9, "q={q}: {got} vs {exact}");
        }
        assert_eq!(h.max(), 10_000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.count(), 10_000);
        assert_eq!(h.sum(), 10_000 * 10_001 / 2);
    }

    #[test]
    fn merge_matches_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in 0..1000u64 {
            let x = v * v % 7919;
            if v % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            both.record(x);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
