//! Exporters: JSONL event dumps and Chrome trace-event JSON.
//!
//! [`jsonl`] writes one self-describing JSON object per line — the
//! grep/jq-friendly form. [`chrome_trace`] writes the Chrome
//! trace-event format (the `{"traceEvents": [...]}` flavour), which
//! loads directly in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`: rounds render as spans on one track, each
//! parallel worker gets its own track, merges nest inside their round,
//! and mode switches / wakes / rewires / phases / epochs appear as
//! instant markers.

use crate::plane::{Event, FlightRecorder};

/// Track (tid) layout of the exported trace.
const TID_ROUNDS: u32 = 0;
const TID_PHASES: u32 = 1;
const TID_EPOCHS: u32 = 2;
const TID_FAULTS: u32 = 3;
/// Worker `w` renders on tid `TID_WORKER_BASE + w`.
const TID_WORKER_BASE: u32 = 10;

/// Microseconds (Chrome trace unit) from nanoseconds, with sub-µs
/// precision preserved.
fn us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

/// One event as a single-line JSON object (no trailing newline).
pub fn event_json(ev: &Event) -> String {
    match *ev {
        Event::RoundSpan {
            round,
            t0_ns,
            t1_ns,
            stepped,
            sent,
            dense,
            workers,
        } => format!(
            "{{\"ev\": \"round\", \"round\": {round}, \"t0_ns\": {t0_ns}, \"t1_ns\": {t1_ns}, \
             \"stepped\": {stepped}, \"sent\": {sent}, \"dense\": {dense}, \"workers\": {workers}}}"
        ),
        Event::ModeSwitch {
            t_ns,
            round,
            to_dense,
            wake_len,
        } => format!(
            "{{\"ev\": \"mode_switch\", \"t_ns\": {t_ns}, \"round\": {round}, \
             \"to_dense\": {to_dense}, \"wake_len\": {wake_len}}}"
        ),
        Event::Phase {
            t_ns,
            index,
            label,
            rounds,
            matching,
            aborted,
        } => format!(
            "{{\"ev\": \"phase\", \"t_ns\": {t_ns}, \"index\": {index}, \"label\": \"{label}\", \
             \"rounds\": {rounds}, \"matching\": {matching}, \"aborted\": {aborted}}}"
        ),
        Event::Epoch {
            t_ns,
            epoch,
            rounds,
            damage,
            woken,
            radius,
        } => format!(
            "{{\"ev\": \"epoch\", \"t_ns\": {t_ns}, \"epoch\": {epoch}, \"rounds\": {rounds}, \
             \"damage\": {damage}, \"woken\": {woken}, \"radius\": {radius}}}"
        ),
        Event::Rewire {
            t_ns,
            round,
            added,
            removed,
            dirty,
        } => format!(
            "{{\"ev\": \"rewire\", \"t_ns\": {t_ns}, \"round\": {round}, \"added\": {added}, \
             \"removed\": {removed}, \"dirty\": {dirty}}}"
        ),
        Event::Wake { t_ns, round, node } => {
            format!("{{\"ev\": \"wake\", \"t_ns\": {t_ns}, \"round\": {round}, \"node\": {node}}}")
        }
        Event::RepairBall {
            t_ns,
            center_edges,
            radius,
            ball,
        } => format!(
            "{{\"ev\": \"repair_ball\", \"t_ns\": {t_ns}, \"center_edges\": {center_edges}, \
             \"radius\": {radius}, \"ball\": {ball}}}"
        ),
        Event::WorkerSpan {
            round,
            worker,
            t0_ns,
            t1_ns,
            nodes,
        } => format!(
            "{{\"ev\": \"worker\", \"round\": {round}, \"worker\": {worker}, \
             \"t0_ns\": {t0_ns}, \"t1_ns\": {t1_ns}, \"nodes\": {nodes}}}"
        ),
        Event::MergeSpan {
            round,
            t0_ns,
            t1_ns,
        } => format!(
            "{{\"ev\": \"merge\", \"round\": {round}, \"t0_ns\": {t0_ns}, \"t1_ns\": {t1_ns}}}"
        ),
        Event::Fault {
            t_ns,
            round,
            node,
            port,
            kind,
        } => format!(
            "{{\"ev\": \"fault\", \"t_ns\": {t_ns}, \"round\": {round}, \"node\": {node}, \
             \"port\": {port}, \"kind\": \"{}\"}}",
            kind.as_str()
        ),
        Event::BudgetViolation {
            t_ns,
            round,
            node,
            port,
            bits,
            budget,
        } => format!(
            "{{\"ev\": \"budget_violation\", \"t_ns\": {t_ns}, \"round\": {round}, \
             \"node\": {node}, \"port\": {port}, \"bits\": {bits}, \"budget\": {budget}}}"
        ),
    }
}

/// The recorder as JSONL: a `meta` header line (events kept/dropped),
/// then one line per event, oldest first.
pub fn jsonl(rec: &FlightRecorder) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"ev\": \"meta\", \"recorded\": {}, \"kept\": {}, \"dropped\": {}}}\n",
        rec.recorded(),
        rec.len(),
        rec.dropped()
    ));
    for ev in rec.events() {
        out.push_str(&event_json(ev));
        out.push('\n');
    }
    out
}

fn complete(name: &str, tid: u32, t0_ns: u64, t1_ns: u64, args: &str) -> String {
    // Clamp to 1 ns so zero-length spans stay visible in the viewer.
    let dur_ns = t1_ns.saturating_sub(t0_ns).max(1);
    format!(
        "{{\"name\": \"{name}\", \"ph\": \"X\", \"pid\": 1, \"tid\": {tid}, \
         \"ts\": {:.3}, \"dur\": {:.3}, \"args\": {args}}}",
        us(t0_ns),
        us(dur_ns),
    )
}

fn instant(name: &str, tid: u32, t_ns: u64, args: &str) -> String {
    format!(
        "{{\"name\": \"{name}\", \"ph\": \"i\", \"s\": \"t\", \"pid\": 1, \"tid\": {tid}, \
         \"ts\": {:.3}, \"args\": {args}}}",
        us(t_ns)
    )
}

fn metadata(name: &str, tid: u32, value: &str) -> String {
    format!(
        "{{\"name\": \"{name}\", \"ph\": \"M\", \"pid\": 1, \"tid\": {tid}, \
         \"args\": {{\"name\": \"{value}\"}}}}"
    )
}

/// The recorder in Chrome trace-event format. Open the result in
/// Perfetto or `chrome://tracing`: rounds are spans on the `rounds`
/// track, each worker has its own `worker N` track, merges nest inside
/// their round, and everything else is an instant marker.
pub fn chrome_trace(rec: &FlightRecorder) -> String {
    let mut rows: Vec<String> = Vec::new();
    rows.push(metadata("process_name", TID_ROUNDS, "simnet"));
    rows.push(metadata("thread_name", TID_ROUNDS, "rounds"));
    let mut named_phases = false;
    let mut named_epochs = false;
    let mut named_faults = false;
    let mut max_worker: Option<u32> = None;

    for ev in rec.events() {
        match *ev {
            Event::RoundSpan {
                round,
                t0_ns,
                t1_ns,
                stepped,
                sent,
                dense,
                workers,
            } => {
                let args = format!(
                    "{{\"stepped\": {stepped}, \"sent\": {sent}, \"dense\": {dense}, \
                     \"workers\": {workers}}}"
                );
                rows.push(complete(
                    &format!("round {round}"),
                    TID_ROUNDS,
                    t0_ns,
                    t1_ns,
                    &args,
                ));
            }
            Event::MergeSpan {
                round,
                t0_ns,
                t1_ns,
            } => {
                rows.push(complete(
                    &format!("merge r{round}"),
                    TID_ROUNDS,
                    t0_ns,
                    t1_ns,
                    "{}",
                ));
            }
            Event::WorkerSpan {
                round,
                worker,
                t0_ns,
                t1_ns,
                nodes,
            } => {
                max_worker = Some(max_worker.map_or(worker, |m| m.max(worker)));
                let args = format!("{{\"round\": {round}, \"nodes\": {nodes}}}");
                rows.push(complete(
                    &format!("w{worker} r{round}"),
                    TID_WORKER_BASE + worker,
                    t0_ns,
                    t1_ns,
                    &args,
                ));
            }
            Event::ModeSwitch {
                t_ns,
                round,
                to_dense,
                wake_len,
            } => {
                let name = if to_dense {
                    "mode→dense"
                } else {
                    "mode→sparse"
                };
                let args = format!("{{\"round\": {round}, \"wake_len\": {wake_len}}}");
                rows.push(instant(name, TID_ROUNDS, t_ns, &args));
            }
            Event::Wake { t_ns, round, node } => {
                let args = format!("{{\"round\": {round}, \"node\": {node}}}");
                rows.push(instant("wake", TID_ROUNDS, t_ns, &args));
            }
            Event::Rewire {
                t_ns,
                round,
                added,
                removed,
                dirty,
            } => {
                let args = format!(
                    "{{\"round\": {round}, \"added\": {added}, \"removed\": {removed}, \
                     \"dirty\": {dirty}}}"
                );
                rows.push(instant("rewire", TID_ROUNDS, t_ns, &args));
            }
            Event::Phase {
                t_ns,
                index,
                label,
                rounds,
                matching,
                aborted,
            } => {
                named_phases = true;
                let args = format!(
                    "{{\"index\": {index}, \"rounds\": {rounds}, \"matching\": {matching}, \
                     \"aborted\": {aborted}}}"
                );
                rows.push(instant(&format!("phase {label}"), TID_PHASES, t_ns, &args));
            }
            Event::Epoch {
                t_ns,
                epoch,
                rounds,
                damage,
                woken,
                radius,
            } => {
                named_epochs = true;
                let args = format!(
                    "{{\"rounds\": {rounds}, \"damage\": {damage}, \"woken\": {woken}, \
                     \"radius\": {radius}}}"
                );
                rows.push(instant(&format!("epoch {epoch}"), TID_EPOCHS, t_ns, &args));
            }
            Event::RepairBall {
                t_ns,
                center_edges,
                radius,
                ball,
            } => {
                named_epochs = true;
                let args = format!(
                    "{{\"center_edges\": {center_edges}, \"radius\": {radius}, \"ball\": {ball}}}"
                );
                rows.push(instant("repair ball", TID_EPOCHS, t_ns, &args));
            }
            Event::Fault {
                t_ns,
                round,
                node,
                port,
                kind,
            } => {
                named_faults = true;
                let args = format!("{{\"round\": {round}, \"node\": {node}, \"port\": {port}}}");
                rows.push(instant(kind.as_str(), TID_FAULTS, t_ns, &args));
            }
            Event::BudgetViolation {
                t_ns,
                round,
                node,
                port,
                bits,
                budget,
            } => {
                named_faults = true;
                let args = format!(
                    "{{\"round\": {round}, \"node\": {node}, \"port\": {port}, \
                     \"bits\": {bits}, \"budget\": {budget}}}"
                );
                rows.push(instant("budget violation", TID_FAULTS, t_ns, &args));
            }
        }
    }

    if named_phases {
        rows.push(metadata("thread_name", TID_PHASES, "phases"));
    }
    if named_epochs {
        rows.push(metadata("thread_name", TID_EPOCHS, "epochs"));
    }
    if named_faults {
        rows.push(metadata("thread_name", TID_FAULTS, "faults"));
    }
    if let Some(m) = max_worker {
        for w in 0..=m {
            rows.push(metadata(
                "thread_name",
                TID_WORKER_BASE + w,
                &format!("worker {w}"),
            ));
        }
    }

    format!(
        "{{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n{}\n]}}\n",
        rows.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plane::Name;

    fn sample() -> FlightRecorder {
        let mut r = FlightRecorder::new(64);
        r.push(Event::RoundSpan {
            round: 1,
            t0_ns: 1000,
            t1_ns: 5000,
            stepped: 42,
            sent: 17,
            dense: false,
            workers: 2,
        });
        r.push(Event::WorkerSpan {
            round: 1,
            worker: 0,
            t0_ns: 1200,
            t1_ns: 2000,
            nodes: 21,
        });
        r.push(Event::WorkerSpan {
            round: 1,
            worker: 1,
            t0_ns: 1300,
            t1_ns: 2100,
            nodes: 21,
        });
        r.push(Event::MergeSpan {
            round: 1,
            t0_ns: 2200,
            t1_ns: 2400,
        });
        r.push(Event::ModeSwitch {
            t_ns: 5100,
            round: 2,
            to_dense: true,
            wake_len: 999,
        });
        r.push(Event::Phase {
            t_ns: 6000,
            index: 0,
            label: Name::new("israeli-itai"),
            rounds: 12,
            matching: 7,
            aborted: false,
        });
        r.push(Event::Epoch {
            t_ns: 7000,
            epoch: 1,
            rounds: 9,
            damage: 2,
            woken: 11,
            radius: 3,
        });
        r.push(Event::Fault {
            t_ns: 7500,
            round: 4,
            node: 6,
            port: 2,
            kind: crate::plane::FaultKind::Drop,
        });
        r.push(Event::BudgetViolation {
            t_ns: 7600,
            round: 4,
            node: 6,
            port: 1,
            bits: 130,
            budget: 48,
        });
        r
    }

    #[test]
    fn fault_events_serialize_with_stable_tags() {
        use crate::plane::FaultKind;
        for (kind, tag) in [
            (FaultKind::Drop, "drop"),
            (FaultKind::BurstDrop, "burst_drop"),
            (FaultKind::Delay, "delay"),
            (FaultKind::Stall, "stall"),
            (FaultKind::Crash, "crash"),
            (FaultKind::Rejoin, "rejoin"),
        ] {
            let line = event_json(&Event::Fault {
                t_ns: 1,
                round: 2,
                node: 3,
                port: 4,
                kind,
            });
            let v = crate::json::parse(&line).expect("fault line parses");
            assert_eq!(v.get("ev").and_then(|e| e.as_str()), Some("fault"));
            assert_eq!(v.get("kind").and_then(|k| k.as_str()), Some(tag));
        }
        let line = event_json(&Event::BudgetViolation {
            t_ns: 1,
            round: 2,
            node: 3,
            port: 4,
            bits: 200,
            budget: 48,
        });
        let v = crate::json::parse(&line).expect("budget line parses");
        assert_eq!(
            v.get("ev").and_then(|e| e.as_str()),
            Some("budget_violation")
        );
        assert_eq!(v.get("bits").and_then(|b| b.as_f64()), Some(200.0));
    }

    #[test]
    fn jsonl_is_parseable_line_per_event() {
        let rec = sample();
        let out = jsonl(&rec);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 1 + rec.len());
        for line in &lines {
            let v = crate::json::parse(line).expect("each JSONL line parses");
            assert!(v.get("ev").is_some(), "line has an ev tag: {line}");
        }
        assert!(lines[0].contains("\"ev\": \"meta\""));
    }

    #[test]
    fn chrome_trace_is_valid_json_with_tracks() {
        let rec = sample();
        let out = chrome_trace(&rec);
        let v = crate::json::parse(&out).expect("trace parses as JSON");
        let events = v.get("traceEvents").and_then(|e| e.as_array()).unwrap();
        // 1 round span + 2 worker spans + 1 merge span.
        let spans = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .count();
        assert_eq!(spans, 4);
        // Worker tracks named and distinct.
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M"))
            .filter_map(|e| e.get("args")?.get("name")?.as_str())
            .collect();
        assert!(names.contains(&"rounds"));
        assert!(names.contains(&"worker 0"));
        assert!(names.contains(&"worker 1"));
        assert!(names.contains(&"phases"));
        assert!(names.contains(&"epochs"));
        assert!(names.contains(&"faults"));
        // Instant markers made it through.
        let instants = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("i"))
            .count();
        assert_eq!(instants, 5);
        // Spans carry positive durations in microseconds.
        for e in events {
            if e.get("ph").and_then(|p| p.as_str()) == Some("X") {
                assert!(e.get("dur").and_then(|d| d.as_f64()).unwrap() > 0.0);
            }
        }
    }
}
