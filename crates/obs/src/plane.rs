//! The structured event plane: typed events, a bounded ring-buffer
//! flight recorder, and thread-local installation.
//!
//! The simulator and the layers above it call [`record`] at a handful
//! of structural points (round close, scheduler mode switch, phase and
//! epoch boundaries, rewires, external wakes, repair-ball probes,
//! worker sections). When no recorder is installed on the current
//! thread — the default — every hook is one thread-local flag read and
//! a predicted-not-taken branch: no allocation, no clock read, no
//! formatting. Installing a recorder affects *observation only*; by
//! the same contract as `NetStats::sched_overhead`, nothing recorded
//! here may feed back into algorithm behaviour, and the
//! traced-vs-untraced bit-identity test in `tests/prop_plane.rs`
//! enforces it.
//!
//! Events are `Copy` and carry no heap data. Labels travel in a fixed
//! inline [`Name`]. Timestamps are nanoseconds since the recorder was
//! installed ([`now_ns`]), so a trace is self-contained and two traces
//! never share a clock base.
//!
//! The recorder is a *flight recorder*: a bounded ring that keeps the
//! most recent `capacity` events and counts what it dropped, so a
//! million-round run can fly with a 64k-event buffer and still land
//! with the tail of the story intact.

use std::cell::{Cell, RefCell};
use std::time::Instant;

/// Capacity of an inline [`Name`], in bytes.
pub const NAME_CAP: usize = 23;

/// Fixed-capacity inline string for event labels (phase names,
/// algorithm tags). Truncates at [`NAME_CAP`] bytes on a char
/// boundary; never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Name {
    len: u8,
    buf: [u8; NAME_CAP],
}

impl Name {
    /// Build from a string slice, truncating to [`NAME_CAP`] bytes on
    /// a char boundary.
    pub fn new(s: &str) -> Self {
        let mut end = s.len().min(NAME_CAP);
        while !s.is_char_boundary(end) {
            end -= 1;
        }
        let mut buf = [0u8; NAME_CAP];
        buf[..end].copy_from_slice(&s.as_bytes()[..end]);
        Name {
            len: end as u8,
            buf,
        }
    }

    /// View as `&str`.
    pub fn as_str(&self) -> &str {
        std::str::from_utf8(&self.buf[..self.len as usize]).unwrap_or("")
    }
}

impl std::fmt::Display for Name {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Name {
    fn from(s: &str) -> Self {
        Name::new(s)
    }
}

/// What the adversary plane did to a message or node. Recorded inside
/// [`Event::Fault`]; the variants mirror the fault classes a
/// `simnet::adversary::FaultPlan` composes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Bernoulli per-message drop.
    Drop,
    /// Drop because the edge's two-state Markov link was down.
    BurstDrop,
    /// Message parked for extra rounds (bounded delay, possibly
    /// combined with a stall or budget overflow).
    Delay,
    /// Message parked exactly one round by partial-delivery stalling.
    Stall,
    /// Crash-stop node fault.
    Crash,
    /// A crashed node rejoined the computation.
    Rejoin,
}

impl FaultKind {
    /// Stable lowercase tag used by the exporters.
    pub fn as_str(&self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::BurstDrop => "burst_drop",
            FaultKind::Delay => "delay",
            FaultKind::Stall => "stall",
            FaultKind::Crash => "crash",
            FaultKind::Rejoin => "rejoin",
        }
    }
}

/// A structural event. All variants are `Copy`, heap-free, and
/// timestamped in nanoseconds since recorder installation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// One synchronous round, recorded at close: wall-clock span,
    /// nodes stepped, messages sent, which representation ran it, and
    /// how many parallel workers were spawned (0 = sequential).
    RoundSpan {
        /// Round number (1-based, as in `NetStats::rounds`).
        round: u64,
        /// Span start, ns since recorder install.
        t0_ns: u64,
        /// Span end, ns since recorder install.
        t1_ns: u64,
        /// Nodes stepped this round.
        stepped: u64,
        /// Messages sent this round.
        sent: u64,
        /// True when the dense flag-sweep representation ran it.
        dense: bool,
        /// Parallel workers spawned (0 when the round ran inline).
        workers: u32,
    },
    /// The hybrid judge switched representation.
    ModeSwitch {
        /// Timestamp, ns since recorder install.
        t_ns: u64,
        /// Round at which the switch took effect.
        round: u64,
        /// New representation: true = dense sweep, false = wake list.
        to_dense: bool,
        /// Wake-list length that triggered the decision.
        wake_len: u64,
    },
    /// A `Session` phase boundary (one algorithm phase finished).
    Phase {
        /// Timestamp, ns since recorder install.
        t_ns: u64,
        /// Phase index within the session.
        index: u32,
        /// Phase label (truncated to [`NAME_CAP`] bytes).
        label: Name,
        /// Cumulative rounds after this phase.
        rounds: u64,
        /// Matching size after this phase.
        matching: u64,
        /// True when an observer aborted the session at this phase.
        aborted: bool,
    },
    /// A churn epoch finished repairing.
    Epoch {
        /// Timestamp, ns since recorder install.
        t_ns: u64,
        /// Epoch number.
        epoch: u64,
        /// Repair rounds spent in the epoch.
        rounds: u64,
        /// Matched edges destroyed by the churn batch.
        damage: u64,
        /// Nodes woken by the repair wave.
        woken: u64,
        /// Hop radius of the repair region around the damage.
        radius: u64,
    },
    /// A live topology rewire was applied.
    Rewire {
        /// Timestamp, ns since recorder install.
        t_ns: u64,
        /// Round count at the rewire point.
        round: u64,
        /// Edges added.
        added: u64,
        /// Edges removed.
        removed: u64,
        /// Nodes marked dirty (woken) by the patch.
        dirty: u64,
    },
    /// An external wake (`Network::wake`) from outside the protocol.
    Wake {
        /// Timestamp, ns since recorder install.
        t_ns: u64,
        /// Round count at the wake.
        round: u64,
        /// Woken node id.
        node: u64,
    },
    /// A repair-ball probe: the region a warm-start resume computed
    /// around damaged edges (the LCA-style locality measurement).
    RepairBall {
        /// Timestamp, ns since recorder install.
        t_ns: u64,
        /// Damaged edges at the center.
        center_edges: u64,
        /// Probe radius in hops.
        radius: u64,
        /// Nodes inside the ball.
        ball: u64,
    },
    /// One worker's slice of a parallel round (recorded by the main
    /// thread after the join; workers never touch the recorder).
    WorkerSpan {
        /// Round number the section belongs to.
        round: u64,
        /// Worker index within the spawn.
        worker: u32,
        /// Span start, ns since recorder install.
        t0_ns: u64,
        /// Span end, ns since recorder install.
        t1_ns: u64,
        /// Nodes the worker stepped.
        nodes: u64,
    },
    /// The sequential merge tail after a parallel join.
    MergeSpan {
        /// Round number the merge belongs to.
        round: u64,
        /// Span start, ns since recorder install.
        t0_ns: u64,
        /// Span end, ns since recorder install.
        t1_ns: u64,
    },
    /// The adversary plane injected a fault (drop, delay, stall,
    /// crash, rejoin). For message faults `round` is the sending
    /// round and `port` the sender-side port; for node faults
    /// (`Crash`/`Rejoin`) `port` is 0.
    Fault {
        /// Timestamp, ns since recorder install.
        t_ns: u64,
        /// Round the fault applies to.
        round: u64,
        /// Sender (message faults) or crashed node (node faults).
        node: u64,
        /// Sender-side port of the affected edge (0 for node faults).
        port: u32,
        /// Which fault class fired.
        kind: FaultKind,
    },
    /// A message exceeded the per-edge per-round CONGEST bit budget
    /// and degrade-mode enforcement deferred the overflow into later
    /// rounds (strict mode panics instead of recording).
    BudgetViolation {
        /// Timestamp, ns since recorder install.
        t_ns: u64,
        /// Sending round of the over-budget message.
        round: u64,
        /// Sender node id.
        node: u64,
        /// Sender-side port of the violating edge.
        port: u32,
        /// Size of the offending message, in bits.
        bits: u64,
        /// The budget it exceeded, in bits.
        budget: u64,
    },
}

/// Bounded ring buffer of [`Event`]s plus a drop counter: keeps the
/// most recent `capacity` events.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    capacity: usize,
    buf: Vec<Event>,
    head: usize,
    recorded: u64,
    t0: Instant,
}

impl FlightRecorder {
    /// Recorder keeping the `capacity` most recent events
    /// (`capacity ≥ 1`; the buffer is allocated up front).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            capacity,
            buf: Vec::with_capacity(capacity),
            head: 0,
            recorded: 0,
            t0: Instant::now(),
        }
    }

    /// Nanoseconds since this recorder was created.
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        self.t0.elapsed().as_nanos() as u64
    }

    /// The `Instant` all event timestamps are relative to.
    pub fn epoch(&self) -> Instant {
        self.t0
    }

    /// Push an event, evicting the oldest once full.
    #[inline]
    pub fn push(&mut self, ev: Event) {
        self.recorded += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Total events offered (kept + dropped).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events evicted from the ring.
    pub fn dropped(&self) -> u64 {
        self.recorded - self.buf.len() as u64
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no event was kept.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Iterate kept events oldest-first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.buf[self.head..]
            .iter()
            .chain(self.buf[..self.head].iter())
    }
}

thread_local! {
    static RECORDER: RefCell<Option<FlightRecorder>> = const { RefCell::new(None) };
    static ENABLED: Cell<bool> = const { Cell::new(false) };
}

/// True when a recorder is installed on this thread. One thread-local
/// flag read — this is the entire disabled-path cost of every hook.
#[inline]
pub fn enabled() -> bool {
    ENABLED.with(Cell::get)
}

/// Nanoseconds since the installed recorder's epoch (0 when tracing is
/// disabled; callers gate on [`enabled`] first).
#[inline]
pub fn now_ns() -> u64 {
    RECORDER.with(|r| r.borrow().as_ref().map_or(0, FlightRecorder::elapsed_ns))
}

/// The installed recorder's epoch `Instant`, if tracing is enabled.
/// Lets the main thread hand workers a clock base they can stamp
/// scratch offsets against without touching thread-local state.
pub fn epoch() -> Option<Instant> {
    RECORDER.with(|r| r.borrow().as_ref().map(FlightRecorder::epoch))
}

/// Record an event into the installed recorder; no-op when disabled.
#[inline]
pub fn record(ev: Event) {
    if enabled() {
        RECORDER.with(|r| {
            if let Some(rec) = r.borrow_mut().as_mut() {
                rec.push(ev);
            }
        });
    }
}

/// Install a recorder on this thread, returning any previous one.
pub fn install(rec: FlightRecorder) -> Option<FlightRecorder> {
    let prev = RECORDER.with(|r| r.borrow_mut().replace(rec));
    ENABLED.with(|e| e.set(true));
    prev
}

/// Remove and return this thread's recorder, disabling tracing.
pub fn uninstall() -> Option<FlightRecorder> {
    ENABLED.with(|e| e.set(false));
    RECORDER.with(|r| r.borrow_mut().take())
}

/// Scoped tracing session: installs a fresh [`FlightRecorder`] on
/// construction, hands it back on [`finish`](TraceSession::finish).
/// Dropping without finishing uninstalls and discards (panic-safe for
/// tests).
#[derive(Debug)]
pub struct TraceSession {
    done: bool,
}

impl TraceSession {
    /// Install a fresh recorder with the given ring capacity.
    pub fn start(capacity: usize) -> Self {
        install(FlightRecorder::new(capacity));
        TraceSession { done: false }
    }

    /// Uninstall and return the recorder with everything captured.
    pub fn finish(mut self) -> FlightRecorder {
        self.done = true;
        uninstall().expect("trace session recorder was removed underneath us")
    }
}

impl Drop for TraceSession {
    fn drop(&mut self) {
        if !self.done {
            uninstall();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(round: u64) -> Event {
        Event::RoundSpan {
            round,
            t0_ns: round * 10,
            t1_ns: round * 10 + 5,
            stepped: 1,
            sent: 0,
            dense: false,
            workers: 0,
        }
    }

    #[test]
    fn ring_keeps_most_recent() {
        let mut r = FlightRecorder::new(4);
        for i in 0..10 {
            r.push(ev(i));
        }
        assert_eq!(r.recorded(), 10);
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        let rounds: Vec<u64> = r
            .events()
            .map(|e| match e {
                Event::RoundSpan { round, .. } => *round,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(rounds, vec![6, 7, 8, 9]);
    }

    #[test]
    fn disabled_by_default_and_scoped_install() {
        assert!(!enabled());
        record(ev(1)); // no-op, must not panic
        let session = TraceSession::start(16);
        assert!(enabled());
        record(ev(1));
        record(ev(2));
        let rec = session.finish();
        assert!(!enabled());
        assert_eq!(rec.recorded(), 2);
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn drop_without_finish_uninstalls() {
        {
            let _s = TraceSession::start(4);
            assert!(enabled());
        }
        assert!(!enabled());
    }

    #[test]
    fn name_truncates_on_char_boundary() {
        assert_eq!(Name::new("israeli-itai").as_str(), "israeli-itai");
        let long = "a".repeat(40);
        assert_eq!(Name::new(&long).as_str().len(), NAME_CAP);
        // Multibyte char straddling the cap is dropped whole.
        let tricky = format!("{}é", "x".repeat(NAME_CAP - 1));
        let n = Name::new(&tricky);
        assert_eq!(n.as_str(), &tricky[..NAME_CAP - 1]);
    }

    #[test]
    fn timestamps_are_monotone() {
        let r = FlightRecorder::new(1);
        let a = r.elapsed_ns();
        let b = r.elapsed_ns();
        assert!(b >= a);
    }
}
