//! Named metrics registry: counters, gauges, histograms.
//!
//! A registry is a small, ordered bag of `&'static str`-named metrics.
//! Names are compared by content but interned statically by the
//! caller, so lookup is a short linear scan over a handful of entries
//! — faster than hashing at the sizes that occur here (the round
//! loop's timing registry holds four histograms) and fully
//! deterministic in iteration order, which keeps exports and equality
//! checks stable.

use crate::hist::Histogram;

/// Counters (monotone sums), gauges (last/max values), and
/// [`Histogram`]s, each addressed by a static name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Registry {
    counters: Vec<(&'static str, u64)>,
    gauges: Vec<(&'static str, u64)>,
    hists: Vec<(&'static str, Histogram)>,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// Add `by` to the named counter, creating it at zero.
    pub fn inc(&mut self, name: &'static str, by: u64) {
        match self.counters.iter_mut().find(|(n, _)| *n == name) {
            Some((_, v)) => *v += by,
            None => self.counters.push((name, by)),
        }
    }

    /// Current value of a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Set the named gauge to `v`.
    pub fn set_gauge(&mut self, name: &'static str, v: u64) {
        match self.gauges.iter_mut().find(|(n, _)| *n == name) {
            Some((_, g)) => *g = v,
            None => self.gauges.push((name, v)),
        }
    }

    /// Raise the named gauge to `v` if larger (high-water mark).
    pub fn max_gauge(&mut self, name: &'static str, v: u64) {
        match self.gauges.iter_mut().find(|(n, _)| *n == name) {
            Some((_, g)) => *g = (*g).max(v),
            None => self.gauges.push((name, v)),
        }
    }

    /// Current value of a gauge (0 when absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The named histogram, created empty on first use.
    pub fn hist_mut(&mut self, name: &'static str) -> &mut Histogram {
        if let Some(i) = self.hists.iter().position(|(n, _)| *n == name) {
            return &mut self.hists[i].1;
        }
        self.hists.push((name, Histogram::new()));
        &mut self.hists.last_mut().unwrap().1
    }

    /// The named histogram, if any value was ever recorded to it.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.iter().find(|(n, _)| *n == name).map(|(_, h)| h)
    }

    /// Record one observation into the named histogram.
    #[inline]
    pub fn record(&mut self, name: &'static str, v: u64) {
        self.hist_mut(name).record(v);
    }

    /// Sum of the named histogram's observations (0 when absent) — the
    /// scalar view, for callers that used to read an accumulator field.
    pub fn sum(&self, name: &str) -> u64 {
        self.hist(name).map_or(0, Histogram::sum)
    }

    /// Fold another registry into this one: counters add, gauges take
    /// the max, histograms merge. Metrics absent on either side are
    /// kept.
    pub fn absorb(&mut self, other: &Registry) {
        for &(name, v) in &other.counters {
            self.inc(name, v);
        }
        for &(name, v) in &other.gauges {
            self.max_gauge(name, v);
        }
        for (name, h) in &other.hists {
            self.hist_mut(name).merge(h);
        }
    }

    /// Iterate counters in insertion order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().copied()
    }

    /// Iterate gauges in insertion order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.gauges.iter().copied()
    }

    /// Iterate histograms in insertion order.
    pub fn hists(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.hists.iter().map(|(n, h)| (*n, h))
    }

    /// One JSON object: counters and gauges as numbers, histograms as
    /// `{"count","sum","min","p50","p90","p99","max"}` objects.
    pub fn to_json(&self) -> String {
        let mut parts = Vec::new();
        for (n, v) in &self.counters {
            parts.push(format!("\"{n}\": {v}"));
        }
        for (n, v) in &self.gauges {
            parts.push(format!("\"{n}\": {v}"));
        }
        for (n, h) in &self.hists {
            parts.push(format!("\"{n}\": {}", h.to_json()));
        }
        format!("{{{}}}", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_hists() {
        let mut r = Registry::new();
        assert!(r.is_empty());
        r.inc("msgs", 3);
        r.inc("msgs", 2);
        r.set_gauge("backlog", 7);
        r.set_gauge("backlog", 4);
        r.max_gauge("peak", 9);
        r.max_gauge("peak", 5);
        r.record("lat", 100);
        r.record("lat", 200);
        assert_eq!(r.counter("msgs"), 5);
        assert_eq!(r.gauge("backlog"), 4);
        assert_eq!(r.gauge("peak"), 9);
        assert_eq!(r.sum("lat"), 300);
        assert_eq!(r.hist("lat").unwrap().count(), 2);
        assert_eq!(r.counter("absent"), 0);
        assert_eq!(r.sum("absent"), 0);
        assert!(r.hist("absent").is_none());
    }

    #[test]
    fn absorb_combines_by_name() {
        let mut a = Registry::new();
        a.inc("c", 1);
        a.max_gauge("g", 10);
        a.record("h", 5);
        let mut b = Registry::new();
        b.inc("c", 2);
        b.inc("only_b", 4);
        b.max_gauge("g", 3);
        b.record("h", 7);
        a.absorb(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.counter("only_b"), 4);
        assert_eq!(a.gauge("g"), 10);
        assert_eq!(a.hist("h").unwrap().count(), 2);
        assert_eq!(a.sum("h"), 12);
    }

    #[test]
    fn default_registries_compare_equal() {
        // `masked()`-style identity checks reset the registry with
        // Default and rely on equality afterwards.
        let mut r = Registry::new();
        r.record("x", 1);
        r = Registry::default();
        assert_eq!(r, Registry::new());
    }

    #[test]
    fn json_shape() {
        let mut r = Registry::new();
        r.inc("c", 1);
        r.record("h", 2);
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"c\": 1"));
        assert!(j.contains("\"h\": {\"count\": 1"));
    }
}
