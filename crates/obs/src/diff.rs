//! Bench-record diffing: the engine behind the `benchdiff` binary.
//!
//! Two `BENCH_*.json` records are flattened to dotted numeric paths
//! and compared pairwise. Every path is classified:
//!
//! - **perf** — wall-clock and derived-from-wall-clock quantities
//!   (`*_ns`, `*_ms`, `*speedup*`, `*latency*`, …). Only comparable
//!   when both records carry the *same host fingerprint* (the `host`
//!   object the harness embeds); across differing hosts the diff
//!   reports the ratios but refuses to call any of them a regression.
//! - **counter** — deterministic quantities (rounds, messages, bits,
//!   node steps, ratios). Host-independent, always gated.
//! - **meta** — identity fields (the host object itself, thread
//!   capacity actually observed, names): never gated.
//!
//! A comparison regresses when `new` is worse than `old` by more than
//! the class threshold, in the direction that is worse for that metric
//! (most metrics are lower-is-better; `*speedup*`, `*ratio*` and
//! `*throughput*` are higher-is-better).

use crate::json::Value;

/// What a flattened path measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Wall-clock dependent: gated only within one host fingerprint.
    Perf,
    /// Deterministic count: gated everywhere.
    Counter,
    /// Identity/context: reported, never gated.
    Meta,
}

/// Thresholds and mode for a diff run.
#[derive(Debug, Clone, Copy)]
pub struct DiffCfg {
    /// Allowed relative perf regression before failing (0.25 = 25%).
    pub perf_threshold: f64,
    /// Allowed relative counter regression before failing.
    pub counter_threshold: f64,
    /// Report only: classify and print, never count regressions.
    pub report_only: bool,
}

impl Default for DiffCfg {
    fn default() -> Self {
        DiffCfg {
            perf_threshold: 0.25,
            counter_threshold: 0.05,
            report_only: false,
        }
    }
}

/// One compared numeric path.
#[derive(Debug, Clone)]
pub struct Delta {
    /// Dotted path into the record (`rows.2.sparse_ms`).
    pub path: String,
    /// Classification the gate used.
    pub class: Class,
    /// Value in the old record.
    pub old: f64,
    /// Value in the new record.
    pub new: f64,
    /// Relative change in the *worse* direction for this metric
    /// (positive = regressed, negative = improved).
    pub regression_ratio: f64,
    /// True when this delta exceeds its class threshold (never set in
    /// report-only mode or for perf paths across differing hosts).
    pub regressed: bool,
}

/// Outcome of diffing one pair of records.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// All compared numeric paths, in flattening order.
    pub deltas: Vec<Delta>,
    /// True when both records carry an identical host fingerprint.
    pub hosts_match: bool,
    /// True when perf paths existed but were not gated because the
    /// host fingerprints differ.
    pub perf_refused: bool,
    /// Paths present in only one record.
    pub unmatched: Vec<String>,
    /// Number of gated regressions (what the exit code keys on).
    pub regressions: usize,
}

/// Classify a flattened path by its final key segment.
pub fn classify(path: &str) -> Class {
    let key = path.rsplit('.').next().unwrap_or(path).to_ascii_lowercase();
    let full = path.to_ascii_lowercase();
    // Identity/context fields: never gate.
    if full.starts_with("host.")
        || full.contains(".host.")
        || key.contains("threads")
        || key.contains("workers")
        || key.contains("seed")
        || key == "n"
        || key.ends_with("_n")
        || key.contains("epochs")
        || key.contains("runs")
        || key.contains("cap")
    {
        return Class::Meta;
    }
    // Wall-clock and derived-from-wall-clock quantities.
    if key.ends_with("_ns")
        || key.ends_with("_ms")
        || key.ends_with("_us")
        || key.ends_with("_s")
        || key.contains("time")
        || key.contains("latency")
        || key.contains("speedup")
        || key.contains("overhead_pct")
        || key.contains("crossover")
        || key.contains("throughput")
    {
        return Class::Perf;
    }
    Class::Counter
}

/// True when larger values are better for this path (speedups,
/// approximation ratios, throughput); everything else regresses
/// upward.
pub fn higher_is_better(path: &str) -> bool {
    let key = path.rsplit('.').next().unwrap_or(path).to_ascii_lowercase();
    key.contains("speedup") || key.contains("ratio") || key.contains("throughput")
}

fn flatten_into(prefix: &str, v: &Value, out: &mut Vec<(String, f64)>) {
    match v {
        Value::Num(n) => out.push((prefix.to_string(), *n)),
        Value::Bool(b) => out.push((prefix.to_string(), if *b { 1.0 } else { 0.0 })),
        Value::Obj(pairs) => {
            for (k, val) in pairs {
                let p = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten_into(&p, val, out);
            }
        }
        Value::Arr(items) => {
            for (i, val) in items.iter().enumerate() {
                flatten_into(&format!("{prefix}.{i}"), val, out);
            }
        }
        // Strings and nulls don't diff numerically.
        Value::Str(_) | Value::Null => {}
    }
}

/// Flatten a record to dotted numeric paths (bools as 0/1; strings and
/// nulls skipped).
pub fn flatten(v: &Value) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    flatten_into("", v, &mut out);
    out
}

/// The host fingerprint of a record, as a canonical comparison string
/// (`None` when the record carries no `host` object).
pub fn host_fingerprint(v: &Value) -> Option<String> {
    let host = v.get("host")?;
    let mut flat = Vec::new();
    flatten_into("host", host, &mut flat);
    let mut parts: Vec<String> = flat.iter().map(|(k, n)| format!("{k}={n}")).collect();
    // Strings matter most for a fingerprint (os/arch/profile).
    if let Some(pairs) = host.as_object() {
        for (k, val) in pairs {
            if let Some(s) = val.as_str() {
                parts.push(format!("host.{k}={s}"));
            }
        }
    }
    parts.sort();
    Some(parts.join(";"))
}

/// Relative change of `old → new` in the *worse* direction, safe for
/// zero-valued baselines:
///
/// * both sides (effectively) zero → `0.0` — no change, a pass;
/// * a zero baseline that becomes nonzero in the worse direction →
///   `+∞` — any finite threshold flags it, so `0 → k` on a gated
///   counter can never slip through as a pass;
/// * a nonzero baseline → ordinary `(worse_to - worse_from) /
///   |worse_from|`, negative when `new` improved.
///
/// Never divides by zero and never returns `NaN`.
pub fn regression_ratio(old: f64, new: f64, higher_better: bool) -> f64 {
    let (worse_from, worse_to) = if higher_better {
        (new, old)
    } else {
        (old, new)
    };
    if worse_from.abs() > f64::EPSILON {
        (worse_to - worse_from) / worse_from.abs()
    } else if worse_to.abs() > f64::EPSILON {
        f64::INFINITY
    } else {
        0.0
    }
}

/// Diff two parsed records under `cfg`.
pub fn diff(old: &Value, new: &Value, cfg: &DiffCfg) -> DiffReport {
    let old_flat = flatten(old);
    let new_flat = flatten(new);
    let hosts_match = match (host_fingerprint(old), host_fingerprint(new)) {
        (Some(a), Some(b)) => a == b,
        // A record without a fingerprint can't prove comparability.
        _ => false,
    };

    let mut deltas = Vec::new();
    let mut unmatched = Vec::new();
    let mut regressions = 0usize;
    let mut perf_refused = false;

    for (path, old_v) in &old_flat {
        let Some((_, new_v)) = new_flat.iter().find(|(p, _)| p == path) else {
            unmatched.push(path.clone());
            continue;
        };
        let class = classify(path);
        let regression_ratio = regression_ratio(*old_v, *new_v, higher_is_better(path));
        let threshold = match class {
            Class::Perf => cfg.perf_threshold,
            Class::Counter => cfg.counter_threshold,
            Class::Meta => f64::INFINITY,
        };
        let mut regressed =
            !cfg.report_only && class != Class::Meta && regression_ratio > threshold;
        if regressed && class == Class::Perf && !hosts_match {
            regressed = false;
            perf_refused = true;
        }
        if class == Class::Perf && !hosts_match {
            perf_refused = true;
        }
        if regressed {
            regressions += 1;
        }
        deltas.push(Delta {
            path: path.clone(),
            class,
            old: *old_v,
            new: *new_v,
            regression_ratio,
            regressed,
        });
    }
    for (path, _) in &new_flat {
        if !old_flat.iter().any(|(p, _)| p == path) {
            unmatched.push(path.clone());
        }
    }

    DiffReport {
        deltas,
        hosts_match,
        perf_refused,
        unmatched,
        regressions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    const HOST_A: &str =
        r#"{"available_parallelism": 1, "os": "linux", "arch": "x86_64", "profile": "release"}"#;
    const HOST_B: &str =
        r#"{"available_parallelism": 8, "os": "linux", "arch": "aarch64", "profile": "release"}"#;

    fn record(host: &str, rounds: u64, ms: f64) -> Value {
        parse(&format!(
            r#"{{"bench": "t", "host": {host}, "rounds": {rounds}, "sparse_ms": {ms}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn classification() {
        assert_eq!(classify("rows.0.sparse_ms"), Class::Perf);
        assert_eq!(classify("repair.update_ns"), Class::Perf);
        assert_eq!(classify("par_speedup"), Class::Perf);
        assert_eq!(classify("rounds"), Class::Counter);
        assert_eq!(classify("messages"), Class::Counter);
        assert_eq!(classify("host.available_parallelism"), Class::Meta);
        assert_eq!(classify("threads_used_peak"), Class::Meta);
        assert!(higher_is_better("par_speedup"));
        assert!(higher_is_better("ii_ratio"));
        assert!(!higher_is_better("rounds"));
    }

    #[test]
    fn zero_baseline_counters_have_explicit_verdicts() {
        // 0 → 0: no change, pass.
        let rep = diff(
            &record(HOST_A, 0, 10.0),
            &record(HOST_A, 0, 10.0),
            &DiffCfg::default(),
        );
        let d = rep.deltas.iter().find(|d| d.path == "rounds").unwrap();
        assert!(!d.regressed, "0 → 0 must pass");
        assert_eq!(d.regression_ratio, 0.0);
        assert_eq!(rep.regressions, 0);

        // 0 → k: infinite blowup, must gate — never a silent pass.
        let rep = diff(
            &record(HOST_A, 0, 10.0),
            &record(HOST_A, 7, 10.0),
            &DiffCfg::default(),
        );
        let d = rep.deltas.iter().find(|d| d.path == "rounds").unwrap();
        assert!(d.regressed, "0 → k must gate");
        assert!(d.regression_ratio.is_infinite() && d.regression_ratio > 0.0);
        assert_eq!(rep.regressions, 1);

        // k → 0: an improvement, pass.
        let rep = diff(
            &record(HOST_A, 7, 10.0),
            &record(HOST_A, 0, 10.0),
            &DiffCfg::default(),
        );
        let d = rep.deltas.iter().find(|d| d.path == "rounds").unwrap();
        assert!(!d.regressed, "k → 0 must pass");
        assert!((d.regression_ratio + 1.0).abs() < 1e-9);
        assert_eq!(rep.regressions, 0);
    }

    #[test]
    fn regression_ratio_never_divides_by_zero_or_nans() {
        for &(old, new, hb) in &[
            (0.0, 0.0, false),
            (0.0, 5.0, false),
            (5.0, 0.0, false),
            (0.0, 0.0, true),
            (0.0, 5.0, true),
            (5.0, 0.0, true),
        ] {
            let r = regression_ratio(old, new, hb);
            assert!(!r.is_nan(), "({old}, {new}, {hb}) produced NaN");
        }
        // Higher-is-better collapse to zero is an infinite regression
        // (throughput 5 → 0), and a zero baseline that gains
        // throughput is an improvement-from-nothing, not a regression.
        assert!(regression_ratio(5.0, 0.0, true).is_infinite());
        assert_eq!(regression_ratio(0.0, 5.0, true), -1.0);
    }

    #[test]
    fn injected_rounds_regression_is_caught() {
        // The acceptance-criteria case: 2× rounds must gate.
        let old = record(HOST_A, 100, 10.0);
        let new = record(HOST_A, 200, 10.0);
        let rep = diff(&old, &new, &DiffCfg::default());
        assert!(rep.hosts_match);
        assert_eq!(rep.regressions, 1);
        let d = rep.deltas.iter().find(|d| d.path == "rounds").unwrap();
        assert!(d.regressed);
        assert!((d.regression_ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cross_host_perf_verdict_is_refused_but_counters_gate() {
        let old = record(HOST_A, 100, 10.0);
        let new = record(HOST_B, 250, 100.0); // 10× slower AND 2.5× rounds
        let rep = diff(&old, &new, &DiffCfg::default());
        assert!(!rep.hosts_match);
        assert!(rep.perf_refused);
        // The wall-clock blowup is not a regression across hosts…
        let ms = rep.deltas.iter().find(|d| d.path == "sparse_ms").unwrap();
        assert!(!ms.regressed);
        // …but the counter regression still gates.
        let r = rep.deltas.iter().find(|d| d.path == "rounds").unwrap();
        assert!(r.regressed);
        assert_eq!(rep.regressions, 1);
    }

    #[test]
    fn same_host_perf_regression_gates() {
        let old = record(HOST_A, 100, 10.0);
        let new = record(HOST_A, 100, 20.0);
        let rep = diff(&old, &new, &DiffCfg::default());
        assert_eq!(rep.regressions, 1);
        assert!(rep
            .deltas
            .iter()
            .any(|d| d.path == "sparse_ms" && d.regressed));
    }

    #[test]
    fn improvements_and_small_noise_pass() {
        let old = record(HOST_A, 100, 10.0);
        let new = record(HOST_A, 98, 9.1); // both improved
        let rep = diff(&old, &new, &DiffCfg::default());
        assert_eq!(rep.regressions, 0);
        let new2 = record(HOST_A, 103, 11.0); // 3% counters, 10% perf: inside thresholds
        let rep2 = diff(&old, &new2, &DiffCfg::default());
        assert_eq!(rep2.regressions, 0);
    }

    #[test]
    fn higher_is_better_direction() {
        let old = parse(&format!(
            r#"{{"host": {HOST_A}, "par_speedup": 2.0, "ii_ratio": 0.9}}"#
        ))
        .unwrap();
        let new = parse(&format!(
            r#"{{"host": {HOST_A}, "par_speedup": 1.0, "ii_ratio": 0.6}}"#
        ))
        .unwrap();
        let rep = diff(&old, &new, &DiffCfg::default());
        // Speedup halved (perf, hosts match) and ratio fell by a third
        // (counter): both gate.
        assert_eq!(rep.regressions, 2);
    }

    #[test]
    fn report_only_never_gates() {
        let old = record(HOST_A, 100, 10.0);
        let new = record(HOST_A, 1000, 1000.0);
        let cfg = DiffCfg {
            report_only: true,
            ..DiffCfg::default()
        };
        let rep = diff(&old, &new, &cfg);
        assert_eq!(rep.regressions, 0);
        assert!(rep.deltas.iter().all(|d| !d.regressed));
    }

    #[test]
    fn unmatched_paths_are_listed() {
        let old = parse(r#"{"a": 1, "shared": 2}"#).unwrap();
        let new = parse(r#"{"b": 3, "shared": 2}"#).unwrap();
        let rep = diff(&old, &new, &DiffCfg::default());
        assert!(rep.unmatched.contains(&"a".to_string()));
        assert!(rep.unmatched.contains(&"b".to_string()));
    }

    #[test]
    fn missing_fingerprint_refuses_perf() {
        let old = parse(r#"{"sparse_ms": 10.0}"#).unwrap();
        let new = parse(r#"{"sparse_ms": 100.0}"#).unwrap();
        let rep = diff(&old, &new, &DiffCfg::default());
        assert!(!rep.hosts_match);
        assert_eq!(rep.regressions, 0);
        assert!(rep.perf_refused);
    }
}
