//! `dobs` — the observability plane for the distributed-matching
//! stack.
//!
//! Every layer above this crate (the `simnet` round simulator, the
//! `dmatch` session driver, the `dchurn` dynamic engine, the bench
//! harness) emits numbers; this crate is the one substrate they emit
//! them into:
//!
//! - [`plane`] — the structured event plane: typed, `Copy`,
//!   heap-free [`Event`]s (round spans, scheduler mode switches, phase
//!   and epoch boundaries, rewires, wakes, repair-ball probes, worker
//!   sections) recorded into a bounded ring-buffer
//!   [`FlightRecorder`]. Installation is thread-local and scoped
//!   ([`TraceSession`]); when nothing is installed — the default —
//!   every hook costs one flag read and an untaken branch. Like
//!   `NetStats::sched_overhead`, anything captured here is *excluded
//!   from the bit-identity contract*: tracing observes runs, it never
//!   steers them, and `tests/prop_plane.rs` holds the line.
//! - [`metrics`] — a named [`Registry`] of counters, gauges, and
//!   log-bucketed percentile [`Histogram`]s (p50/p90/p99/max), the
//!   home for quantities that used to live in loose scalar fields.
//! - [`export`] — JSONL event dumps and Chrome trace-event JSON that
//!   loads in Perfetto / `chrome://tracing` with per-round spans and
//!   per-worker tracks.
//! - [`json`] / [`diff`] — a dependency-free JSON parser and the
//!   bench-record diff engine behind the `benchdiff` binary:
//!   host-fingerprint-aware (refuses cross-host perf verdicts,
//!   still gates counters) with configurable regression thresholds.

pub mod diff;
pub mod export;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod plane;

pub use hist::Histogram;
pub use metrics::Registry;
pub use plane::{Event, FaultKind, FlightRecorder, Name, TraceSession};
