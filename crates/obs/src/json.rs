//! Minimal JSON parser for the observability tooling.
//!
//! `benchdiff` has to read `BENCH_*.json` records and the tests have
//! to validate exported traces; the workspace is dependency-free by
//! policy, so this is a small recursive-descent parser covering the
//! full JSON grammar. Objects preserve key order (a `Vec` of pairs),
//! numbers are `f64` — both fine for bench records, which are flat,
//! small, and written by our own binaries.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, as `f64`.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source key order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object member by key (first match), if this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The bool, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }
}

/// Parse a complete JSON document; trailing whitespace is allowed,
/// trailing content is an error.
pub fn parse(src: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}",
                b as char,
                self.pos.saturating_sub(1)
            ))
        }
    }

    fn eat_keyword(&mut self, kw: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.eat_keyword("true", Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Value::Bool(false)),
            Some(b'n') => self.eat_keyword("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Obj(pairs)),
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Arr(items)),
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // Surrogate pair support for completeness.
                        let ch = if (0xD800..0xDC00).contains(&cp) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err("unpaired surrogate".into());
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err("invalid low surrogate".into());
                            }
                            let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(c).ok_or("invalid surrogate pair")?
                        } else {
                            char::from_u32(cp).ok_or("invalid \\u escape")?
                        };
                        out.push(ch);
                    }
                    _ => return Err(format!("bad escape at byte {}", self.pos)),
                },
                Some(b) if b < 0x20 => {
                    return Err(format!("control character in string at byte {}", self.pos))
                }
                Some(b) => {
                    // Re-assemble UTF-8 multibyte sequences byte-for-byte.
                    let start = self.pos - 1;
                    let len = match b {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    self.pos = (start + len).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.bump().ok_or("truncated \\u escape")?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| format!("bad hex digit at byte {}", self.pos))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        s.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number '{s}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bench_record_shape() {
        let src = r#"{
            "bench": "e17_sparse", "n": 120000,
            "host": {"available_parallelism": 1, "os": "linux", "arch": "x86_64", "profile": "release"},
            "rows": [{"active_pct": 100, "sparse_ms": 110.6}, {"active_pct": 10, "sparse_ms": 2.7}],
            "crossover": null, "ok": true
        }"#;
        let v = parse(src).unwrap();
        assert_eq!(v.get("n").unwrap().as_f64(), Some(120000.0));
        assert_eq!(
            v.get("host").unwrap().get("os").unwrap().as_str(),
            Some("linux")
        );
        assert_eq!(v.get("rows").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.get("crossover"), Some(&Value::Null));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn numbers_including_exponents_and_negatives() {
        let v = parse("[-1, 0, 3.5, 1e3, -2.5e-2]").unwrap();
        let nums: Vec<f64> = v
            .as_array()
            .unwrap()
            .iter()
            .map(|x| x.as_f64().unwrap())
            .collect();
        assert_eq!(nums, vec![-1.0, 0.0, 3.5, 1000.0, -0.025]);
    }

    #[test]
    fn strings_with_escapes() {
        let v = parse(r#""a\"b\\c\ndAé""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAé"));
    }

    #[test]
    fn surrogate_pair_escapes_decode() {
        let v = parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
    }

    #[test]
    fn surrogate_pairs() {
        let v = parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\": 1} trailing").is_err());
        assert!(parse("tru").is_err());
    }

    #[test]
    fn unicode_passthrough() {
        let v = parse("{\"clé\": \"naïve\"}").unwrap();
        assert_eq!(v.get("clé").unwrap().as_str(), Some("naïve"));
    }
}
