//! The core immutable graph type.
//!
//! Undirected, simple (no self-loops, no parallel edges), with `f64`
//! edge weights (1.0 for unweighted workloads). Stored in CSR form with
//! *edge ids*: every undirected edge has one id, and each incidence-list
//! entry carries `(neighbor, edge_id)` so matchings and augmentations
//! can refer to edges unambiguously.

/// Node identifier (compatible with `simnet::NodeId`).
pub type NodeId = u32;
/// Edge identifier: index into the graph's edge list.
pub type EdgeId = u32;

/// Sentinel for "no mate" in mate arrays.
pub const UNMATCHED: NodeId = NodeId::MAX;

/// An immutable undirected weighted graph.
#[derive(Debug, Clone)]
pub struct Graph {
    n: usize,
    /// Canonical endpoints, `u < v`.
    edges: Vec<(NodeId, NodeId)>,
    weights: Vec<f64>,
    /// CSR offsets into `adj`.
    offsets: Vec<usize>,
    /// Flattened incidence lists, sorted by neighbor id.
    adj: Vec<(NodeId, EdgeId)>,
}

impl Graph {
    /// Build an unweighted graph (all weights 1.0).
    pub fn new(n: usize, edges: Vec<(NodeId, NodeId)>) -> Self {
        let w = vec![1.0; edges.len()];
        Self::with_weights(n, edges, w)
    }

    /// Build a weighted graph. Endpoints are canonicalized to `u < v`.
    ///
    /// Panics on self-loops, duplicate edges, out-of-range endpoints,
    /// negative or non-finite weights — all modelling errors.
    pub fn with_weights(n: usize, edges: Vec<(NodeId, NodeId)>, weights: Vec<f64>) -> Self {
        assert_eq!(edges.len(), weights.len(), "one weight per edge");
        let mut canon: Vec<(NodeId, NodeId)> = Vec::with_capacity(edges.len());
        for &(u, v) in &edges {
            assert!(u != v, "self-loop at {u}");
            assert!(
                (u as usize) < n && (v as usize) < n,
                "edge ({u},{v}) out of range (n={n})"
            );
            canon.push((u.min(v), u.max(v)));
        }
        for &w in &weights {
            assert!(
                w.is_finite() && w >= 0.0,
                "weights must be finite and non-negative, got {w}"
            );
        }
        let mut degree = vec![0usize; n];
        for &(u, v) in &canon {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut adj = vec![(0 as NodeId, 0 as EdgeId); acc];
        for (e, &(u, v)) in canon.iter().enumerate() {
            adj[cursor[u as usize]] = (v, e as EdgeId);
            cursor[u as usize] += 1;
            adj[cursor[v as usize]] = (u, e as EdgeId);
            cursor[v as usize] += 1;
        }
        for v in 0..n {
            let slice = &mut adj[offsets[v]..offsets[v + 1]];
            slice.sort_unstable();
            assert!(
                slice.windows(2).all(|w| w[0].0 != w[1].0),
                "duplicate edge at node {v}"
            );
        }
        Graph {
            n,
            edges: canon,
            weights,
            offsets,
            adj,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// True when the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Canonical endpoints `(u, v)` with `u < v` of edge `e`.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.edges[e as usize]
    }

    /// The endpoint of `e` that is not `v`.
    #[inline]
    pub fn other(&self, e: EdgeId, v: NodeId) -> NodeId {
        let (a, b) = self.endpoints(e);
        debug_assert!(v == a || v == b, "node {v} not incident to edge {e}");
        if v == a {
            b
        } else {
            a
        }
    }

    /// Weight of edge `e`.
    #[inline]
    pub fn weight(&self, e: EdgeId) -> f64 {
        self.weights[e as usize]
    }

    /// All edges with their canonical endpoints.
    #[inline]
    pub fn edge_list(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }

    /// All edge weights (indexed by [`EdgeId`]).
    #[inline]
    pub fn weight_list(&self) -> &[f64] {
        &self.weights
    }

    /// Incidence list of `v`: `(neighbor, edge_id)` sorted by neighbor.
    #[inline]
    pub fn incident(&self, v: NodeId) -> &[(NodeId, EdgeId)] {
        &self.adj[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Maximum degree Δ.
    pub fn max_degree(&self) -> usize {
        (0..self.n)
            .map(|v| self.degree(v as NodeId))
            .max()
            .unwrap_or(0)
    }

    /// Edge id between `u` and `v`, if present.
    pub fn edge_between(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        let inc = self.incident(u);
        inc.binary_search_by_key(&v, |&(nb, _)| nb)
            .ok()
            .map(|i| inc[i].1)
    }

    /// Total weight of all edges.
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// Restrict to the edges for which `keep` returns true. Node ids are
    /// preserved; dropped edges simply disappear. Returns the subgraph
    /// and a map `new edge id -> original edge id`.
    pub fn edge_subgraph(&self, mut keep: impl FnMut(EdgeId) -> bool) -> (Graph, Vec<EdgeId>) {
        let mut edges = Vec::new();
        let mut weights = Vec::new();
        let mut back = Vec::new();
        for e in 0..self.m() as EdgeId {
            if keep(e) {
                edges.push(self.edges[e as usize]);
                weights.push(self.weights[e as usize]);
                back.push(e);
            }
        }
        (Graph::with_weights(self.n, edges, weights), back)
    }

    /// Replace all weights (e.g. with derived gains `w_M`). Length must
    /// match the edge count; weights must be finite and non-negative.
    pub fn reweighted(&self, weights: Vec<f64>) -> Graph {
        Graph::with_weights(self.n, self.edges.clone(), weights)
    }

    /// Number of connected components.
    pub fn components(&self) -> usize {
        let mut seen = vec![false; self.n];
        let mut stack = Vec::new();
        let mut comps = 0;
        for s in 0..self.n {
            if seen[s] {
                continue;
            }
            comps += 1;
            seen[s] = true;
            stack.push(s as NodeId);
            while let Some(v) = stack.pop() {
                for &(u, _) in self.incident(v) {
                    if !seen[u as usize] {
                        seen[u as usize] = true;
                        stack.push(u);
                    }
                }
            }
        }
        comps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn house() -> Graph {
        // A 4-cycle with a diagonal and a pendant.
        Graph::new(5, vec![(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (3, 4)])
    }

    #[test]
    fn basic_accessors() {
        let g = house();
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 6);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(4), 1);
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.endpoints(0), (0, 1));
    }

    #[test]
    fn incidence_is_sorted_and_consistent() {
        let g = house();
        for v in 0..5u32 {
            let inc = g.incident(v);
            assert!(inc.windows(2).all(|w| w[0].0 < w[1].0));
            for &(u, e) in inc {
                assert_eq!(g.other(e, v), u);
            }
        }
    }

    #[test]
    fn edge_between_works_both_ways() {
        let g = house();
        let e = g.edge_between(2, 0).expect("diagonal");
        assert_eq!(g.endpoints(e), (0, 2));
        assert_eq!(g.edge_between(0, 2), Some(e));
        assert_eq!(g.edge_between(1, 3), None);
    }

    #[test]
    fn weights_default_to_one() {
        let g = house();
        assert_eq!(g.total_weight(), 6.0);
        assert_eq!(g.weight(3), 1.0);
    }

    #[test]
    fn edge_subgraph_preserves_ids() {
        let g = house();
        let (sub, back) = g.edge_subgraph(|e| e % 2 == 0);
        assert_eq!(sub.m(), 3);
        assert_eq!(sub.n(), 5);
        for (new_e, &old_e) in back.iter().enumerate() {
            assert_eq!(sub.endpoints(new_e as EdgeId), g.endpoints(old_e));
        }
    }

    #[test]
    fn reweighted_replaces_weights() {
        let g = house();
        let g2 = g.reweighted(vec![2.0; 6]);
        assert_eq!(g2.total_weight(), 12.0);
        assert_eq!(g2.endpoints(5), g.endpoints(5));
    }

    #[test]
    fn components_counts() {
        let g = Graph::new(6, vec![(0, 1), (2, 3), (3, 4)]);
        assert_eq!(g.components(), 3); // {0,1}, {2,3,4}, {5}
        assert_eq!(house().components(), 1);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loop() {
        Graph::new(2, vec![(1, 1)]);
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn rejects_parallel_edges() {
        Graph::new(3, vec![(0, 1), (1, 0)]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_weights() {
        Graph::with_weights(2, vec![(0, 1)], vec![-1.0]);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(0, vec![]);
        assert!(g.is_empty());
        assert_eq!(g.components(), 0);
    }
}
