//! Hopcroft–Karp maximum-cardinality matching for bipartite graphs.
//!
//! The paper builds directly on this algorithm's structure (phases of
//! shortest augmenting paths, Lemmas 3.4/3.5 are from the same paper
//! \[13\]); here it serves as the exact baseline for every bipartite
//! approximation-ratio measurement. `O(E·√V)`.

use crate::graph::{Graph, NodeId, UNMATCHED};
use crate::matching::Matching;

const INF: u32 = u32::MAX;

/// Compute a maximum-cardinality matching of a bipartite graph.
/// `sides[v] == false` means `v` is on the X side.
///
/// ```
/// use dgraph::generators::structured::complete_bipartite;
/// let (g, sides) = complete_bipartite(3, 5);
/// let m = dgraph::hopcroft_karp::max_matching(&g, &sides);
/// assert_eq!(m.size(), 3);
/// ```
pub fn max_matching(g: &Graph, sides: &[bool]) -> Matching {
    assert!(
        crate::bipartite::is_valid_bipartition(g, sides),
        "hopcroft_karp requires a valid bipartition"
    );
    let n = g.n();
    let mut mate: Vec<NodeId> = vec![UNMATCHED; n];
    let mut dist: Vec<u32> = vec![INF; n];
    let mut queue = std::collections::VecDeque::new();

    loop {
        // BFS phase: layer X vertices by alternating distance.
        queue.clear();
        for v in 0..n {
            if !sides[v] {
                if mate[v] == UNMATCHED {
                    dist[v] = 0;
                    queue.push_back(v as NodeId);
                } else {
                    dist[v] = INF;
                }
            }
        }
        let mut found = false;
        while let Some(x) = queue.pop_front() {
            for &(y, _) in g.incident(x) {
                let mx = mate[y as usize];
                if mx == UNMATCHED {
                    found = true;
                } else if dist[mx as usize] == INF {
                    dist[mx as usize] = dist[x as usize] + 1;
                    queue.push_back(mx);
                }
            }
        }
        if !found {
            break;
        }
        // DFS phase: augment along a maximal set of shortest paths.
        for v in 0..n as NodeId {
            if !sides[v as usize] && mate[v as usize] == UNMATCHED {
                try_augment(g, v, &mut mate, &mut dist);
            }
        }
    }
    Matching::from_mates(mate)
}

fn try_augment(g: &Graph, x: NodeId, mate: &mut [NodeId], dist: &mut [u32]) -> bool {
    for &(y, _) in g.incident(x) {
        let mx = mate[y as usize];
        let ok = if mx == UNMATCHED {
            true
        } else if dist[mx as usize] == dist[x as usize] + 1 {
            try_augment(g, mx, mate, dist)
        } else {
            false
        };
        if ok {
            mate[x as usize] = y;
            mate[y as usize] = x;
            return true;
        }
    }
    dist[x as usize] = INF;
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bipartite::two_color;
    use crate::generators::random::bipartite_gnp;
    use crate::generators::structured::{complete_bipartite, path};

    #[test]
    fn perfect_on_complete_bipartite() {
        let (g, sides) = complete_bipartite(5, 5);
        let m = max_matching(&g, &sides);
        assert_eq!(m.size(), 5);
        assert!(m.validate(&g).is_ok());
    }

    #[test]
    fn unbalanced_sides() {
        let (g, sides) = complete_bipartite(3, 7);
        assert_eq!(max_matching(&g, &sides).size(), 3);
    }

    #[test]
    fn path_matching() {
        let g = path(7); // 6 edges, max matching 3
        let sides = two_color(&g).unwrap();
        assert_eq!(max_matching(&g, &sides).size(), 3);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(4, vec![]);
        let sides = two_color(&g).unwrap();
        assert_eq!(max_matching(&g, &sides).size(), 0);
    }

    #[test]
    fn koenig_sanity_on_random_bipartite() {
        // Maximum matching size must be ≥ m / Δ (each edge blocked by
        // some matched vertex, each matched edge covers ≤ 2Δ edges) and
        // ≤ min side size.
        for seed in 0..5 {
            let (g, sides) = bipartite_gnp(20, 20, 0.15, seed);
            let m = max_matching(&g, &sides);
            assert!(m.validate(&g).is_ok());
            assert!(m.size() <= 20);
            // No augmenting path may remain.
            assert_eq!(
                crate::augmenting::shortest_augmenting_path_len_bipartite(&g, &sides, &m),
                None,
                "matching is not maximum (seed {seed})"
            );
        }
    }

    #[test]
    fn matches_exhaustive_enumeration_on_small_graphs() {
        use crate::augmenting::enumerate_augmenting_paths;
        for seed in 0..10 {
            let (g, sides) = bipartite_gnp(5, 5, 0.4, 100 + seed);
            let hk = max_matching(&g, &sides);
            // Berge: maximum iff no augmenting path of any length (≤ n).
            assert!(enumerate_augmenting_paths(&g, &hk, g.n()).is_empty());
        }
    }
}
