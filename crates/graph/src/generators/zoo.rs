//! The topology zoo: heavy-tailed, geometric, and regular families.
//!
//! The SPAA'08 guarantees are graph-universal, but local/LCA-style
//! analyses are most stressed by skewed degree distributions and
//! rigid/regular structure — exactly what `gnp`/`gnm` never produce.
//! Each generator here is deterministic in its seed and runs in
//! (expected) `O(n + m)` up to the logarithmic factors noted per
//! function, so the families compose with the stress suite at
//! `2^15+` nodes. All of them combine with
//! [`apply_weights`](crate::generators::weights::apply_weights).
//!
//! Together with [`barabasi_albert`](crate::generators::random::barabasi_albert)
//! these are the five zoo families swept by the E18 conformance
//! experiment: preferential attachment, Chung–Lu power law, random
//! geometric, random `d`-regular, and Zipf-skewed bipartite.

use crate::builder::GraphBuilder;
use crate::graph::{Graph, NodeId};
use crate::rng::Rng64;

/// Chung–Lu random graph with a power-law expected-degree sequence.
///
/// Node `i` gets weight `w_i ∝ (i+1)^{-1/(exponent-1)}` scaled so the
/// mean weight is `avg_deg`; the pair `{i, j}` is an edge with
/// probability `min(1, w_i·w_j / Σw)`. For `exponent ∈ (2, 3]` the
/// realized degree sequence is heavy-tailed with tail exponent
/// `exponent`; node 0 is the largest hub (labels are sorted by
/// expected degree — relabel if you need exchangeability).
///
/// Runs in expected `O(n + m)` via the Miller–Hagberg geometric
/// skipping construction over the weight-sorted order (no `O(n²)`
/// pair scan).
///
/// # Panics
///
/// If `exponent ≤ 1` or `avg_deg ≤ 0`.
pub fn chung_lu(n: usize, exponent: f64, avg_deg: f64, seed: u64) -> Graph {
    assert!(exponent > 1.0, "power-law exponent must exceed 1");
    assert!(avg_deg > 0.0, "average degree must be positive");
    let mut b = GraphBuilder::new(n);
    if n >= 2 {
        let gamma = -1.0 / (exponent - 1.0);
        let mut w: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(gamma)).collect();
        let raw: f64 = w.iter().sum();
        let scale = avg_deg * n as f64 / raw;
        for x in &mut w {
            *x *= scale;
        }
        let s: f64 = w.iter().sum();
        let mut rng = Rng64::new(seed);
        // Miller–Hagberg: weights are already sorted descending, so the
        // edge probability is monotone in j and geometric skips with the
        // *current* upper bound p stay valid; each candidate is kept
        // with probability q/p.
        for i in 0..n - 1 {
            let mut j = i + 1;
            let mut p = (w[i] * w[j] / s).min(1.0);
            while j < n && p > 0.0 {
                if p < 1.0 {
                    let r = rng.f64().max(f64::MIN_POSITIVE);
                    j += (r.ln() / (1.0 - p).ln()).floor() as usize;
                }
                if j < n {
                    let q = (w[i] * w[j] / s).min(1.0);
                    if rng.f64() < q / p {
                        b.add_edge(i as NodeId, j as NodeId);
                    }
                    p = q;
                    j += 1;
                }
            }
        }
    }
    b.build()
}

/// Random geometric graph: `n` points uniform in the unit square,
/// an edge whenever the Euclidean distance is at most `radius`.
///
/// Neighbor search is grid-bucketed (cell width `≥ radius`, 3×3
/// stencil), so generation is expected `O(n + m)` rather than the
/// naive `O(n²)`. The expected average degree is `≈ n·π·radius²`
/// away from the boundary.
///
/// # Panics
///
/// If `radius` is not positive and finite.
pub fn random_geometric(n: usize, radius: f64, seed: u64) -> Graph {
    assert!(
        radius > 0.0 && radius.is_finite(),
        "radius must be positive and finite"
    );
    let mut rng = Rng64::new(seed);
    let pts: Vec<(f64, f64)> = (0..n).map(|_| (rng.f64(), rng.f64())).collect();
    // Cell width 1/dims ≥ radius, so any pair within `radius` lives in
    // the same or an adjacent cell.
    let dims = ((1.0 / radius).floor() as usize).clamp(1, n.max(1));
    let cell_of = |x: f64| ((x * dims as f64) as usize).min(dims - 1);
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); dims * dims];
    for (i, &(x, y)) in pts.iter().enumerate() {
        buckets[cell_of(y) * dims + cell_of(x)].push(i);
    }
    let r2 = radius * radius;
    let mut b = GraphBuilder::new(n);
    for (i, &(x, y)) in pts.iter().enumerate() {
        let (cx, cy) = (cell_of(x), cell_of(y));
        for ny in cy.saturating_sub(1)..=(cy + 1).min(dims - 1) {
            for nx in cx.saturating_sub(1)..=(cx + 1).min(dims - 1) {
                for &j in &buckets[ny * dims + nx] {
                    // Each unordered pair is examined from both sides;
                    // emit it from the lower id only.
                    if j <= i {
                        continue;
                    }
                    let (dx, dy) = (pts[j].0 - x, pts[j].1 - y);
                    if dx * dx + dy * dy <= r2 {
                        b.add_edge(i as NodeId, j as NodeId);
                    }
                }
            }
        }
    }
    b.build()
}

/// Random `d`-regular graph via the configuration model: `d` stubs per
/// node are shuffled and paired, then self-loops and duplicate edges
/// are rejected by degree-preserving double-edge swaps against
/// uniformly chosen partner pairs until the pairing is simple.
///
/// Every node ends with degree exactly `d`. Expected `O(n·d)` overall
/// for `d ≪ n` (the expected number of defects is `O(d²)`,
/// independent of `n`, and each swap repairs one in `O(1)` expected
/// tries).
///
/// # Panics
///
/// If `n·d` is odd, `d ≥ n`, or the repair loop cannot simplify the
/// pairing (only possible when `d` is close to `n`).
pub fn d_regular(n: usize, d: usize, seed: u64) -> Graph {
    assert!(
        (n * d).is_multiple_of(2),
        "n·d must be even for a d-regular graph"
    );
    assert!(d < n, "degree {d} impossible on {n} nodes");
    if n == 0 || d == 0 {
        return Graph::new(n, vec![]);
    }
    let mut rng = Rng64::new(seed);
    let mut stubs: Vec<NodeId> = (0..n as NodeId)
        .flat_map(|v| std::iter::repeat_n(v, d))
        .collect();
    for i in (1..stubs.len()).rev() {
        let j = rng.index(i + 1);
        stubs.swap(i, j);
    }
    let mut pairs: Vec<(NodeId, NodeId)> = stubs.chunks_exact(2).map(|c| (c[0], c[1])).collect();
    // Defect repair: swap endpoints with a random partner pair. The
    // occupancy set counts multiplicities so duplicates are detected
    // exactly; `key` normalizes orientation.
    let key = |u: NodeId, v: NodeId| (u.min(v), u.max(v));
    let mut count: std::collections::HashMap<(NodeId, NodeId), u32> =
        std::collections::HashMap::new();
    for &(u, v) in &pairs {
        *count.entry(key(u, v)).or_insert(0) += 1;
    }
    let is_bad = |count: &std::collections::HashMap<(NodeId, NodeId), u32>,
                  u: NodeId,
                  v: NodeId| { u == v || count[&key(u, v)] > 1 };
    let np = pairs.len();
    let mut budget = 200usize * np + 10_000;
    loop {
        let bad: Vec<usize> = (0..np)
            .filter(|&p| is_bad(&count, pairs[p].0, pairs[p].1))
            .collect();
        if bad.is_empty() {
            break;
        }
        for &p in &bad {
            let (a, bb) = pairs[p];
            if !is_bad(&count, a, bb) {
                continue; // an earlier swap already fixed it
            }
            loop {
                assert!(
                    budget > 0,
                    "d-regular repair did not converge (d too close to n?)"
                );
                budget -= 1;
                let q = rng.index(np);
                if q == p {
                    continue;
                }
                let (c, dd) = pairs[q];
                // Proposed swap: (a,b),(c,d) → (a,d),(c,b).
                if a == dd || c == bb {
                    continue;
                }
                let (k1, k2) = (key(a, dd), key(c, bb));
                let dup1 = count.get(&k1).copied().unwrap_or(0) > 0;
                let dup2 = count.get(&k2).copied().unwrap_or(0) > 0 || k1 == k2;
                if dup1 || dup2 {
                    continue;
                }
                *count.get_mut(&key(a, bb)).unwrap() -= 1;
                *count.get_mut(&key(c, dd)).unwrap() -= 1;
                *count.entry(k1).or_insert(0) += 1;
                *count.entry(k2).or_insert(0) += 1;
                pairs[p] = (a, dd);
                pairs[q] = (c, bb);
                break;
            }
        }
    }
    let mut b = GraphBuilder::new(n);
    for (u, v) in pairs {
        let fresh = b.add_edge(u, v);
        debug_assert!(fresh, "repair loop left a duplicate");
    }
    b.build()
}

/// Skewed random bipartite graph on sides `X = 0..nx`, `Y = nx..nx+ny`
/// (`nx ≠ ny` allowed): `m` distinct edges whose X endpoints are
/// uniform and whose Y endpoints follow a Zipf law — column `j` of Y
/// is drawn with probability `∝ (j+1)^{-skew}`. Column `nx+0` is the
/// hot hub. Returns the graph and the side array (`false` = X).
///
/// Sampling is `O(m log ny)` (CDF binary search) plus a deterministic
/// fill pass that tops up to exactly `m` edges when rejection stalls
/// on saturated hub columns; duplicates never survive.
///
/// # Panics
///
/// If `m > nx·ny` or `skew` is negative.
pub fn zipf_bipartite(nx: usize, ny: usize, m: usize, skew: f64, seed: u64) -> (Graph, Vec<bool>) {
    assert!(m <= nx * ny, "cannot place {m} edges on {nx}×{ny} sides");
    assert!(skew >= 0.0, "skew must be non-negative");
    let n = nx + ny;
    let mut b = GraphBuilder::new(n);
    if m > 0 {
        let mut rng = Rng64::new(seed);
        // Cumulative Zipf masses over the Y columns.
        let mut cdf: Vec<f64> = Vec::with_capacity(ny);
        let mut acc = 0.0;
        for j in 0..ny {
            acc += ((j + 1) as f64).powf(-skew);
            cdf.push(acc);
        }
        let total = acc;
        let mut tries = 0usize;
        let max_tries = 64 * m;
        while b.len() < m && tries < max_tries {
            tries += 1;
            let u = rng.index(nx) as NodeId;
            let t = rng.f64() * total;
            let j = cdf.partition_point(|&c| c < t).min(ny - 1);
            b.add_edge(u, (nx + j) as NodeId);
        }
        // Saturated hubs can make rejection stall; finish
        // deterministically, scanning columns hot-first.
        'fill: for j in 0..ny {
            for u in 0..nx {
                if b.len() >= m {
                    break 'fill;
                }
                b.add_edge(u as NodeId, (nx + j) as NodeId);
            }
        }
    }
    let sides = (0..n).map(|v| v >= nx).collect();
    (b.build(), sides)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::random::barabasi_albert;
    use crate::generators::weights::{apply_weights, WeightModel};

    /// No self-loops, no duplicate edges, degree sum = 2m — the
    /// structural contract every zoo family must satisfy.
    fn assert_simple(g: &Graph) {
        let mut seen = std::collections::HashSet::new();
        for &(u, v) in g.edge_list() {
            assert_ne!(u, v, "self-loop at {u}");
            assert!(seen.insert((u.min(v), u.max(v))), "duplicate edge {u}-{v}");
        }
        let degree_sum: usize = (0..g.n() as NodeId).map(|v| g.degree(v)).sum();
        assert_eq!(degree_sum, 2 * g.m(), "degree sum must be 2m");
    }

    #[test]
    fn zoo_families_are_simple_and_deterministic() {
        let cases: Vec<(&str, Graph, Graph, Graph)> = vec![
            (
                "chung_lu",
                chung_lu(300, 2.5, 6.0, 9),
                chung_lu(300, 2.5, 6.0, 9),
                chung_lu(300, 2.5, 6.0, 10),
            ),
            (
                "geometric",
                random_geometric(300, 0.08, 9),
                random_geometric(300, 0.08, 9),
                random_geometric(300, 0.08, 10),
            ),
            (
                "d_regular",
                d_regular(300, 6, 9),
                d_regular(300, 6, 9),
                d_regular(300, 6, 10),
            ),
            (
                "zipf",
                zipf_bipartite(120, 180, 700, 1.1, 9).0,
                zipf_bipartite(120, 180, 700, 1.1, 9).0,
                zipf_bipartite(120, 180, 700, 1.1, 10).0,
            ),
            (
                "ba",
                barabasi_albert(300, 3, 9),
                barabasi_albert(300, 3, 9),
                barabasi_albert(300, 3, 10),
            ),
        ];
        for (name, a, same, other) in cases {
            assert_simple(&a);
            assert_eq!(a.edge_list(), same.edge_list(), "{name}: seed-determinism");
            assert_ne!(
                a.edge_list(),
                other.edge_list(),
                "{name}: different seeds must differ"
            );
        }
    }

    #[test]
    fn chung_lu_mean_degree_is_plausible() {
        let n = 2000;
        let g = chung_lu(n, 2.5, 8.0, 1);
        let mean = 2.0 * g.m() as f64 / n as f64;
        // min(1, ·) capping shaves the hubs, so the realized mean sits
        // below the nominal 8 but must stay in its neighborhood.
        assert!((4.0..=9.0).contains(&mean), "mean degree {mean}");
    }

    #[test]
    fn heavy_tail_max_degree_dwarfs_mean() {
        for (name, g) in [
            ("chung_lu", chung_lu(2000, 2.2, 6.0, 3)),
            ("ba", barabasi_albert(2000, 3, 3)),
        ] {
            let mean = 2.0 * g.m() as f64 / g.n() as f64;
            let max = g.max_degree() as f64;
            assert!(
                max >= 5.0 * mean,
                "{name}: max degree {max} not ≫ mean {mean}"
            );
        }
    }

    #[test]
    fn geometric_bucket_search_matches_brute_force() {
        let n = 150;
        let r = 0.13;
        let g = random_geometric(n, r, 5);
        // Re-derive the points (same RNG consumption order) and compare
        // against the O(n²) scan — symmetry and completeness of the
        // 3×3 stencil.
        let mut rng = Rng64::new(5);
        let pts: Vec<(f64, f64)> = (0..n).map(|_| (rng.f64(), rng.f64())).collect();
        let mut brute = std::collections::HashSet::new();
        for i in 0..n {
            for j in i + 1..n {
                let (dx, dy) = (pts[j].0 - pts[i].0, pts[j].1 - pts[i].1);
                if dx * dx + dy * dy <= r * r {
                    brute.insert((i as NodeId, j as NodeId));
                }
            }
        }
        let got: std::collections::HashSet<(NodeId, NodeId)> =
            g.edge_list().iter().copied().collect();
        assert_eq!(got, brute);
    }

    #[test]
    fn geometric_extreme_radii() {
        // Radius √2 covers the whole square: complete graph.
        let g = random_geometric(20, 1.5, 1);
        assert_eq!(g.m(), 20 * 19 / 2);
        // A vanishing radius leaves (almost surely) no edges.
        let g = random_geometric(50, 1e-9, 1);
        assert_eq!(g.m(), 0);
    }

    #[test]
    fn d_regular_exact_degrees() {
        for (n, d) in [(10, 3), (31, 4), (200, 8), (64, 1), (9, 0)] {
            let g = d_regular(n, d, 7);
            assert_simple(&g);
            assert_eq!(g.m(), n * d / 2, "n={n}, d={d}");
            for v in 0..n as NodeId {
                assert_eq!(g.degree(v), d, "n={n}, d={d}, node {v}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn d_regular_rejects_odd_stub_count() {
        d_regular(9, 3, 1);
    }

    #[test]
    fn zipf_bipartite_shape_and_skew() {
        let (nx, ny, m) = (200, 300, 1500);
        let (g, sides) = zipf_bipartite(nx, ny, m, 1.2, 4);
        assert_eq!(g.m(), m, "exact edge count");
        assert!(crate::bipartite::is_valid_bipartition(&g, &sides));
        assert_eq!(sides.iter().filter(|&&s| !s).count(), nx);
        // Zipf column loads: the hottest column beats the mean column
        // load by a wide margin.
        let mean_col = m as f64 / ny as f64;
        let hot = g.degree(nx as NodeId) as f64;
        assert!(hot >= 4.0 * mean_col, "hub column {hot} vs mean {mean_col}");
    }

    #[test]
    fn zipf_bipartite_saturated_hub_still_exact() {
        // skew so strong the hub column saturates: the fill pass must
        // still deliver exactly m distinct edges.
        let (g, _) = zipf_bipartite(5, 40, 60, 4.0, 2);
        assert_eq!(g.m(), 60);
        assert_simple(&g);
        assert!(g.degree(5) <= 5, "hub column capped by nx");
    }

    #[test]
    fn zoo_composes_with_weight_models() {
        let g = chung_lu(100, 2.5, 5.0, 1);
        let w = apply_weights(&g, WeightModel::Exponential(2.0), 3);
        assert_eq!(w.m(), g.m());
        assert!(w.weight_list().iter().all(|&x| x > 0.0));
    }
}
