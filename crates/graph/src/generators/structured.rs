//! Deterministic structured graph families.

use crate::graph::{Graph, NodeId};

/// Path on `n` nodes (`n-1` edges).
pub fn path(n: usize) -> Graph {
    let edges = (0..n.saturating_sub(1))
        .map(|i| (i as NodeId, i as NodeId + 1))
        .collect();
    Graph::new(n, edges)
}

/// Cycle on `n ≥ 3` nodes.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs ≥ 3 nodes");
    let mut edges: Vec<(NodeId, NodeId)> =
        (0..n - 1).map(|i| (i as NodeId, i as NodeId + 1)).collect();
    edges.push((n as NodeId - 1, 0));
    Graph::new(n, edges)
}

/// Complete graph K_n.
pub fn complete(n: usize) -> Graph {
    let mut edges = Vec::with_capacity(n * n.saturating_sub(1) / 2);
    for u in 0..n as NodeId {
        for v in u + 1..n as NodeId {
            edges.push((u, v));
        }
    }
    Graph::new(n, edges)
}

/// Complete bipartite graph K_{a,b}; X side is `0..a`. Returns the
/// graph and the side array.
pub fn complete_bipartite(a: usize, b: usize) -> (Graph, Vec<bool>) {
    let mut edges = Vec::with_capacity(a * b);
    for u in 0..a {
        for v in 0..b {
            edges.push((u as NodeId, (a + v) as NodeId));
        }
    }
    let sides = (0..a + b).map(|v| v >= a).collect();
    (Graph::new(a + b, edges), sides)
}

/// Star with `n-1` leaves around center 0.
pub fn star(n: usize) -> Graph {
    assert!(n >= 1);
    let edges = (1..n).map(|v| (0, v as NodeId)).collect();
    Graph::new(n, edges)
}

/// `w × h` grid graph.
pub fn grid(w: usize, h: usize) -> Graph {
    let at = |x: usize, y: usize| (y * w + x) as NodeId;
    let mut edges = Vec::new();
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                edges.push((at(x, y), at(x + 1, y)));
            }
            if y + 1 < h {
                edges.push((at(x, y), at(x, y + 1)));
            }
        }
    }
    Graph::new(w * h, edges)
}

/// `d`-dimensional hypercube (2^d nodes).
pub fn hypercube(d: usize) -> Graph {
    let n = 1usize << d;
    let mut edges = Vec::with_capacity(n * d / 2);
    for v in 0..n {
        for b in 0..d {
            let u = v ^ (1 << b);
            if v < u {
                edges.push((v as NodeId, u as NodeId));
            }
        }
    }
    Graph::new(n, edges)
}

/// `copies` disjoint paths of 4 nodes (3 edges) each: the classic
/// worst case where a careless maximal matching takes only the middle
/// edge (ratio ½), while the optimum takes both outer edges.
pub fn p4_chain(copies: usize) -> Graph {
    let mut edges = Vec::with_capacity(copies * 3);
    for c in 0..copies {
        let b = (4 * c) as NodeId;
        edges.push((b, b + 1));
        edges.push((b + 1, b + 2));
        edges.push((b + 2, b + 3));
    }
    Graph::new(4 * copies, edges)
}

/// Complete binary tree of the given depth (`2^(depth+1) - 1` nodes,
/// root 0, children of `v` at `2v+1`, `2v+2`).
pub fn binary_tree(depth: usize) -> Graph {
    let n = (1usize << (depth + 1)) - 1;
    let mut edges = Vec::with_capacity(n - 1);
    for v in 1..n {
        edges.push((((v - 1) / 2) as NodeId, v as NodeId));
    }
    Graph::new(n, edges)
}

/// Caterpillar: a spine path of `spine` nodes, each with `legs`
/// pendant leaves — a tree family on which maximal matchings behave
/// very differently from paths.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    assert!(spine >= 1);
    let n = spine * (1 + legs);
    let mut edges = Vec::new();
    for s in 0..spine {
        if s + 1 < spine {
            edges.push((s as NodeId, (s + 1) as NodeId));
        }
        for l in 0..legs {
            edges.push((s as NodeId, (spine + s * legs + l) as NodeId));
        }
    }
    Graph::new(n, edges)
}

/// Lollipop: a clique on `clique` nodes with a path of `tail` nodes
/// attached — mixes a dense core with a long sparse appendix.
pub fn lollipop(clique: usize, tail: usize) -> Graph {
    assert!(clique >= 1);
    let n = clique + tail;
    let mut edges = Vec::new();
    for u in 0..clique {
        for v in u + 1..clique {
            edges.push((u as NodeId, v as NodeId));
        }
    }
    for t in 0..tail {
        let prev = if t == 0 { clique - 1 } else { clique + t - 1 };
        edges.push((prev as NodeId, (clique + t) as NodeId));
    }
    Graph::new(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_and_cycle_counts() {
        assert_eq!(path(5).m(), 4);
        assert_eq!(cycle(5).m(), 5);
        assert_eq!(path(1).m(), 0);
        assert_eq!(path(0).n(), 0);
    }

    #[test]
    fn complete_graphs() {
        assert_eq!(complete(6).m(), 15);
        let (g, sides) = complete_bipartite(3, 4);
        assert_eq!(g.m(), 12);
        assert!(crate::bipartite::is_valid_bipartition(&g, &sides));
    }

    #[test]
    fn star_degrees() {
        let g = star(7);
        assert_eq!(g.degree(0), 6);
        assert_eq!(g.degree(3), 1);
    }

    #[test]
    fn grid_shape() {
        let g = grid(4, 3);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 3 + 4 * 2); // horizontal + vertical
        assert_eq!(g.components(), 1);
    }

    #[test]
    fn hypercube_shape() {
        let g = hypercube(4);
        assert_eq!(g.n(), 16);
        assert_eq!(g.m(), 32);
        assert!(crate::bipartite::is_bipartite(&g));
    }

    #[test]
    fn binary_tree_shape() {
        let g = binary_tree(3);
        assert_eq!(g.n(), 15);
        assert_eq!(g.m(), 14);
        assert_eq!(g.components(), 1);
        assert_eq!(g.degree(0), 2);
    }

    #[test]
    fn caterpillar_shape() {
        let g = caterpillar(4, 3);
        assert_eq!(g.n(), 16);
        assert_eq!(g.m(), 3 + 12);
        assert_eq!(g.components(), 1);
        assert_eq!(g.degree(0), 4); // 1 spine neighbor + 3 legs
    }

    #[test]
    fn lollipop_shape() {
        let g = lollipop(5, 4);
        assert_eq!(g.n(), 9);
        assert_eq!(g.m(), 10 + 4);
        assert_eq!(g.components(), 1);
        assert_eq!(g.degree(8), 1);
    }

    #[test]
    fn p4_chain_shape() {
        let g = p4_chain(3);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 9);
        assert_eq!(g.components(), 3);
    }
}
