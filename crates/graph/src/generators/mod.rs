//! Workload generators.
//!
//! Random families ([`random`]), structured families ([`structured`]),
//! the topology zoo ([`zoo`] — heavy-tailed, geometric, and regular
//! families), and weight models ([`weights`]). All generators are
//! deterministic in their seed so every experiment is reproducible.

pub mod random;
pub mod structured;
pub mod weights;
pub mod zoo;

pub use random::{barabasi_albert, bipartite_gnp, bipartite_regular, gnm, gnp, random_tree};
pub use structured::{
    binary_tree, caterpillar, complete, complete_bipartite, cycle, grid, hypercube, lollipop,
    p4_chain, path, star,
};
pub use weights::{apply_weights, WeightModel};
pub use zoo::{chung_lu, d_regular, random_geometric, zipf_bipartite};
