//! Edge-weight models for the weighted experiments (E5).

use crate::graph::Graph;
use crate::rng::Rng64;

/// Distribution from which edge weights are drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightModel {
    /// All weights 1.0 (the unweighted case).
    Unit,
    /// Uniform in `[lo, hi)`.
    Uniform(f64, f64),
    /// Exponential with the given mean (heavy weight skew).
    Exponential(f64),
    /// Uniform integers in `[lo, hi]`, stored as `f64`.
    Integer(u64, u64),
    /// Pareto-ish power law: `lo · U^(-1/alpha)`; very heavy tail for
    /// small `alpha`. Stresses the weight-class machinery of the
    /// δ-MWM black box.
    PowerLaw { lo: f64, alpha: f64 },
}

/// Return a copy of `g` with weights drawn i.i.d. from `model`.
pub fn apply_weights(g: &Graph, model: WeightModel, seed: u64) -> Graph {
    let mut rng = Rng64::new(seed);
    let weights: Vec<f64> = (0..g.m()).map(|_| draw(&mut rng, model)).collect();
    g.reweighted(weights)
}

fn draw(rng: &mut Rng64, model: WeightModel) -> f64 {
    match model {
        WeightModel::Unit => 1.0,
        WeightModel::Uniform(lo, hi) => {
            assert!(lo < hi && lo >= 0.0);
            rng.range_f64(lo, hi)
        }
        WeightModel::Exponential(mean) => {
            assert!(mean > 0.0);
            let u: f64 = rng.f64().max(f64::MIN_POSITIVE);
            -mean * u.ln()
        }
        WeightModel::Integer(lo, hi) => {
            assert!(lo <= hi);
            rng.range_u64(lo, hi) as f64
        }
        WeightModel::PowerLaw { lo, alpha } => {
            assert!(lo > 0.0 && alpha > 0.0);
            let u: f64 = rng.f64().max(f64::MIN_POSITIVE);
            lo * u.powf(-1.0 / alpha)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::structured::complete;

    #[test]
    fn unit_weights() {
        let g = apply_weights(&complete(5), WeightModel::Unit, 0);
        assert!(g.weight_list().iter().all(|&w| w == 1.0));
    }

    #[test]
    fn uniform_in_range() {
        let g = apply_weights(&complete(10), WeightModel::Uniform(2.0, 5.0), 1);
        assert!(g.weight_list().iter().all(|&w| (2.0..5.0).contains(&w)));
    }

    #[test]
    fn integer_weights_are_integers() {
        let g = apply_weights(&complete(10), WeightModel::Integer(1, 9), 2);
        assert!(g
            .weight_list()
            .iter()
            .all(|&w| w.fract() == 0.0 && (1.0..=9.0).contains(&w)));
    }

    #[test]
    fn exponential_mean_plausible() {
        let g = apply_weights(&complete(40), WeightModel::Exponential(3.0), 3);
        let mean = g.total_weight() / g.m() as f64;
        assert!((mean - 3.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn power_law_exceeds_floor() {
        let g = apply_weights(
            &complete(10),
            WeightModel::PowerLaw {
                lo: 1.0,
                alpha: 1.5,
            },
            4,
        );
        assert!(g.weight_list().iter().all(|&w| w >= 1.0));
    }

    #[test]
    fn deterministic_in_seed() {
        let a = apply_weights(&complete(8), WeightModel::Uniform(0.0, 1.0), 9);
        let b = apply_weights(&complete(8), WeightModel::Uniform(0.0, 1.0), 9);
        assert_eq!(a.weight_list(), b.weight_list());
    }
}
