//! Random graph families.

use crate::builder::GraphBuilder;
use crate::graph::{Graph, NodeId};
use crate::rng::Rng64;

/// Erdős–Rényi G(n, p): every pair is an edge independently with
/// probability `p`.
///
/// Uses the geometric skipping method (Batagelj–Brandes), so generation
/// is `O(n + m)` rather than `O(n²)`.
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut b = GraphBuilder::new(n);
    if p > 0.0 && n >= 2 {
        let mut rng = Rng64::new(seed);
        if p >= 1.0 {
            for u in 0..n as NodeId {
                for v in u + 1..n as NodeId {
                    b.add_edge(u, v);
                }
            }
        } else {
            // Iterate over the pairs (v, u), u < v, skipping
            // geometrically distributed gaps.
            let lq = (1.0 - p).ln();
            let (mut v, mut u) = (1i64, -1i64);
            let n = n as i64;
            while v < n {
                let r: f64 = rng.f64().max(f64::MIN_POSITIVE);
                u += 1 + (r.ln() / lq).floor() as i64;
                while u >= v && v < n {
                    u -= v;
                    v += 1;
                }
                if v < n {
                    b.add_edge(u as NodeId, v as NodeId);
                }
            }
        }
    }
    b.build()
}

/// G(n, m): exactly `m` distinct uniformly random edges.
pub fn gnm(n: usize, m: usize, seed: u64) -> Graph {
    let max_edges = n * n.saturating_sub(1) / 2;
    assert!(m <= max_edges, "cannot place {m} edges on {n} nodes");
    let mut rng = Rng64::new(seed);
    let mut b = GraphBuilder::new(n);
    // Rejection sampling is only correct because `GraphBuilder::len`
    // counts *distinct* edges (duplicates neither grow the count nor
    // the edge list) — pinned by `gnm_never_duplicates_edges`.
    while b.len() < m {
        let u = rng.index(n) as NodeId;
        let v = rng.index(n) as NodeId;
        if u != v {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// Random bipartite graph: sides X = `0..nx`, Y = `nx..nx+ny`; each
/// cross pair is an edge with probability `p`. Returns the graph and
/// the side array (`false` = X).
pub fn bipartite_gnp(nx: usize, ny: usize, p: f64, seed: u64) -> (Graph, Vec<bool>) {
    assert!((0.0..=1.0).contains(&p));
    let n = nx + ny;
    let mut rng = Rng64::new(seed);
    let mut b = GraphBuilder::new(n);
    for u in 0..nx {
        for v in 0..ny {
            if rng.f64() < p {
                b.add_edge(u as NodeId, (nx + v) as NodeId);
            }
        }
    }
    let sides = (0..n).map(|v| v >= nx).collect();
    (b.build(), sides)
}

/// Random `d`-regular bipartite graph on `n + n` nodes: edge set
/// `{ (x, τ((σ(x) + i) mod n)) : i < d }` for random permutations
/// `σ, τ`. Each of the `d` shifts is a perfect matching, shifts are
/// pairwise disjoint, so every node has degree exactly `d`. (Not
/// uniform over all d-regular bipartite graphs, but a standard
/// randomized regular family.)
pub fn bipartite_regular(n: usize, d: usize, seed: u64) -> (Graph, Vec<bool>) {
    assert!(d <= n, "degree {d} impossible with side size {n}");
    let mut rng = Rng64::new(seed);
    let mut sigma: Vec<usize> = (0..n).collect();
    let mut tau: Vec<usize> = (0..n).collect();
    for perm in [&mut sigma, &mut tau] {
        for i in (1..n).rev() {
            let j = rng.index(i + 1);
            perm.swap(i, j);
        }
    }
    let mut b = GraphBuilder::new(2 * n);
    for x in 0..n {
        for i in 0..d {
            let y = tau[(sigma[x] + i) % n];
            let fresh = b.add_edge(x as NodeId, (n + y) as NodeId);
            debug_assert!(fresh, "shift construction cannot collide");
        }
    }
    let sides = (0..2 * n).map(|v| v >= n).collect();
    (b.build(), sides)
}

/// Uniform random labelled tree (random Prüfer sequence).
pub fn random_tree(n: usize, seed: u64) -> Graph {
    if n <= 1 {
        return Graph::new(n, vec![]);
    }
    if n == 2 {
        return Graph::new(2, vec![(0, 1)]);
    }
    let mut rng = Rng64::new(seed);
    let prufer: Vec<usize> = (0..n - 2).map(|_| rng.index(n)).collect();
    let mut degree = vec![1usize; n];
    for &v in &prufer {
        degree[v] += 1;
    }
    let mut edges = Vec::with_capacity(n - 1);
    // Min-heap of current leaves.
    let mut leaves: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..n)
        .filter(|&v| degree[v] == 1)
        .map(std::cmp::Reverse)
        .collect();
    for &v in &prufer {
        let std::cmp::Reverse(leaf) = leaves.pop().expect("tree invariant");
        edges.push((leaf as NodeId, v as NodeId));
        degree[v] -= 1;
        if degree[v] == 1 {
            leaves.push(std::cmp::Reverse(v));
        }
    }
    let std::cmp::Reverse(a) = leaves.pop().unwrap();
    let std::cmp::Reverse(b) = leaves.pop().unwrap();
    edges.push((a as NodeId, b as NodeId));
    Graph::new(n, edges)
}

/// Barabási–Albert preferential attachment: start from a clique on
/// `m0 = m + 1` nodes, then each new node attaches to `m` distinct
/// existing nodes with probability proportional to degree.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Graph {
    assert!(m >= 1 && n > m, "need n > m ≥ 1");
    let mut rng = Rng64::new(seed);
    let mut b = GraphBuilder::new(n);
    // Repeated-endpoint list: sampling uniformly from it is sampling
    // proportionally to degree.
    let mut ends: Vec<NodeId> = Vec::new();
    let m0 = m + 1;
    for u in 0..m0 as NodeId {
        for v in u + 1..m0 as NodeId {
            b.add_edge(u, v);
            ends.push(u);
            ends.push(v);
        }
    }
    // Insertion-ordered target buffer: a HashSet here would make the
    // edge order (and through `ends`, every later draw) depend on the
    // per-instance hash seed, breaking seed-determinism.
    let mut targets: Vec<NodeId> = Vec::with_capacity(m);
    for v in m0..n {
        targets.clear();
        while targets.len() < m {
            let t = ends[rng.index(ends.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            b.add_edge(v as NodeId, t);
            ends.push(v as NodeId);
            ends.push(t);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnp_edge_count_is_plausible() {
        let n = 200;
        let p = 0.05;
        let g = gnp(n, p, 1);
        let expected = (n * (n - 1) / 2) as f64 * p;
        let m = g.m() as f64;
        assert!(
            (m - expected).abs() < 4.0 * expected.sqrt() + 10.0,
            "m = {m}, expected ≈ {expected}"
        );
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(10, 0.0, 1).m(), 0);
        assert_eq!(gnp(10, 1.0, 1).m(), 45);
        assert_eq!(gnp(0, 0.5, 1).n(), 0);
        assert_eq!(gnp(1, 1.0, 1).m(), 0);
    }

    #[test]
    fn gnp_is_deterministic_in_seed() {
        let a = gnp(50, 0.1, 7);
        let b = gnp(50, 0.1, 7);
        assert_eq!(a.edge_list(), b.edge_list());
        let c = gnp(50, 0.1, 8);
        assert_ne!(a.edge_list(), c.edge_list());
    }

    #[test]
    fn gnm_exact_count() {
        let g = gnm(30, 100, 3);
        assert_eq!(g.m(), 100);
    }

    #[test]
    fn gnm_never_duplicates_edges() {
        // Regression: the `while b.len() < m` loop re-draws the same
        // pair often when m approaches the maximum; the builder's
        // dedup must keep the edge list distinct and the count exact.
        for (n, m) in [(8, 28), (10, 44), (40, 300)] {
            let g = gnm(n, m, 5);
            assert_eq!(g.m(), m, "n={n}");
            let mut seen = std::collections::HashSet::new();
            for &(u, v) in g.edge_list() {
                assert_ne!(u, v, "self-loop in gnm({n},{m})");
                assert!(
                    seen.insert((u.min(v), u.max(v))),
                    "duplicate edge {u}-{v} in gnm({n},{m})"
                );
            }
        }
    }

    #[test]
    fn bipartite_gnp_respects_sides() {
        let (g, sides) = bipartite_gnp(20, 30, 0.2, 5);
        assert!(crate::bipartite::is_valid_bipartition(&g, &sides));
        assert_eq!(sides.iter().filter(|&&s| !s).count(), 20);
    }

    #[test]
    fn bipartite_regular_degrees() {
        let (g, sides) = bipartite_regular(32, 4, 9);
        assert!(crate::bipartite::is_valid_bipartition(&g, &sides));
        for v in 0..g.n() as NodeId {
            assert_eq!(g.degree(v), 4, "node {v}");
        }
    }

    #[test]
    fn random_tree_is_a_tree() {
        for n in [1, 2, 3, 10, 100] {
            let g = random_tree(n, 11);
            assert_eq!(g.m(), n.saturating_sub(1));
            if n > 0 {
                assert_eq!(g.components(), 1);
            }
        }
    }

    #[test]
    fn ba_graph_shape() {
        let g = barabasi_albert(100, 3, 2);
        assert_eq!(g.n(), 100);
        // Clique on 4 + 96 nodes × 3 edges.
        assert_eq!(g.m(), 6 + 96 * 3);
        assert_eq!(g.components(), 1);
    }
}
