//! Incremental graph construction with deduplication.

use crate::graph::{Graph, NodeId};
use std::collections::HashMap;

/// Builds a [`Graph`] edge by edge, silently deduplicating (the last
/// weight written for an edge wins). Useful for generators in which the
/// same pair may be drawn more than once.
#[derive(Debug, Default)]
pub struct GraphBuilder {
    n: usize,
    index: HashMap<(NodeId, NodeId), usize>,
    edges: Vec<(NodeId, NodeId)>,
    weights: Vec<f64>,
}

impl GraphBuilder {
    /// Start a builder for a graph on `n` nodes.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            ..Default::default()
        }
    }

    /// Number of distinct edges added so far.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True when no edges were added.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Add an unweighted edge (weight 1.0). Returns true if it was new.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        self.add_weighted(u, v, 1.0)
    }

    /// Add a weighted edge; duplicate pairs overwrite the weight.
    /// Returns true if the edge was new. Self-loops are rejected.
    pub fn add_weighted(&mut self, u: NodeId, v: NodeId, w: f64) -> bool {
        assert!(u != v, "self-loop at {u}");
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "endpoint out of range"
        );
        let key = (u.min(v), u.max(v));
        match self.index.get(&key) {
            Some(&i) => {
                self.weights[i] = w;
                false
            }
            None => {
                self.index.insert(key, self.edges.len());
                self.edges.push(key);
                self.weights.push(w);
                true
            }
        }
    }

    /// True if the edge is already present.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.index.contains_key(&(u.min(v), u.max(v)))
    }

    /// Finish, producing the immutable graph.
    pub fn build(self) -> Graph {
        Graph::with_weights(self.n, self.edges, self.weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_keeps_last_weight() {
        let mut b = GraphBuilder::new(3);
        assert!(b.add_weighted(0, 1, 5.0));
        assert!(!b.add_weighted(1, 0, 7.0));
        assert!(b.add_edge(1, 2));
        assert_eq!(b.len(), 2);
        let g = b.build();
        assert_eq!(g.m(), 2);
        let e = g.edge_between(0, 1).unwrap();
        assert_eq!(g.weight(e), 7.0);
    }

    #[test]
    fn has_edge_is_orientation_free() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(2, 3);
        assert!(b.has_edge(3, 2));
        assert!(!b.has_edge(0, 1));
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let b = GraphBuilder::new(5);
        assert!(b.is_empty());
        let g = b.build();
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 0);
    }
}
