//! Plain-text graph serialization (DIMACS-like edge-list format).
//!
//! Lets experiments pin down workloads as files and makes the library
//! usable on external graphs. Format:
//!
//! ```text
//! c any number of comment lines
//! p edge <n> <m>
//! e <u> <v> [weight]       (1-based endpoints, weight defaults to 1)
//! ```

use crate::graph::{Graph, NodeId};
use std::fmt::Write as _;
use std::str::FromStr;

/// Serialize a graph to DIMACS-like text (weights included whenever
/// any edge weight differs from 1).
pub fn to_dimacs(g: &Graph) -> String {
    // dlint::allow(float-eq, "format selection, not arithmetic: only weights exactly 1.0 (the unweighted default) may omit the weight column")
    let weighted = g.weight_list().iter().any(|&w| w != 1.0);
    let mut s = String::new();
    let _ = writeln!(s, "c distributed-matching graph");
    let _ = writeln!(s, "p edge {} {}", g.n(), g.m());
    for e in 0..g.m() as u32 {
        let (u, v) = g.endpoints(e);
        if weighted {
            let _ = writeln!(s, "e {} {} {}", u + 1, v + 1, g.weight(e));
        } else {
            let _ = writeln!(s, "e {} {}", u + 1, v + 1);
        }
    }
    s
}

/// Parse errors for [`from_dimacs`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

fn parse<T: FromStr>(line: usize, tok: Option<&str>, what: &str) -> Result<T, ParseError> {
    tok.ok_or_else(|| err(line, format!("missing {what}")))?
        .parse::<T>()
        .map_err(|_| err(line, format!("invalid {what}")))
}

/// Parse DIMACS-like text into a [`Graph`].
///
/// ```
/// let g = dgraph::io::from_dimacs("p edge 3 2\ne 1 2\ne 2 3 2.5\n").unwrap();
/// assert_eq!(g.n(), 3);
/// assert_eq!(g.total_weight(), 3.5);
/// ```
pub fn from_dimacs(text: &str) -> Result<Graph, ParseError> {
    let mut n: Option<usize> = None;
    let mut declared_m = 0usize;
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut weights: Vec<f64> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let mut toks = line.split_whitespace();
        match toks.next() {
            Some("p") => {
                if n.is_some() {
                    return Err(err(lineno, "duplicate problem line"));
                }
                let kind = toks.next().unwrap_or("");
                if kind != "edge" {
                    return Err(err(lineno, format!("unsupported problem kind '{kind}'")));
                }
                n = Some(parse(lineno, toks.next(), "node count")?);
                declared_m = parse(lineno, toks.next(), "edge count")?;
            }
            Some("e") => {
                let n = n.ok_or_else(|| err(lineno, "edge before problem line"))?;
                let u: usize = parse(lineno, toks.next(), "endpoint")?;
                let v: usize = parse(lineno, toks.next(), "endpoint")?;
                if u == 0 || v == 0 || u > n || v > n {
                    return Err(err(lineno, format!("endpoint out of range 1..={n}")));
                }
                let w = match toks.next() {
                    Some(t) => t
                        .parse::<f64>()
                        .map_err(|_| err(lineno, "invalid weight"))?,
                    None => 1.0,
                };
                edges.push(((u - 1) as NodeId, (v - 1) as NodeId));
                weights.push(w);
            }
            Some(other) => return Err(err(lineno, format!("unknown record '{other}'"))),
            None => unreachable!("empty lines were skipped"),
        }
    }
    let n = n.ok_or_else(|| err(0, "no problem line"))?;
    if edges.len() != declared_m {
        return Err(err(
            0,
            format!("declared {declared_m} edges, found {}", edges.len()),
        ));
    }
    Ok(Graph::with_weights(n, edges, weights))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::random::gnp;
    use crate::generators::weights::{apply_weights, WeightModel};

    #[test]
    fn roundtrip_unweighted() {
        let g = gnp(20, 0.2, 3);
        let text = to_dimacs(&g);
        let g2 = from_dimacs(&text).expect("parse");
        assert_eq!(g.n(), g2.n());
        assert_eq!(g.edge_list(), g2.edge_list());
        assert!(!text.contains("e 1 2 1\n"), "unit weights omitted");
    }

    #[test]
    fn roundtrip_weighted() {
        let g = apply_weights(&gnp(15, 0.25, 4), WeightModel::Uniform(0.5, 3.0), 5);
        let g2 = from_dimacs(&to_dimacs(&g)).expect("parse");
        assert_eq!(g.edge_list(), g2.edge_list());
        for e in 0..g.m() as u32 {
            assert!((g.weight(e) - g2.weight(e)).abs() < 1e-9);
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let g = from_dimacs("c hello\n\np edge 3 2\nc mid\ne 1 2\ne 2 3 4.5\n").unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
        assert_eq!(g.weight(g.edge_between(1, 2).unwrap()), 4.5);
    }

    #[test]
    fn error_cases() {
        assert!(from_dimacs("e 1 2\n").is_err(), "edge before p line");
        assert!(from_dimacs("p edge 2 1\ne 1 3\n").is_err(), "out of range");
        assert!(
            from_dimacs("p edge 2 2\ne 1 2\n").is_err(),
            "count mismatch"
        );
        assert!(from_dimacs("p foo 2 1\ne 1 2\n").is_err(), "bad kind");
        assert!(from_dimacs("p edge 2 1\nx 1 2\n").is_err(), "bad record");
        assert!(from_dimacs("").is_err(), "empty input");
        let e = from_dimacs("p edge 2 1\ne 1 zz\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("line 2"));
    }
}
