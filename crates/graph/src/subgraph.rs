//! A borrowed window onto a [`Graph`]: the induced subgraph on a sorted
//! vertex set, without copying the CSR.
//!
//! This is the substrate of the LCA query plane
//! (`dmatch::oracle::MatchingOracle`): a point query materializes only
//! the ball around its query vertex, runs the algorithm on the induced
//! subgraph, and certifies which answers are exact. Two properties are
//! load-bearing and guaranteed here:
//!
//! * **Monotone relabeling.** Local ids are assigned in increasing
//!   global-id order, so the local incidence order (neighbors sorted by
//!   id, the contract of [`Graph::incident`]) equals the global one for
//!   every interior vertex, and lexicographic comparison of local
//!   vertex sequences agrees with the global comparison. Port-sensitive
//!   protocols (Israeli–Itai picks proposals by port index) therefore
//!   see identical choices inside the ball.
//! * **Sublinear footprint.** [`SubgraphView::ball`] walks outward from
//!   the centers keeping distances in an ordered map — no `O(n)`
//!   scratch — so building a view costs `O(|ball| · Δ · log |ball|)`
//!   regardless of how large the host graph is. This is what keeps
//!   oracle probes flat in `n` (gated by experiment E22).

use crate::graph::{Graph, NodeId};
use std::collections::{BTreeMap, VecDeque};

/// An induced subgraph over a borrowed [`Graph`], identified by a
/// sorted vertex list. Local ids are positions in that list.
#[derive(Debug, Clone)]
pub struct SubgraphView<'g> {
    g: &'g Graph,
    /// Sorted, deduplicated global ids; `verts[local] = global`.
    verts: Vec<NodeId>,
}

impl<'g> SubgraphView<'g> {
    /// View over an explicit vertex set (sorted + deduplicated here).
    pub fn new(g: &'g Graph, mut verts: Vec<NodeId>) -> Self {
        verts.sort_unstable();
        verts.dedup();
        debug_assert!(verts.iter().all(|&v| (v as usize) < g.n()));
        SubgraphView { g, verts }
    }

    /// The ball `B(centers, radius)`: every vertex within `radius` hops
    /// of some center. BFS with an ordered distance map — the cost is
    /// proportional to the ball, not to `g.n()`.
    pub fn ball(g: &'g Graph, centers: &[NodeId], radius: usize) -> Self {
        let mut dist: BTreeMap<NodeId, usize> = BTreeMap::new();
        let mut queue = VecDeque::new();
        for &c in centers {
            if dist.insert(c, 0).is_none() {
                queue.push_back(c);
            }
        }
        while let Some(v) = queue.pop_front() {
            let d = dist[&v];
            if d == radius {
                continue;
            }
            for &(u, _) in g.incident(v) {
                if let std::collections::btree_map::Entry::Vacant(e) = dist.entry(u) {
                    e.insert(d + 1);
                    queue.push_back(u);
                }
            }
        }
        // BTreeMap iterates in key order: already sorted.
        let verts: Vec<NodeId> = dist.into_keys().collect();
        SubgraphView { g, verts }
    }

    /// Number of vertices in the view.
    pub fn len(&self) -> usize {
        self.verts.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.verts.is_empty()
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g Graph {
        self.g
    }

    /// The sorted global vertex ids.
    pub fn vertices(&self) -> &[NodeId] {
        &self.verts
    }

    /// Whether global vertex `v` is in the view.
    pub fn contains(&self, v: NodeId) -> bool {
        self.verts.binary_search(&v).is_ok()
    }

    /// Local id of global vertex `v`, if present. Strictly monotone in
    /// `v` by construction.
    pub fn local(&self, v: NodeId) -> Option<usize> {
        self.verts.binary_search(&v).ok()
    }

    /// Global id of local vertex `l`.
    pub fn global(&self, l: usize) -> NodeId {
        self.verts[l]
    }

    /// Edges of the induced subgraph in local ids, each reported once
    /// with the smaller endpoint first, sorted.
    pub fn local_edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut edges = Vec::new();
        for (lv, &v) in self.verts.iter().enumerate() {
            for &(u, _) in self.g.incident(v) {
                if u > v {
                    if let Some(lu) = self.local(u) {
                        edges.push((lv as NodeId, lu as NodeId));
                    }
                }
            }
        }
        edges
    }

    /// Local ids of the view's boundary: vertices with at least one
    /// neighbor outside the view. For a ball of radius `r` these all
    /// sit on the distance-`r` sphere (an interior vertex's neighbors
    /// are all within `r`), which is what makes them the contamination
    /// frontier of a local simulation.
    pub fn boundary_locals(&self) -> Vec<usize> {
        (0..self.verts.len())
            .filter(|&l| {
                self.g
                    .incident(self.verts[l])
                    .iter()
                    .any(|&(u, _)| !self.contains(u))
            })
            .collect()
    }

    /// Materialize the induced subgraph as an owned [`Graph`] in local
    /// ids, weights carried over from the host.
    pub fn induced(&self) -> Graph {
        let edges = self.local_edges();
        let weights = edges
            .iter()
            .map(|&(a, b)| {
                let e = self
                    .g
                    .edge_between(self.global(a as usize), self.global(b as usize))
                    .expect("induced edge exists in host");
                self.g.weight(e)
            })
            .collect();
        Graph::with_weights(self.verts.len(), edges, weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::random::gnp;
    use crate::generators::structured::path;

    #[test]
    fn ball_matches_dense_bfs() {
        let g = gnp(60, 0.08, 11);
        for &(c, r) in &[(0u32, 1usize), (7, 2), (13, 3), (30, 0)] {
            let view = SubgraphView::ball(&g, &[c], r);
            // Dense reference BFS.
            let mut dist = vec![usize::MAX; g.n()];
            dist[c as usize] = 0;
            let mut q = VecDeque::from([c]);
            while let Some(v) = q.pop_front() {
                if dist[v as usize] == r {
                    continue;
                }
                for &(u, _) in g.incident(v) {
                    if dist[u as usize] == usize::MAX {
                        dist[u as usize] = dist[v as usize] + 1;
                        q.push_back(u);
                    }
                }
            }
            let want: Vec<NodeId> = (0..g.n() as NodeId)
                .filter(|&v| dist[v as usize] != usize::MAX)
                .collect();
            assert_eq!(view.vertices(), &want[..], "center {c} radius {r}");
        }
    }

    #[test]
    fn ball_tolerates_duplicate_centers() {
        let g = gnp(40, 0.1, 3);
        let a = SubgraphView::ball(&g, &[5, 5, 5, 9], 2);
        let b = SubgraphView::ball(&g, &[5, 9], 2);
        assert_eq!(a.vertices(), b.vertices());
    }

    #[test]
    fn relabeling_is_monotone_and_invertible() {
        let g = gnp(50, 0.1, 7);
        let view = SubgraphView::ball(&g, &[20], 2);
        for l in 0..view.len() {
            assert_eq!(view.local(view.global(l)), Some(l));
        }
        for w in view.vertices().windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn induced_preserves_incidence_order() {
        // Interior vertices must see their neighbors in the same order
        // locally as globally (both sorted by id under monotone remap).
        let g = gnp(50, 0.12, 19);
        let view = SubgraphView::ball(&g, &[10], 3);
        let ind = view.induced();
        let boundary: Vec<usize> = view.boundary_locals();
        for l in 0..view.len() {
            if boundary.contains(&l) {
                continue;
            }
            let global: Vec<NodeId> = g.incident(view.global(l)).iter().map(|&(u, _)| u).collect();
            let local: Vec<NodeId> = ind
                .incident(l as NodeId)
                .iter()
                .map(|&(u, _)| view.global(u as usize))
                .collect();
            assert_eq!(global, local, "interior vertex {l}");
        }
    }

    #[test]
    fn boundary_is_the_sphere() {
        let g = path(30);
        let view = SubgraphView::ball(&g, &[15], 3);
        let boundary: Vec<NodeId> = view
            .boundary_locals()
            .into_iter()
            .map(|l| view.global(l))
            .collect();
        assert_eq!(boundary, vec![12, 18]);
    }

    #[test]
    fn full_component_has_no_boundary() {
        let g = path(8);
        let view = SubgraphView::ball(&g, &[4], 100);
        assert_eq!(view.len(), 8);
        assert!(view.boundary_locals().is_empty());
    }

    #[test]
    fn induced_carries_weights() {
        let g = Graph::with_weights(4, vec![(0, 1), (1, 2), (2, 3)], vec![1.5, 2.5, 3.5]);
        let view = SubgraphView::new(&g, vec![1, 2, 3]);
        let ind = view.induced();
        assert_eq!(ind.m(), 2);
        let e = ind.edge_between(0, 1).unwrap();
        assert!((ind.weight(e) - 2.5).abs() < 1e-12);
    }
}
