//! Exact maximum-weight matching on **small general graphs** by bitmask
//! dynamic programming — `O(2ⁿ · Δ)` time, `O(2ⁿ)` space, `n ≤ 22`.
//!
//! The only exact general-graph MWM oracle in the workspace (weighted
//! blossom is out of scope); experiments on larger general weighted
//! graphs fall back to the bipartite Hungarian baseline or to certified
//! upper bounds.

use crate::graph::{EdgeId, Graph, NodeId};
use crate::matching::Matching;

/// Largest `n` accepted by [`max_weight_matching_exact`].
pub const MAX_EXACT_NODES: usize = 22;

/// Exact maximum-weight matching by DP over vertex subsets.
///
/// Panics if `g.n() > MAX_EXACT_NODES`.
pub fn max_weight_matching_exact(g: &Graph) -> Matching {
    let n = g.n();
    assert!(
        n <= MAX_EXACT_NODES,
        "exact MWM limited to {MAX_EXACT_NODES} nodes, got {n}"
    );
    if n == 0 {
        return Matching::new(0);
    }
    let full = 1usize << n;
    // best[mask] = max weight matching using only vertices in mask.
    let mut best = vec![0.0f64; full];
    // choice[mask] = edge matched at the lowest set bit, or NONE.
    const NONE: EdgeId = EdgeId::MAX;
    let mut choice = vec![NONE; full];
    for mask in 1..full {
        let v = mask.trailing_zeros() as NodeId;
        // Option 1: leave v unmatched.
        let without = mask & (mask - 1);
        best[mask] = best[without];
        choice[mask] = NONE;
        // Option 2: match v to a neighbor in the mask.
        for &(u, e) in g.incident(v) {
            let ub = 1usize << u;
            if mask & ub != 0 {
                let rest = mask & !(1usize << v) & !ub;
                let cand = best[rest] + g.weight(e);
                if cand > best[mask] {
                    best[mask] = cand;
                    choice[mask] = e;
                }
            }
        }
    }
    // Reconstruct.
    let mut m = Matching::new(n);
    let mut mask = full - 1;
    while mask != 0 {
        let e = choice[mask];
        let v = mask.trailing_zeros() as usize;
        if e == NONE {
            mask &= mask - 1;
        } else {
            if g.weight(e) > 0.0 {
                m.add(g, e);
            }
            let (a, b) = g.endpoints(e);
            debug_assert!(a as usize == v || b as usize == v);
            mask &= !(1usize << a);
            mask &= !(1usize << b);
        }
    }
    m
}

/// Exact maximum weight (scalar only), for assertions.
pub fn max_weight_exact(g: &Graph) -> f64 {
    max_weight_matching_exact(g).weight(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::random::gnp;
    use crate::generators::structured::{complete, cycle};
    use crate::generators::weights::{apply_weights, WeightModel};

    /// Brute force over all subsets of edges (tiny graphs only).
    fn brute_force(g: &Graph) -> f64 {
        let m = g.m();
        assert!(m <= 20);
        let mut best = 0.0f64;
        'outer: for mask in 0..(1usize << m) {
            let mut usedv = 0u64;
            let mut w = 0.0;
            for e in 0..m {
                if mask & (1 << e) != 0 {
                    let (a, b) = g.endpoints(e as EdgeId);
                    let bits = (1u64 << a) | (1u64 << b);
                    if usedv & bits != 0 {
                        continue 'outer;
                    }
                    usedv |= bits;
                    w += g.weight(e as EdgeId);
                }
            }
            best = best.max(w);
        }
        best
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        for seed in 0..8 {
            let g0 = gnp(7, 0.4, seed);
            if g0.m() > 20 {
                continue;
            }
            let g = apply_weights(&g0, WeightModel::Uniform(0.5, 4.0), seed + 100);
            let dp = max_weight_exact(&g);
            let bf = brute_force(&g);
            assert!((dp - bf).abs() < 1e-9, "seed {seed}: dp={dp} bf={bf}");
        }
    }

    #[test]
    fn unit_weights_give_maximum_cardinality() {
        for seed in 0..5 {
            let g = gnp(10, 0.3, 50 + seed);
            let dp = max_weight_matching_exact(&g);
            let bl = crate::blossom::max_matching(&g);
            assert_eq!(dp.size(), bl.size(), "seed {seed}");
        }
    }

    #[test]
    fn odd_cycle_weighted() {
        // C5 with one heavy edge: optimum takes the heavy edge plus the
        // best disjoint one.
        let g = Graph::with_weights(
            5,
            vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)],
            vec![10.0, 1.0, 2.0, 1.0, 1.0],
        );
        assert_eq!(max_weight_exact(&g), 12.0);
        let _ = cycle(5); // family sanity
    }

    #[test]
    fn result_is_valid_matching() {
        let g = apply_weights(&complete(8), WeightModel::Integer(1, 9), 3);
        let m = max_weight_matching_exact(&g);
        assert!(m.validate(&g).is_ok());
        assert_eq!(
            m.size(),
            4,
            "complete graph with positive weights matches perfectly"
        );
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(max_weight_exact(&Graph::new(0, vec![])), 0.0);
        assert_eq!(max_weight_exact(&Graph::new(1, vec![])), 0.0);
    }

    #[test]
    #[should_panic(expected = "limited")]
    fn rejects_large_graphs() {
        let g = Graph::new(23, vec![]);
        max_weight_matching_exact(&g);
    }
}
