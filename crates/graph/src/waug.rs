//! Weighted augmentations: alternating paths *and cycles* with a
//! bounded number of unmatched edges, and their gains.
//!
//! This is the machinery behind Lemma 4.2 (Pettie–Sanders \[24\]): for
//! every `k` there is a collection of disjoint augmentations, each with
//! at most `k` unmatched edges, realizing a `(k+1)/(2k+1)` fraction of
//! the remaining headroom `k/(k+1)·w(M*) - w(M)`. The paper's closing
//! Remark (Section 4) obtains a `(1-ε)`-MWM by repeatedly applying
//! maximal sets of such short augmentations — implemented in
//! `dmatch::weighted::full_approx` on top of this module.

use crate::graph::{EdgeId, Graph, NodeId};
use crate::matching::Matching;

/// One augmentation: an edge set `A` such that `M ⊕ A` is again a
/// matching, together with its weight gain.
#[derive(Debug, Clone)]
pub struct Augmentation {
    /// The edges of `A` (alternating path or even cycle).
    pub edges: Vec<EdgeId>,
    /// The vertices touched (used for conflict tests).
    pub vertices: Vec<NodeId>,
    /// `w(M ⊕ A) - w(M)`.
    pub gain: f64,
}

impl Augmentation {
    /// True if `self` and `other` share a vertex.
    pub fn conflicts(&self, other: &Augmentation) -> bool {
        self.vertices.iter().any(|v| other.vertices.contains(v))
    }
}

/// Enumerate all positive-gain augmentations with at most
/// `max_unmatched` unmatched edges: alternating paths (each endpoint
/// either free or shedding its matched edge) and alternating even
/// cycles. Each augmentation is reported once (canonical direction).
///
/// Exponential in `max_unmatched`; intended for the small `k = O(1/ε)`
/// of the paper's Remark.
pub fn enumerate_augmentations(g: &Graph, m: &Matching, max_unmatched: usize) -> Vec<Augmentation> {
    let mut out = Vec::new();
    let mut on_path = vec![false; g.n()];
    for start in 0..g.n() as NodeId {
        // Paths beginning with an unmatched edge must start at a free
        // vertex or at a vertex whose matched edge is shed — the latter
        // case is covered by paths *beginning with the matched edge*,
        // so we root DFS in both parities.
        for first_matched in [false, true] {
            if !first_matched && !m.is_free(start) {
                // A leading unmatched edge at a matched vertex would
                // leave `start` doubly matched unless its matching edge
                // is also in A; that case is found with
                // `first_matched = true` from `start`.
                continue;
            }
            if first_matched && m.is_free(start) {
                continue;
            }
            let mut path: Vec<NodeId> = vec![start];
            on_path[start as usize] = true;
            dfs(
                g,
                m,
                max_unmatched,
                first_matched,
                &mut path,
                &mut Vec::new(),
                &mut on_path,
                0,
                0.0,
                &mut out,
            );
            on_path[start as usize] = false;
        }
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    g: &Graph,
    m: &Matching,
    max_unmatched: usize,
    // Parity of the next edge to take.
    next_matched: bool,
    path: &mut Vec<NodeId>,
    edges: &mut Vec<EdgeId>,
    on_path: &mut [bool],
    unmatched_used: usize,
    gain: f64,
    out: &mut Vec<Augmentation>,
) {
    let v = *path.last().expect("nonempty");
    let start = path[0];
    for &(u, e) in g.incident(v) {
        let is_matched = m.contains(g, e);
        if is_matched != next_matched {
            continue;
        }
        // Cycle closure: an even alternating cycle back to start.
        if u == start && edges.len() >= 3 {
            // The closing edge's parity must differ from the first
            // edge's parity at `start` (start then has one matched and
            // one unmatched A-edge).
            let first_matched = m.contains(g, edges[0]);
            if is_matched != first_matched {
                let new_unmatched = unmatched_used + usize::from(!is_matched);
                let total_gain = gain
                    + if is_matched {
                        -g.weight(e)
                    } else {
                        g.weight(e)
                    };
                if new_unmatched <= max_unmatched && total_gain > 1e-12 {
                    // Canonical: start is the smallest vertex. The
                    // traversal direction is already unique — cycle
                    // vertices are matched, so DFS can only leave
                    // `start` along its (unique) matched edge.
                    if path.iter().all(|&w| w >= start) {
                        let mut a_edges = edges.clone();
                        a_edges.push(e);
                        out.push(Augmentation {
                            edges: a_edges,
                            vertices: path.clone(),
                            gain: total_gain,
                        });
                    }
                }
            }
            continue;
        }
        if on_path[u as usize] {
            continue;
        }
        let new_unmatched = unmatched_used + usize::from(!is_matched);
        if new_unmatched > max_unmatched {
            continue;
        }
        let new_gain = gain
            + if is_matched {
                -g.weight(e)
            } else {
                g.weight(e)
            };
        path.push(u);
        edges.push(e);
        on_path[u as usize] = true;

        // Record the path if it is a valid augmentation here:
        // the trailing endpoint `u` sheds no edge when the last edge is
        // matched; with an unmatched last edge `u` must be free.
        let endpoint_ok = is_matched || m.is_free(u);
        if endpoint_ok && new_gain > 1e-12 {
            // Canonical direction: compare endpoints (they differ —
            // paths with equal endpoints would be cycles).
            if start < u {
                out.push(Augmentation {
                    edges: edges.clone(),
                    vertices: path.clone(),
                    gain: new_gain,
                });
            }
        }
        dfs(
            g,
            m,
            max_unmatched,
            !next_matched,
            path,
            edges,
            on_path,
            new_unmatched,
            new_gain,
            out,
        );
        on_path[u as usize] = false;
        edges.pop();
        path.pop();
    }
}

/// Greedily select a vertex-disjoint set of augmentations in
/// non-increasing gain order (ties by first edge id). Every blocked
/// augmentation conflicts with a selected one of at least its gain —
/// the property the `(1-ε)`-MWM analysis needs.
pub fn greedy_disjoint_by_gain(g: &Graph, augs: &[Augmentation]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..augs.len()).collect();
    order.sort_by(|&a, &b| {
        augs[b]
            .gain
            .partial_cmp(&augs[a].gain)
            .expect("finite gains")
            .then(augs[a].edges.cmp(&augs[b].edges))
    });
    let mut used = vec![false; g.n()];
    let mut chosen = Vec::new();
    for i in order {
        if augs[i].vertices.iter().all(|&v| !used[v as usize]) {
            for &v in &augs[i].vertices {
                used[v as usize] = true;
            }
            chosen.push(i);
        }
    }
    chosen
}

/// Apply a set of vertex-disjoint augmentations; returns the new
/// matching (panics if they were not disjoint or not valid).
pub fn apply_augmentations(g: &Graph, m: &Matching, augs: &[&Augmentation]) -> Matching {
    let mut all: Vec<EdgeId> = Vec::new();
    for a in augs {
        all.extend_from_slice(&a.edges);
    }
    m.symmetric_difference(g, &all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::random::gnp;
    use crate::generators::weights::{apply_weights, WeightModel};
    use crate::greedy;

    #[test]
    fn single_edge_augmentation() {
        let g = Graph::with_weights(2, vec![(0, 1)], vec![5.0]);
        let m = Matching::new(2);
        let augs = enumerate_augmentations(&g, &m, 1);
        assert_eq!(augs.len(), 1);
        assert_eq!(augs[0].gain, 5.0);
    }

    #[test]
    fn length_three_swap() {
        // Path 0-1-2-3 with middle edge matched, heavy outer edges:
        // the classic augmenting path with gain 1+1-10… wait, make it
        // positive: outer 6, 7, middle 5 → gain 8.
        let g = Graph::with_weights(4, vec![(0, 1), (1, 2), (2, 3)], vec![6.0, 5.0, 7.0]);
        let m = Matching::from_edges(&g, &[1]);
        let augs = enumerate_augmentations(&g, &m, 2);
        let best = augs.iter().map(|a| a.gain).fold(0.0f64, f64::max);
        assert_eq!(best, 8.0);
    }

    #[test]
    fn shed_only_one_endpoint() {
        // 0-1 matched (w=5); edge 1-2 (w=9), 2 free: the augmentation
        // {(0,1),(1,2)} re-mates 1 with 2, gain 4 — the "wrap" shape.
        let g = Graph::with_weights(3, vec![(0, 1), (1, 2)], vec![5.0, 9.0]);
        let m = Matching::from_edges(&g, &[0]);
        let augs = enumerate_augmentations(&g, &m, 1);
        assert!(augs
            .iter()
            .any(|a| (a.gain - 4.0).abs() < 1e-9 && a.edges.len() == 2));
        // Applying it must be valid.
        let best = augs
            .iter()
            .max_by(|a, b| a.gain.partial_cmp(&b.gain).unwrap())
            .unwrap();
        let m2 = apply_augmentations(&g, &m, &[best]);
        assert!(m2.validate(&g).is_ok());
        assert_eq!(m2.weight(&g), 9.0);
    }

    #[test]
    fn alternating_cycle_found() {
        // 4-cycle with matched {(0,1),(2,3)} light and unmatched
        // {(1,2),(3,0)} heavy: rotating the cycle gains 6.
        let g = Graph::with_weights(
            4,
            vec![(0, 1), (1, 2), (2, 3), (3, 0)],
            vec![2.0, 5.0, 2.0, 5.0],
        );
        let m = Matching::from_edges(&g, &[0, 2]);
        let augs = enumerate_augmentations(&g, &m, 2);
        let cycles: Vec<_> = augs.iter().filter(|a| a.edges.len() == 4).collect();
        assert_eq!(cycles.len(), 1, "the 4-cycle rotation, reported once");
        assert_eq!(cycles[0].gain, 6.0);
        let m2 = apply_augmentations(&g, &m, &[cycles[0]]);
        assert!(m2.validate(&g).is_ok());
        assert_eq!(m2.weight(&g), 10.0);
    }

    #[test]
    fn all_augmentations_are_sound() {
        for seed in 0..10 {
            let g = apply_weights(&gnp(9, 0.35, seed), WeightModel::Integer(1, 9), seed + 4);
            let m = greedy::greedy_maximal(&g);
            let w0 = m.weight(&g);
            for a in enumerate_augmentations(&g, &m, 2) {
                let m2 = m.symmetric_difference(&g, &a.edges);
                assert!(m2.validate(&g).is_ok(), "seed {seed}");
                assert!(
                    (m2.weight(&g) - w0 - a.gain).abs() < 1e-9,
                    "seed {seed}: gain mismatch"
                );
                assert!(a.gain > 0.0);
            }
        }
    }

    #[test]
    fn greedy_selection_is_disjoint_and_gain_ordered() {
        for seed in 0..6 {
            let g = apply_weights(
                &gnp(12, 0.3, 30 + seed),
                WeightModel::Uniform(0.5, 5.0),
                seed,
            );
            let m = greedy::greedy_maximal(&g);
            let augs = enumerate_augmentations(&g, &m, 2);
            let chosen = greedy_disjoint_by_gain(&g, &augs);
            // Disjointness.
            let mut used = vec![false; g.n()];
            for &i in &chosen {
                for &v in &augs[i].vertices {
                    assert!(!used[v as usize], "seed {seed}: overlap");
                    used[v as usize] = true;
                }
            }
            // Every unchosen augmentation is blocked by a chosen one
            // with ≥ gain.
            for (i, a) in augs.iter().enumerate() {
                if chosen.contains(&i) {
                    continue;
                }
                assert!(
                    chosen
                        .iter()
                        .any(|&j| augs[j].conflicts(a) && augs[j].gain >= a.gain - 1e-9),
                    "seed {seed}: unblocked augmentation skipped"
                );
            }
        }
    }

    #[test]
    fn exhausted_augmentations_imply_near_optimality() {
        // Lemma 4.2 contrapositive: if no augmentation with ≤ k
        // unmatched edges has positive gain, then w(M) ≥ k/(k+1)·OPT.
        for seed in 0..8 {
            let g = apply_weights(&gnp(10, 0.4, 60 + seed), WeightModel::Integer(1, 9), seed);
            let mut m = greedy::greedy_by_weight(&g);
            let k = 2;
            loop {
                let augs = enumerate_augmentations(&g, &m, k);
                let chosen = greedy_disjoint_by_gain(&g, &augs);
                if chosen.is_empty() {
                    break;
                }
                let sel: Vec<&Augmentation> = chosen.iter().map(|&i| &augs[i]).collect();
                m = apply_augmentations(&g, &m, &sel);
            }
            let opt = crate::mwm_exact::max_weight_exact(&g);
            assert!(
                m.weight(&g) >= (k as f64 / (k as f64 + 1.0)) * opt - 1e-9,
                "seed {seed}: {} < {}·{opt}",
                m.weight(&g),
                k as f64 / (k as f64 + 1.0)
            );
        }
    }
}
