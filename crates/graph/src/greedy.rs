//! Sequential greedy baselines.
//!
//! The paper's introduction: *"the greedy algorithm (that repeatedly
//! adds the heaviest remaining edge to the matching and removes all its
//! incident edges) finds a ½-MCM or ½-MWM"*. These are the classical
//! centralized comparators (Preis \[25\], Drake–Hougardy \[6\]).

use crate::graph::{EdgeId, Graph};
use crate::matching::Matching;

/// Greedy by non-increasing weight (ties broken by edge id): ½-MWM.
pub fn greedy_by_weight(g: &Graph) -> Matching {
    let mut order: Vec<EdgeId> = (0..g.m() as EdgeId).collect();
    order.sort_by(|&a, &b| {
        g.weight(b)
            .partial_cmp(&g.weight(a))
            .expect("weights are finite")
            .then(a.cmp(&b))
    });
    maximal_in_order(g, &order)
}

/// Maximal matching taking edges in id order (an arbitrary maximal
/// matching — the ½-MCM baseline).
pub fn greedy_maximal(g: &Graph) -> Matching {
    let order: Vec<EdgeId> = (0..g.m() as EdgeId).collect();
    maximal_in_order(g, &order)
}

/// Maximal matching obtained by scanning `order` and adding every edge
/// whose endpoints are still free.
pub fn maximal_in_order(g: &Graph, order: &[EdgeId]) -> Matching {
    let mut m = Matching::new(g.n());
    for &e in order {
        let (u, v) = g.endpoints(e);
        if m.is_free(u) && m.is_free(v) {
            m.add(g, e);
        }
    }
    m
}

/// Path-growing algorithm of Drake & Hougardy \[6\]: grows paths from
/// arbitrary vertices always extending along the heaviest incident
/// edge, alternately assigning edges to two matchings; returns the
/// heavier one. ½-MWM in linear time.
pub fn path_growing(g: &Graph) -> Matching {
    let n = g.n();
    let mut removed = vec![false; n];
    let mut m1: Vec<EdgeId> = Vec::new();
    let mut m2: Vec<EdgeId> = Vec::new();
    for start in 0..n as u32 {
        let mut v = start;
        let mut side = 0usize;
        if removed[v as usize] {
            continue;
        }
        loop {
            // Heaviest incident edge to a non-removed neighbor.
            let mut best: Option<(f64, EdgeId, u32)> = None;
            for &(u, e) in g.incident(v) {
                if removed[u as usize] {
                    continue;
                }
                let w = g.weight(e);
                if best.is_none_or(|(bw, be, _)| w > bw || (w == bw && e < be)) {
                    best = Some((w, e, u));
                }
            }
            removed[v as usize] = true;
            match best {
                None => break,
                Some((_, e, u)) => {
                    if side == 0 {
                        m1.push(e);
                    } else {
                        m2.push(e);
                    }
                    side ^= 1;
                    v = u;
                }
            }
        }
    }
    // Edges in each list may conflict only never: alternate edges of a
    // path are disjoint within each side, and paths are vertex-disjoint.
    let a = Matching::from_edges(g, &m1);
    let b = Matching::from_edges(g, &m2);
    if a.weight(g) >= b.weight(g) {
        a
    } else {
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::random::gnp;
    use crate::generators::structured::{p4_chain, path};
    use crate::generators::weights::{apply_weights, WeightModel};
    use crate::mwm_exact::max_weight_exact;

    #[test]
    fn greedy_weight_achieves_half_on_random_graphs() {
        for seed in 0..8 {
            let g = apply_weights(
                &gnp(12, 0.3, seed),
                WeightModel::Uniform(0.1, 5.0),
                seed + 7,
            );
            let gw = greedy_by_weight(&g).weight(&g);
            let opt = max_weight_exact(&g);
            assert!(gw >= 0.5 * opt - 1e-9, "seed {seed}: {gw} < half of {opt}");
        }
    }

    #[test]
    fn greedy_maximal_is_maximal_and_half() {
        for seed in 0..8 {
            let g = gnp(14, 0.25, 20 + seed);
            let m = greedy_maximal(&g);
            assert!(m.is_maximal(&g));
            let opt = crate::blossom::max_matching(&g).size();
            assert!(2 * m.size() >= opt, "seed {seed}");
        }
    }

    #[test]
    fn path_growing_achieves_half() {
        for seed in 0..8 {
            let g = apply_weights(
                &gnp(12, 0.35, 40 + seed),
                WeightModel::Exponential(2.0),
                seed,
            );
            let pg = path_growing(&g).weight(&g);
            let opt = max_weight_exact(&g);
            assert!(pg >= 0.5 * opt - 1e-9, "seed {seed}: {pg} < half of {opt}");
            assert!(path_growing(&g).validate(&g).is_ok());
        }
    }

    #[test]
    fn p4_trap_shows_half_gap() {
        // Greedy in id order picks the outer edges here (ids 0,2 first),
        // so use weights to force the trap: heavy middle edge.
        let g0 = p4_chain(1);
        let g = Graph::with_weights(4, g0.edge_list().to_vec(), vec![1.0, 1.5, 1.0]);
        let m = greedy_by_weight(&g);
        assert_eq!(m.size(), 1); // takes the middle, blocking both outer
        let opt = max_weight_exact(&g);
        assert_eq!(opt, 2.0);
    }

    #[test]
    fn greedy_on_unit_path() {
        let g = path(6);
        let m = greedy_maximal(&g);
        assert!(m.is_maximal(&g));
        assert!(m.size() >= 2);
    }
}
