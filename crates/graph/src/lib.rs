//! # dgraph — graph substrate and reference matching solvers
//!
//! Everything the reproduction of *Improved Distributed Approximate
//! Matching* (SPAA'08) needs from "classical" graph land:
//!
//! * [`Graph`] — an immutable undirected graph in CSR form with optional
//!   edge weights, plus [`builder::GraphBuilder`] for incremental
//!   construction;
//! * [`generators`] — random and structured workload families
//!   (G(n,p), random bipartite, regular bipartite, trees, grids,
//!   power-law, paths/cycles, …) and weight models;
//! * [`Matching`] — a validated matching with augmentation support;
//! * [`augmenting`] — augmenting-path machinery (enumeration up to a
//!   length bound, shortest-path length, Hopcroft–Karp Lemmas 3.4/3.5
//!   checkers);
//! * exact solvers used as ground truth for approximation ratios:
//!   [`hopcroft_karp`] (bipartite MCM), [`blossom`] (general MCM,
//!   Edmonds), [`hungarian`] (bipartite MWM), [`mwm_exact`] (general MWM
//!   by bitmask DP on small graphs);
//! * [`greedy`] — the sequential ½-approximation baselines the paper
//!   cites (greedy-by-weight, arbitrary maximal matching).

pub mod augmenting;
pub mod bipartite;
pub mod blossom;
pub mod builder;
pub mod generators;
pub mod graph;
pub mod greedy;
pub mod hopcroft_karp;
pub mod hungarian;
pub mod io;
pub mod koenig;
pub mod line_graph;
pub mod matching;
pub mod mwm_exact;
pub mod rng;
pub mod subgraph;
pub mod waug;

pub use builder::GraphBuilder;
pub use graph::{EdgeId, Graph, NodeId, UNMATCHED};
pub use matching::Matching;

/// Relative tolerance for weight comparisons throughout the workspace.
pub const WEIGHT_EPS: f64 = 1e-9;

/// `a ≥ b` up to the global relative tolerance.
pub fn weight_ge(a: f64, b: f64) -> bool {
    a >= b - WEIGHT_EPS * (1.0 + a.abs().max(b.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_ge_tolerates_rounding() {
        assert!(weight_ge(1.0, 1.0 + 1e-12));
        assert!(weight_ge(2.0, 1.0));
        assert!(!weight_ge(1.0, 1.1));
    }
}
