//! Line graphs: the classic matching ↔ independent-set reduction.
//!
//! `L(G)` has one node per edge of `G`, adjacent iff the edges share an
//! endpoint. A matching in `G` is exactly an independent set in `L(G)`,
//! and a *maximal* matching is a *maximal* independent set — the
//! reduction that lets Luby's MIS (Section 3's workhorse) compute
//! maximal matchings, and the lens through which the paper's conflict
//! graph `C_M(ℓ)` generalizes `L(G)` from edges to augmenting paths.

use crate::graph::{EdgeId, Graph, NodeId};
use crate::matching::Matching;

/// Build the line graph `L(G)`. Node `e` of the result corresponds to
/// edge `e` of `g` (same index). Weights carry over.
pub fn line_graph(g: &Graph) -> Graph {
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    // Two edges are adjacent iff they appear together in some
    // incidence list; enumerate per vertex to avoid O(m²).
    for v in 0..g.n() as NodeId {
        let inc = g.incident(v);
        for i in 0..inc.len() {
            for j in i + 1..inc.len() {
                let (a, b) = (inc[i].1.min(inc[j].1), inc[i].1.max(inc[j].1));
                edges.push((a, b));
            }
        }
    }
    edges.sort_unstable();
    edges.dedup();
    let mut weights = Vec::with_capacity(edges.len());
    weights.resize(edges.len(), 1.0);
    Graph::with_weights(g.m(), edges, weights)
}

/// Interpret an independent set of `L(G)` (indicator per edge of `G`)
/// as a matching of `G`. Panics if the set was not independent.
pub fn matching_from_independent_set(g: &Graph, independent: &[bool]) -> Matching {
    let edges: Vec<EdgeId> = (0..g.m() as EdgeId)
        .filter(|&e| independent[e as usize])
        .collect();
    Matching::from_edges(g, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::random::gnp;
    use crate::generators::structured::{complete, path, star};

    #[test]
    fn line_graph_shapes() {
        // L(P4) = P3; L(K3) = K3; L(star_n) = K_{n-1}.
        assert_eq!(line_graph(&path(4)).edge_list(), &[(0, 1), (1, 2)]);
        assert_eq!(line_graph(&complete(3)).m(), 3);
        let ls = line_graph(&star(5));
        assert_eq!(ls.n(), 4);
        assert_eq!(ls.m(), 6); // K4
    }

    #[test]
    fn independent_sets_are_matchings() {
        for seed in 0..10 {
            let g = gnp(14, 0.25, seed);
            let lg = line_graph(&g);
            // Any maximal independent set of L(G), greedily.
            let mut indep = vec![false; lg.n()];
            let mut blocked = vec![false; lg.n()];
            for v in 0..lg.n() {
                if !blocked[v] {
                    indep[v] = true;
                    for &(u, _) in lg.incident(v as NodeId) {
                        blocked[u as usize] = true;
                    }
                }
            }
            let m = matching_from_independent_set(&g, &indep);
            assert!(m.validate(&g).is_ok(), "seed {seed}");
            assert!(
                m.is_maximal(&g),
                "seed {seed}: maximal IS must give maximal matching"
            );
        }
    }

    #[test]
    fn empty_and_single_edge() {
        let g = Graph::new(3, vec![]);
        assert_eq!(line_graph(&g).n(), 0);
        let g = Graph::new(2, vec![(0, 1)]);
        let lg = line_graph(&g);
        assert_eq!(lg.n(), 1);
        assert_eq!(lg.m(), 0);
    }
}
