//! Matchings: validated sets of pairwise disjoint edges.
//!
//! The mate array is the single source of truth; edge ids are derived
//! through the graph on demand. All mutating operations keep the
//! invariant `mate[mate[v]] == v` and panic on violations — an invalid
//! matching is always a bug in the caller.

use crate::graph::{EdgeId, Graph, NodeId, UNMATCHED};
use std::collections::BTreeSet;

/// A matching in a [`Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matching {
    mate: Vec<NodeId>,
    size: usize,
}

impl Matching {
    /// The empty matching on `n` nodes.
    pub fn new(n: usize) -> Self {
        Matching {
            mate: vec![UNMATCHED; n],
            size: 0,
        }
    }

    /// Build from a mate array (validates symmetry).
    pub fn from_mates(mate: Vec<NodeId>) -> Self {
        let mut size = 0;
        for (v, &m) in mate.iter().enumerate() {
            if m != UNMATCHED {
                assert!(
                    (m as usize) < mate.len()
                        && mate[m as usize] == v as NodeId
                        && m != v as NodeId,
                    "asymmetric mate array at {v}"
                );
                size += 1;
            }
        }
        Matching {
            mate,
            size: size / 2,
        }
    }

    /// Build from a list of edge ids (validates disjointness).
    pub fn from_edges(g: &Graph, edges: &[EdgeId]) -> Self {
        let mut m = Matching::new(g.n());
        for &e in edges {
            m.add(g, e);
        }
        m
    }

    /// Number of matched edges.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// True when no edges are matched.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// The mate of `v`, if matched.
    #[inline]
    pub fn mate(&self, v: NodeId) -> Option<NodeId> {
        let m = self.mate[v as usize];
        if m == UNMATCHED {
            None
        } else {
            Some(m)
        }
    }

    /// Raw mate array (with [`UNMATCHED`] sentinels).
    #[inline]
    pub fn mates(&self) -> &[NodeId] {
        &self.mate
    }

    /// True if `v` is not matched ("free" in the paper's terminology).
    #[inline]
    pub fn is_free(&self, v: NodeId) -> bool {
        self.mate[v as usize] == UNMATCHED
    }

    /// All free vertices.
    pub fn free_vertices(&self) -> Vec<NodeId> {
        (0..self.mate.len() as NodeId)
            .filter(|&v| self.is_free(v))
            .collect()
    }

    /// Is edge `e` in the matching?
    #[inline]
    pub fn contains(&self, g: &Graph, e: EdgeId) -> bool {
        let (u, v) = g.endpoints(e);
        self.mate[u as usize] == v
    }

    /// Add edge `e`; panics if either endpoint is already matched.
    pub fn add(&mut self, g: &Graph, e: EdgeId) {
        let (u, v) = g.endpoints(e);
        assert!(
            self.is_free(u) && self.is_free(v),
            "edge {e} conflicts with matching"
        );
        self.mate[u as usize] = v;
        self.mate[v as usize] = u;
        self.size += 1;
    }

    /// Remove edge `e`; panics if it is not matched.
    pub fn remove(&mut self, g: &Graph, e: EdgeId) {
        let (u, v) = g.endpoints(e);
        assert!(self.contains(g, e), "edge {e} not in matching");
        self.mate[u as usize] = UNMATCHED;
        self.mate[v as usize] = UNMATCHED;
        self.size -= 1;
    }

    /// Edge ids of the matching, sorted.
    pub fn edge_ids(&self, g: &Graph) -> Vec<EdgeId> {
        let mut out = Vec::with_capacity(self.size);
        for v in 0..self.mate.len() as NodeId {
            let m = self.mate[v as usize];
            if m != UNMATCHED && v < m {
                out.push(g.edge_between(v, m).expect("matched pair must be an edge"));
            }
        }
        out
    }

    /// Total weight under the graph's weight function.
    pub fn weight(&self, g: &Graph) -> f64 {
        self.edge_ids(g).iter().map(|&e| g.weight(e)).sum()
    }

    /// Symmetric difference `M ⊕ P` where `P` is a set of edge ids.
    /// The result must again be a matching (panics otherwise) — this is
    /// exactly the augmentation step `M ← M ⊕ P` of Algorithms 1/4/5.
    pub fn symmetric_difference(&self, g: &Graph, p: &[EdgeId]) -> Matching {
        // Ordered sets: the symmetric-difference iterator's order must
        // come from edge ids, not hash state (`from_edges` is
        // order-independent today, but nothing downstream should ever
        // have to prove that again).
        let current: BTreeSet<EdgeId> = self.edge_ids(g).into_iter().collect();
        let pset: BTreeSet<EdgeId> = p.iter().copied().collect();
        let new_edges: Vec<EdgeId> = current.symmetric_difference(&pset).copied().collect();
        Matching::from_edges(g, &new_edges)
    }

    /// Augment along a path given as a node sequence
    /// `v0, v1, …, v_{2t+1}` (odd number of edges, endpoints free,
    /// edges alternating unmatched/matched). Panics if the path is not a
    /// valid augmenting path — callers must only pass verified paths.
    pub fn augment_path(&mut self, g: &Graph, path: &[NodeId]) {
        assert!(
            path.len() >= 2 && path.len().is_multiple_of(2),
            "augmenting path has odd edge count"
        );
        assert!(
            self.is_free(path[0]) && self.is_free(*path.last().unwrap()),
            "endpoints must be free"
        );
        // Check alternation before mutating anything.
        for (i, w) in path.windows(2).enumerate() {
            let e = g
                .edge_between(w[0], w[1])
                .unwrap_or_else(|| panic!("path step ({},{}) is not an edge", w[0], w[1]));
            let matched = self.contains(g, e);
            assert_eq!(matched, i % 2 == 1, "path does not alternate at step {i}");
        }
        // Flip: remove matched (odd) edges first, then add even ones.
        for (i, w) in path.windows(2).enumerate() {
            if i % 2 == 1 {
                let e = g.edge_between(w[0], w[1]).unwrap();
                self.remove(g, e);
            }
        }
        for (i, w) in path.windows(2).enumerate() {
            if i % 2 == 0 {
                let e = g.edge_between(w[0], w[1]).unwrap();
                self.add(g, e);
            }
        }
    }

    /// A matching is *maximal* if no edge has both endpoints free.
    pub fn is_maximal(&self, g: &Graph) -> bool {
        (0..g.m() as EdgeId).all(|e| {
            let (u, v) = g.endpoints(e);
            !(self.is_free(u) && self.is_free(v))
        })
    }

    /// Full validity check against `g` (used by tests and the verifier).
    pub fn validate(&self, g: &Graph) -> Result<(), String> {
        if self.mate.len() != g.n() {
            return Err(format!(
                "mate array length {} != n {}",
                self.mate.len(),
                g.n()
            ));
        }
        let mut count = 0usize;
        for v in 0..g.n() as NodeId {
            if let Some(m) = self.mate(v) {
                if self.mate(m) != Some(v) {
                    return Err(format!("asymmetric mates: {v} -> {m}"));
                }
                if g.edge_between(v, m).is_none() {
                    return Err(format!("matched pair ({v},{m}) is not an edge"));
                }
                count += 1;
            }
        }
        if count / 2 != self.size {
            return Err(format!("size {} != counted {}", self.size, count / 2));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p4() -> Graph {
        // Path 0-1-2-3.
        Graph::new(4, vec![(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn add_remove_roundtrip() {
        let g = p4();
        let mut m = Matching::new(4);
        m.add(&g, 1); // (1,2)
        assert_eq!(m.size(), 1);
        assert_eq!(m.mate(1), Some(2));
        assert!(m.contains(&g, 1));
        m.remove(&g, 1);
        assert!(m.is_empty());
        assert!(m.validate(&g).is_ok());
    }

    #[test]
    #[should_panic(expected = "conflicts")]
    fn add_rejects_conflicts() {
        let g = p4();
        let mut m = Matching::new(4);
        m.add(&g, 0);
        m.add(&g, 1); // shares node 1
    }

    #[test]
    fn augment_length_three_path() {
        let g = p4();
        let mut m = Matching::from_edges(&g, &[1]); // middle edge matched
        m.augment_path(&g, &[0, 1, 2, 3]);
        assert_eq!(m.size(), 2);
        assert!(m.contains(&g, 0) && m.contains(&g, 2));
        assert!(!m.contains(&g, 1));
        assert!(m.validate(&g).is_ok());
    }

    #[test]
    fn augment_length_one_path() {
        let g = p4();
        let mut m = Matching::new(4);
        m.augment_path(&g, &[2, 3]);
        assert!(m.contains(&g, 2));
    }

    #[test]
    #[should_panic(expected = "alternate")]
    fn augment_rejects_non_alternating() {
        let g = p4();
        let mut m = Matching::new(4);
        // Length-3 path with no matched middle edge.
        m.augment_path(&g, &[0, 1, 2, 3]);
    }

    #[test]
    fn symmetric_difference_applies_paths() {
        let g = p4();
        let m = Matching::from_edges(&g, &[1]);
        let m2 = m.symmetric_difference(&g, &[0, 1, 2]);
        assert_eq!(m2.size(), 2);
        assert!(m2.contains(&g, 0) && m2.contains(&g, 2));
    }

    #[test]
    fn maximality() {
        let g = p4();
        assert!(Matching::from_edges(&g, &[1]).is_maximal(&g));
        assert!(!Matching::new(4).is_maximal(&g));
        assert!(!Matching::from_edges(&g, &[0]).is_maximal(&g)); // (2,3) both free
    }

    #[test]
    fn weights_sum() {
        let g = Graph::with_weights(4, vec![(0, 1), (1, 2), (2, 3)], vec![3.0, 5.0, 4.0]);
        let m = Matching::from_edges(&g, &[0, 2]);
        assert_eq!(m.weight(&g), 7.0);
    }

    #[test]
    fn from_mates_validates() {
        let m = Matching::from_mates(vec![1, 0, UNMATCHED, UNMATCHED]);
        assert_eq!(m.size(), 1);
    }

    #[test]
    #[should_panic(expected = "asymmetric")]
    fn from_mates_rejects_asymmetry() {
        Matching::from_mates(vec![1, UNMATCHED, UNMATCHED]);
    }

    #[test]
    fn free_vertices_listed() {
        let g = p4();
        let m = Matching::from_edges(&g, &[0]);
        assert_eq!(m.free_vertices(), vec![2, 3]);
    }
}
