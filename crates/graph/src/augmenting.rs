//! Augmenting-path machinery.
//!
//! An *augmenting path* w.r.t. a matching `M` is a simple path whose
//! endpoints are free and whose edges alternate between `E \ M` and `M`
//! (Section 2 of the paper). This module provides
//!
//! * exhaustive enumeration of augmenting paths up to a length bound
//!   (used by the generic Algorithm 1 for its conflict graph, and by
//!   tests as ground truth),
//! * an exact shortest-augmenting-path computation for bipartite graphs
//!   (a layered BFS, as in Hopcroft–Karp),
//! * greedy maximal disjoint path selection and checkers for the
//!   Hopcroft–Karp lemmas the paper builds on (Lemmas 3.4 and 3.5).

use crate::graph::{Graph, NodeId};
use crate::matching::Matching;

/// Enumerate all augmenting paths with at most `max_edges` edges, as
/// node sequences. Each path is reported once (canonical direction:
/// smaller endpoint id first).
///
/// Worst-case exponential in `max_edges`; intended for the small `ℓ`
/// values the paper's phases use (`ℓ ≤ 2k-1`) and for verification.
pub fn enumerate_augmenting_paths(g: &Graph, m: &Matching, max_edges: usize) -> Vec<Vec<NodeId>> {
    let mut out = Vec::new();
    let mut on_path = vec![false; g.n()];
    let mut path: Vec<NodeId> = Vec::new();
    for start in 0..g.n() as NodeId {
        if !m.is_free(start) {
            continue;
        }
        path.push(start);
        on_path[start as usize] = true;
        dfs(g, m, max_edges, &mut path, &mut on_path, &mut out);
        on_path[start as usize] = false;
        path.pop();
    }
    out
}

fn dfs(
    g: &Graph,
    m: &Matching,
    max_edges: usize,
    path: &mut Vec<NodeId>,
    on_path: &mut [bool],
    out: &mut Vec<Vec<NodeId>>,
) {
    let v = *path.last().expect("path is nonempty");
    let edges_so_far = path.len() - 1;
    // Next edge must be unmatched if we are at even distance from the
    // start (start is free, so the path begins with an unmatched edge),
    // matched otherwise.
    let need_matched = edges_so_far % 2 == 1;
    if edges_so_far >= max_edges {
        return;
    }
    for &(u, e) in g.incident(v) {
        if on_path[u as usize] {
            continue;
        }
        let matched = m.contains(g, e);
        if matched != need_matched {
            continue;
        }
        if !matched && m.is_free(u) {
            // Completed an augmenting path (odd edge count by parity).
            if path[0] < u {
                let mut p = path.clone();
                p.push(u);
                out.push(p);
            }
            continue;
        }
        path.push(u);
        on_path[u as usize] = true;
        dfs(g, m, max_edges, path, on_path, out);
        on_path[u as usize] = false;
        path.pop();
    }
}

/// Exact length (in edges) of the shortest augmenting path, or `None`
/// if the matching is maximum. **Bipartite graphs only** (panics
/// otherwise): a layered alternating BFS is exact only without odd
/// cycles.
pub fn shortest_augmenting_path_len_bipartite(
    g: &Graph,
    sides: &[bool],
    m: &Matching,
) -> Option<usize> {
    assert!(
        crate::bipartite::is_valid_bipartition(g, sides),
        "layered BFS requires a valid bipartition"
    );
    // BFS from all free X vertices along alternating paths; distances
    // count edges. dist[v] = shortest alternating distance from a free
    // X vertex reaching v with the correct parity.
    let n = g.n();
    let mut dist = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    for v in 0..n as NodeId {
        if !sides[v as usize] && m.is_free(v) {
            dist[v as usize] = 0;
            queue.push_back(v);
        }
    }
    let mut best: Option<usize> = None;
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize];
        if let Some(b) = best {
            if d >= b {
                continue;
            }
        }
        let from_x = !sides[v as usize];
        for &(u, e) in g.incident(v) {
            let matched = m.contains(g, e);
            // From X we traverse unmatched edges, from Y matched ones.
            if from_x == matched {
                continue;
            }
            if dist[u as usize] != usize::MAX {
                continue;
            }
            if from_x && m.is_free(u) {
                // u is a free Y vertex: augmenting path of length d+1.
                best = Some(best.map_or(d + 1, |b| b.min(d + 1)));
                continue;
            }
            dist[u as usize] = d + 1;
            queue.push_back(u);
        }
    }
    best
}

/// True if some augmenting path with at most `max_edges` edges exists
/// (general graphs; uses enumeration, so keep `max_edges` small).
pub fn has_augmenting_path_within(g: &Graph, m: &Matching, max_edges: usize) -> bool {
    !enumerate_augmenting_paths(g, m, max_edges).is_empty()
}

/// Greedily select a maximal vertex-disjoint subset of `paths`
/// (first-fit in the given order). Returns indices into `paths`.
pub fn greedy_disjoint_paths(g: &Graph, paths: &[Vec<NodeId>]) -> Vec<usize> {
    let mut used = vec![false; g.n()];
    let mut chosen = Vec::new();
    for (i, p) in paths.iter().enumerate() {
        if p.iter().all(|&v| !used[v as usize]) {
            for &v in p {
                used[v as usize] = true;
            }
            chosen.push(i);
        }
    }
    chosen
}

/// Check that the index set `chosen` is vertex-disjoint and maximal
/// within `paths` (every unchosen path intersects a chosen one).
pub fn is_maximal_disjoint(g: &Graph, paths: &[Vec<NodeId>], chosen: &[usize]) -> bool {
    let mut used = vec![false; g.n()];
    for &i in chosen {
        for &v in &paths[i] {
            if used[v as usize] {
                return false; // overlap among chosen paths
            }
            used[v as usize] = true;
        }
    }
    paths
        .iter()
        .enumerate()
        .filter(|(i, _)| !chosen.contains(i))
        .all(|(_, p)| p.iter().any(|&v| used[v as usize]))
}

/// Apply a set of vertex-disjoint augmenting paths: `M ← M ⊕ ∪paths`.
pub fn apply_paths(g: &Graph, m: &mut Matching, paths: &[Vec<NodeId>]) {
    for p in paths {
        m.augment_path(g, p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    /// Path graph 0-1-2-3-4-5 with the middle edges (1,2),(3,4) matched:
    /// exactly one augmenting path of length 5 (the whole path).
    fn p6_with_middle() -> (Graph, Matching) {
        let g = Graph::new(6, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let m = Matching::from_edges(&g, &[1, 3]);
        (g, m)
    }

    #[test]
    fn enumeration_finds_the_long_path() {
        let (g, m) = p6_with_middle();
        assert!(enumerate_augmenting_paths(&g, &m, 3).is_empty());
        let paths = enumerate_augmenting_paths(&g, &m, 5);
        assert_eq!(paths, vec![vec![0, 1, 2, 3, 4, 5]]);
    }

    #[test]
    fn enumeration_counts_short_paths() {
        // Star: center 0, leaves 1..=3; empty matching: 3 aug paths of
        // length 1 (0 is on all, but paths are (leaf, center) pairs:
        // edges (0,1),(0,2),(0,3)).
        let g = Graph::new(4, vec![(0, 1), (0, 2), (0, 3)]);
        let m = Matching::new(4);
        let paths = enumerate_augmenting_paths(&g, &m, 1);
        assert_eq!(paths.len(), 3);
    }

    #[test]
    fn bipartite_shortest_length() {
        let (g, m) = p6_with_middle();
        let sides = crate::bipartite::two_color(&g).unwrap();
        assert_eq!(
            shortest_augmenting_path_len_bipartite(&g, &sides, &m),
            Some(5)
        );
        let empty = Matching::new(6);
        assert_eq!(
            shortest_augmenting_path_len_bipartite(&g, &sides, &empty),
            Some(1)
        );
    }

    #[test]
    fn bipartite_shortest_none_when_maximum() {
        let g = Graph::new(4, vec![(0, 1), (2, 3)]);
        let sides = crate::bipartite::two_color(&g).unwrap();
        let m = Matching::from_edges(&g, &[0, 1]);
        assert_eq!(shortest_augmenting_path_len_bipartite(&g, &sides, &m), None);
    }

    #[test]
    fn greedy_disjoint_is_maximal() {
        let g = Graph::new(6, vec![(0, 1), (2, 3), (4, 5), (1, 2), (3, 4)]);
        let m = Matching::new(6);
        let paths = enumerate_augmenting_paths(&g, &m, 1);
        let chosen = greedy_disjoint_paths(&g, &paths);
        assert!(is_maximal_disjoint(&g, &paths, &chosen));
        assert!(!chosen.is_empty());
    }

    #[test]
    fn lemma_3_4_shortest_length_increases() {
        // Hopcroft–Karp Lemma 3.4: augmenting along a maximal set of
        // shortest paths strictly increases the shortest length.
        let g = Graph::new(
            8,
            vec![
                (0, 4),
                (0, 5),
                (1, 4),
                (1, 6),
                (2, 5),
                (2, 7),
                (3, 6),
                (3, 7),
            ],
        );
        let sides = crate::bipartite::two_color(&g).unwrap();
        let mut m = Matching::new(8);
        let l0 = shortest_augmenting_path_len_bipartite(&g, &sides, &m).unwrap();
        assert_eq!(l0, 1);
        let paths = enumerate_augmenting_paths(&g, &m, l0);
        let shortest: Vec<Vec<NodeId>> = paths.into_iter().filter(|p| p.len() == l0 + 1).collect();
        let chosen = greedy_disjoint_paths(&g, &shortest);
        let selected: Vec<Vec<NodeId>> = chosen.iter().map(|&i| shortest[i].clone()).collect();
        apply_paths(&g, &mut m, &selected);
        let l1 = shortest_augmenting_path_len_bipartite(&g, &sides, &m);
        assert!(
            l1.is_none_or(|l| l > l0),
            "Lemma 3.4 violated: {l1:?} ≤ {l0}"
        );
    }

    #[test]
    fn apply_paths_rejects_conflicts() {
        let g = Graph::new(3, vec![(0, 1), (1, 2)]);
        let mut m = Matching::new(3);
        let paths = vec![vec![0, 1], vec![1, 2]]; // share node 1
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            apply_paths(&g, &mut m, &paths);
        }));
        assert!(r.is_err());
    }
}
