//! Hungarian algorithm (Jonker–Volgenant potentials form, `O(n³)`):
//! exact **maximum-weight bipartite matching**.
//!
//! Exact baseline for the weighted experiments on bipartite inputs.
//! Non-edges are modelled as weight-0 dummy pairs, so the matching is
//! not forced to be perfect: leaving a vertex unmatched is always an
//! option and zero/dummy pairs are dropped from the result.

use crate::graph::{Graph, NodeId};
use crate::matching::Matching;

/// Solve the square min-cost assignment problem; `cost[i][j]` is the
/// cost of assigning row `i` to column `j`. Returns the column assigned
/// to each row.
///
/// Classic shortest-augmenting-path formulation with row/column
/// potentials (1-indexed internally).
pub fn assignment(cost: &[Vec<f64>]) -> Vec<usize> {
    let n = cost.len();
    if n == 0 {
        return Vec::new();
    }
    assert!(
        cost.iter().all(|row| row.len() == n),
        "cost matrix must be square"
    );
    let inf = f64::INFINITY;
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; n + 1];
    let mut p = vec![0usize; n + 1]; // p[j] = row matched to column j
    let mut way = vec![0usize; n + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=n {
                if !used[j] {
                    let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }
    let mut row_to_col = vec![0usize; n];
    for j in 1..=n {
        if p[j] > 0 {
            row_to_col[p[j] - 1] = j - 1;
        }
    }
    row_to_col
}

/// Exact maximum-weight matching of a bipartite graph
/// (`sides[v] == false` = X side). Not necessarily perfect: only real
/// edges with positive weight are kept.
pub fn max_weight_matching(g: &Graph, sides: &[bool]) -> Matching {
    assert!(
        crate::bipartite::is_valid_bipartition(g, sides),
        "hungarian requires a valid bipartition"
    );
    let left: Vec<NodeId> = (0..g.n() as NodeId)
        .filter(|&v| !sides[v as usize])
        .collect();
    let right: Vec<NodeId> = (0..g.n() as NodeId)
        .filter(|&v| sides[v as usize])
        .collect();
    let k = left.len().max(right.len());
    if k == 0 {
        return Matching::new(g.n());
    }
    let mut right_index = vec![usize::MAX; g.n()];
    for (j, &r) in right.iter().enumerate() {
        right_index[r as usize] = j;
    }
    // Min-cost = −weight for real edges, 0 for dummy pairs.
    let mut cost = vec![vec![0.0f64; k]; k];
    for (i, &l) in left.iter().enumerate() {
        for &(nb, e) in g.incident(l) {
            cost[i][right_index[nb as usize]] = -g.weight(e);
        }
    }
    let row_to_col = assignment(&cost);
    let mut m = Matching::new(g.n());
    for (i, &j) in row_to_col.iter().enumerate() {
        if i < left.len() && j < right.len() {
            if let Some(e) = g.edge_between(left[i], right[j]) {
                if g.weight(e) > 0.0 {
                    m.add(g, e);
                }
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bipartite::two_color;

    #[test]
    fn assignment_small() {
        // Classic 3×3 instance; optimum picks the anti-diagonal-ish.
        let cost = vec![
            vec![4.0, 1.0, 3.0],
            vec![2.0, 0.0, 5.0],
            vec![3.0, 2.0, 2.0],
        ];
        let cols = assignment(&cost);
        let total: f64 = cols.iter().enumerate().map(|(i, &j)| cost[i][j]).sum();
        assert_eq!(total, 5.0); // 1 + 2 + 2
    }

    #[test]
    fn assignment_empty() {
        assert!(assignment(&[]).is_empty());
    }

    #[test]
    fn mwm_prefers_heavy_pair() {
        // X = {0,1}, Y = {2,3}. Edge (0,2)=10 beats (0,3)+(1,2)=2+3.
        let g = Graph::with_weights(4, vec![(0, 2), (0, 3), (1, 2)], vec![10.0, 2.0, 3.0]);
        let sides = vec![false, false, true, true];
        let m = max_weight_matching(&g, &sides);
        assert_eq!(m.weight(&g), 10.0);
        assert_eq!(m.size(), 1);
    }

    #[test]
    fn mwm_picks_two_light_over_one_heavy_when_better() {
        // (0,3)+(1,2) = 6+7 = 13 > (0,2) = 10.
        let g = Graph::with_weights(4, vec![(0, 2), (0, 3), (1, 2)], vec![10.0, 6.0, 7.0]);
        let sides = vec![false, false, true, true];
        let m = max_weight_matching(&g, &sides);
        assert_eq!(m.weight(&g), 13.0);
        assert_eq!(m.size(), 2);
    }

    #[test]
    fn unbalanced_and_sparse() {
        let g = Graph::with_weights(5, vec![(0, 4), (1, 4)], vec![3.0, 8.0]);
        let sides = vec![false, false, false, false, true];
        let m = max_weight_matching(&g, &sides);
        assert_eq!(m.weight(&g), 8.0);
    }

    #[test]
    fn agrees_with_brute_force_on_random_instances() {
        use crate::generators::random::bipartite_gnp;
        use crate::generators::weights::{apply_weights, WeightModel};
        for seed in 0..6 {
            let (g0, sides) = bipartite_gnp(5, 5, 0.5, seed);
            let g = apply_weights(&g0, WeightModel::Integer(1, 20), seed * 3 + 1);
            let hung = max_weight_matching(&g, &sides);
            let exact = crate::mwm_exact::max_weight_matching_exact(&g);
            assert!(
                (hung.weight(&g) - exact.weight(&g)).abs() < 1e-9,
                "seed {seed}: hungarian {} vs exact {}",
                hung.weight(&g),
                exact.weight(&g)
            );
        }
    }

    #[test]
    fn unit_weights_recover_maximum_cardinality() {
        use crate::generators::random::bipartite_gnp;
        for seed in 0..5 {
            let (g, sides) = bipartite_gnp(8, 8, 0.3, 40 + seed);
            let mwm = max_weight_matching(&g, &sides);
            let hk = crate::hopcroft_karp::max_matching(&g, &sides);
            assert_eq!(mwm.size(), hk.size(), "seed {seed}");
        }
    }

    #[test]
    fn path_weighted() {
        // Path 0-1-2-3 with weights 1, 10, 1: optimum is the middle edge.
        let g = Graph::with_weights(4, vec![(0, 1), (1, 2), (2, 3)], vec![1.0, 10.0, 1.0]);
        let sides = two_color(&g).unwrap();
        let m = max_weight_matching(&g, &sides);
        assert_eq!(m.weight(&g), 10.0);
    }
}
