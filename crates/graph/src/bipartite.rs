//! Bipartiteness testing and 2-coloring.

use crate::graph::{Graph, NodeId};

/// Try to 2-color the graph. Returns `sides` with `false` for the X
/// side and `true` for the Y side (isolated vertices go to X), or
/// `None` if an odd cycle exists.
pub fn two_color(g: &Graph) -> Option<Vec<bool>> {
    let n = g.n();
    let mut color: Vec<i8> = vec![-1; n];
    let mut queue = std::collections::VecDeque::new();
    for s in 0..n {
        if color[s] != -1 {
            continue;
        }
        color[s] = 0;
        queue.push_back(s as NodeId);
        while let Some(v) = queue.pop_front() {
            for &(u, _) in g.incident(v) {
                if color[u as usize] == -1 {
                    color[u as usize] = 1 - color[v as usize];
                    queue.push_back(u);
                } else if color[u as usize] == color[v as usize] {
                    return None;
                }
            }
        }
    }
    Some(color.into_iter().map(|c| c == 1).collect())
}

/// True when the graph contains no odd cycle.
pub fn is_bipartite(g: &Graph) -> bool {
    two_color(g).is_some()
}

/// Check that `sides` is a proper 2-coloring of `g`.
pub fn is_valid_bipartition(g: &Graph, sides: &[bool]) -> bool {
    sides.len() == g.n()
        && g.edge_list()
            .iter()
            .all(|&(u, v)| sides[u as usize] != sides[v as usize])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_cycle_is_bipartite() {
        let g = Graph::new(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        let sides = two_color(&g).expect("C4 is bipartite");
        assert!(is_valid_bipartition(&g, &sides));
    }

    #[test]
    fn odd_cycle_is_not() {
        let g = Graph::new(3, vec![(0, 1), (1, 2), (2, 0)]);
        assert!(two_color(&g).is_none());
        assert!(!is_bipartite(&g));
    }

    #[test]
    fn disconnected_components_colored_independently() {
        let g = Graph::new(5, vec![(0, 1), (2, 3)]);
        let sides = two_color(&g).unwrap();
        assert!(is_valid_bipartition(&g, &sides));
        // Isolated node 4 lands on the X side.
        assert!(!sides[4]);
    }

    #[test]
    fn invalid_bipartition_detected() {
        let g = Graph::new(2, vec![(0, 1)]);
        assert!(!is_valid_bipartition(&g, &[false, false]));
        assert!(is_valid_bipartition(&g, &[false, true]));
    }
}
