//! Bipartiteness testing and 2-coloring.

use crate::graph::{Graph, NodeId};

/// Try to 2-color the graph. Returns `sides` with `false` for the X
/// side and `true` for the Y side (isolated vertices go to X), or
/// `None` if an odd cycle exists.
pub fn two_color(g: &Graph) -> Option<Vec<bool>> {
    let n = g.n();
    let mut color: Vec<i8> = vec![-1; n];
    let mut queue = std::collections::VecDeque::new();
    for s in 0..n {
        if color[s] != -1 {
            continue;
        }
        color[s] = 0;
        queue.push_back(s as NodeId);
        while let Some(v) = queue.pop_front() {
            for &(u, _) in g.incident(v) {
                if color[u as usize] == -1 {
                    color[u as usize] = 1 - color[v as usize];
                    queue.push_back(u);
                } else if color[u as usize] == color[v as usize] {
                    return None;
                }
            }
        }
    }
    Some(color.into_iter().map(|c| c == 1).collect())
}

/// True when the graph contains no odd cycle.
pub fn is_bipartite(g: &Graph) -> bool {
    two_color(g).is_some()
}

/// Check that `sides` is a proper 2-coloring of `g`.
pub fn is_valid_bipartition(g: &Graph, sides: &[bool]) -> bool {
    sides.len() == g.n()
        && g.edge_list()
            .iter()
            .all(|&(u, v)| sides[u as usize] != sides[v as usize])
}

/// The bipartite double cover of `g`: vertices `(v, 0)` (ids `0..n`)
/// and `(v, 1)` (ids `n..2n`), with `{u,v} ∈ E` lifted to the two
/// edges `{(u,0),(v,1)}` and `{(v,0),(u,1)}`; each lifted edge keeps
/// the original weight. The cover is bipartite by construction, every
/// vertex keeps its degree, so it gives any family — heavy tails
/// included — a bipartite incarnation for the bipartite-only
/// algorithms. Returns the cover and its side array.
pub fn double_cover(g: &Graph) -> (Graph, Vec<bool>) {
    let n = g.n();
    let mut edges = Vec::with_capacity(2 * g.m());
    let mut weights = Vec::with_capacity(2 * g.m());
    for (e, &(u, v)) in g.edge_list().iter().enumerate() {
        let w = g.weight(e as u32);
        edges.push((u, v + n as NodeId));
        weights.push(w);
        edges.push((v, u + n as NodeId));
        weights.push(w);
    }
    let sides = (0..2 * n).map(|v| v >= n).collect();
    (Graph::with_weights(2 * n, edges, weights), sides)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_cycle_is_bipartite() {
        let g = Graph::new(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        let sides = two_color(&g).expect("C4 is bipartite");
        assert!(is_valid_bipartition(&g, &sides));
    }

    #[test]
    fn odd_cycle_is_not() {
        let g = Graph::new(3, vec![(0, 1), (1, 2), (2, 0)]);
        assert!(two_color(&g).is_none());
        assert!(!is_bipartite(&g));
    }

    #[test]
    fn double_cover_preserves_degrees_and_weights() {
        let g = Graph::with_weights(3, vec![(0, 1), (1, 2), (2, 0)], vec![1.5, 2.5, 3.5]);
        let (cover, sides) = double_cover(&g);
        assert_eq!(cover.n(), 6);
        assert_eq!(cover.m(), 6);
        assert!(is_valid_bipartition(&cover, &sides));
        for v in 0..3u32 {
            assert_eq!(cover.degree(v), g.degree(v));
            assert_eq!(cover.degree(v + 3), g.degree(v));
        }
        assert_eq!(cover.total_weight(), 2.0 * g.total_weight());
    }

    #[test]
    fn disconnected_components_colored_independently() {
        let g = Graph::new(5, vec![(0, 1), (2, 3)]);
        let sides = two_color(&g).unwrap();
        assert!(is_valid_bipartition(&g, &sides));
        // Isolated node 4 lands on the X side.
        assert!(!sides[4]);
    }

    #[test]
    fn invalid_bipartition_detected() {
        let g = Graph::new(2, vec![(0, 1)]);
        assert!(!is_valid_bipartition(&g, &[false, false]));
        assert!(is_valid_bipartition(&g, &[false, true]));
    }
}
