//! König duality: minimum vertex cover from a maximum bipartite
//! matching.
//!
//! König's theorem: in bipartite graphs, the minimum vertex cover and
//! the maximum matching have the same size. Constructing the cover
//! gives an **independent optimality certificate** for Hopcroft–Karp:
//! a vertex cover of size `|M|` proves no matching can exceed `|M|`.
//! The property tests certify every HK run this way.

use crate::graph::{Graph, NodeId};
use crate::matching::Matching;

/// Compute a minimum vertex cover of a bipartite graph from a
/// **maximum** matching (König's construction): let `Z` be the set of
/// vertices reachable from free X vertices by alternating paths; the
/// cover is `(X \ Z) ∪ (Y ∩ Z)`.
///
/// The result is only guaranteed to be a cover of size `|M|` when `m`
/// is maximum; [`verify_cover`] checks both properties.
pub fn min_vertex_cover(g: &Graph, sides: &[bool], m: &Matching) -> Vec<NodeId> {
    assert!(
        crate::bipartite::is_valid_bipartition(g, sides),
        "König requires a bipartition"
    );
    let n = g.n();
    let mut reach = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    for v in 0..n as NodeId {
        if !sides[v as usize] && m.is_free(v) {
            reach[v as usize] = true;
            queue.push_back(v);
        }
    }
    while let Some(v) = queue.pop_front() {
        let from_x = !sides[v as usize];
        for &(u, e) in g.incident(v) {
            let matched = m.contains(g, e);
            // Alternate: unmatched edges leave X, matched edges leave Y.
            if from_x == matched || reach[u as usize] {
                continue;
            }
            reach[u as usize] = true;
            queue.push_back(u);
        }
    }
    (0..n as NodeId)
        .filter(|&v| {
            let x_side = !sides[v as usize];
            if x_side {
                !reach[v as usize]
            } else {
                reach[v as usize]
            }
        })
        .collect()
}

/// Check that `cover` covers every edge of `g`.
pub fn verify_cover(g: &Graph, cover: &[NodeId]) -> bool {
    let mut in_cover = vec![false; g.n()];
    for &v in cover {
        in_cover[v as usize] = true;
    }
    g.edge_list()
        .iter()
        .all(|&(u, v)| in_cover[u as usize] || in_cover[v as usize])
}

/// Maximum independent set of a bipartite graph (Gallai: the
/// complement of a minimum vertex cover).
pub fn max_independent_set(g: &Graph, sides: &[bool], m: &Matching) -> Vec<NodeId> {
    let cover = min_vertex_cover(g, sides, m);
    let mut in_cover = vec![false; g.n()];
    for &v in &cover {
        in_cover[v as usize] = true;
    }
    (0..g.n() as NodeId)
        .filter(|&v| !in_cover[v as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::random::bipartite_gnp;
    use crate::generators::structured::complete_bipartite;
    use crate::hopcroft_karp;

    #[test]
    fn koenig_certifies_hopcroft_karp() {
        for seed in 0..20 {
            let (g, sides) = bipartite_gnp(12, 14, 0.2, seed);
            let m = hopcroft_karp::max_matching(&g, &sides);
            let cover = min_vertex_cover(&g, &sides, &m);
            assert!(verify_cover(&g, &cover), "seed {seed}: not a cover");
            assert_eq!(
                cover.len(),
                m.size(),
                "seed {seed}: König size mismatch — HK not maximum or cover not minimum"
            );
        }
    }

    #[test]
    fn complete_bipartite_cover_is_smaller_side() {
        let (g, sides) = complete_bipartite(4, 9);
        let m = hopcroft_karp::max_matching(&g, &sides);
        let cover = min_vertex_cover(&g, &sides, &m);
        assert_eq!(cover.len(), 4);
        assert!(verify_cover(&g, &cover));
    }

    #[test]
    fn independent_set_complements_cover() {
        let (g, sides) = bipartite_gnp(8, 8, 0.3, 3);
        let m = hopcroft_karp::max_matching(&g, &sides);
        let is = max_independent_set(&g, &sides, &m);
        assert_eq!(is.len(), g.n() - m.size(), "Gallai identity");
        // No edge inside the independent set.
        let mut in_set = vec![false; g.n()];
        for &v in &is {
            in_set[v as usize] = true;
        }
        assert!(g
            .edge_list()
            .iter()
            .all(|&(u, v)| !(in_set[u as usize] && in_set[v as usize])));
    }

    #[test]
    fn edgeless_graph_has_empty_cover() {
        let g = Graph::new(5, vec![]);
        let sides = vec![false; 5];
        let m = Matching::new(5);
        assert!(min_vertex_cover(&g, &sides, &m).is_empty());
        assert_eq!(max_independent_set(&g, &sides, &m).len(), 5);
    }
}
