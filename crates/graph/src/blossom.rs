//! Edmonds' blossom algorithm: exact maximum-cardinality matching in
//! **general** graphs, `O(V³)`.
//!
//! Ground truth for the general-graph experiments (Theorem 3.11): the
//! approximation ratio of Algorithm 4 is always measured against the
//! matching computed here.

use crate::graph::{Graph, NodeId, UNMATCHED};
use crate::matching::Matching;

/// Maximum-cardinality matching of an arbitrary graph.
///
/// ```
/// use dgraph::generators::structured::cycle;
/// // C5 needs blossom handling; its maximum matching has 2 edges.
/// assert_eq!(dgraph::blossom::max_matching(&cycle(5)).size(), 2);
/// ```
pub fn max_matching(g: &Graph) -> Matching {
    let n = g.n();
    let mut mate: Vec<NodeId> = vec![UNMATCHED; n];
    // Greedy warm start halves the number of augmentation searches.
    for v in 0..n as NodeId {
        if mate[v as usize] == UNMATCHED {
            for &(u, _) in g.incident(v) {
                if mate[u as usize] == UNMATCHED {
                    mate[v as usize] = u;
                    mate[u as usize] = v;
                    break;
                }
            }
        }
    }
    let mut ctx = Search::new(n);
    for v in 0..n as NodeId {
        if mate[v as usize] == UNMATCHED {
            ctx.find_augmenting_path(g, v, &mut mate);
        }
    }
    Matching::from_mates(mate)
}

/// Scratch space for one augmenting-path search (reused across roots).
struct Search {
    parent: Vec<NodeId>,
    base: Vec<NodeId>,
    used: Vec<bool>,
    blossom: Vec<bool>,
    queue: std::collections::VecDeque<NodeId>,
}

impl Search {
    fn new(n: usize) -> Self {
        Search {
            parent: vec![UNMATCHED; n],
            base: (0..n as NodeId).collect(),
            used: vec![false; n],
            blossom: vec![false; n],
            queue: std::collections::VecDeque::new(),
        }
    }

    /// Lowest common ancestor of `a` and `b` in the alternating forest,
    /// in terms of blossom bases.
    fn lca(&self, mate: &[NodeId], mut a: NodeId, mut b: NodeId) -> NodeId {
        let n = mate.len();
        let mut seen = vec![false; n];
        loop {
            a = self.base[a as usize];
            seen[a as usize] = true;
            if mate[a as usize] == UNMATCHED {
                break; // reached the root
            }
            a = self.parent[mate[a as usize] as usize];
        }
        loop {
            b = self.base[b as usize];
            if seen[b as usize] {
                return b;
            }
            b = self.parent[mate[b as usize] as usize];
        }
    }

    /// Mark blossom vertices on the path from `v` down to base `b`,
    /// re-rooting parent pointers through `child`.
    fn mark_path(&mut self, mate: &[NodeId], mut v: NodeId, b: NodeId, mut child: NodeId) {
        while self.base[v as usize] != b {
            self.blossom[self.base[v as usize] as usize] = true;
            self.blossom[self.base[mate[v as usize] as usize] as usize] = true;
            self.parent[v as usize] = child;
            child = mate[v as usize];
            v = self.parent[mate[v as usize] as usize];
        }
    }

    fn find_augmenting_path(&mut self, g: &Graph, root: NodeId, mate: &mut [NodeId]) -> bool {
        let n = g.n();
        self.used.iter_mut().for_each(|u| *u = false);
        self.parent.iter_mut().for_each(|p| *p = UNMATCHED);
        for (i, b) in self.base.iter_mut().enumerate() {
            *b = i as NodeId;
        }
        self.used[root as usize] = true;
        self.queue.clear();
        self.queue.push_back(root);

        while let Some(v) = self.queue.pop_front() {
            for &(to, _) in g.incident(v) {
                if self.base[v as usize] == self.base[to as usize] || mate[v as usize] == to {
                    continue;
                }
                if to == root
                    || (mate[to as usize] != UNMATCHED
                        && self.parent[mate[to as usize] as usize] != UNMATCHED)
                {
                    // Odd cycle: contract the blossom.
                    let cur_base = self.lca(mate, v, to);
                    self.blossom.iter_mut().for_each(|b| *b = false);
                    self.mark_path(mate, v, cur_base, to);
                    self.mark_path(mate, to, cur_base, v);
                    for i in 0..n as NodeId {
                        if self.blossom[self.base[i as usize] as usize] {
                            self.base[i as usize] = cur_base;
                            if !self.used[i as usize] {
                                self.used[i as usize] = true;
                                self.queue.push_back(i);
                            }
                        }
                    }
                } else if self.parent[to as usize] == UNMATCHED {
                    self.parent[to as usize] = v;
                    if mate[to as usize] == UNMATCHED {
                        // Augment along the found path.
                        let mut u = to;
                        while u != UNMATCHED {
                            let pv = self.parent[u as usize];
                            let ppv = mate[pv as usize];
                            mate[u as usize] = pv;
                            mate[pv as usize] = u;
                            u = ppv;
                        }
                        return true;
                    } else {
                        self.used[mate[to as usize] as usize] = true;
                        self.queue.push_back(mate[to as usize]);
                    }
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::random::{bipartite_gnp, gnp};
    use crate::generators::structured::{complete, cycle, p4_chain, path};

    #[test]
    fn odd_cycle_matching() {
        // C5: maximum matching has size 2 and needs blossom handling.
        let m = max_matching(&cycle(5));
        assert_eq!(m.size(), 2);
    }

    #[test]
    fn petersen_graph_has_perfect_matching() {
        let edges = vec![
            // Outer C5, inner pentagram, spokes.
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 0),
            (5, 7),
            (7, 9),
            (9, 6),
            (6, 8),
            (8, 5),
            (0, 5),
            (1, 6),
            (2, 7),
            (3, 8),
            (4, 9),
        ];
        let g = Graph::new(10, edges);
        let m = max_matching(&g);
        assert_eq!(m.size(), 5);
        assert!(m.validate(&g).is_ok());
    }

    #[test]
    fn complete_graph_sizes() {
        assert_eq!(max_matching(&complete(6)).size(), 3);
        assert_eq!(max_matching(&complete(7)).size(), 3);
    }

    #[test]
    fn p4_chain_optimum_takes_outer_edges() {
        let m = max_matching(&p4_chain(4));
        assert_eq!(m.size(), 8);
    }

    #[test]
    fn agrees_with_hopcroft_karp_on_bipartite() {
        for seed in 0..8 {
            let (g, sides) = bipartite_gnp(15, 15, 0.2, seed);
            let b = max_matching(&g);
            let hk = crate::hopcroft_karp::max_matching(&g, &sides);
            assert_eq!(b.size(), hk.size(), "seed {seed}");
        }
    }

    #[test]
    fn no_augmenting_path_remains_on_random_graphs() {
        use crate::augmenting::enumerate_augmenting_paths;
        for seed in 0..10 {
            let g = gnp(12, 0.25, 300 + seed);
            let m = max_matching(&g);
            assert!(m.validate(&g).is_ok());
            // Berge's theorem: maximum iff no augmenting path exists.
            assert!(
                enumerate_augmenting_paths(&g, &m, g.n()).is_empty(),
                "seed {seed}: blossom result not maximum"
            );
        }
    }

    #[test]
    fn triangle_plus_pendant() {
        // Triangle 0-1-2 with pendant 3 attached to 0: size 2.
        let g = Graph::new(4, vec![(0, 1), (1, 2), (0, 2), (0, 3)]);
        assert_eq!(max_matching(&g).size(), 2);
    }

    #[test]
    fn long_path() {
        assert_eq!(max_matching(&path(101)).size(), 50);
    }
}
