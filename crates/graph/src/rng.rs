//! Self-contained deterministic RNG for the generators.
//!
//! The generators previously drew from `rand::StdRng`; the workspace is
//! dependency-free, so they now draw from the workspace's own SplitMix64
//! generator ([`simnet::SplitMix64`]), wrapped here with the sampling
//! helpers graph generation needs. Streams are deterministic in the
//! seed, which is all the experiment harness requires — graph families
//! are parameterized by `(shape, seed)` and regenerated identically on
//! every run.

use simnet::SplitMix64;

/// SplitMix64 with convenience samplers for the generator modules.
#[derive(Debug, Clone)]
pub struct Rng64 {
    inner: SplitMix64,
}

impl Rng64 {
    /// Seed a stream. The seed is scrambled once so that small seeds do
    /// not produce correlated early outputs.
    pub fn new(seed: u64) -> Self {
        let mut inner = SplitMix64::new(seed ^ 0x9E37_79B9_7F4A_7C15);
        let _ = inner.next();
        Rng64 { inner }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next()
    }

    /// Uniform value in `[0, bound)` (no modulo bias).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        self.inner.below(bound)
    }

    /// Uniform `usize` in `[0, bound)`.
    #[inline]
    pub fn index(&mut self, bound: usize) -> usize {
        self.inner.below(bound as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    #[inline]
    pub fn f64(&mut self) -> f64 {
        self.inner.f64()
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = Rng64::new(42);
        let mut b = Rng64::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Rng64::new(1);
        let mut seen = [false; 7];
        for _ in 0..500 {
            let x = r.below(7) as usize;
            assert!(x < 7);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_unit_interval_and_ranges() {
        let mut r = Rng64::new(9);
        for _ in 0..500 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.range_f64(2.0, 5.0);
            assert!((2.0..5.0).contains(&y));
            let z = r.range_u64(3, 9);
            assert!((3..=9).contains(&z));
        }
    }
}
