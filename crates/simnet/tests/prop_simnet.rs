//! Property-based tests for the simulator core: delivery symmetry,
//! aggregate correctness, and sequential/parallel equivalence on
//! randomized topologies.

use proptest::prelude::*;
use simnet::tree::{aggregate, AggOp};
use simnet::{Ctx, Envelope, Network, Protocol, SplitMix64, Topology};

/// Random connected topology: a path backbone plus random chords.
fn random_connected(n: usize, chords: usize, seed: u64) -> Topology {
    let mut rng = SplitMix64::new(seed);
    let mut edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
    for _ in 0..chords {
        let u = rng.below(n as u64) as u32;
        let v = rng.below(n as u64) as u32;
        let (a, b) = (u.min(v), u.max(v));
        if a != b && b != a + 1 && !edges.contains(&(a, b)) {
            edges.push((a, b));
        }
    }
    Topology::from_edges(n, &edges)
}

/// Echo protocol: every node sends its id for `ttl` rounds and records
/// a rolling hash of everything it hears, with RNG salt.
struct Echo {
    acc: u64,
    ttl: u64,
}
impl Protocol for Echo {
    type Msg = u64;
    fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[Envelope<u64>]) {
        for e in inbox {
            self.acc = self.acc.rotate_left(9) ^ e.msg ^ (e.port as u64);
        }
        if ctx.round() < self.ttl {
            let salt = ctx.rng().next();
            ctx.send_all(self.acc ^ salt);
        } else {
            ctx.halt();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn aggregate_sum_and_max_are_exact(n in 2usize..40, chords in 0usize..20, seed in 0u64..1000) {
        let topo = random_connected(n, chords, seed);
        let values: Vec<u64> = (0..n as u64).map(|i| (i * 37 + seed) % 1000).collect();
        let (sum, _) = aggregate(&topo, &values, AggOp::Sum);
        prop_assert_eq!(sum, values.iter().sum::<u64>());
        let (max, stats) = aggregate(&topo, &values, AggOp::Max);
        prop_assert_eq!(max, *values.iter().max().unwrap());
        // O(D) ≤ O(n) rounds with a small constant.
        prop_assert!(stats.rounds <= 3 * n as u64 + 8);
    }

    #[test]
    fn parallel_stepping_is_bit_identical(n in 4usize..60, chords in 0usize..30, seed in 0u64..1000, threads in 2usize..6) {
        let topo = random_connected(n, chords, seed);
        let mk = || (0..n).map(|_| Echo { acc: 0, ttl: 12 }).collect::<Vec<_>>();
        let mut seq = Network::new(topo.clone(), mk(), seed);
        seq.run_until_halt(64);
        let mut par = Network::new(topo, mk(), seed).with_threads(threads);
        par.run_until_halt(64);
        for (a, b) in seq.nodes().iter().zip(par.nodes()) {
            prop_assert_eq!(a.acc, b.acc);
        }
        prop_assert_eq!(seq.stats().messages, par.stats().messages);
        prop_assert_eq!(seq.stats().bits, par.stats().bits);
        prop_assert_eq!(seq.stats().rounds, par.stats().rounds);
    }

    #[test]
    fn message_conservation(n in 2usize..40, chords in 0usize..20, seed in 0u64..1000) {
        // With no halting, every sent message is delivered exactly once:
        // per-round trace sums equal the total.
        let topo = random_connected(n, chords, seed);
        let mk = || (0..n).map(|_| Echo { acc: 1, ttl: 6 }).collect::<Vec<_>>();
        let mut net = Network::new(topo, mk(), seed);
        net.run_until_halt(64);
        let traced: u64 = net.stats().per_round.iter().map(|r| r.messages).sum();
        prop_assert_eq!(traced, net.stats().messages);
    }

    #[test]
    fn reverse_ports_consistent(n in 2usize..50, chords in 0usize..40, seed in 0u64..1000) {
        let topo = random_connected(n, chords, seed);
        for v in 0..n as u32 {
            for p in 0..topo.degree(v) {
                let u = topo.neighbor(v, p);
                let q = topo.reverse_port(v, p);
                prop_assert_eq!(topo.neighbor(u, q), v);
            }
        }
    }
}
