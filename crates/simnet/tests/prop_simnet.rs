//! Randomized property tests for the simulator core: delivery symmetry,
//! aggregate correctness, and sequential/parallel equivalence on
//! randomized topologies.
//!
//! Dependency-free: cases are enumerated from seeded `SplitMix64`
//! streams, so every run explores the same (deterministic) case set.

use simnet::tree::{aggregate, AggOp};
use simnet::{Ctx, Inbox, Network, Protocol, SplitMix64, Topology};

/// Random connected topology: a path backbone plus random chords.
fn random_connected(n: usize, chords: usize, seed: u64) -> Topology {
    let mut rng = SplitMix64::new(seed);
    let mut edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
    for _ in 0..chords {
        let u = rng.below(n as u64) as u32;
        let v = rng.below(n as u64) as u32;
        let (a, b) = (u.min(v), u.max(v));
        if a != b && b != a + 1 && !edges.contains(&(a, b)) {
            edges.push((a, b));
        }
    }
    Topology::from_edges(n, &edges)
}

/// Echo protocol: every node sends its id for `ttl` rounds and records
/// a rolling hash of everything it hears, with RNG salt.
struct Echo {
    acc: u64,
    ttl: u64,
}
impl Protocol for Echo {
    type Msg = u64;
    fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: Inbox<'_, u64>) {
        for e in inbox.iter() {
            self.acc = self.acc.rotate_left(9) ^ *e.msg ^ (e.port as u64);
        }
        if ctx.round() < self.ttl {
            let salt = ctx.rng().next();
            ctx.send_all(self.acc ^ salt);
        } else {
            ctx.halt();
        }
    }
}

/// Deterministic case generator shared by all tests below.
fn cases(tag: u64, count: usize) -> impl Iterator<Item = (usize, usize, u64)> {
    let mut rng = SplitMix64::new(0xCA5E ^ tag);
    (0..count).map(move |_| {
        let n = 2 + rng.below(48) as usize;
        let chords = rng.below(24) as usize;
        let seed = rng.next();
        (n, chords, seed)
    })
}

#[test]
fn aggregate_sum_and_max_are_exact() {
    for (n, chords, seed) in cases(1, 24) {
        let topo = random_connected(n, chords, seed);
        let values: Vec<u64> = (0..n as u64).map(|i| (i * 37 + seed) % 1000).collect();
        let (sum, _) = aggregate(&topo, &values, AggOp::Sum);
        assert_eq!(sum, values.iter().sum::<u64>());
        let (max, stats) = aggregate(&topo, &values, AggOp::Max);
        assert_eq!(max, *values.iter().max().unwrap());
        // O(D) ≤ O(n) rounds with a small constant.
        assert!(stats.rounds <= 3 * n as u64 + 8);
    }
}

#[test]
fn parallel_stepping_is_bit_identical() {
    for (i, (n, chords, seed)) in cases(2, 24).enumerate() {
        let n = n.max(4);
        let threads = 2 + i % 5;
        let topo = random_connected(n, chords, seed);
        let mk = || (0..n).map(|_| Echo { acc: 0, ttl: 12 }).collect::<Vec<_>>();
        let mut seq = Network::new(topo.clone(), mk(), seed);
        seq.run_until_halt(64);
        let mut par = Network::new(topo, mk(), seed).with_threads(threads);
        par.run_until_halt(64);
        for (a, b) in seq.nodes().iter().zip(par.nodes()) {
            assert_eq!(a.acc, b.acc);
        }
        assert_eq!(
            seq.stats(),
            par.stats(),
            "full NetStats must agree (n={n}, t={threads})"
        );
    }
}

#[test]
fn message_conservation() {
    for (n, chords, seed) in cases(3, 24) {
        // With no halting, every sent message is delivered exactly once:
        // per-round trace sums equal the total.
        let topo = random_connected(n, chords, seed);
        let mk = || (0..n).map(|_| Echo { acc: 1, ttl: 6 }).collect::<Vec<_>>();
        let mut net = Network::new(topo, mk(), seed);
        net.run_until_halt(64);
        let traced: u64 = net.stats().per_round.iter().map(|r| r.messages).sum();
        assert_eq!(traced, net.stats().messages);
    }
}

#[test]
fn reverse_ports_consistent() {
    for (n, chords, seed) in cases(4, 24) {
        let topo = random_connected(n, chords, seed);
        for v in 0..n as u32 {
            for p in 0..topo.degree(v) {
                let u = topo.neighbor(v, p);
                let q = topo.reverse_port(v, p);
                assert_eq!(topo.neighbor(u, q), v);
            }
        }
    }
}

#[test]
fn plane_gauges_are_steady_state_zero() {
    // Message-plane allocation happens only at construction; the gauge
    // must read zero for every round after the first, sequential or
    // parallel, reliable or lossy.
    for (n, chords, seed) in cases(5, 12) {
        let n = n.max(4);
        let topo = random_connected(n, chords, seed);
        let mk = || (0..n).map(|_| Echo { acc: 0, ttl: 10 }).collect::<Vec<_>>();
        for threads in [1usize, 4] {
            let mut net = Network::new(topo.clone(), mk(), seed)
                .with_threads(threads)
                .with_message_loss(0.05);
            net.run_until_halt(64);
            let s = net.stats();
            assert!(
                s.per_round[1..].iter().all(|r| r.plane_allocs == 0),
                "t={threads}"
            );
            assert!((s.peak_inbox as usize) < n);
        }
    }
}
