//! Distributed global aggregation: BFS spanning tree + convergecast +
//! broadcast.
//!
//! Distributed algorithms frequently need a global predicate ("does any
//! augmenting path remain?", "how many paths were applied?"). The
//! textbook primitive is: build a BFS tree from a root, converge-cast
//! the aggregate up the tree, broadcast the result down. Total time is
//! `O(D)` rounds with `O(log n)`-bit messages, where `D` is the
//! diameter.
//!
//! The paper (like most of the literature) does not charge for
//! termination detection; our experiment runner offers both an *oracle*
//! mode (free global checks, flagged in the report) and an *honest* mode
//! in which every global check executes this protocol and its rounds are
//! added to the total.
//!
//! Requires a **connected** topology — aggregation across disconnected
//! components is physically impossible in a message-passing system.

use crate::mailbox::Inbox;
use crate::message::BitSize;
use crate::network::{Ctx, Network, Protocol};
use crate::stats::NetStats;
use crate::topology::Topology;

/// Aggregation operator for [`aggregate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggOp {
    /// Sum of all node values.
    Sum,
    /// Maximum of all node values (logical OR when values are 0/1).
    Max,
}

impl AggOp {
    #[inline]
    fn fold(self, a: u64, b: u64) -> u64 {
        match self {
            AggOp::Sum => a + b,
            AggOp::Max => a.max(b),
        }
    }
}

/// Wire messages of the aggregation protocol. Every variant is `O(log n)`
/// bits: a tag plus at most one value.
#[derive(Debug, Clone)]
pub enum TreeMsg {
    /// BFS exploration front.
    Explore,
    /// "I am your child."
    ChildAck,
    /// "I am not your child."
    Decline,
    /// Subtree aggregate, sent child → parent.
    Done(u64),
    /// Final result, broadcast root → leaves.
    Result(u64),
}

impl BitSize for TreeMsg {
    fn bit_size(&self) -> u64 {
        match self {
            TreeMsg::Explore | TreeMsg::ChildAck | TreeMsg::Decline => 3,
            TreeMsg::Done(v) | TreeMsg::Result(v) => 3 + v.bit_size(),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PortStatus {
    Unknown,
    Child,
    NotChild,
}

/// Per-node state of the aggregation protocol.
#[derive(Debug)]
pub struct AggregateNode {
    op: AggOp,
    is_root: bool,
    value: u64,
    parent: Option<usize>,
    explored: bool,
    status: Vec<PortStatus>,
    child_done: Vec<bool>,
    acc: u64,
    done_sent: bool,
    /// The globally aggregated value, available at every node once the
    /// protocol halts.
    pub result: Option<u64>,
}

impl AggregateNode {
    /// Create the state for one node. Exactly one node must be the root.
    pub fn new(value: u64, op: AggOp, is_root: bool) -> Self {
        AggregateNode {
            op,
            is_root,
            value,
            parent: None,
            explored: false,
            status: Vec::new(),
            child_done: Vec::new(),
            acc: value,
            done_sent: false,
            result: None,
        }
    }

    fn all_resolved(&self) -> bool {
        self.status.iter().all(|&s| s != PortStatus::Unknown)
    }

    fn all_children_done(&self) -> bool {
        self.status
            .iter()
            .zip(&self.child_done)
            .all(|(&s, &d)| s != PortStatus::Child || d)
    }
}

impl Protocol for AggregateNode {
    type Msg = TreeMsg;

    fn on_round(&mut self, ctx: &mut Ctx<'_, TreeMsg>, inbox: Inbox<'_, TreeMsg>) {
        let deg = ctx.degree();
        if self.status.is_empty() && deg > 0 {
            self.status = vec![PortStatus::Unknown; deg];
            self.child_done = vec![false; deg];
        }

        // Root with no neighbors: the aggregate is its own value.
        if self.is_root && deg == 0 {
            self.result = Some(self.value);
            ctx.halt();
            return;
        }

        let mut explore_ports: Vec<usize> = Vec::new();
        let mut got_result: Option<u64> = None;
        for env in inbox.iter() {
            match *env.msg {
                TreeMsg::Explore => explore_ports.push(env.port),
                TreeMsg::ChildAck => self.status[env.port] = PortStatus::Child,
                TreeMsg::Decline => self.status[env.port] = PortStatus::NotChild,
                TreeMsg::Done(v) => {
                    self.acc = self.op.fold(self.acc, v);
                    self.child_done[env.port] = true;
                }
                TreeMsg::Result(v) => got_result = Some(v),
            }
        }

        // Handle incoming exploration.
        let mut acked_parent_now = false;
        if !explore_ports.is_empty() {
            if self.is_root || self.parent.is_some() {
                // Already attached: decline everyone who probed us.
                for &p in &explore_ports {
                    self.status[p] = PortStatus::NotChild;
                    ctx.send(p, TreeMsg::Decline);
                }
            } else {
                // Adopt the lowest-port prober as parent (deterministic).
                let parent = *explore_ports.iter().min().expect("nonempty");
                self.parent = Some(parent);
                self.status[parent] = PortStatus::NotChild;
                ctx.send(parent, TreeMsg::ChildAck);
                acked_parent_now = true;
                for &p in &explore_ports {
                    if p != parent {
                        self.status[p] = PortStatus::NotChild;
                        ctx.send(p, TreeMsg::Decline);
                    }
                }
            }
        }

        // Kick off / continue exploration.
        if !self.explored && (self.is_root || self.parent.is_some()) {
            self.explored = true;
            for p in 0..deg {
                if Some(p) != self.parent && self.status[p] == PortStatus::Unknown {
                    ctx.send(p, TreeMsg::Explore);
                }
            }
            // A node whose every non-parent port was already resolved
            // still needs the Done logic below to fire, so fall through.
        }

        // Converge-cast once the subtree is complete. A node that just
        // acked its parent defers `Done` one round: the message plane
        // carries one message per port per round, and the `ChildAck`
        // already occupies the parent-facing slot.
        if self.explored
            && !self.done_sent
            && !acked_parent_now
            && self.all_resolved()
            && self.all_children_done()
        {
            self.done_sent = true;
            if self.is_root {
                got_result = Some(self.acc);
            } else {
                let parent = self.parent.expect("non-root with complete subtree");
                ctx.send(parent, TreeMsg::Done(self.acc));
            }
        }

        // Broadcast the result and halt.
        if let Some(v) = got_result {
            self.result = Some(v);
            for p in 0..deg {
                if self.status.get(p) == Some(&PortStatus::Child) {
                    ctx.send(p, TreeMsg::Result(v));
                }
            }
            ctx.halt();
        }
    }
}

/// Compute `op` over `values` distributively on `topo` (rooted at node
/// 0) and return `(result, stats)`. All nodes learn the result; the
/// stats reflect the full tree construction + convergecast + broadcast.
///
/// Panics if the topology is disconnected (the protocol cannot halt).
pub fn aggregate(topo: &Topology, values: &[u64], op: AggOp) -> (u64, NetStats) {
    assert_eq!(topo.len(), values.len());
    assert!(!topo.is_empty(), "aggregate on empty topology");
    let nodes: Vec<AggregateNode> = values
        .iter()
        .enumerate()
        .map(|(v, &x)| AggregateNode::new(x, op, v == 0))
        .collect();
    let mut net = Network::new(topo.clone(), nodes, 0);
    // 4·n rounds is a generous bound for BFS + convergecast + broadcast.
    net.run_until_halt(4 * topo.len() as u64 + 8);
    let (nodes, stats) = net.into_parts();
    let result = nodes[0].result.expect("root learned result");
    debug_assert!(
        nodes.iter().all(|n| n.result == Some(result)),
        "all nodes must agree on the aggregate"
    );
    (result, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Topology {
        Topology::from_edges(
            n,
            &(0..n as u32 - 1).map(|i| (i, i + 1)).collect::<Vec<_>>(),
        )
    }

    #[test]
    fn sum_on_path() {
        let topo = path(10);
        let values: Vec<u64> = (0..10).collect();
        let (r, stats) = aggregate(&topo, &values, AggOp::Sum);
        assert_eq!(r, 45);
        // O(D) rounds: the path has diameter 9; allow the 3-phase constant.
        assert!(stats.rounds <= 3 * 9 + 10, "rounds = {}", stats.rounds);
    }

    #[test]
    fn max_on_star() {
        let topo = Topology::from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        let values = vec![3, 9, 1, 40, 2, 7];
        let (r, stats) = aggregate(&topo, &values, AggOp::Max);
        assert_eq!(r, 40);
        assert!(stats.rounds <= 12);
    }

    #[test]
    fn singleton() {
        let topo = Topology::from_edges(1, &[]);
        let (r, _) = aggregate(&topo, &[17], AggOp::Sum);
        assert_eq!(r, 17);
    }

    #[test]
    fn dense_graph() {
        let mut edges = Vec::new();
        for u in 0..8u32 {
            for v in u + 1..8 {
                edges.push((u, v));
            }
        }
        let topo = Topology::from_edges(8, &edges);
        let (r, stats) = aggregate(&topo, &[1; 8], AggOp::Sum);
        assert_eq!(r, 8);
        assert!(stats.rounds <= 8, "complete graph should finish fast");
    }

    #[test]
    fn messages_are_congest_sized() {
        let topo = path(32);
        let (_, stats) = aggregate(&topo, &vec![1u64; 32], AggOp::Sum);
        assert!(stats.max_msg_bits <= 3 + 64);
    }

    #[test]
    fn or_via_max_zero_one() {
        let topo = path(5);
        let (r, _) = aggregate(&topo, &[0, 0, 1, 0, 0], AggOp::Max);
        assert_eq!(r, 1);
        let (r, _) = aggregate(&topo, &[0; 5], AggOp::Max);
        assert_eq!(r, 0);
    }
}
