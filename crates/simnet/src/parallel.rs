//! Parallel node stepping.
//!
//! Within one synchronous round, nodes are independent: each reads only
//! its own inbox and state. This is embarrassingly parallel, so large
//! networks are stepped by partitioning nodes across scoped worker
//! threads. The message plane partitions with them: each worker's nodes
//! span a contiguous node-id range, so it owns a contiguous slice of
//! the outgoing slab (its nodes' port ranges) via `split_at_mut` — no
//! locks, no unsafe, no per-round allocation. The previous round's slab
//! is read shared by all workers.
//!
//! Under the sparse scheduler the partition is over the **active
//! list**, not `0..n`: the sorted wake list is cut into chunks of
//! (roughly) equally many *active* nodes, each chunk spanning the
//! contiguous id range from its first to its last active node (idle
//! nodes inside the range are simply never visited). Fan-out is
//! throttled by the amount of actual work: with fewer than
//! `PAR_MIN_PER_THREAD` active nodes per worker the round falls back
//! to the sequential path, so a quiet tail (or a tiny network) never
//! pays thread-spawn latency for a handful of node steps — the
//! pathology the first `BENCH_step_plane.json` capture measured as a
//! ~100x slowdown at small `n`.
//!
//! Determinism is preserved because
//!
//! 1. every node draws from its own RNG stream,
//! 2. inbox order is positional (ports), independent of scheduling, and
//! 3. delivery accounting (and the fault-injection RNG stream) runs
//!    sequentially after the join, walking senders in node order —
//!    workers record senders per chunk and chunks are merged in node
//!    order (chunks are id-sorted, so the merge is a concatenation).
//!
//! Consequently `step_parallel` produces bit-identical results to the
//! sequential path, in both scheduling modes — a property asserted by
//! the tests below and by the workspace-level `prop_plane` suite.

use crate::mailbox::Inbox;
use crate::network::{split_planes, Ctx, Network, Protocol, SchedMode, WorkerScratch};
use crate::topology::NodeId;

/// Minimum stepped-node count per worker before another thread is
/// worth spawning: below this, scoped-thread spawn/join latency
/// dominates the round. The sequential/parallel crossover recorded in
/// `BENCH_step_plane.json` sits comfortably above
/// `PAR_MIN_PER_THREAD · 2` nodes of light work.
pub(crate) const PAR_MIN_PER_THREAD: usize = 1024;

/// Worker-count ceiling for one round: never more threads than the
/// machine has cores (spawning 8 workers on a 1-core container only
/// adds spawn/join latency) and never fewer than [`PAR_MIN_PER_THREAD`]
/// units of work per worker. `workload` is the number of nodes this
/// round will step (`n` for the dense sweep, the wake-list length for
/// the sparse drain). Purely a performance decision — results are
/// bit-identical for every return value.
fn worker_cap(requested: usize, workload: usize, force: bool) -> usize {
    if force {
        // Test-only escape hatch (`Network::force_parallel`): spawn one
        // worker per requested thread regardless of machine or
        // workload, so the partitioners run for real in unit tests.
        return requested.min(workload.max(1));
    }
    // The core count cannot change meaningfully mid-run; probe it once
    // (available_parallelism performs affinity/cgroup syscalls) instead
    // of paying for it in every round.
    static HW: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    let hw = *HW.get_or_init(|| {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    });
    requested.min(hw).min(workload.div_ceil(PAR_MIN_PER_THREAD))
}

/// Execute one round using up to `net.threads` workers. Called by
/// [`Network::step`] when more than one thread is configured.
pub(crate) fn step_parallel<P: Protocol>(net: &mut Network<P>) -> u64 {
    match net.sched {
        SchedMode::Sparse => step_parallel_sparse(net),
        SchedMode::Dense => step_parallel_dense(net),
    }
}

/// Dense-mode parallel round: partition `0..n` into contiguous chunks.
fn step_parallel_dense<P: Protocol>(net: &mut Network<P>) -> u64 {
    let n = net.topo.len();
    let threads = worker_cap(net.threads, n, net.force_parallel);
    if threads <= 1 {
        return net.step_dense_seq();
    }
    let round = net.round;
    let chunk = n.div_ceil(threads);
    while net.workers.len() < threads {
        net.workers.push(WorkerScratch::default());
    }
    let (out_plane, in_plane) = split_planes(&mut net.planes, round);
    out_plane.advance();
    let out_gen = out_plane.gen;
    let topo = &net.topo;
    let inbox_count = &net.inbox_count[..];
    let inbox_count_round = &net.inbox_count_round[..];

    std::thread::scope(|scope| {
        let mut nodes_rest = &mut net.nodes[..];
        let mut rngs_rest = &mut net.rngs[..];
        let mut halted_rest = &mut net.halted[..];
        let mut dozing_rest = &mut net.dozing[..];
        let mut stamp_rest = &mut out_plane.stamp[..];
        let mut msg_rest = &mut out_plane.msg[..];
        let mut scratch_rest = &mut net.workers[..threads];
        let in_plane = &*in_plane;
        let mut base = 0usize;
        let mut port_base = 0usize;
        while !nodes_rest.is_empty() {
            let take = chunk.min(nodes_rest.len());
            let (nodes_c, nr) = nodes_rest.split_at_mut(take);
            let (rngs_c, rr) = rngs_rest.split_at_mut(take);
            let (halted_c, hr) = halted_rest.split_at_mut(take);
            let (dozing_c, dr) = dozing_rest.split_at_mut(take);
            // Contiguous nodes own a contiguous slab range.
            let port_end = if base + take < n {
                topo.port_base((base + take) as NodeId)
            } else {
                topo.total_ports()
            };
            let (stamp_c, sr) = stamp_rest.split_at_mut(port_end - port_base);
            let (msg_c, mr) = msg_rest.split_at_mut(port_end - port_base);
            let (scratch_c, tr) = scratch_rest.split_at_mut(1);
            nodes_rest = nr;
            rngs_rest = rr;
            halted_rest = hr;
            dozing_rest = dr;
            stamp_rest = sr;
            msg_rest = mr;
            scratch_rest = tr;
            let first = base;
            let chunk_port_base = port_base;
            base += take;
            port_base = port_end;
            scope.spawn(move || {
                let scratch = &mut scratch_c[0];
                scratch.reset();
                for i in 0..nodes_c.len() {
                    if halted_c[i] {
                        continue;
                    }
                    let v = (first + i) as NodeId;
                    let count = if inbox_count_round[v as usize] == round {
                        inbox_count[v as usize]
                    } else {
                        0
                    };
                    if dozing_c[i] && count == 0 {
                        continue; // asleep and no mail: contract says skip
                    }
                    scratch.stepped += 1;
                    dozing_c[i] = false;
                    let inbox = Inbox::new(topo, v, in_plane, count);
                    let nb = topo.port_base(v) - chunk_port_base;
                    let deg = topo.degree(v);
                    let mut sent_any = false;
                    let mut ctx = Ctx::new(
                        v,
                        round,
                        topo,
                        &mut rngs_c[i],
                        &mut stamp_c[nb..nb + deg],
                        &mut msg_c[nb..nb + deg],
                        out_gen,
                        &mut sent_any,
                        &mut halted_c[i],
                        &mut dozing_c[i],
                    );
                    nodes_c[i].on_round(&mut ctx, inbox);
                    if halted_c[i] {
                        scratch.halts += 1;
                    }
                    if sent_any {
                        scratch.touched.push(v);
                    }
                }
            });
        }
    });

    let stepped = merge_worker_scratch(net, threads, round, false);
    net.finish_round(stepped, n as u64 - stepped)
}

/// Sparse-mode parallel round: partition the sorted **active list**
/// into contiguous segments of roughly equal active-node count.
fn step_parallel_sparse<P: Protocol>(net: &mut Network<P>) -> u64 {
    let round = net.round;
    if !net.wake_cur.is_sorted() {
        net.wake_cur.sort_unstable();
    }
    let active = net.wake_cur.len();
    let threads = worker_cap(net.threads, active, net.force_parallel);
    if threads <= 1 {
        return net.step_sparse_seq();
    }
    let n = net.topo.len();
    let chunk = active.div_ceil(threads);
    while net.workers.len() < threads {
        net.workers.push(WorkerScratch::default());
    }
    let (out_plane, in_plane) = split_planes(&mut net.planes, round);
    out_plane.advance();
    let out_gen = out_plane.gen;
    let topo = &net.topo;
    let inbox_count = &net.inbox_count[..];
    let inbox_count_round = &net.inbox_count_round[..];
    let wake_stamp = &net.wake_stamp[..];
    let wake_cur = &net.wake_cur[..];

    std::thread::scope(|scope| {
        let mut nodes_rest = &mut net.nodes[..];
        let mut rngs_rest = &mut net.rngs[..];
        let mut halted_rest = &mut net.halted[..];
        let mut dozing_rest = &mut net.dozing[..];
        let mut stamp_rest = &mut out_plane.stamp[..];
        let mut msg_rest = &mut out_plane.msg[..];
        let mut scratch_rest = &mut net.workers[..threads];
        let in_plane = &*in_plane;
        // Nodes/ports consumed so far (everything before the current
        // segment's first active node is skipped, not assigned).
        let mut consumed = 0usize;
        let mut port_consumed = 0usize;
        let mut lo = 0usize;
        while lo < active {
            let hi = (lo + chunk).min(active);
            // The wake list is sorted and duplicate-free, so segment
            // id ranges are disjoint and ascending.
            let first = wake_cur[lo] as usize;
            let last = wake_cur[hi - 1] as usize;
            let skip = first - consumed;
            nodes_rest = nodes_rest.split_at_mut(skip).1;
            rngs_rest = rngs_rest.split_at_mut(skip).1;
            halted_rest = halted_rest.split_at_mut(skip).1;
            dozing_rest = dozing_rest.split_at_mut(skip).1;
            let seg_port_base = topo.port_base(first as NodeId);
            let port_skip = seg_port_base - port_consumed;
            stamp_rest = stamp_rest.split_at_mut(port_skip).1;
            msg_rest = msg_rest.split_at_mut(port_skip).1;
            let take = last - first + 1;
            let port_end = if last + 1 < n {
                topo.port_base((last + 1) as NodeId)
            } else {
                topo.total_ports()
            };
            let (nodes_c, nr) = nodes_rest.split_at_mut(take);
            let (rngs_c, rr) = rngs_rest.split_at_mut(take);
            let (halted_c, hr) = halted_rest.split_at_mut(take);
            let (dozing_c, dr) = dozing_rest.split_at_mut(take);
            let (stamp_c, sr) = stamp_rest.split_at_mut(port_end - seg_port_base);
            let (msg_c, mr) = msg_rest.split_at_mut(port_end - seg_port_base);
            let (scratch_c, tr) = scratch_rest.split_at_mut(1);
            nodes_rest = nr;
            rngs_rest = rr;
            halted_rest = hr;
            dozing_rest = dr;
            stamp_rest = sr;
            msg_rest = mr;
            scratch_rest = tr;
            consumed = last + 1;
            port_consumed = port_end;
            let wake_slice = &wake_cur[lo..hi];
            lo = hi;
            scope.spawn(move || {
                let scratch = &mut scratch_c[0];
                scratch.reset();
                for &vid in wake_slice {
                    let v = vid as usize;
                    let i = v - first;
                    if halted_c[i] || wake_stamp[v] != round {
                        continue; // stale entry (e.g. woken then halted)
                    }
                    scratch.stepped += 1;
                    dozing_c[i] = false;
                    let count = if inbox_count_round[v] == round {
                        inbox_count[v]
                    } else {
                        0
                    };
                    let inbox = Inbox::new(topo, vid, in_plane, count);
                    let nb = topo.port_base(vid) - seg_port_base;
                    let deg = topo.degree(vid);
                    let mut sent_any = false;
                    let mut ctx = Ctx::new(
                        vid,
                        round,
                        topo,
                        &mut rngs_c[i],
                        &mut stamp_c[nb..nb + deg],
                        &mut msg_c[nb..nb + deg],
                        out_gen,
                        &mut sent_any,
                        &mut halted_c[i],
                        &mut dozing_c[i],
                    );
                    nodes_c[i].on_round(&mut ctx, inbox);
                    if halted_c[i] {
                        scratch.halts += 1;
                    } else if !dozing_c[i] {
                        scratch.wake.push(vid);
                    }
                    if sent_any {
                        scratch.touched.push(vid);
                    }
                }
            });
        }
    });

    let stepped = merge_worker_scratch(net, threads, round, true);
    net.finish_round(stepped, active as u64 - stepped)
}

/// Merge per-chunk sender lists (and, under the sparse scheduler, the
/// auto-reschedule lists, stamping each node) in node order, and settle
/// the halt counter. Chunks are id-ordered and internally ascending, so
/// concatenation preserves the global node order delivery depends on.
fn merge_worker_scratch<P: Protocol>(
    net: &mut Network<P>,
    threads: usize,
    round: u64,
    sparse: bool,
) -> u64 {
    net.touched.clear();
    if sparse {
        net.wake_next.clear();
    }
    let mut stepped = 0u64;
    // `workers` is borrowed disjointly from `touched`/`wake_next`, but
    // the borrow checker cannot see that through `net`; split at the
    // field level instead.
    let workers = std::mem::take(&mut net.workers);
    for w in &workers[..threads] {
        net.touched.extend_from_slice(&w.touched);
        stepped += w.stepped;
        net.live -= w.halts as usize;
        if sparse {
            for &v in &w.wake {
                net.wake_stamp[v as usize] = round + 1;
                net.wake_next.push(v);
            }
        }
    }
    net.workers = workers;
    stepped
}

#[cfg(test)]
mod tests {
    use crate::network::SchedMode;
    use crate::{Ctx, Inbox, Network, Protocol, Topology};

    /// A protocol with both randomness and message traffic, to stress
    /// determinism: nodes gossip random tokens and keep a running hash.
    #[derive(Clone)]
    struct Gossip {
        acc: u64,
    }
    impl Protocol for Gossip {
        type Msg = u64;
        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: Inbox<'_, u64>) {
            for e in inbox.iter() {
                self.acc = self.acc.rotate_left(7) ^ *e.msg;
            }
            if ctx.round() < 20 {
                let token = ctx.rng().next();
                ctx.send_all(token ^ self.acc);
            } else {
                ctx.halt();
            }
        }
    }

    fn random_topo(n: usize, seed: u64) -> Topology {
        let mut rng = crate::SplitMix64::new(seed);
        let mut edges = Vec::new();
        // Path for connectivity plus random chords.
        for i in 0..n as u32 - 1 {
            edges.push((i, i + 1));
        }
        for _ in 0..n {
            let u = rng.below(n as u64) as u32;
            let v = rng.below(n as u64) as u32;
            if u != v && u + 1 != v && v + 1 != u && !edges.contains(&(u.min(v), u.max(v))) {
                edges.push((u.min(v), u.max(v)));
            }
        }
        Topology::from_edges(n, &edges)
    }

    #[test]
    fn parallel_equals_sequential() {
        let topo = random_topo(64, 3);
        let mk = || (0..64).map(|_| Gossip { acc: 0 }).collect::<Vec<_>>();

        let mut seq = Network::new(topo.clone(), mk(), 17);
        seq.run_until_halt(100);

        for sched in [SchedMode::Sparse, SchedMode::Dense] {
            for threads in [2, 3, 8] {
                let mut par = Network::new(topo.clone(), mk(), 17)
                    .with_threads(threads)
                    .with_sched(sched);
                par.run_until_halt(100);
                for (a, b) in seq.nodes().iter().zip(par.nodes()) {
                    assert_eq!(a.acc, b.acc, "divergence with {threads} threads {sched:?}");
                }
                assert_eq!(seq.stats().messages, par.stats().messages);
                assert_eq!(seq.stats().bits, par.stats().bits);
                assert_eq!(seq.stats().peak_inbox, par.stats().peak_inbox);
                assert_eq!(seq.stats().node_steps, par.stats().node_steps);
            }
        }
    }

    #[test]
    fn parallel_equals_sequential_under_loss() {
        let topo = random_topo(48, 5);
        let mk = || (0..48).map(|_| Gossip { acc: 0 }).collect::<Vec<_>>();

        let mut seq = Network::new(topo.clone(), mk(), 23).with_message_loss(0.15);
        seq.run_until_halt(100);
        let mut par = Network::new(topo.clone(), mk(), 23)
            .with_message_loss(0.15)
            .with_threads(4);
        par.run_until_halt(100);
        assert_eq!(seq.dropped(), par.dropped(), "loss RNG streams must align");
        for (a, b) in seq.nodes().iter().zip(par.nodes()) {
            assert_eq!(a.acc, b.acc);
        }
        assert_eq!(seq.stats(), par.stats());
    }

    #[test]
    fn more_threads_than_nodes() {
        let topo = Topology::from_edges(3, &[(0, 1), (1, 2)]);
        let nodes = vec![Gossip { acc: 0 }, Gossip { acc: 0 }, Gossip { acc: 0 }];
        let mut net = Network::new(topo, nodes, 9).with_threads(64);
        net.run_until_halt(100);
        assert!(net.all_halted());
    }

    /// Force true multi-worker execution — the fan-out throttle would
    /// otherwise route every test-sized (and every single-core-machine)
    /// round through the sequential path, leaving the partitioners
    /// untested. `force_parallel` spawns one worker per requested
    /// thread regardless of machine or workload.
    #[test]
    fn forced_workers_stay_identical_in_both_modes() {
        let n = 64;
        let topo = random_topo(n, 11);
        let mk = || (0..n).map(|_| Gossip { acc: 0 }).collect::<Vec<_>>();
        let mut seq = Network::new(topo.clone(), mk(), 29);
        seq.run_until_halt(100);
        for sched in [SchedMode::Sparse, SchedMode::Dense] {
            for threads in [2, 3, 7] {
                let mut par = Network::new(topo.clone(), mk(), 29)
                    .with_threads(threads)
                    .with_sched(sched);
                par.force_parallel = true;
                par.run_until_halt(100);
                assert!(
                    seq.nodes()
                        .iter()
                        .zip(par.nodes())
                        .all(|(a, b)| a.acc == b.acc),
                    "forced {threads}-worker {sched:?} diverged"
                );
                assert_eq!(seq.stats().messages, par.stats().messages);
                assert_eq!(seq.stats().node_steps, par.stats().node_steps);
                assert_eq!(seq.stats().peak_inbox, par.stats().peak_inbox);
            }
        }
    }

    /// The sparse partitioner slices the *active list*, whose node ids
    /// are non-contiguous once nodes sleep or halt. Mix sleepers (every
    /// third node parks between pings) and early-halting nodes into the
    /// gossip so forced multi-worker rounds must split the slab around
    /// real gaps, and compare against sequential execution.
    #[derive(Clone)]
    struct Patchy {
        acc: u64,
    }
    impl Protocol for Patchy {
        type Msg = u64;
        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: Inbox<'_, u64>) {
            for e in inbox.iter() {
                self.acc = self.acc.rotate_left(5) ^ *e.msg;
            }
            let id = ctx.id();
            if id % 5 == 4 && ctx.round() >= 3 {
                ctx.halt(); // punch permanent holes in the id space
                return;
            }
            if id.is_multiple_of(3) && !ctx.round().is_multiple_of(4) {
                ctx.sleep(); // transient holes: woken by gossip mail
                return;
            }
            if ctx.round() < 24 {
                let token = ctx.rng().next();
                ctx.send_all(token ^ self.acc);
            } else {
                ctx.halt();
            }
        }
    }

    #[test]
    fn forced_workers_partition_a_gappy_active_list() {
        let n = 97; // odd size: uneven chunks + a trailing partial segment
        let topo = random_topo(n, 13);
        let mk = || (0..n).map(|_| Patchy { acc: 0 }).collect::<Vec<_>>();
        let mut seq = Network::new(topo.clone(), mk(), 31);
        seq.run_rounds(30);
        for threads in [2, 5, 8] {
            let mut par = Network::new(topo.clone(), mk(), 31).with_threads(threads);
            par.force_parallel = true;
            par.run_rounds(30);
            assert!(
                seq.nodes()
                    .iter()
                    .zip(par.nodes())
                    .all(|(a, b)| a.acc == b.acc),
                "{threads} forced workers diverged on a gappy active list"
            );
            assert_eq!(
                seq.stats(),
                par.stats(),
                "{threads} workers: stats diverged"
            );
        }
    }

    #[test]
    fn dense_mode_wake_does_not_grow_the_wake_list() {
        let topo = Topology::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let nodes = (0..4).map(|_| Gossip { acc: 0 }).collect::<Vec<_>>();
        let mut net = Network::new(topo, nodes, 5).with_sched(SchedMode::Dense);
        let baseline = net.wake_cur.len();
        for _ in 0..50 {
            net.wake(2);
            net.step();
        }
        assert!(
            net.wake_cur.len() <= baseline,
            "dense-mode wake() must not accumulate wake-list entries"
        );
    }
}
