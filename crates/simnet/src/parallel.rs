//! Parallel node stepping.
//!
//! Within one synchronous round, nodes are independent: each reads only
//! its own inbox and state. This is embarrassingly parallel, so large
//! networks are stepped by partitioning nodes across scoped worker
//! threads. Determinism is preserved because
//!
//! 1. every node draws from its own RNG stream,
//! 2. workers return outgoing messages in node order and chunks are
//!    merged in node order, and
//! 3. [`crate::Network::deliver`] sorts inboxes by arrival port.
//!
//! Consequently `step_parallel` produces bit-identical results to the
//! sequential path — a property asserted by the tests below.

use crate::message::Envelope;
use crate::network::{Ctx, Network, Protocol};
use crate::topology::{NodeId, Port};

/// Execute one round using `net.threads` workers. Called by
/// [`Network::step`] when more than one thread is configured.
pub(crate) fn step_parallel<P: Protocol>(net: &mut Network<P>) -> u64 {
    let n = net.topo.len();
    if n == 0 {
        net.round += 1;
        net.stats.record_round(0);
        return 0;
    }
    let threads = net.threads.min(n);
    let chunk = n.div_ceil(threads);
    let inboxes: Vec<Vec<Envelope<P::Msg>>> =
        net.inboxes.iter_mut().map(std::mem::take).collect();
    let topo = &net.topo;
    let round = net.round;

    let mut sent_chunks: Vec<Vec<(NodeId, Port, P::Msg)>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        let mut nodes_rest = &mut net.nodes[..];
        let mut rngs_rest = &mut net.rngs[..];
        let mut halted_rest = &mut net.halted[..];
        let mut inbox_rest = &inboxes[..];
        let mut base = 0usize;
        while !nodes_rest.is_empty() {
            let take = chunk.min(nodes_rest.len());
            let (nodes_c, nr) = nodes_rest.split_at_mut(take);
            let (rngs_c, rr) = rngs_rest.split_at_mut(take);
            let (halted_c, hr) = halted_rest.split_at_mut(take);
            let (inbox_c, ir) = inbox_rest.split_at(take);
            nodes_rest = nr;
            rngs_rest = rr;
            halted_rest = hr;
            inbox_rest = ir;
            let first = base;
            base += take;
            handles.push(scope.spawn(move || {
                let mut sent: Vec<(NodeId, Port, P::Msg)> = Vec::new();
                let mut out: Vec<(Port, P::Msg)> = Vec::new();
                for i in 0..nodes_c.len() {
                    if halted_c[i] {
                        continue;
                    }
                    let v = (first + i) as NodeId;
                    let mut ctx = Ctx::new(
                        v,
                        round,
                        topo,
                        &mut rngs_c[i],
                        &mut out,
                        &mut halted_c[i],
                    );
                    nodes_c[i].on_round(&mut ctx, &inbox_c[i]);
                    for (port, msg) in out.drain(..) {
                        sent.push((v, port, msg));
                    }
                }
                sent
            }));
        }
        for h in handles {
            sent_chunks.push(h.join().expect("worker panicked"));
        }
    });

    let mut sent = Vec::with_capacity(sent_chunks.iter().map(Vec::len).sum());
    for c in sent_chunks {
        sent.extend(c);
    }
    let count = net.deliver(sent);
    net.round += 1;
    net.stats.record_round(count);
    count
}

#[cfg(test)]
mod tests {
    use crate::{Ctx, Envelope, Network, Protocol, Topology};

    /// A protocol with both randomness and message traffic, to stress
    /// determinism: nodes gossip random tokens and keep a running hash.
    #[derive(Clone)]
    struct Gossip {
        acc: u64,
    }
    impl Protocol for Gossip {
        type Msg = u64;
        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[Envelope<u64>]) {
            for e in inbox {
                self.acc = self.acc.rotate_left(7) ^ e.msg;
            }
            if ctx.round() < 20 {
                let token = ctx.rng().next();
                ctx.send_all(token ^ self.acc);
            } else {
                ctx.halt();
            }
        }
    }

    fn random_topo(n: usize, seed: u64) -> Topology {
        let mut rng = crate::SplitMix64::new(seed);
        let mut edges = Vec::new();
        // Path for connectivity plus random chords.
        for i in 0..n as u32 - 1 {
            edges.push((i, i + 1));
        }
        for _ in 0..n {
            let u = rng.below(n as u64) as u32;
            let v = rng.below(n as u64) as u32;
            if u != v && u + 1 != v && v + 1 != u && !edges.contains(&(u.min(v), u.max(v))) {
                edges.push((u.min(v), u.max(v)));
            }
        }
        Topology::from_edges(n, &edges)
    }

    #[test]
    fn parallel_equals_sequential() {
        let topo = random_topo(64, 3);
        let mk = || (0..64).map(|_| Gossip { acc: 0 }).collect::<Vec<_>>();

        let mut seq = Network::new(topo.clone(), mk(), 17);
        seq.run_until_halt(100);

        for threads in [2, 3, 8] {
            let mut par = Network::new(topo.clone(), mk(), 17).with_threads(threads);
            par.run_until_halt(100);
            for (a, b) in seq.nodes().iter().zip(par.nodes()) {
                assert_eq!(a.acc, b.acc, "divergence with {threads} threads");
            }
            assert_eq!(seq.stats().messages, par.stats().messages);
            assert_eq!(seq.stats().bits, par.stats().bits);
        }
    }

    #[test]
    fn more_threads_than_nodes() {
        let topo = Topology::from_edges(3, &[(0, 1), (1, 2)]);
        let nodes = vec![Gossip { acc: 0 }, Gossip { acc: 0 }, Gossip { acc: 0 }];
        let mut net = Network::new(topo, nodes, 9).with_threads(64);
        net.run_until_halt(100);
        assert!(net.all_halted());
    }
}
