//! Parallel node stepping: cost-modelled fan-out over degree-weighted
//! chunks.
//!
//! Within one synchronous round, nodes are independent: each reads only
//! its own inbox and state. This is embarrassingly parallel, so large
//! networks are stepped by partitioning nodes across scoped worker
//! threads. The message plane partitions with them: each worker's nodes
//! span a contiguous node-id range, so it owns a contiguous slice of
//! the outgoing slab (its nodes' port ranges) via `split_at_mut` — no
//! locks, no unsafe, no per-round allocation. The previous round's slab
//! is read shared by all workers.
//!
//! Three decisions shape a parallel round; none of them may influence
//! results (see *Determinism* below):
//!
//! 1. **Representation** — the hybrid judge in
//!    [`crate::Network::step`] picks the sparse wake list or the dense
//!    flag sweep *before* execution strategy is considered (threshold
//!    `active ≥ n / HYBRID_DENSE_DIV`, with hysteresis; see
//!    [`crate::SchedMode::Hybrid`]).
//! 2. **Fan-out** — the crate-private `CostModel` decides how many
//!    workers (if
//!    any) the round's workload pays for, from *measured* ns/work-unit
//!    EWMAs of the sequential and parallel paths plus a spawn-cost
//!    floor. A 1-core box, a tiny network, or a quiet tail never pays
//!    thread-spawn latency — the pathology an early
//!    `BENCH_step_plane.json` capture measured as a ~100x slowdown at
//!    small `n`, previously patched with a hardcoded
//!    `PAR_MIN_PER_THREAD` constant and now derived from the model.
//! 3. **Chunking** — the active list (sparse) or id space (dense) is
//!    cut into chunks of roughly equal *incident-edge* weight
//!    (`degree + NODE_COST` per node, prefix-summed), not equal node
//!    count. Equal-count contiguous ranges lose badly on heavy-tailed
//!    (Chung–Lu / Barabási–Albert) graphs, where one chunk owns the
//!    hub star and every other worker idles at the join barrier.
//!
//! Next-frontier collection is contention-free: each worker writes the
//! nodes it re-schedules into its own disjoint window of the shared,
//! round-sized `wake_next` buffer (a local queue bounded by the chunk's
//! active count — the bound is exact, so nothing ever spills), and
//! stamps its own id range of `wake_stamp` (chunks own disjoint id
//! ranges). After the join, the windows are compacted in chunk order,
//! which *is* node order, so delivery sees exactly the sequence the
//! sequential executor produces.
//!
//! # Determinism
//!
//! `step_parallel_*` produce bit-identical results to the sequential
//! path in every scheduling mode — a property asserted by the tests
//! below and by the workspace-level `prop_plane`/`conformance` suites —
//! because
//!
//! 1. every node draws from its own RNG stream,
//! 2. inbox order is positional (ports), independent of scheduling,
//! 3. delivery accounting (and the fault-injection RNG stream) runs
//!    sequentially after the join, walking senders in node order —
//!    workers record senders per chunk and chunks are merged in node
//!    order (chunks are id-sorted, so the merge is a concatenation),
//!    and
//! 4. the cost model and the hybrid judge only choose *how* the round
//!    executes, never *what* it computes; the judge is furthermore a
//!    pure function of node counts, so even the `sched_overhead` trace
//!    (the one gauge allowed to differ between representations) is
//!    reproducible run-to-run.

use crate::mailbox::Inbox;
use crate::network::{split_planes, Ctx, Network, Protocol};
use crate::stats::timing;
use crate::topology::{NodeId, Topology};
use std::time::Instant;

/// Fixed per-node step cost, in units of "one incident port", used by
/// the degree-weighted chunker: a node's weight is
/// `degree + NODE_COST`, so isolated or low-degree nodes still count
/// toward chunk balance (inbox setup, RNG, protocol dispatch are not
/// free) while hubs dominate, as they should.
const NODE_COST: usize = 8;

/// Prior estimate of thread spawn+join cost per worker, in ns. Scoped
/// threads are created and joined every parallel round; a worker is
/// only worth spawning when the work it carves off costs a multiple of
/// this (see [`CostModel::min_work_per_worker`]).
const SPAWN_COST_NS: f64 = 25_000.0;

/// Safety margin on the spawn-cost floor: a chunk must be predicted to
/// take at least `SPAWN_MARGIN · SPAWN_COST_NS` of sequential work
/// before a thread is dedicated to it.
const SPAWN_MARGIN: f64 = 2.0;

/// Prior ns per unit of work (one scheduled node in sparse rounds, one
/// id slot in dense rounds) before any round has been measured.
/// Deliberately on the cheap side: underestimating per-unit cost makes
/// the first fan-out *later* than optimal, which is the safe direction.
const PRIOR_NS_PER_UNIT: f64 = 100.0;

/// EWMA smoothing factor for the measured per-unit costs.
const EWMA_ALPHA: f64 = 0.25;

/// Every `PROBE_PERIOD`-th eligible decision re-runs the currently
/// losing path once, so the model tracks workload drift (a protocol
/// whose per-node work grows or shrinks over phases) instead of locking
/// in a stale verdict.
const PROBE_PERIOD: u64 = 256;

/// Machine parallelism, probed once (`available_parallelism` performs
/// affinity/cgroup syscalls; the core count cannot change meaningfully
/// mid-run).
pub(crate) fn hw_parallelism() -> usize {
    static HW: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    // dlint::allow(ambient-env, "the one sanctioned probe: CostModel's thread cap; results are bit-identical for every thread count by the parallel-equivalence suite")
    *HW.get_or_init(|| std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get))
}

/// Exponentially weighted moving average of ns per work unit.
#[derive(Debug, Clone, Copy, Default)]
struct Ewma {
    value: f64,
    samples: u64,
}

impl Ewma {
    fn observe(&mut self, x: f64) {
        self.samples += 1;
        self.value = if self.samples == 1 {
            x
        } else {
            EWMA_ALPHA * x + (1.0 - EWMA_ALPHA) * self.value
        };
    }

    fn known(&self) -> bool {
        self.samples > 0
    }

    fn or_prior(&self) -> f64 {
        if self.known() {
            self.value
        } else {
            PRIOR_NS_PER_UNIT
        }
    }
}

/// Per-round sequential-vs-parallel cost model.
///
/// Tracks measured ns per work unit for each (representation ×
/// execution path) pair — work units are scheduled nodes in sparse
/// rounds and id slots in dense rounds — and answers one question per
/// round: *how many workers does this workload pay for?* The answer is
/// purely a performance decision; both paths are bit-identical, so the
/// model is free to be heuristic and even to learn from wall-clock
/// noise without ever compromising reproducibility of results.
#[derive(Debug, Clone, Default)]
pub(crate) struct CostModel {
    /// Measured sequential cost, indexed by `dense as usize`.
    seq: [Ewma; 2],
    /// Measured parallel cost (spawn/join amortized in), same indexing.
    par: [Ewma; 2],
    /// Eligible decisions taken, for the periodic re-probe.
    decisions: u64,
}

impl CostModel {
    pub(crate) fn new() -> Self {
        CostModel::default()
    }

    /// The workload floor per worker, derived from the measured
    /// sequential per-unit cost: a worker must carve off at least
    /// `SPAWN_MARGIN · SPAWN_COST_NS` worth of predicted work. This is
    /// what replaced the old hardcoded `PAR_MIN_PER_THREAD = 1024`:
    /// cheap rounds (idle-heavy sweeps) raise the floor, expensive
    /// protocol rounds lower it.
    pub(crate) fn min_work_per_worker(&self, dense: bool) -> usize {
        let seq_unit = self.seq[dense as usize].or_prior();
        (((SPAWN_MARGIN * SPAWN_COST_NS) / seq_unit).ceil() as usize).max(1)
    }

    /// Workers worth spawning for `workload` units this round on a
    /// machine with `hw` cores, requested ceiling `requested`.
    /// Returns 1 for "run sequentially".
    pub(crate) fn plan(
        &mut self,
        requested: usize,
        hw: usize,
        workload: usize,
        dense: bool,
    ) -> usize {
        if requested <= 1 || hw <= 1 || workload == 0 {
            return 1;
        }
        let cap = requested
            .min(hw)
            .min(workload / self.min_work_per_worker(dense));
        if cap <= 1 {
            return 1;
        }
        self.decisions += 1;
        let i = dense as usize;
        if !self.par[i].known() {
            return cap; // explore: the model needs a parallel sample
        }
        if !self.seq[i].known() {
            return 1; // symmetric: measure the sequential path once
        }
        let seq_pred = self.seq[i].value * workload as f64;
        let par_pred = self.par[i].value * workload as f64;
        let par_better = par_pred < seq_pred;
        // Re-probe the losing path periodically so the verdict adapts;
        // `par_better XOR probe` flips the choice on probe ticks.
        let probe = self.decisions.is_multiple_of(PROBE_PERIOD);
        if par_better != probe {
            cap
        } else {
            1
        }
    }

    /// Feed one measured round back into the model.
    pub(crate) fn observe(&mut self, dense: bool, workers: usize, workload: usize, ns: u64) {
        if workload == 0 {
            return;
        }
        let per_unit = ns as f64 / workload as f64;
        let i = dense as usize;
        if workers > 1 {
            self.par[i].observe(per_unit);
        } else {
            self.seq[i].observe(per_unit);
        }
    }
}

/// Weight of node `v` for chunk balancing.
#[inline]
fn node_weight(topo: &Topology, v: NodeId) -> u64 {
    (topo.degree(v) + NODE_COST) as u64
}

/// Dense-mode parallel round: partition `0..n` into contiguous chunks
/// of roughly equal `ports + NODE_COST·nodes` weight (cut points found
/// by binary search over the CSR offsets — O(threads · log n), no
/// prefix-sum array).
pub(crate) fn step_parallel_dense<P: Protocol>(net: &mut Network<P>, threads: usize) -> u64 {
    let n = net.topo.len();
    debug_assert!(threads > 1);
    let round = net.round;
    while net.workers.len() < threads {
        net.workers.push(crate::network::WorkerScratch::default());
    }
    let (out_plane, in_plane) = split_planes(&mut net.planes, round);
    out_plane.advance();
    let out_gen = out_plane.gen;
    let topo = &net.topo;
    let inbox_count = &net.inbox_count[..];
    let inbox_count_round = &net.inbox_count_round[..];

    // Weighted prefix position of node v: ports before v plus the
    // fixed per-node cost. Monotone in v, so cuts binary-search it.
    let wpos = |v: usize| -> u64 {
        let ports = if v < n {
            topo.port_base(v as NodeId)
        } else {
            topo.total_ports()
        };
        ports as u64 + (NODE_COST * v) as u64
    };
    let total_w = wpos(n);
    let cut = |k: usize| -> usize {
        if k >= threads {
            return n;
        }
        let target = total_w * k as u64 / threads as u64;
        let (mut lo, mut hi) = (0usize, n);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if wpos(mid) < target {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    };

    // When a flight recorder is installed, workers stamp their span
    // bounds into scratch against this shared clock base (they cannot
    // reach the main thread's recorder); the merge emits the events.
    let trace_epoch = dobs::plane::epoch();
    let mut spawned = 0usize;
    std::thread::scope(|scope| {
        let mut nodes_rest = &mut net.nodes[..];
        let mut rngs_rest = &mut net.rngs[..];
        let mut halted_rest = &mut net.halted[..];
        let mut dozing_rest = &mut net.dozing[..];
        let mut stamp_rest = &mut out_plane.stamp[..];
        let mut msg_rest = &mut out_plane.msg[..];
        let mut scratch_rest = &mut net.workers[..threads];
        let in_plane = &*in_plane;
        let mut base = 0usize;
        let mut port_base = 0usize;
        for k in 1..=threads {
            let end = cut(k);
            if end <= base {
                continue; // a hub swallowed this cut's weight share
            }
            let take = end - base;
            let (nodes_c, nr) = nodes_rest.split_at_mut(take);
            let (rngs_c, rr) = rngs_rest.split_at_mut(take);
            let (halted_c, hr) = halted_rest.split_at_mut(take);
            let (dozing_c, dr) = dozing_rest.split_at_mut(take);
            // Contiguous nodes own a contiguous slab range.
            let port_end = if end < n {
                topo.port_base(end as NodeId)
            } else {
                topo.total_ports()
            };
            let (stamp_c, sr) = stamp_rest.split_at_mut(port_end - port_base);
            let (msg_c, mr) = msg_rest.split_at_mut(port_end - port_base);
            let (scratch_c, tr) = scratch_rest.split_at_mut(1);
            nodes_rest = nr;
            rngs_rest = rr;
            halted_rest = hr;
            dozing_rest = dr;
            stamp_rest = sr;
            msg_rest = mr;
            scratch_rest = tr;
            let first = base;
            let chunk_port_base = port_base;
            base = end;
            port_base = port_end;
            spawned += 1;
            scope.spawn(move || {
                let scratch = &mut scratch_c[0];
                scratch.prepare(nodes_c.len());
                if let Some(epoch) = trace_epoch {
                    scratch.span_t0_ns = epoch.elapsed().as_nanos() as u64;
                }
                for i in 0..nodes_c.len() {
                    if halted_c[i] {
                        continue;
                    }
                    let v = (first + i) as NodeId;
                    let count = if inbox_count_round[v as usize] == round {
                        inbox_count[v as usize]
                    } else {
                        0
                    };
                    if dozing_c[i] && count == 0 {
                        continue; // asleep and no mail: contract says skip
                    }
                    scratch.stepped += 1;
                    dozing_c[i] = false;
                    let inbox = Inbox::new(topo, v, in_plane, count);
                    let nb = topo.port_base(v) - chunk_port_base;
                    let deg = topo.degree(v);
                    let mut sent_any = false;
                    let mut ctx = Ctx::new(
                        v,
                        round,
                        topo,
                        &mut rngs_c[i],
                        &mut stamp_c[nb..nb + deg],
                        &mut msg_c[nb..nb + deg],
                        out_gen,
                        &mut sent_any,
                        &mut halted_c[i],
                        &mut dozing_c[i],
                    );
                    nodes_c[i].on_round(&mut ctx, inbox);
                    if halted_c[i] {
                        scratch.halts += 1;
                    }
                    if sent_any {
                        scratch.touched.push(v);
                    }
                }
                if let Some(epoch) = trace_epoch {
                    scratch.span_t1_ns = epoch.elapsed().as_nanos() as u64;
                }
            });
        }
    });

    let stepped = merge_worker_scratch(net, spawned, false);
    net.finish_round(stepped, n as u64 - stepped)
}

/// Sparse-mode parallel round: partition the sorted **active list**
/// into contiguous segments of roughly equal degree weight
/// (`Σ degree + NODE_COST` per segment), so a Chung–Lu hub and its
/// star do not land on one worker while the rest idle.
pub(crate) fn step_parallel_sparse<P: Protocol>(net: &mut Network<P>, threads: usize) -> u64 {
    let round = net.round;
    debug_assert!(threads > 1);
    if !net.wake_cur.is_sorted() {
        net.wake_cur.sort_unstable();
    }
    let active = net.wake_cur.len();
    let n = net.topo.len();
    while net.workers.len() < threads {
        net.workers.push(crate::network::WorkerScratch::default());
    }
    let (out_plane, in_plane) = split_planes(&mut net.planes, round);
    out_plane.advance();
    let out_gen = out_plane.gen;
    // The shared next-frontier buffer: one slot per active node,
    // windowed per chunk. Capacity n was reserved at construction, so
    // this resize never allocates.
    net.wake_next.clear();
    net.wake_next.resize(active, 0);
    let topo = &net.topo;
    let inbox_count = &net.inbox_count[..];
    let inbox_count_round = &net.inbox_count_round[..];
    let wake_cur = &net.wake_cur[..];

    // Total degree weight of the active list (one O(active) pass);
    // chunk k ends once the running weight crosses k/threads of it.
    let total_w: u64 = wake_cur.iter().map(|&v| node_weight(topo, v)).sum();

    // Shared clock base for worker span stamps (see the dense path).
    let trace_epoch = dobs::plane::epoch();
    let mut spawned = 0usize;
    std::thread::scope(|scope| {
        let mut nodes_rest = &mut net.nodes[..];
        let mut rngs_rest = &mut net.rngs[..];
        let mut halted_rest = &mut net.halted[..];
        let mut dozing_rest = &mut net.dozing[..];
        let mut stamp_rest = &mut out_plane.stamp[..];
        let mut msg_rest = &mut out_plane.msg[..];
        let mut wake_stamp_rest = &mut net.wake_stamp[..];
        let mut wake_out_rest = &mut net.wake_next[..];
        let mut scratch_rest = &mut net.workers[..threads];
        let in_plane = &*in_plane;
        // Nodes/ports consumed so far (everything before the current
        // segment's first active node is skipped, not assigned).
        let mut consumed = 0usize;
        let mut port_consumed = 0usize;
        let mut lo = 0usize;
        let mut cum = 0u64;
        let mut k = 0usize;
        while lo < active {
            k += 1;
            let target = if k >= threads {
                u64::MAX // the last chunk absorbs the remainder
            } else {
                total_w * k as u64 / threads as u64
            };
            let mut hi = lo;
            while hi < active && (hi == lo || cum < target) {
                cum += node_weight(topo, wake_cur[hi]);
                hi += 1;
            }
            // The wake list is sorted and duplicate-free, so segment
            // id ranges are disjoint and ascending.
            let first = wake_cur[lo] as usize;
            let last = wake_cur[hi - 1] as usize;
            let skip = first - consumed;
            nodes_rest = nodes_rest.split_at_mut(skip).1;
            rngs_rest = rngs_rest.split_at_mut(skip).1;
            halted_rest = halted_rest.split_at_mut(skip).1;
            dozing_rest = dozing_rest.split_at_mut(skip).1;
            wake_stamp_rest = wake_stamp_rest.split_at_mut(skip).1;
            let seg_port_base = topo.port_base(first as NodeId);
            let port_skip = seg_port_base - port_consumed;
            stamp_rest = stamp_rest.split_at_mut(port_skip).1;
            msg_rest = msg_rest.split_at_mut(port_skip).1;
            let take = last - first + 1;
            let port_end = if last + 1 < n {
                topo.port_base((last + 1) as NodeId)
            } else {
                topo.total_ports()
            };
            let (nodes_c, nr) = nodes_rest.split_at_mut(take);
            let (rngs_c, rr) = rngs_rest.split_at_mut(take);
            let (halted_c, hr) = halted_rest.split_at_mut(take);
            let (dozing_c, dr) = dozing_rest.split_at_mut(take);
            let (wake_stamp_c, wsr) = wake_stamp_rest.split_at_mut(take);
            let (stamp_c, sr) = stamp_rest.split_at_mut(port_end - seg_port_base);
            let (msg_c, mr) = msg_rest.split_at_mut(port_end - seg_port_base);
            let (wake_out_c, wor) = wake_out_rest.split_at_mut(hi - lo);
            let (scratch_c, tr) = scratch_rest.split_at_mut(1);
            nodes_rest = nr;
            rngs_rest = rr;
            halted_rest = hr;
            dozing_rest = dr;
            wake_stamp_rest = wsr;
            stamp_rest = sr;
            msg_rest = mr;
            wake_out_rest = wor;
            scratch_rest = tr;
            consumed = last + 1;
            port_consumed = port_end;
            let wake_slice = &wake_cur[lo..hi];
            lo = hi;
            spawned += 1;
            scope.spawn(move || {
                let scratch = &mut scratch_c[0];
                scratch.prepare(wake_slice.len());
                if let Some(epoch) = trace_epoch {
                    scratch.span_t0_ns = epoch.elapsed().as_nanos() as u64;
                }
                scratch.wake_cap = wake_out_c.len();
                let mut wrote = 0usize;
                for &vid in wake_slice {
                    let v = vid as usize;
                    let i = v - first;
                    if halted_c[i] || wake_stamp_c[i] != round {
                        continue; // stale entry (e.g. woken then halted)
                    }
                    scratch.stepped += 1;
                    dozing_c[i] = false;
                    let count = if inbox_count_round[v] == round {
                        inbox_count[v]
                    } else {
                        0
                    };
                    let inbox = Inbox::new(topo, vid, in_plane, count);
                    let nb = topo.port_base(vid) - seg_port_base;
                    let deg = topo.degree(vid);
                    let mut sent_any = false;
                    let mut ctx = Ctx::new(
                        vid,
                        round,
                        topo,
                        &mut rngs_c[i],
                        &mut stamp_c[nb..nb + deg],
                        &mut msg_c[nb..nb + deg],
                        out_gen,
                        &mut sent_any,
                        &mut halted_c[i],
                        &mut dozing_c[i],
                    );
                    nodes_c[i].on_round(&mut ctx, inbox);
                    if halted_c[i] {
                        scratch.halts += 1;
                    } else if !dozing_c[i] {
                        // Staying awake is the default: stamp (this
                        // chunk owns the id range) and enqueue in the
                        // chunk-local window.
                        wake_stamp_c[i] = round + 1;
                        wake_out_c[wrote] = vid;
                        wrote += 1;
                    }
                    if sent_any {
                        scratch.touched.push(vid);
                    }
                }
                scratch.wake_len = wrote;
                if let Some(epoch) = trace_epoch {
                    scratch.span_t1_ns = epoch.elapsed().as_nanos() as u64;
                }
            });
        }
    });

    let stepped = merge_worker_scratch(net, spawned, true);
    net.finish_round(stepped, active as u64 - stepped)
}

/// Merge per-chunk sender buffers (concatenation — chunks are
/// id-ordered and internally ascending, so chunk order preserves the
/// global node order delivery depends on), compact the per-chunk wake
/// windows of `wake_next` in the same order, and settle the halt
/// counter. Stamps were already written by the owning workers.
fn merge_worker_scratch<P: Protocol>(net: &mut Network<P>, spawned: usize, sparse: bool) -> u64 {
    // dlint::allow(wall-clock, "timing gauge only: merge duration feeds the histogram, never steers execution")
    let t0 = net.timing.then(Instant::now);
    let traced = dobs::plane::enabled();
    let merge_t0 = if traced { dobs::plane::now_ns() } else { 0 };
    // 1-based round number the spans belong to (`finish_round` has not
    // incremented `net.round` yet).
    let span_round = net.round + 1;
    net.touched.clear();
    let mut stepped = 0u64;
    // `workers` is borrowed disjointly from `touched`/`wake_next`, but
    // the borrow checker cannot see that through `net`; split at the
    // field level instead.
    let workers = std::mem::take(&mut net.workers);
    let mut write = 0usize;
    let mut start = 0usize;
    for (k, w) in workers[..spawned].iter().enumerate() {
        net.touched.extend_from_slice(&w.touched);
        stepped += w.stepped;
        net.live -= w.halts as usize;
        if sparse {
            net.wake_next.copy_within(start..start + w.wake_len, write);
            write += w.wake_len;
            start += w.wake_cap;
        }
        if traced {
            dobs::plane::record(dobs::Event::WorkerSpan {
                round: span_round,
                worker: k as u32,
                t0_ns: w.span_t0_ns,
                t1_ns: w.span_t1_ns,
                nodes: w.stepped,
            });
        }
    }
    net.workers = workers;
    if sparse {
        net.wake_next.truncate(write);
    }
    if let Some(t0) = t0 {
        net.stats
            .timings
            .record(timing::MERGE_NS, t0.elapsed().as_nanos() as u64);
    }
    if traced {
        dobs::plane::record(dobs::Event::MergeSpan {
            round: span_round,
            t0_ns: merge_t0,
            t1_ns: dobs::plane::now_ns(),
        });
    }
    stepped
}

#[cfg(test)]
mod tests {
    use super::CostModel;
    use crate::network::SchedMode;
    use crate::{Ctx, ExecCfg, Inbox, Network, Protocol, Topology};

    /// A protocol with both randomness and message traffic, to stress
    /// determinism: nodes gossip random tokens and keep a running hash.
    #[derive(Clone)]
    struct Gossip {
        acc: u64,
    }
    impl Protocol for Gossip {
        type Msg = u64;
        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: Inbox<'_, u64>) {
            for e in inbox.iter() {
                self.acc = self.acc.rotate_left(7) ^ *e.msg;
            }
            if ctx.round() < 20 {
                let token = ctx.rng().next();
                ctx.send_all(token ^ self.acc);
            } else {
                ctx.halt();
            }
        }
    }

    fn random_topo(n: usize, seed: u64) -> Topology {
        let mut rng = crate::SplitMix64::new(seed);
        let mut edges = Vec::new();
        // Path for connectivity plus random chords.
        for i in 0..n as u32 - 1 {
            edges.push((i, i + 1));
        }
        for _ in 0..n {
            let u = rng.below(n as u64) as u32;
            let v = rng.below(n as u64) as u32;
            if u != v && u + 1 != v && v + 1 != u && !edges.contains(&(u.min(v), u.max(v))) {
                edges.push((u.min(v), u.max(v)));
            }
        }
        Topology::from_edges(n, &edges)
    }

    /// A star with `n-1` leaves: the degenerate hub workload that
    /// equal-count chunking mishandles (one chunk owns all the ports).
    fn star_topo(n: usize) -> Topology {
        let hub = (n / 2) as u32; // mid-id hub: cuts must split around it
        let edges: Vec<(u32, u32)> = (0..n as u32)
            .filter(|&v| v != hub)
            .map(|v| (v.min(hub), v.max(hub)))
            .collect();
        Topology::from_edges(n, &edges)
    }

    fn all_scheds() -> [SchedMode; 3] {
        [SchedMode::Sparse, SchedMode::Dense, SchedMode::Hybrid]
    }

    #[test]
    fn parallel_equals_sequential() {
        let topo = random_topo(64, 3);
        let mk = || (0..64).map(|_| Gossip { acc: 0 }).collect::<Vec<_>>();

        let mut seq = Network::new(topo.clone(), mk(), 17);
        seq.run_until_halt(100);

        for sched in all_scheds() {
            for threads in [2, 3, 8] {
                let mut par = Network::new(topo.clone(), mk(), 17)
                    .with_threads(threads)
                    .with_sched(sched);
                par.run_until_halt(100);
                for (a, b) in seq.nodes().iter().zip(par.nodes()) {
                    assert_eq!(a.acc, b.acc, "divergence with {threads} threads {sched:?}");
                }
                assert_eq!(seq.stats().messages, par.stats().messages);
                assert_eq!(seq.stats().bits, par.stats().bits);
                assert_eq!(seq.stats().peak_inbox, par.stats().peak_inbox);
                assert_eq!(seq.stats().node_steps, par.stats().node_steps);
            }
        }
    }

    #[test]
    fn parallel_equals_sequential_under_loss() {
        let topo = random_topo(48, 5);
        let mk = || (0..48).map(|_| Gossip { acc: 0 }).collect::<Vec<_>>();

        let mut seq = Network::new(topo.clone(), mk(), 23).with_message_loss(0.15);
        seq.run_until_halt(100);
        let mut par = Network::new(topo.clone(), mk(), 23)
            .with_message_loss(0.15)
            .with_threads(4);
        par.run_until_halt(100);
        assert_eq!(seq.dropped(), par.dropped(), "loss RNG streams must align");
        for (a, b) in seq.nodes().iter().zip(par.nodes()) {
            assert_eq!(a.acc, b.acc);
        }
        assert_eq!(seq.stats(), par.stats());
    }

    #[test]
    fn more_threads_than_nodes() {
        let topo = Topology::from_edges(3, &[(0, 1), (1, 2)]);
        let nodes = vec![Gossip { acc: 0 }, Gossip { acc: 0 }, Gossip { acc: 0 }];
        let mut net = Network::new(topo, nodes, 9).with_threads(64);
        net.run_until_halt(100);
        assert!(net.all_halted());
    }

    /// Force true multi-worker execution — the cost model would
    /// otherwise route every test-sized (and every single-core-machine)
    /// round through the sequential path, leaving the partitioners
    /// untested. `force_parallel` spawns one worker per requested
    /// thread regardless of machine or workload.
    #[test]
    fn forced_workers_stay_identical_in_all_modes() {
        let n = 64;
        let topo = random_topo(n, 11);
        let mk = || (0..n).map(|_| Gossip { acc: 0 }).collect::<Vec<_>>();
        let mut seq = Network::new(topo.clone(), mk(), 29);
        seq.run_until_halt(100);
        for sched in all_scheds() {
            for threads in [2, 3, 7] {
                let mut par = Network::new(topo.clone(), mk(), 29)
                    .with_threads(threads)
                    .with_sched(sched);
                par.force_parallel = true;
                par.run_until_halt(100);
                assert!(
                    seq.nodes()
                        .iter()
                        .zip(par.nodes())
                        .all(|(a, b)| a.acc == b.acc),
                    "forced {threads}-worker {sched:?} diverged"
                );
                assert_eq!(seq.stats().messages, par.stats().messages);
                assert_eq!(seq.stats().node_steps, par.stats().node_steps);
                assert_eq!(seq.stats().peak_inbox, par.stats().peak_inbox);
                assert!(par.peak_workers() >= 2, "no round actually fanned out");
            }
        }
    }

    /// The degree-weighted chunker on the degenerate hub topology: the
    /// star's center owns ~all ports, so weighted cuts collapse most
    /// workers onto tiny id ranges around it. Results must still be
    /// bit-identical, in every scheduling mode.
    #[test]
    fn forced_workers_balance_a_star() {
        let n = 65;
        let topo = star_topo(n);
        let mk = || (0..n).map(|_| Gossip { acc: 0 }).collect::<Vec<_>>();
        let mut seq = Network::new(topo.clone(), mk(), 41);
        seq.run_until_halt(100);
        for sched in all_scheds() {
            for threads in [2, 4, 8] {
                let mut par = Network::new(topo.clone(), mk(), 41)
                    .with_threads(threads)
                    .with_sched(sched);
                par.force_parallel = true;
                par.run_until_halt(100);
                assert!(
                    seq.nodes()
                        .iter()
                        .zip(par.nodes())
                        .all(|(a, b)| a.acc == b.acc),
                    "star with {threads} workers {sched:?} diverged"
                );
                assert_eq!(seq.stats().messages, par.stats().messages);
                assert_eq!(seq.stats().node_steps, par.stats().node_steps);
            }
        }
    }

    /// The sparse partitioner slices the *active list*, whose node ids
    /// are non-contiguous once nodes sleep or halt. Mix sleepers (every
    /// third node parks between pings) and early-halting nodes into the
    /// gossip so forced multi-worker rounds must split the slab around
    /// real gaps, and compare against sequential execution.
    #[derive(Clone)]
    struct Patchy {
        acc: u64,
    }
    impl Protocol for Patchy {
        type Msg = u64;
        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: Inbox<'_, u64>) {
            for e in inbox.iter() {
                self.acc = self.acc.rotate_left(5) ^ *e.msg;
            }
            let id = ctx.id();
            if id % 5 == 4 && ctx.round() >= 3 {
                ctx.halt(); // punch permanent holes in the id space
                return;
            }
            if id.is_multiple_of(3) && !ctx.round().is_multiple_of(4) {
                ctx.sleep(); // transient holes: woken by gossip mail
                return;
            }
            if ctx.round() < 24 {
                let token = ctx.rng().next();
                ctx.send_all(token ^ self.acc);
            } else {
                ctx.halt();
            }
        }
    }

    #[test]
    fn forced_workers_partition_a_gappy_active_list() {
        let n = 97; // odd size: uneven chunks + a trailing partial segment
        let topo = random_topo(n, 13);
        let mk = || (0..n).map(|_| Patchy { acc: 0 }).collect::<Vec<_>>();
        let mut seq = Network::new(topo.clone(), mk(), 31);
        seq.run_rounds(30);
        for sched in [SchedMode::Sparse, SchedMode::Hybrid] {
            for threads in [2, 5, 8] {
                let mut par = Network::new(topo.clone(), mk(), 31)
                    .with_threads(threads)
                    .with_sched(sched);
                par.force_parallel = true;
                par.run_rounds(30);
                assert!(
                    seq.nodes()
                        .iter()
                        .zip(par.nodes())
                        .all(|(a, b)| a.acc == b.acc),
                    "{threads} forced workers ({sched:?}) diverged on a gappy active list"
                );
                if sched == SchedMode::Sparse {
                    assert_eq!(
                        seq.stats(),
                        par.stats(),
                        "{threads} workers: stats diverged"
                    );
                } else {
                    // Hybrid may charge different sched_overhead.
                    assert_eq!(seq.stats().messages, par.stats().messages);
                    assert_eq!(seq.stats().node_steps, par.stats().node_steps);
                }
            }
        }
    }

    #[test]
    fn dense_mode_wake_does_not_grow_the_wake_list() {
        let topo = Topology::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let nodes = (0..4).map(|_| Gossip { acc: 0 }).collect::<Vec<_>>();
        let mut net = Network::new(topo, nodes, 5).with_sched(SchedMode::Dense);
        let baseline = net.wake_cur.len();
        for _ in 0..50 {
            net.wake(2);
            net.step();
        }
        assert!(
            net.wake_cur.len() <= baseline,
            "dense-mode wake() must not accumulate wake-list entries"
        );
    }

    // -- Cost model: the seq-vs-par decision, tested directly. --------

    #[test]
    fn cost_model_never_spawns_on_one_core() {
        let mut m = CostModel::new();
        assert_eq!(m.plan(8, 1, 1 << 20, false), 1);
        assert_eq!(m.plan(8, 1, 1 << 20, true), 1);
    }

    #[test]
    fn cost_model_holds_small_workloads_sequential() {
        let mut m = CostModel::new();
        // With the default prior, a handful of nodes never covers the
        // spawn cost.
        assert_eq!(m.plan(8, 8, 10, false), 1);
        assert_eq!(m.plan(8, 8, 0, false), 1);
        // A huge workload fans out up to the requested/core ceiling.
        assert_eq!(m.plan(8, 8, 1 << 20, false), 8);
        assert_eq!(m.plan(4, 16, 1 << 20, false), 4);
        assert_eq!(m.plan(16, 4, 1 << 20, false), 4);
    }

    #[test]
    fn workload_floor_derives_from_measured_cost() {
        let mut m = CostModel::new();
        let prior_floor = m.min_work_per_worker(false);
        // Cheap measured rounds (5 ns/node: idle-skip sweeps) raise the
        // floor — more nodes are needed to pay for one spawn…
        for _ in 0..8 {
            m.observe(false, 1, 100_000, 500_000); // 5 ns/unit
        }
        assert!(m.min_work_per_worker(false) > prior_floor);
        // …and a workload that fanned out under the prior now stays
        // sequential.
        let w = prior_floor * 2;
        assert_eq!(m.plan(2, 8, w, false), 1);
        // Expensive rounds (10 µs/node) lower the floor instead.
        let mut m = CostModel::new();
        for _ in 0..8 {
            m.observe(false, 1, 100, 1_000_000); // 10 µs/unit
        }
        assert!(m.min_work_per_worker(false) < prior_floor);
    }

    #[test]
    fn cost_model_falls_back_when_parallel_measures_slower() {
        let mut m = CostModel::new();
        let w = 1 << 20;
        // Parallel measured 2x slower per unit than sequential.
        for _ in 0..8 {
            m.observe(false, 1, w, 100 * w as u64);
            m.observe(false, 8, w, 200 * w as u64);
        }
        // Decisions 1..=255 all pick sequential; 256 is a probe tick.
        for _ in 0..100 {
            assert_eq!(m.plan(8, 8, w, false), 1);
        }
        // And the reverse: parallel measured faster keeps fanning out.
        let mut m = CostModel::new();
        for _ in 0..8 {
            m.observe(false, 1, w, 100 * w as u64);
            m.observe(false, 8, w, 25 * w as u64);
        }
        for _ in 0..100 {
            assert_eq!(m.plan(8, 8, w, false), 8);
        }
    }

    #[test]
    fn cost_model_probes_the_losing_path_periodically() {
        let mut m = CostModel::new();
        let w = 1 << 20;
        for _ in 0..8 {
            m.observe(false, 1, w, 100 * w as u64);
            m.observe(false, 8, w, 200 * w as u64); // par loses
        }
        let plans: Vec<usize> = (0..600).map(|_| m.plan(8, 8, w, false)).collect();
        let probes = plans.iter().filter(|&&p| p > 1).count();
        assert!(
            (2..=3).contains(&probes),
            "expected ~2 probe fan-outs in 600 decisions, got {probes}"
        );
    }

    /// End-to-end: a config that *requests* 8 threads on a tiny
    /// workload must ride the sequential path (no worker ever spawned)
    /// while producing identical results — the seq-fallback contract
    /// benches rely on for the <5% overhead acceptance bound.
    #[test]
    fn requested_parallelism_on_tiny_workload_never_spawns() {
        let topo = random_topo(48, 19);
        let mk = || (0..48).map(|_| Gossip { acc: 0 }).collect::<Vec<_>>();
        let mut seq = Network::new(topo.clone(), mk(), 3);
        seq.run_until_halt(100);
        let mut par = Network::new(topo.clone(), mk(), 3).with_cfg(ExecCfg::parallel(8));
        par.run_until_halt(100);
        assert_eq!(par.peak_workers(), 1, "48 nodes can never pay for a spawn");
        assert_eq!(seq.stats(), par.stats());
    }
}
