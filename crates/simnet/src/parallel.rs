//! Parallel node stepping.
//!
//! Within one synchronous round, nodes are independent: each reads only
//! its own inbox and state. This is embarrassingly parallel, so large
//! networks are stepped by partitioning nodes across scoped worker
//! threads. The message plane partitions with them: node chunks are
//! contiguous, so each worker owns a contiguous slice of the outgoing
//! slab (its nodes' port ranges) via `split_at_mut` — no locks, no
//! unsafe, no per-round allocation. The previous round's slab is read
//! shared by all workers.
//!
//! Determinism is preserved because
//!
//! 1. every node draws from its own RNG stream,
//! 2. inbox order is positional (ports), independent of scheduling, and
//! 3. delivery accounting (and the fault-injection RNG stream) runs
//!    sequentially after the join, walking senders in node order —
//!    workers record senders per chunk and chunks are merged in node
//!    order.
//!
//! Consequently `step_parallel` produces bit-identical results to the
//! sequential path — a property asserted by the tests below and by the
//! workspace-level `prop_plane` suite.

use crate::mailbox::Inbox;
use crate::network::{deliver, split_planes, Ctx, Network, Protocol};
use crate::topology::NodeId;

/// Execute one round using `net.threads` workers. Called by
/// [`Network::step`] when more than one thread is configured.
pub(crate) fn step_parallel<P: Protocol>(net: &mut Network<P>) -> u64 {
    let n = net.topo.len();
    let round = net.round;
    if n == 0 {
        net.round += 1;
        let allocs = net.take_alloc_delta();
        net.stats.record_round_gauges(0, 0, allocs);
        return 0;
    }
    let threads = net.threads.min(n);
    let chunk = n.div_ceil(threads);
    // Executor-owned scratch, deliberately not charged to the plane
    // gauge: stats must be bit-identical across thread counts.
    while net.worker_touched.len() < threads {
        net.worker_touched.push(Vec::new());
    }
    let (out_plane, in_plane) = split_planes(&mut net.planes, round);
    out_plane.advance();
    let out_gen = out_plane.gen;
    let topo = &net.topo;
    let inbox_count = &net.inbox_count[..];
    let inbox_count_round = &net.inbox_count_round[..];

    std::thread::scope(|scope| {
        let mut nodes_rest = &mut net.nodes[..];
        let mut rngs_rest = &mut net.rngs[..];
        let mut halted_rest = &mut net.halted[..];
        let mut stamp_rest = &mut out_plane.stamp[..];
        let mut msg_rest = &mut out_plane.msg[..];
        let mut touched_rest = &mut net.worker_touched[..threads];
        let in_plane = &*in_plane;
        let mut base = 0usize;
        let mut port_base = 0usize;
        while !nodes_rest.is_empty() {
            let take = chunk.min(nodes_rest.len());
            let (nodes_c, nr) = nodes_rest.split_at_mut(take);
            let (rngs_c, rr) = rngs_rest.split_at_mut(take);
            let (halted_c, hr) = halted_rest.split_at_mut(take);
            // Contiguous nodes own a contiguous slab range.
            let port_end = if base + take < n {
                topo.port_base((base + take) as NodeId)
            } else {
                topo.total_ports()
            };
            let (stamp_c, sr) = stamp_rest.split_at_mut(port_end - port_base);
            let (msg_c, mr) = msg_rest.split_at_mut(port_end - port_base);
            let (touched_c, tr) = touched_rest.split_at_mut(1);
            nodes_rest = nr;
            rngs_rest = rr;
            halted_rest = hr;
            stamp_rest = sr;
            msg_rest = mr;
            touched_rest = tr;
            let first = base;
            let chunk_port_base = port_base;
            base += take;
            port_base = port_end;
            scope.spawn(move || {
                let touched = &mut touched_c[0];
                touched.clear();
                for i in 0..nodes_c.len() {
                    if halted_c[i] {
                        continue;
                    }
                    let v = (first + i) as NodeId;
                    let count = if inbox_count_round[v as usize] == round {
                        inbox_count[v as usize]
                    } else {
                        0
                    };
                    let inbox = Inbox::new(topo, v, in_plane, count);
                    let nb = topo.port_base(v) - chunk_port_base;
                    let deg = topo.degree(v);
                    let mut sent_any = false;
                    let mut ctx = Ctx::new(
                        v,
                        round,
                        topo,
                        &mut rngs_c[i],
                        &mut stamp_c[nb..nb + deg],
                        &mut msg_c[nb..nb + deg],
                        out_gen,
                        &mut sent_any,
                        &mut halted_c[i],
                    );
                    nodes_c[i].on_round(&mut ctx, inbox);
                    if sent_any {
                        touched.push(v);
                    }
                }
            });
        }
    });

    // Merge per-chunk sender lists in node order, then account
    // deliveries sequentially (fixed order ⇒ fixed loss-RNG stream).
    net.touched.clear();
    for wt in &net.worker_touched[..threads] {
        net.touched.extend_from_slice(wt);
    }
    let out = deliver(
        topo,
        out_plane,
        &net.touched,
        &net.halted,
        net.loss,
        &mut net.loss_rng,
        &mut net.dropped,
        &mut net.stats,
        &mut net.inbox_count,
        &mut net.inbox_count_round,
        round + 1,
    );
    net.in_flight = out.delivered;
    net.round += 1;
    let allocs = net.take_alloc_delta();
    net.stats
        .record_round_gauges(out.sent, out.peak_inbox, allocs);
    out.sent
}

#[cfg(test)]
mod tests {
    use crate::{Ctx, Inbox, Network, Protocol, Topology};

    /// A protocol with both randomness and message traffic, to stress
    /// determinism: nodes gossip random tokens and keep a running hash.
    #[derive(Clone)]
    struct Gossip {
        acc: u64,
    }
    impl Protocol for Gossip {
        type Msg = u64;
        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: Inbox<'_, u64>) {
            for e in inbox.iter() {
                self.acc = self.acc.rotate_left(7) ^ *e.msg;
            }
            if ctx.round() < 20 {
                let token = ctx.rng().next();
                ctx.send_all(token ^ self.acc);
            } else {
                ctx.halt();
            }
        }
    }

    fn random_topo(n: usize, seed: u64) -> Topology {
        let mut rng = crate::SplitMix64::new(seed);
        let mut edges = Vec::new();
        // Path for connectivity plus random chords.
        for i in 0..n as u32 - 1 {
            edges.push((i, i + 1));
        }
        for _ in 0..n {
            let u = rng.below(n as u64) as u32;
            let v = rng.below(n as u64) as u32;
            if u != v && u + 1 != v && v + 1 != u && !edges.contains(&(u.min(v), u.max(v))) {
                edges.push((u.min(v), u.max(v)));
            }
        }
        Topology::from_edges(n, &edges)
    }

    #[test]
    fn parallel_equals_sequential() {
        let topo = random_topo(64, 3);
        let mk = || (0..64).map(|_| Gossip { acc: 0 }).collect::<Vec<_>>();

        let mut seq = Network::new(topo.clone(), mk(), 17);
        seq.run_until_halt(100);

        for threads in [2, 3, 8] {
            let mut par = Network::new(topo.clone(), mk(), 17).with_threads(threads);
            par.run_until_halt(100);
            for (a, b) in seq.nodes().iter().zip(par.nodes()) {
                assert_eq!(a.acc, b.acc, "divergence with {threads} threads");
            }
            assert_eq!(seq.stats().messages, par.stats().messages);
            assert_eq!(seq.stats().bits, par.stats().bits);
            assert_eq!(seq.stats().peak_inbox, par.stats().peak_inbox);
        }
    }

    #[test]
    fn parallel_equals_sequential_under_loss() {
        let topo = random_topo(48, 5);
        let mk = || (0..48).map(|_| Gossip { acc: 0 }).collect::<Vec<_>>();

        let mut seq = Network::new(topo.clone(), mk(), 23).with_message_loss(0.15);
        seq.run_until_halt(100);
        let mut par = Network::new(topo.clone(), mk(), 23)
            .with_message_loss(0.15)
            .with_threads(4);
        par.run_until_halt(100);
        assert_eq!(seq.dropped(), par.dropped(), "loss RNG streams must align");
        for (a, b) in seq.nodes().iter().zip(par.nodes()) {
            assert_eq!(a.acc, b.acc);
        }
        assert_eq!(seq.stats(), par.stats());
    }

    #[test]
    fn more_threads_than_nodes() {
        let topo = Topology::from_edges(3, &[(0, 1), (1, 2)]);
        let nodes = vec![Gossip { acc: 0 }, Gossip { acc: 0 }, Gossip { acc: 0 }];
        let mut net = Network::new(topo, nodes, 9).with_threads(64);
        net.run_until_halt(100);
        assert!(net.all_halted());
    }
}
