//! Round / message / bit accounting.
//!
//! The statistics collected here are the quantities the paper's theorems
//! bound: total rounds, messages, bits, and — crucially for the CONGEST
//! results (Theorems 3.8, 3.11, 4.5) — the maximum size of any single
//! message.

/// Per-round record: messages sent plus the message-plane gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundTrace {
    /// Messages sent in this round.
    pub messages: u64,
    /// Largest single inbox produced by this round's deliveries.
    pub peak_inbox: u64,
    /// Heap allocations performed by the message plane during this
    /// round. The plane preallocates everything at network construction
    /// (charged to the first round), so the steady-state value is 0 —
    /// future changes that reintroduce per-round allocation show up
    /// here and can be regressed against.
    pub plane_allocs: u64,
    /// Nodes actually stepped this round. Identical between the dense
    /// and sparse schedulers (they step the same set by contract); the
    /// sparse plane's round cost is proportional to this, not to `n`.
    pub active: u64,
    /// Scheduler slots examined that did *not* result in a step: the
    /// dense sweep charges `n - active` here (the cost the sparse plane
    /// removes), the sparse drain charges its stale wake-list entries
    /// (normally 0). The one gauge that legitimately differs between
    /// scheduling modes.
    pub sched_overhead: u64,
}

/// Histogram names of the per-phase wall-clock breakdown recorded
/// into [`NetStats::timings`] when [`crate::ExecCfg::timing`] is set,
/// in the style of parlay's LDD `BREAKDOWN` timers: where does a round
/// actually spend its time once the scheduler is hybrid?
///
/// One sample is recorded per round (or per conversion/merge), so
/// each histogram carries the *distribution* — `sum()` recovers the
/// old scalar accumulators, `p50()`/`p99()` expose the per-round tail
/// the scalars hid. The bespoke `PhaseTimings` struct this replaces
/// lived here until the `dobs` registry subsumed it.
pub mod timing {
    /// Rounds stepped in the sparse (wake-list) representation,
    /// including the wake-list sort and drain. One sample per round.
    pub const SPARSE_UPDATE_NS: &str = "sparse_update_ns";
    /// Rounds stepped in the dense (flag-sweep) representation. One
    /// sample per round.
    pub const DENSE_UPDATE_NS: &str = "dense_update_ns";
    /// Representation conversions (the dense→sparse wake-list
    /// rebuild; sparse→dense is free and charges nothing). One sample
    /// per downswitch.
    pub const CONVERSION_NS: &str = "conversion_ns";
    /// The parallel executor's per-worker scratch merge (sender
    /// lists, wake windows, halt counters) after the join. Also
    /// included in the update samples above, which time the whole
    /// round; this isolates the sequential tail. One sample per
    /// parallel round.
    pub const MERGE_NS: &str = "merge_ns";
}

/// Cumulative network statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Total synchronous rounds executed.
    pub rounds: u64,
    /// Total messages sent.
    pub messages: u64,
    /// Total bits sent.
    pub bits: u64,
    /// Largest single message, in bits.
    pub max_msg_bits: u64,
    /// Largest single inbox observed in any round.
    pub peak_inbox: u64,
    /// Total message-plane allocations (construction + growth; a
    /// constant per network in steady state).
    pub plane_allocs: u64,
    /// Total node steps executed (sum of [`RoundTrace::active`]). With
    /// the sparse scheduler this is the quantity round cost is
    /// proportional to; `node_steps ≪ rounds · n` is the asymptotic
    /// win the activity-driven plane delivers.
    pub node_steps: u64,
    /// Total scheduler overhead (sum of [`RoundTrace::sched_overhead`]).
    pub sched_overhead: u64,
    /// Messages dropped by the adversary plane (Bernoulli + burst
    /// drops; mail to halted nodes is *not* counted here — it was
    /// deliverable, the receiver just left).
    pub dropped: u64,
    /// Messages parked in the adversary's holding ring (delay, stall,
    /// or degrade-mode budget overflow) instead of arriving next round.
    pub delayed: u64,
    /// Bits carried past their send round by degrade-mode CONGEST
    /// enforcement (`max(0, bits - budget)` per violating message).
    pub deferred_bits: u64,
    /// Crash-stop node faults applied (rejoins are not counted; each
    /// node crashes at most once per run).
    pub crashed: u64,
    /// Per-phase wall-clock breakdown: a [`dobs::Registry`] of
    /// nanosecond histograms under the [`timing`] names (empty unless
    /// [`crate::ExecCfg::timing`] is set; excluded from bit-identity
    /// comparisons like [`NetStats::sched_overhead`] — identity suites
    /// reset it with `Default::default()`).
    pub timings: dobs::Registry,
    /// Messages per round, in order.
    pub per_round: Vec<RoundTrace>,
}

impl NetStats {
    /// Record one message of `bits` bits.
    #[inline]
    pub fn record_message(&mut self, bits: u64) {
        self.messages += 1;
        self.bits += bits;
        if bits > self.max_msg_bits {
            self.max_msg_bits = bits;
        }
    }

    /// Record `count` messages of `bits` bits each in one step (used by
    /// harnesses that charge emulated traffic in bulk).
    #[inline]
    pub fn record_messages(&mut self, count: u64, bits: u64) {
        self.messages += count;
        self.bits += count * bits;
        if count > 0 && bits > self.max_msg_bits {
            self.max_msg_bits = bits;
        }
    }

    /// Close out a round in which `messages` messages were sent (used
    /// by harnesses that charge emulated rounds; gauges default to 0).
    #[inline]
    pub fn record_round(&mut self, messages: u64) {
        self.rounds += 1;
        self.per_round.push(RoundTrace {
            messages,
            ..RoundTrace::default()
        });
    }

    /// Close out a round with its message-plane and scheduler gauges
    /// (used by the simulator's delivery path).
    #[inline]
    pub fn record_round_gauges(
        &mut self,
        messages: u64,
        peak_inbox: u64,
        plane_allocs: u64,
        active: u64,
        sched_overhead: u64,
    ) {
        self.rounds += 1;
        self.peak_inbox = self.peak_inbox.max(peak_inbox);
        self.plane_allocs += plane_allocs;
        self.node_steps += active;
        self.sched_overhead += sched_overhead;
        self.per_round.push(RoundTrace {
            messages,
            peak_inbox,
            plane_allocs,
            active,
            sched_overhead,
        });
    }

    /// Fold another stats block into this one (used when an algorithm is
    /// composed of phases, each run as its own network execution).
    pub fn absorb(&mut self, other: &NetStats) {
        self.rounds += other.rounds;
        self.messages += other.messages;
        self.bits += other.bits;
        self.max_msg_bits = self.max_msg_bits.max(other.max_msg_bits);
        self.peak_inbox = self.peak_inbox.max(other.peak_inbox);
        self.plane_allocs += other.plane_allocs;
        self.node_steps += other.node_steps;
        self.sched_overhead += other.sched_overhead;
        self.dropped += other.dropped;
        self.delayed += other.delayed;
        self.deferred_bits += other.deferred_bits;
        self.crashed += other.crashed;
        self.timings.absorb(&other.timings);
        self.per_round.extend_from_slice(&other.per_round);
    }

    /// Mean messages per round.
    pub fn avg_messages_per_round(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.messages as f64 / self.rounds as f64
        }
    }

    /// Mean nodes stepped per round — the sparse scheduler's cost
    /// metric (the dense sweep pays `n` per round regardless).
    pub fn avg_active_per_round(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.node_steps as f64 / self.rounds as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_absorb() {
        let mut a = NetStats::default();
        a.record_message(10);
        a.record_message(30);
        a.record_round(2);
        assert_eq!(a.rounds, 1);
        assert_eq!(a.messages, 2);
        assert_eq!(a.bits, 40);
        assert_eq!(a.max_msg_bits, 30);

        let mut b = NetStats::default();
        b.record_message(50);
        b.record_round(1);
        a.absorb(&b);
        assert_eq!(a.rounds, 2);
        assert_eq!(a.messages, 3);
        assert_eq!(a.bits, 90);
        assert_eq!(a.max_msg_bits, 50);
        assert_eq!(a.per_round.len(), 2);
    }

    #[test]
    fn avg_messages_per_round_handles_zero() {
        let s = NetStats::default();
        assert_eq!(s.avg_messages_per_round(), 0.0);
    }

    #[test]
    fn absorb_carries_adversary_gauges() {
        let mut a = NetStats {
            dropped: 3,
            delayed: 2,
            deferred_bits: 40,
            crashed: 1,
            ..NetStats::default()
        };
        let b = NetStats {
            dropped: 5,
            delayed: 1,
            deferred_bits: 60,
            crashed: 2,
            ..NetStats::default()
        };
        a.absorb(&b);
        assert_eq!(
            (a.dropped, a.delayed, a.deferred_bits, a.crashed),
            (8, 3, 100, 3)
        );
    }
}
