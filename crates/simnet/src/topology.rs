//! Network topology: the communication graph in CSR form.
//!
//! A [`Topology`] value is immutable. Each undirected edge `{u, v}`
//! appears as a *port* at both endpoints; `rev_port` maps a port at `u`
//! to the corresponding port at `v` so that message delivery is O(1)
//! and inbox ordering is deterministic.
//!
//! Dynamic networks evolve by *replacing* the topology atomically at an
//! epoch boundary: [`Topology::rewired`] applies a batch of edge
//! insertions/deletions and returns a [`TopologyPatch`] — the new CSR
//! plus the old-slot → new-slot remap that lets a [`crate::Network`]
//! carry its message plane and per-node protocol state across the
//! boundary (see [`crate::Network::rewire`]).

/// Node identifier. `u32` keeps per-edge bookkeeping compact (see the
/// type-size guidance of the Rust Performance Book); networks of up to
/// 4 billion nodes are far beyond what a round simulator needs.
pub type NodeId = u32;

/// A port is an index into a node's neighbor list.
pub type Port = usize;

/// Immutable communication graph in compressed sparse row form.
#[derive(Debug, Clone)]
pub struct Topology {
    /// CSR row offsets; `offsets[v]..offsets[v+1]` indexes `neighbors`.
    offsets: Vec<usize>,
    /// Flattened neighbor lists (sorted per node).
    neighbors: Vec<NodeId>,
    /// `rev_port[i]` is the port at `neighbors[i]` that leads back to
    /// the owner of port `i`.
    rev_port: Vec<Port>,
}

impl Topology {
    /// Build a topology on `n` nodes from an undirected edge list.
    ///
    /// Self-loops and duplicate edges are rejected with a panic: both
    /// are modelling errors for a communication graph.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for &(u, v) in edges {
            assert!(u != v, "self-loop {u} in topology");
            assert!(
                (u as usize) < n && (v as usize) < n,
                "edge ({u},{v}) out of range"
            );
            adj[u as usize].push(v);
            adj[v as usize].push(u);
        }
        Topology::from_adjacency(adj)
    }

    /// Build from per-node neighbor lists (sorted and de-duplicated
    /// here). Shared by [`Topology::from_edges`] and
    /// [`Topology::rewired`].
    fn from_adjacency(mut adj: Vec<Vec<NodeId>>) -> Self {
        let n = adj.len();
        for (v, list) in adj.iter_mut().enumerate() {
            list.sort_unstable();
            assert!(
                list.windows(2).all(|w| w[0] != w[1]),
                "duplicate edge at node {v}"
            );
        }
        let total: usize = adj.iter().map(Vec::len).sum();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut neighbors = Vec::with_capacity(total);
        for list in &adj {
            neighbors.extend_from_slice(list);
            offsets.push(neighbors.len());
        }
        // Compute reverse ports: for port i at u pointing to v, find the
        // index of u within v's (sorted) neighbor slice.
        let mut rev_port = vec![0usize; neighbors.len()];
        for u in 0..n {
            for i in offsets[u]..offsets[u + 1] {
                let v = neighbors[i] as usize;
                let slice = &neighbors[offsets[v]..offsets[v + 1]];
                let j = slice
                    .binary_search(&(u as NodeId))
                    .expect("asymmetric adjacency");
                rev_port[i] = j;
            }
        }
        Topology {
            offsets,
            neighbors,
            rev_port,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when the topology has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Neighbor list of `v`, sorted ascending.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.neighbors[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Maximum degree Δ of the topology.
    pub fn max_degree(&self) -> usize {
        (0..self.len())
            .map(|v| self.degree(v as NodeId))
            .max()
            .unwrap_or(0)
    }

    /// The neighbor reached from `v` through `port`.
    #[inline]
    pub fn neighbor(&self, v: NodeId, port: Port) -> NodeId {
        self.neighbors[self.offsets[v as usize] + port]
    }

    /// The port at `neighbor(v, port)` that leads back to `v`.
    #[inline]
    pub fn reverse_port(&self, v: NodeId, port: Port) -> Port {
        self.rev_port[self.offsets[v as usize] + port]
    }

    /// Port of `v` leading to `u`, if `{v, u}` is an edge.
    pub fn port_to(&self, v: NodeId, u: NodeId) -> Option<Port> {
        self.neighbors(v).binary_search(&u).ok()
    }

    /// Total number of directed ports (`2·|E|`). This is the slot count
    /// of the CSR-aligned message plane: one slot per (node, port) pair.
    #[inline]
    pub fn total_ports(&self) -> usize {
        self.neighbors.len()
    }

    /// First slot index of `v` in a CSR-aligned, port-indexed array:
    /// port `p` of node `v` lives at `port_base(v) + p`.
    #[inline]
    pub fn port_base(&self, v: NodeId) -> usize {
        self.offsets[v as usize]
    }

    /// Apply a mutation batch (edge deletions, then insertions) and
    /// return the new topology plus the slot remap that carries
    /// CSR-aligned state (message-plane slabs, per-port protocol
    /// arrays) across the epoch boundary.
    ///
    /// The node population is fixed: node join/leave is modelled as a
    /// node gaining its first / losing its last edges. Panics on
    /// removing a non-edge, inserting an existing edge, or self-loops —
    /// all modelling errors in a churn batch. An edge may appear in
    /// both lists (removed, then re-inserted): its old slots are
    /// treated as dead and its new slots as born.
    pub fn rewired(
        &self,
        removed: &[(NodeId, NodeId)],
        added: &[(NodeId, NodeId)],
    ) -> TopologyPatch {
        let n = self.len();
        let canon = |u: NodeId, v: NodeId| (u.min(v), u.max(v));
        let mut gone: std::collections::HashSet<(NodeId, NodeId)> =
            std::collections::HashSet::new();
        let mut born: std::collections::HashSet<(NodeId, NodeId)> =
            std::collections::HashSet::new();
        let mut adj: Vec<Vec<NodeId>> = (0..n as NodeId)
            .map(|v| self.neighbors(v).to_vec())
            .collect();
        let mut dirty = vec![false; n];
        for &(u, v) in removed {
            assert!(u != v, "self-loop {u} in removal batch");
            let pu = adj[u as usize]
                .iter()
                .position(|&x| x == v)
                .unwrap_or_else(|| panic!("removing non-edge ({u},{v})"));
            adj[u as usize].swap_remove(pu);
            let pv = adj[v as usize]
                .iter()
                .position(|&x| x == u)
                .expect("asymmetric adjacency");
            adj[v as usize].swap_remove(pv);
            assert!(gone.insert(canon(u, v)), "duplicate removal ({u},{v})");
            dirty[u as usize] = true;
            dirty[v as usize] = true;
        }
        for &(u, v) in added {
            assert!(u != v, "self-loop {u} in insertion batch");
            assert!(
                (u as usize) < n && (v as usize) < n,
                "inserted edge ({u},{v}) out of range"
            );
            assert!(
                !adj[u as usize].contains(&v),
                "inserting existing edge ({u},{v})"
            );
            adj[u as usize].push(v);
            adj[v as usize].push(u);
            assert!(born.insert(canon(u, v)), "duplicate insertion ({u},{v})");
            dirty[u as usize] = true;
            dirty[v as usize] = true;
        }
        let topo = Topology::from_adjacency(adj);
        // Old slot -> new slot for every surviving directed edge.
        let mut slot_map = vec![SLOT_GONE; self.total_ports()];
        for v in 0..n as NodeId {
            let old_base = self.port_base(v);
            for (p, &u) in self.neighbors(v).iter().enumerate() {
                if gone.contains(&canon(v, u)) {
                    continue;
                }
                let np = topo
                    .port_to(v, u)
                    .expect("surviving edge must be in the new topology");
                slot_map[old_base + p] = topo.port_base(v) + np;
            }
        }
        // Born ports, flattened per node in CSR order.
        let mut born_ports = Vec::with_capacity(2 * born.len());
        let mut born_offsets = Vec::with_capacity(n + 1);
        born_offsets.push(0usize);
        for v in 0..n as NodeId {
            for (p, &u) in topo.neighbors(v).iter().enumerate() {
                if born.contains(&canon(v, u)) {
                    born_ports.push(p);
                }
            }
            born_offsets.push(born_ports.len());
        }
        let dirty = (0..n as NodeId).filter(|&v| dirty[v as usize]).collect();
        TopologyPatch {
            topo,
            slot_map,
            born_ports,
            born_offsets,
            dirty,
        }
    }
}

/// Sentinel in [`TopologyPatch::slot_map`] for a directed-edge slot
/// whose edge was removed.
pub const SLOT_GONE: usize = usize::MAX;

/// The output of [`Topology::rewired`]: the new topology plus
/// everything needed to migrate CSR-aligned state across the epoch
/// boundary.
#[derive(Debug, Clone)]
pub struct TopologyPatch {
    topo: Topology,
    /// Old directed-edge slot → new slot ([`SLOT_GONE`] when removed).
    slot_map: Vec<usize>,
    /// Ports of the new topology whose edge was inserted by this patch,
    /// flattened per node (`born_offsets[v]..born_offsets[v+1]`).
    born_ports: Vec<Port>,
    born_offsets: Vec<usize>,
    /// Nodes whose incident edge set changed, ascending.
    dirty: Vec<NodeId>,
}

impl TopologyPatch {
    /// The new topology.
    #[inline]
    pub fn topo(&self) -> &Topology {
        &self.topo
    }

    /// Old slot → new slot map over the *old* topology's directed-edge
    /// slots; [`SLOT_GONE`] marks removed edges.
    #[inline]
    pub fn slot_map(&self) -> &[usize] {
        &self.slot_map
    }

    /// New slot for an old slot, `None` when the edge was removed.
    #[inline]
    pub fn new_slot(&self, old_slot: usize) -> Option<usize> {
        let s = self.slot_map[old_slot];
        (s != SLOT_GONE).then_some(s)
    }

    /// Ports of `v` (in the new topology) whose edge was inserted by
    /// this patch, ascending.
    #[inline]
    pub fn born_ports(&self, v: NodeId) -> &[Port] {
        &self.born_ports[self.born_offsets[v as usize]..self.born_offsets[v as usize + 1]]
    }

    /// Nodes whose incident edge set changed, ascending.
    #[inline]
    pub fn dirty(&self) -> &[NodeId] {
        &self.dirty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Topology {
        Topology::from_edges(3, &[(0, 1), (1, 2), (0, 2)])
    }

    #[test]
    fn basic_accessors() {
        let t = triangle();
        assert_eq!(t.len(), 3);
        assert_eq!(t.num_edges(), 3);
        assert_eq!(t.neighbors(0), &[1, 2]);
        assert_eq!(t.degree(1), 2);
        assert_eq!(t.max_degree(), 2);
    }

    #[test]
    fn reverse_ports_are_involutive() {
        let t = Topology::from_edges(5, &[(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (0, 4)]);
        for v in 0..5u32 {
            for p in 0..t.degree(v) {
                let u = t.neighbor(v, p);
                let q = t.reverse_port(v, p);
                assert_eq!(t.neighbor(u, q), v);
                assert_eq!(t.reverse_port(u, q), p);
            }
        }
    }

    #[test]
    fn port_to_finds_edges() {
        let t = triangle();
        assert_eq!(t.port_to(0, 1), Some(0));
        assert_eq!(t.port_to(0, 2), Some(1));
        assert_eq!(t.port_to(1, 1), None);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loops() {
        Topology::from_edges(2, &[(0, 0)]);
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn rejects_duplicates() {
        Topology::from_edges(2, &[(0, 1), (1, 0)]);
    }

    #[test]
    fn empty_topology() {
        let t = Topology::from_edges(0, &[]);
        assert!(t.is_empty());
        assert_eq!(t.max_degree(), 0);
    }

    #[test]
    fn rewired_applies_batch_and_maps_slots() {
        let t = Topology::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let patch = t.rewired(&[(1, 2)], &[(0, 3), (0, 2)]);
        let nt = patch.topo();
        assert_eq!(nt.num_edges(), 4);
        assert_eq!(nt.neighbors(0), &[1, 2, 3]);
        assert_eq!(nt.neighbors(1), &[0]);
        // Surviving slots keep pointing at the same directed edge.
        for v in 0..4u32 {
            for p in 0..t.degree(v) {
                let u = t.neighbor(v, p);
                let old_slot = t.port_base(v) + p;
                match patch.new_slot(old_slot) {
                    Some(ns) => {
                        let np = ns - nt.port_base(v);
                        assert_eq!(nt.neighbor(v, np), u, "slot remap broke edge ({v},{u})");
                    }
                    None => assert!(
                        (v.min(u), v.max(u)) == (1, 2),
                        "only the removed edge may lose its slots"
                    ),
                }
            }
        }
        // Born ports name exactly the inserted edges.
        assert_eq!(patch.born_ports(0), &[1, 2]); // 0->2, 0->3
        assert_eq!(patch.born_ports(3), &[0]); // 3->0
        assert_eq!(patch.born_ports(1), &[] as &[usize]);
        assert_eq!(patch.dirty(), &[0, 1, 2, 3]);
    }

    #[test]
    fn rewired_remove_and_reinsert_is_born() {
        let t = Topology::from_edges(2, &[(0, 1)]);
        let patch = t.rewired(&[(0, 1)], &[(1, 0)]);
        assert_eq!(patch.topo().num_edges(), 1);
        // The edge came back, but its old slots are dead and the new
        // ports count as born: any in-flight payload is dropped.
        assert_eq!(patch.new_slot(0), None);
        assert_eq!(patch.born_ports(0), &[0]);
        assert_eq!(patch.born_ports(1), &[0]);
    }

    #[test]
    fn rewired_empty_batch_is_identity() {
        let t = Topology::from_edges(3, &[(0, 1), (1, 2)]);
        let patch = t.rewired(&[], &[]);
        assert!(patch.dirty().is_empty());
        for s in 0..t.total_ports() {
            assert_eq!(patch.new_slot(s), Some(s));
        }
    }

    #[test]
    #[should_panic(expected = "non-edge")]
    fn rewired_rejects_removing_non_edges() {
        Topology::from_edges(3, &[(0, 1)]).rewired(&[(1, 2)], &[]);
    }

    #[test]
    #[should_panic(expected = "existing edge")]
    fn rewired_rejects_duplicate_insert() {
        Topology::from_edges(3, &[(0, 1)]).rewired(&[], &[(1, 0)]);
    }
}
