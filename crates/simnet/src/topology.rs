//! Network topology: the communication graph in CSR form.
//!
//! The topology is immutable for the lifetime of a [`crate::Network`].
//! Each undirected edge `{u, v}` appears as a *port* at both endpoints;
//! `rev_port` maps a port at `u` to the corresponding port at `v` so
//! that message delivery is O(1) and inbox ordering is deterministic.

/// Node identifier. `u32` keeps per-edge bookkeeping compact (see the
/// type-size guidance of the Rust Performance Book); networks of up to
/// 4 billion nodes are far beyond what a round simulator needs.
pub type NodeId = u32;

/// A port is an index into a node's neighbor list.
pub type Port = usize;

/// Immutable communication graph in compressed sparse row form.
#[derive(Debug, Clone)]
pub struct Topology {
    /// CSR row offsets; `offsets[v]..offsets[v+1]` indexes `neighbors`.
    offsets: Vec<usize>,
    /// Flattened neighbor lists (sorted per node).
    neighbors: Vec<NodeId>,
    /// `rev_port[i]` is the port at `neighbors[i]` that leads back to
    /// the owner of port `i`.
    rev_port: Vec<Port>,
}

impl Topology {
    /// Build a topology on `n` nodes from an undirected edge list.
    ///
    /// Self-loops and duplicate edges are rejected with a panic: both
    /// are modelling errors for a communication graph.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for &(u, v) in edges {
            assert!(u != v, "self-loop {u} in topology");
            assert!(
                (u as usize) < n && (v as usize) < n,
                "edge ({u},{v}) out of range"
            );
            adj[u as usize].push(v);
            adj[v as usize].push(u);
        }
        for (v, list) in adj.iter_mut().enumerate() {
            list.sort_unstable();
            assert!(
                list.windows(2).all(|w| w[0] != w[1]),
                "duplicate edge at node {v}"
            );
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut neighbors = Vec::with_capacity(2 * edges.len());
        for list in &adj {
            neighbors.extend_from_slice(list);
            offsets.push(neighbors.len());
        }
        // Compute reverse ports: for port i at u pointing to v, find the
        // index of u within v's (sorted) neighbor slice.
        let mut rev_port = vec![0usize; neighbors.len()];
        for u in 0..n {
            for i in offsets[u]..offsets[u + 1] {
                let v = neighbors[i] as usize;
                let slice = &neighbors[offsets[v]..offsets[v + 1]];
                let j = slice
                    .binary_search(&(u as NodeId))
                    .expect("asymmetric adjacency");
                rev_port[i] = j;
            }
        }
        Topology {
            offsets,
            neighbors,
            rev_port,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when the topology has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Neighbor list of `v`, sorted ascending.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.neighbors[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Maximum degree Δ of the topology.
    pub fn max_degree(&self) -> usize {
        (0..self.len())
            .map(|v| self.degree(v as NodeId))
            .max()
            .unwrap_or(0)
    }

    /// The neighbor reached from `v` through `port`.
    #[inline]
    pub fn neighbor(&self, v: NodeId, port: Port) -> NodeId {
        self.neighbors[self.offsets[v as usize] + port]
    }

    /// The port at `neighbor(v, port)` that leads back to `v`.
    #[inline]
    pub fn reverse_port(&self, v: NodeId, port: Port) -> Port {
        self.rev_port[self.offsets[v as usize] + port]
    }

    /// Port of `v` leading to `u`, if `{v, u}` is an edge.
    pub fn port_to(&self, v: NodeId, u: NodeId) -> Option<Port> {
        self.neighbors(v).binary_search(&u).ok()
    }

    /// Total number of directed ports (`2·|E|`). This is the slot count
    /// of the CSR-aligned message plane: one slot per (node, port) pair.
    #[inline]
    pub fn total_ports(&self) -> usize {
        self.neighbors.len()
    }

    /// First slot index of `v` in a CSR-aligned, port-indexed array:
    /// port `p` of node `v` lives at `port_base(v) + p`.
    #[inline]
    pub fn port_base(&self, v: NodeId) -> usize {
        self.offsets[v as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Topology {
        Topology::from_edges(3, &[(0, 1), (1, 2), (0, 2)])
    }

    #[test]
    fn basic_accessors() {
        let t = triangle();
        assert_eq!(t.len(), 3);
        assert_eq!(t.num_edges(), 3);
        assert_eq!(t.neighbors(0), &[1, 2]);
        assert_eq!(t.degree(1), 2);
        assert_eq!(t.max_degree(), 2);
    }

    #[test]
    fn reverse_ports_are_involutive() {
        let t = Topology::from_edges(5, &[(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (0, 4)]);
        for v in 0..5u32 {
            for p in 0..t.degree(v) {
                let u = t.neighbor(v, p);
                let q = t.reverse_port(v, p);
                assert_eq!(t.neighbor(u, q), v);
                assert_eq!(t.reverse_port(u, q), p);
            }
        }
    }

    #[test]
    fn port_to_finds_edges() {
        let t = triangle();
        assert_eq!(t.port_to(0, 1), Some(0));
        assert_eq!(t.port_to(0, 2), Some(1));
        assert_eq!(t.port_to(1, 1), None);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loops() {
        Topology::from_edges(2, &[(0, 0)]);
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn rejects_duplicates() {
        Topology::from_edges(2, &[(0, 1), (1, 0)]);
    }

    #[test]
    fn empty_topology() {
        let t = Topology::from_edges(0, &[]);
        assert!(t.is_empty());
        assert_eq!(t.max_degree(), 0);
    }
}
