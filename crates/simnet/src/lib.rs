//! # simnet — a synchronous message-passing network simulator
//!
//! This crate implements the execution model of Peleg-style distributed
//! graph algorithms (the model of Section 2 of *Improved Distributed
//! Approximate Matching*, SPAA'08): computation proceeds in synchronous
//! rounds; in each round every processor sends (possibly different)
//! messages to each of its neighbors, receives the messages sent to it,
//! and performs local computation.
//!
//! The simulator accounts for
//!
//! * the number of **rounds** executed,
//! * the number of **messages** and total **bits** sent, and
//! * the **maximum message size in bits** (to check CONGEST compliance:
//!   `O(log n)`-bit messages vs. the LOCAL model's unbounded messages).
//!
//! Protocols implement [`Protocol`]; a [`Network`] couples one protocol
//! state per node with a [`Topology`] and drives rounds until all nodes
//! halt. Determinism is guaranteed: per-node RNG streams are derived from
//! a master seed with SplitMix64, and inboxes are read in a fixed
//! (positional) port order, so sequential and parallel execution produce
//! identical results.
//!
//! ```
//! use simnet::{Network, Protocol, Ctx, Inbox, Topology};
//!
//! /// Every node learns the minimum id in its connected component.
//! struct MinId { known: u32, changed: bool }
//! impl Protocol for MinId {
//!     type Msg = u32;
//!     fn on_round(&mut self, ctx: &mut Ctx<'_, u32>, inbox: Inbox<'_, u32>) {
//!         for env in inbox.iter() {
//!             if *env.msg < self.known { self.known = *env.msg; self.changed = true; }
//!         }
//!         if self.changed || ctx.round() == 0 {
//!             ctx.send_all(self.known);
//!             self.changed = false;
//!         }
//!     }
//! }
//!
//! let topo = Topology::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
//! let nodes = (0..4).map(|v| MinId { known: v, changed: false }).collect();
//! let mut net = Network::new(topo, nodes, 42);
//! net.run_until_quiet(100);
//! assert!(net.nodes().iter().all(|n| n.known == 0));
//! ```
//!
//! ## The message plane (and migrating from the envelope inbox)
//!
//! Messages move through a **zero-allocation, double-buffered,
//! port-indexed plane** ([`mailbox`]): `Ctx::send` writes into a
//! preallocated slot slab (one slot per directed edge), and receivers
//! read the very same slots in place next round — delivery neither
//! copies payloads, nor allocates, nor sorts. Inbox order is positional
//! (ascending arrival port), which is exactly the order the previous
//! sort-based delivery guaranteed.
//!
//! Versions before the plane rewrite handed `on_round` a
//! `&[Envelope<M>]` slice. Migrating a protocol:
//!
//! * `inbox: &[Envelope<M>]` → `inbox: Inbox<'_, M>` in the signature;
//! * `for env in inbox` → `for env in inbox.iter()` — entries are
//!   [`Received`] with the same `from`/`port` fields, but `env.msg` is
//!   now a *borrow* (`&M`) of the payload in the plane;
//! * linear scans for "the message on port p" become O(1):
//!   [`Inbox::get`]`(p)`;
//! * `inbox.len()` / `inbox.is_empty()` work unchanged (O(1));
//! * new contract: at most **one message per port per round**
//!   ([`Ctx::send`] panics on duplicates) — the synchronous CONGEST
//!   model always assumed this; the plane now enforces it.
//!
//! ## The activity-driven scheduler
//!
//! [`Network::step`] does not sweep `0..n`: by default it drains a
//! sparse, epoch-stamped **wake list**, so a round costs time
//! proportional to the number of *active* nodes, not the network
//! size. The scheduler contract — when a node is guaranteed to be
//! stepped in round `r` — is:
//!
//! 1. `r` is the network's first round (everyone starts awake), or
//! 2. the node was stepped in round `r-1` and called neither
//!    [`Ctx::halt`] nor [`Ctx::sleep`] (staying awake is the
//!    default — protocols that never sleep run exactly as they always
//!    did), or
//! 3. a message was delivered to it for round `r` (mail always wakes
//!    a sleeping node; unlike a halted node's mail, it is kept), or
//! 4. it was woken externally since its last step —
//!    [`Network::wake`], or the dirty set of a [`Network::rewire`].
//!
//! [`Ctx::sleep`] lasts until the next step: a woken node that still
//! has nothing to do must re-assert it. Halting is terminal and
//! tracked by a maintained counter, so [`Network::all_halted`] is
//! O(1).
//!
//! The dense `0..n` sweep survives as [`SchedMode::Dense`] (a
//! fallback and reference), and [`SchedMode::Hybrid`] switches
//! between the two representations per round with a deterministic,
//! counter-driven judge (see [`parallel`] for the thresholds and the
//! determinism contract). All schedulers step the same node set by
//! construction, at any thread count ([`ExecCfg::parallel`]), so
//! results — matchings, RNG streams, `NetStats` traces — are
//! bit-identical, with the exception of the
//! [`stats::RoundTrace::sched_overhead`] gauge, which records the
//! slots each scheduler examined without stepping (the dense scan's
//! skipped nodes vs. the sparse drain's stale entries), and the
//! opt-in [`ExecCfg::timing`] phase histograms recorded into the
//! [`NetStats::timings`] registry under the [`stats::timing`] names
//! (a [`dobs::Registry`] of log-bucketed nanosecond distributions).
//! The `dobs` flight-recorder hooks in the round loop (round spans,
//! mode switches, wakes, rewires, worker sections) carry the same
//! exemption: they observe runs, they never steer them.
//! Per-round [`stats::RoundTrace::active`] and cumulative
//! [`NetStats::node_steps`] expose the activity the sparse plane's
//! cost is proportional to.
//!
//! ## Dynamic networks
//!
//! A [`Topology`] value is immutable, but a [`Network`] is not married
//! to one: dynamic networks evolve in **epochs**. At an epoch boundary
//! the harness applies a churn batch with [`Topology::rewired`], which
//! returns a [`TopologyPatch`] — the new CSR plus an old-slot →
//! new-slot remap over the directed-edge slots — and then calls
//! [`Network::rewire`]:
//!
//! * the message-plane slabs are **remapped, not rebuilt**: in-flight
//!   messages on surviving edges keep travelling (payloads are moved,
//!   never cloned; removed edges drop theirs), and the migration costs
//!   O(ports) plus a constant number of buffer allocations, never one
//!   per edge;
//! * per-node protocol state crosses the boundary through the
//!   [`Rewire`] trait: each node receives a [`RewireCtx`] with its
//!   old-port → new-port map and its born ports, remaps port-indexed
//!   state, and invalidates anything whose edge vanished (e.g. a
//!   matched edge);
//! * nodes incident to the damage are woken; rounds, statistics, and
//!   RNG streams continue, so rewired runs stay bit-identical across
//!   thread counts.
//!
//! The `dchurn` crate builds the full epoch engine (churn generators,
//! incremental matching repair, damage-locality accounting) on top of
//! this API.

pub mod adversary;
pub mod mailbox;
pub mod message;
pub mod micro;
pub mod network;
pub mod parallel;
pub mod rng;
pub mod stats;
pub mod topology;
pub mod tree;

pub use adversary::{Budget, CongestMode, CrashEvent, CrashKind, FaultPlan, Markov};
pub use mailbox::{Inbox, InboxIter, Received};
pub use message::BitSize;
pub use micro::MicroNet;
pub use network::{Ctx, ExecCfg, Network, Protocol, Rewire, RewireCtx, RunOutcome, SchedMode};
pub use rng::SplitMix64;
pub use stats::{NetStats, RoundTrace};
pub use topology::{NodeId, Port, Topology, TopologyPatch, SLOT_GONE};

/// The number of bits needed to write ids in a network of `n` nodes,
/// i.e. `ceil(log2 n)` (at least 1). This is the CONGEST yardstick: a
/// message of `O(log n)` bits is a constant number of id-sized words.
pub fn id_bits(n: usize) -> u64 {
    (usize::BITS - n.max(2).saturating_sub(1).leading_zeros()) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_bits_matches_ceil_log2() {
        assert_eq!(id_bits(2), 1);
        assert_eq!(id_bits(3), 2);
        assert_eq!(id_bits(4), 2);
        assert_eq!(id_bits(5), 3);
        assert_eq!(id_bits(1024), 10);
        assert_eq!(id_bits(1025), 11);
    }

    #[test]
    fn id_bits_small_inputs_do_not_panic() {
        assert_eq!(id_bits(0), 1);
        assert_eq!(id_bits(1), 1);
    }
}
