//! The adversary plane: unified, seeded, deterministic fault injection.
//!
//! Every delivery in a [`crate::Network`] passes through one
//! `Adversary` (crate-internal), configured by a single composable
//! [`FaultPlan`]. The
//! plan subsumes the three fault paths that previously lived in
//! disconnected corners of the workspace — `ExecCfg::loss` (uniform
//! Bernoulli drop), `israeli_itai::lossy_matching` (a bespoke lossy
//! runner), and `switchsim::FailurePlan` (two-state Markov link flaps)
//! — and extends them with bounded per-message delay, per-round partial
//! delivery, crash-stop node faults with optional rejoin, and CONGEST
//! bit-budget enforcement.
//!
//! ## Determinism contract
//!
//! Same seed + same `FaultPlan` ⇒ **bit-identical** runs (matchings,
//! RNG streams, `NetStats` minus the documented scheduler-overhead and
//! timing exemptions) across every executor ({seq, 2, 8 threads}) and
//! every scheduler ({sparse, dense, hybrid}). The contract holds
//! because every adversary decision is made on the **main thread**, in
//! a fixed order, from RNG streams that are independent of the node
//! streams:
//!
//! * fault decisions happen in [`crate::network`]'s delivery sweep,
//!   which walks senders in ascending node order then ascending port
//!   order — the same fixed order under sequential and parallel
//!   stepping (delivery runs after the parallel join);
//! * each fault class draws from its **own** SplitMix64 stream
//!   (derived from the master seed at reserved ids), and a stream is
//!   consumed only when its fault class is enabled — so composing a
//!   new fault class never perturbs the draws of another, and a plan
//!   that only drops messages consumes the drop stream exactly as the
//!   legacy `ExecCfg::loss` path did (bit-for-bit reproduction of old
//!   lossy runs);
//! * crash/rejoin events are **pre-sampled** at plan installation
//!   (geometric first-crash rounds from one dedicated stream) and
//!   applied at the top of each round, before any node is stepped;
//! * delayed payloads are parked in a holding ring and re-injected in
//!   deterministic `(slot, seq)` order at their due round.
//!
//! ## Fault pipeline
//!
//! Per live out-slot, in this fixed order: charge statistics (the
//! sender paid for the message) → Bernoulli **drop** → **burst** (Markov
//! down-state) drop → **CONGEST** budget check (strict: panic; degrade:
//! convert overflow into extra rounds of latency and record
//! `deferred_bits`) → receiver-halted check (crash-stop: mail to
//! crashed or halted nodes is dropped on the floor, unread) →
//! **stall** / **delay** draws → park or deliver. A parked payload
//! whose slot is occupied by a fresh send at its due round is postponed
//! one more round (adversarial reordering between an edge's in-flight
//! messages is allowed, and a busy edge can stretch a delay past `D`);
//! a parked payload whose receiver has halted or crashed by its due
//! round is discarded.
//!
//! Crash-stop semantics: a crashed node stops being stepped, and mail
//! addressed to it is discarded, but messages it sent *before* the
//! crash are still delivered. With `rejoin_after > 0` the node resumes
//! — with its pre-crash protocol state, deliberately stale — after
//! exactly that many rounds, and is woken through the same machinery a
//! rewire's dirty set uses, so repair paths are exercised. A node that
//! had already halted on its own is never crashed (nothing to take
//! down), and each node crashes at most once per run.

use crate::rng::SplitMix64;
use crate::topology::{NodeId, Topology, TopologyPatch};

/// Largest accepted per-message delay bound, in rounds. A bound above
/// this is almost certainly a bug (a delay comparable to any real run
/// length already destroys liveness), so the setter clamps to it.
pub const MAX_DELAY_ROUNDS: u64 = 1 << 20;

// Adversary RNG stream ids live in the workspace-wide registry
// (`crate::rng::streams`) so dlint can verify no other consumer
// collides with them. `ADV_DROP` (= u64::MAX) is the legacy `loss_rng`
// id, kept so pure-drop plans reproduce old lossy runs bit-for-bit.
use crate::rng::streams::{
    ADV_BURST as STREAM_BURST, ADV_CRASH as STREAM_CRASH, ADV_DELAY as STREAM_DELAY,
    ADV_DROP as STREAM_DROP, ADV_STALL as STREAM_STALL,
};

/// Clamp a probability into `[0, 1]`, mapping NaN to 0 (no fault).
/// Factored out of the `debug_assert`ing setters so the clamping rule
/// itself is directly unit-testable in both build profiles.
#[inline]
pub(crate) fn clamped01(p: f64) -> f64 {
    if p.is_nan() {
        0.0
    } else {
        p.clamp(0.0, 1.0)
    }
}

/// Two-state Markov link model (the `switchsim::FailurePlan` shape):
/// an up edge goes down with probability `fail` per round, a down edge
/// recovers with probability `repair` per round. While down, every
/// message on the edge is dropped.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Markov {
    /// P(up → down) per round.
    pub fail: f64,
    /// P(down → up) per round.
    pub repair: f64,
}

/// Per-edge per-round bit budget (the CONGEST yardstick).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Budget {
    /// No budget: the LOCAL model.
    #[default]
    Unlimited,
    /// A fixed budget of this many bits.
    Bits(u64),
    /// `c · ⌈log₂ n⌉` bits — the classical CONGEST budget, resolved
    /// against the network size at plan installation via
    /// [`crate::id_bits`].
    LogN(u64),
}

impl Budget {
    /// The concrete bit bound for a network of `n` nodes
    /// (`u64::MAX` = unlimited).
    pub fn effective_bits(&self, n: usize) -> u64 {
        match *self {
            Budget::Unlimited => u64::MAX,
            Budget::Bits(b) => b.max(1),
            Budget::LogN(c) => c.max(1).saturating_mul(crate::id_bits(n)),
        }
    }
}

/// What happens when a message exceeds the [`Budget`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CongestMode {
    /// Queue the overflow: a `b`-bit message on a `B`-bit edge takes
    /// `⌈b/B⌉` rounds to cross, so violations become honest extra
    /// latency, recorded in `NetStats::deferred_bits`.
    #[default]
    Degrade,
    /// Panic on the first violation (conformance testing). The panic
    /// message contains `"CONGEST"`.
    Strict,
}

/// Did a node crash, or rejoin after its crash?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashKind {
    /// The node stops (crash-stop): not stepped, mail discarded.
    Crash,
    /// The node resumes with its pre-crash state.
    Rejoin,
}

/// One pre-sampled crash-fault event. The schedule is derived from
/// `(seed, crash_p, rejoin_after)` alone — [`FaultPlan::crash_schedule`]
/// is the single source of truth shared by the simulator and by
/// harnesses (e.g. `dchurn`) that convert crashes into churn events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashEvent {
    /// Round at whose start the event applies.
    pub round: u64,
    /// The affected node.
    pub node: NodeId,
    /// Crash or rejoin.
    pub kind: CrashKind,
}

/// One composable fault configuration: drop, burst, delay, stall,
/// crash, and CONGEST budget, all off by default ([`FaultPlan::NONE`]).
/// Setters clamp their arguments (and `debug_assert` on out-of-range
/// input), so a plan is always well-formed.
///
/// Fields are crate-private: construct through the setters so the
/// clamping contract cannot be bypassed.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultPlan {
    /// Per-message Bernoulli drop probability.
    pub(crate) drop_p: f64,
    /// Two-state Markov per-edge burst loss.
    pub(crate) burst: Option<Markov>,
    /// Max per-message delay in rounds (uniform in `0..=delay_max`).
    pub(crate) delay_max: u64,
    /// Per-message stall probability (per-round partial delivery: in
    /// expectation a δ-fraction of that round's messages slip a round).
    pub(crate) stall_p: f64,
    /// Per-node per-round crash probability (geometric first-crash
    /// rounds, pre-sampled).
    pub(crate) crash_p: f64,
    /// Rounds until a crashed node rejoins (0 = never).
    pub(crate) rejoin_after: u64,
    /// Per-edge per-round bit budget.
    pub(crate) budget: Budget,
    /// Strict (panic) vs. degrade (queue) budget enforcement.
    pub(crate) congest: CongestMode,
}

impl FaultPlan {
    /// The fault-free plan (every knob off).
    pub const NONE: FaultPlan = FaultPlan {
        drop_p: 0.0,
        burst: None,
        delay_max: 0,
        stall_p: 0.0,
        crash_p: 0.0,
        rejoin_after: 0,
        budget: Budget::Unlimited,
        congest: CongestMode::Degrade,
    };

    /// Uniform Bernoulli message drop with probability `p` — the plan
    /// `ExecCfg::loss` and the deprecated `lossy_matching` route
    /// through.
    pub fn drop(p: f64) -> FaultPlan {
        FaultPlan::NONE.with_drop(p)
    }

    /// Set the per-message drop probability (clamped to `[0, 1]`).
    pub fn with_drop(mut self, p: f64) -> FaultPlan {
        debug_assert!(
            (0.0..=1.0).contains(&p),
            "drop probability {p} outside [0, 1]"
        );
        self.drop_p = clamped01(p);
        self
    }

    /// Enable two-state Markov burst loss (probabilities clamped).
    pub fn with_burst(mut self, fail: f64, repair: f64) -> FaultPlan {
        debug_assert!(
            (0.0..=1.0).contains(&fail) && (0.0..=1.0).contains(&repair),
            "burst probabilities ({fail}, {repair}) outside [0, 1]"
        );
        self.burst = Some(Markov {
            fail: clamped01(fail),
            repair: clamped01(repair),
        });
        self
    }

    /// Bound per-message delay: each delivered message is held for a
    /// uniform `0..=max_rounds` extra rounds (clamped to
    /// [`MAX_DELAY_ROUNDS`]).
    pub fn with_delay(mut self, max_rounds: u64) -> FaultPlan {
        debug_assert!(
            max_rounds <= MAX_DELAY_ROUNDS,
            "delay bound {max_rounds} exceeds MAX_DELAY_ROUNDS"
        );
        self.delay_max = max_rounds.min(MAX_DELAY_ROUNDS);
        self
    }

    /// Per-round partial delivery: each message independently stalls
    /// one extra round with probability `p` (clamped to `[0, 1]`).
    pub fn with_stall(mut self, p: f64) -> FaultPlan {
        debug_assert!(
            (0.0..=1.0).contains(&p),
            "stall probability {p} outside [0, 1]"
        );
        self.stall_p = clamped01(p);
        self
    }

    /// Crash-stop node faults: each node's first-crash round is
    /// geometric with per-round probability `p` (clamped). With
    /// `rejoin_after > 0` a crashed node resumes — stale state and all
    /// — after that many rounds; 0 means crashes are permanent.
    pub fn with_crash(mut self, p: f64, rejoin_after: u64) -> FaultPlan {
        debug_assert!(
            (0.0..=1.0).contains(&p),
            "crash probability {p} outside [0, 1]"
        );
        self.crash_p = clamped01(p);
        self.rejoin_after = rejoin_after;
        self
    }

    /// Enforce a per-edge per-round bit budget (default mode:
    /// [`CongestMode::Degrade`]).
    pub fn with_budget(mut self, budget: Budget) -> FaultPlan {
        self.budget = budget;
        self
    }

    /// Switch budget enforcement to [`CongestMode::Strict`] (panic on
    /// the first violation).
    pub fn strict(mut self) -> FaultPlan {
        self.congest = CongestMode::Strict;
        self
    }

    /// Is any fault class enabled?
    pub fn is_active(&self) -> bool {
        self.drop_p > 0.0
            || self.burst.is_some()
            || self.delay_max > 0
            || self.stall_p > 0.0
            || self.crash_p > 0.0
            || self.budget != Budget::Unlimited
    }

    /// Does this plan break the synchronous-round abstraction — can a
    /// message arrive later than the next round, or a node vanish
    /// mid-run? Pure drop (and strict budgets, which panic rather than
    /// defer) keep synchrony: every surviving message still arrives
    /// exactly one round after it was sent. Algorithms that extract
    /// their result from paired per-node agreement need the
    /// agreement-based (bounded-run) extraction exactly when this is
    /// true.
    pub fn breaks_synchrony(&self) -> bool {
        self.delay_max > 0
            || self.stall_p > 0.0
            || self.crash_p > 0.0
            || self.burst.is_some()
            || (self.budget != Budget::Unlimited && self.congest == CongestMode::Degrade)
    }

    /// The per-message drop probability (reads back what
    /// [`FaultPlan::with_drop`] stored, post-clamping).
    pub fn drop_p(&self) -> f64 {
        self.drop_p
    }

    /// The delay bound in rounds (0 = no delay).
    pub fn delay_max(&self) -> u64 {
        self.delay_max
    }

    /// The rejoin delay in rounds (0 = crashes are permanent).
    pub fn rejoin_after(&self) -> u64 {
        self.rejoin_after
    }

    /// Pre-sample the full crash/rejoin schedule for a network of `n`
    /// nodes under `seed`: each node draws a geometric first-crash
    /// round from the dedicated crash stream, in node order, and the
    /// events come back sorted by `(round, node, kind)` with rejoins
    /// after crashes. Deterministic — this is the single source of
    /// truth for both the simulator's crash application and any
    /// harness converting crashes into churn events.
    pub fn crash_schedule(&self, seed: u64, n: usize) -> Vec<CrashEvent> {
        if self.crash_p <= 0.0 {
            return Vec::new();
        }
        let mut rng = SplitMix64::for_node(seed, STREAM_CRASH);
        let mut events = Vec::with_capacity(if self.rejoin_after > 0 { 2 * n } else { n });
        for v in 0..n {
            let u = rng.f64();
            // Geometric first-success round: P(round = 0) = p.
            // `u < 1` always, so `1 - u > 0` and the log is finite;
            // the `as u64` cast saturates huge survival times.
            let round = if self.crash_p >= 1.0 {
                0
            } else {
                ((1.0 - u).ln() / (1.0 - self.crash_p).ln()).floor() as u64
            };
            events.push(CrashEvent {
                round,
                node: v as NodeId,
                kind: CrashKind::Crash,
            });
            if self.rejoin_after > 0 {
                events.push(CrashEvent {
                    round: round.saturating_add(self.rejoin_after),
                    node: v as NodeId,
                    kind: CrashKind::Rejoin,
                });
            }
        }
        events.sort_by_key(|e| (e.round, e.node, e.kind == CrashKind::Rejoin));
        events
    }
}

/// A payload in the holding ring: taken out of its slab slot at its
/// original delivery round, re-injected into the same (sender-side)
/// slot at `due`.
pub(crate) struct Parked<M> {
    /// First round the payload may be read (postponed +1 whenever the
    /// slot is occupied by a fresh send at that round).
    pub(crate) due: u64,
    /// Global slot index (sender's `port_base + port`) — the same slot
    /// the receiver reads through `reverse_port`.
    pub(crate) slot: usize,
    /// Receiver node (for the halted/crashed discard check and inbox
    /// accounting at injection).
    pub(crate) to: NodeId,
    /// Park order, tiebreaker of the deterministic `(slot, seq)`
    /// injection order.
    pub(crate) seq: u64,
    /// The payload; `None` only transiently during injection.
    pub(crate) msg: Option<M>,
}

/// The runtime state of one network's adversary: the installed plan,
/// the per-fault-class RNG streams, burst link states, the holding
/// ring, and the pre-sampled crash schedule.
///
/// Buffers here are deliberately **not** charged to the message-plane
/// allocation gauge (like the parallel executor's scratch): enabling
/// faults must not shift the `plane_allocs` counters committed in
/// BENCH records.
pub(crate) struct Adversary<M> {
    pub(crate) plan: FaultPlan,
    seed: u64,
    /// Bernoulli drop stream — the legacy `loss_rng` (same derivation,
    /// same consumption points), so pure-drop plans replay old lossy
    /// runs bit-for-bit.
    pub(crate) drop_rng: SplitMix64,
    pub(crate) burst_rng: SplitMix64,
    pub(crate) delay_rng: SplitMix64,
    pub(crate) stall_rng: SplitMix64,
    /// Per-slot burst state (`true` = link down); empty unless the
    /// plan has a burst model.
    pub(crate) burst_down: Vec<bool>,
    /// The holding ring of delayed payloads.
    pub(crate) parked: Vec<Parked<M>>,
    parked_seq: u64,
    /// Pre-sampled crash/rejoin events, sorted by round.
    crash_events: Vec<CrashEvent>,
    crash_next: usize,
    /// `crashed[v]` = `v` is down and pending a rejoin (or down
    /// forever); empty unless the plan has crash faults.
    crashed: Vec<bool>,
    /// Resolved per-edge per-round budget (`u64::MAX` = unlimited).
    pub(crate) budget_bits: u64,
}

impl<M> Adversary<M> {
    /// A fault-free adversary for a network seeded with `seed`. The
    /// drop stream is derived eagerly so the legacy construction order
    /// (`loss_rng` at network birth) is preserved.
    pub(crate) fn new(seed: u64) -> Self {
        Adversary {
            plan: FaultPlan::NONE,
            seed,
            drop_rng: SplitMix64::for_node(seed, STREAM_DROP),
            burst_rng: SplitMix64::for_node(seed, STREAM_BURST),
            delay_rng: SplitMix64::for_node(seed, STREAM_DELAY),
            stall_rng: SplitMix64::for_node(seed, STREAM_STALL),
            burst_down: Vec::new(),
            parked: Vec::new(),
            parked_seq: 0,
            crash_events: Vec::new(),
            crash_next: 0,
            crashed: Vec::new(),
            budget_bits: u64::MAX,
        }
    }

    /// Install `plan`, (re)deriving all plan-dependent state from the
    /// seed and topology. Installation is a pre-run builder step:
    /// streams are reset to their origins, so installing the same plan
    /// twice is idempotent.
    pub(crate) fn install(&mut self, plan: FaultPlan, topo: &Topology) {
        self.plan = plan;
        self.drop_rng = SplitMix64::for_node(self.seed, STREAM_DROP);
        self.burst_rng = SplitMix64::for_node(self.seed, STREAM_BURST);
        self.delay_rng = SplitMix64::for_node(self.seed, STREAM_DELAY);
        self.stall_rng = SplitMix64::for_node(self.seed, STREAM_STALL);
        self.burst_down = if plan.burst.is_some() {
            vec![false; topo.total_ports()]
        } else {
            Vec::new()
        };
        self.parked.clear();
        self.parked_seq = 0;
        self.crash_events = plan.crash_schedule(self.seed, topo.len());
        self.crash_next = 0;
        self.crashed = if plan.crash_p > 0.0 {
            vec![false; topo.len()]
        } else {
            Vec::new()
        };
        self.budget_bits = plan.budget.effective_bits(topo.len());
    }

    /// Is any fault class live (fast-path check for the delivery sweep)?
    #[inline]
    pub(crate) fn is_active(&self) -> bool {
        self.plan.is_active()
    }

    /// True while the holding ring still has parked payloads (quiet
    /// detection must not declare a network idle under them).
    #[inline]
    pub(crate) fn parked_empty(&self) -> bool {
        self.parked.is_empty()
    }

    /// Is node `v` currently crashed (down, possibly pending rejoin)?
    #[inline]
    pub(crate) fn is_crashed(&self, v: usize) -> bool {
        self.crashed.get(v).copied().unwrap_or(false)
    }

    /// Mark `v` crashed. Returns false if the plan has no crash state
    /// (defensive; callers only reach this off a scheduled event).
    pub(crate) fn set_crashed(&mut self, v: usize, down: bool) {
        if let Some(c) = self.crashed.get_mut(v) {
            *c = down;
        }
    }

    /// Pop the next crash/rejoin event due at or before `round`, if any.
    pub(crate) fn next_crash(&mut self, round: u64) -> Option<CrashEvent> {
        let ev = *self.crash_events.get(self.crash_next)?;
        if ev.round <= round {
            self.crash_next += 1;
            Some(ev)
        } else {
            None
        }
    }

    /// Are there crash events at all (fast path for the per-step hook)?
    #[inline]
    pub(crate) fn has_crash_events(&self) -> bool {
        self.crash_next < self.crash_events.len()
    }

    /// Advance every edge's two-state burst chain by one round. One
    /// draw per slot per round, in slot order, only while a burst model
    /// is installed — so enabling bursts is the only thing that
    /// consumes the burst stream.
    pub(crate) fn evolve_bursts(&mut self) {
        let Some(markov) = self.plan.burst else {
            return;
        };
        for down in &mut self.burst_down {
            let p = if *down { markov.repair } else { markov.fail };
            if self.burst_rng.bernoulli(p) {
                *down = !*down;
            }
        }
    }

    /// Park a payload until `due`.
    pub(crate) fn park(&mut self, due: u64, slot: usize, to: NodeId, msg: M) {
        self.parked.push(Parked {
            due,
            slot,
            to,
            seq: self.parked_seq,
            msg: Some(msg),
        });
        self.parked_seq += 1;
    }

    /// Migrate adversary state across a topology change: burst states
    /// follow their surviving slots, parked payloads on removed edges
    /// are dropped (matching the slab remap's rule for in-flight mail).
    pub(crate) fn on_rewire(&mut self, patch: &TopologyPatch, new_topo: &Topology) {
        if self.plan.burst.is_some() {
            let mut down = vec![false; new_topo.total_ports()];
            for (old, was_down) in self.burst_down.iter().enumerate() {
                if *was_down {
                    if let Some(new) = patch.new_slot(old) {
                        down[new] = true;
                    }
                }
            }
            self.burst_down = down;
        }
        self.parked.retain_mut(|e| match patch.new_slot(e.slot) {
            Some(new) => {
                e.slot = new;
                true
            }
            None => false,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamped01_maps_out_of_range_and_nan() {
        assert_eq!(clamped01(-0.5), 0.0);
        assert_eq!(clamped01(1.5), 1.0);
        assert_eq!(clamped01(0.25), 0.25);
        assert_eq!(clamped01(f64::NAN), 0.0);
        assert_eq!(clamped01(f64::INFINITY), 1.0);
        assert_eq!(clamped01(f64::NEG_INFINITY), 0.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "outside [0, 1]")]
    fn with_drop_debug_asserts_range() {
        let _ = FaultPlan::drop(1.5);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "outside [0, 1]")]
    fn with_crash_debug_asserts_range() {
        let _ = FaultPlan::NONE.with_crash(-0.1, 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "MAX_DELAY_ROUNDS")]
    fn with_delay_debug_asserts_bound() {
        let _ = FaultPlan::NONE.with_delay(MAX_DELAY_ROUNDS + 1);
    }

    #[test]
    fn none_plan_is_inactive_and_synchronous() {
        assert!(!FaultPlan::NONE.is_active());
        assert!(!FaultPlan::NONE.breaks_synchrony());
    }

    #[test]
    fn pure_drop_keeps_synchrony_but_is_active() {
        let p = FaultPlan::drop(0.2);
        assert!(p.is_active());
        assert!(!p.breaks_synchrony());
        assert_eq!(p.drop_p(), 0.2);
    }

    #[test]
    fn asynchrony_classes_are_detected() {
        assert!(FaultPlan::NONE.with_delay(3).breaks_synchrony());
        assert!(FaultPlan::NONE.with_stall(0.1).breaks_synchrony());
        assert!(FaultPlan::NONE.with_crash(0.01, 5).breaks_synchrony());
        assert!(FaultPlan::NONE.with_burst(0.1, 0.5).breaks_synchrony());
        // Degrade-mode budgets defer bits into later rounds…
        assert!(FaultPlan::NONE
            .with_budget(Budget::Bits(64))
            .breaks_synchrony());
        // …strict budgets panic instead of deferring.
        assert!(!FaultPlan::NONE
            .with_budget(Budget::Bits(64))
            .strict()
            .breaks_synchrony());
    }

    #[test]
    fn budget_resolution() {
        assert_eq!(Budget::Unlimited.effective_bits(1000), u64::MAX);
        assert_eq!(Budget::Bits(96).effective_bits(1000), 96);
        // id_bits(1024) = 10.
        assert_eq!(Budget::LogN(4).effective_bits(1024), 40);
        // Degenerate budgets are floored at one bit / one word.
        assert_eq!(Budget::Bits(0).effective_bits(10), 1);
    }

    #[test]
    fn crash_schedule_is_deterministic_sorted_and_paired() {
        let plan = FaultPlan::NONE.with_crash(0.05, 7);
        let a = plan.crash_schedule(42, 50);
        let b = plan.crash_schedule(42, 50);
        assert_eq!(a, b, "same seed must give the same schedule");
        assert!(a.windows(2).all(|w| w[0].round <= w[1].round), "sorted");
        // Every node crashes exactly once and rejoins exactly once,
        // rejoin_after rounds later.
        let crashes: Vec<_> = a.iter().filter(|e| e.kind == CrashKind::Crash).collect();
        let rejoins: Vec<_> = a.iter().filter(|e| e.kind == CrashKind::Rejoin).collect();
        assert_eq!(crashes.len(), 50);
        assert_eq!(rejoins.len(), 50);
        for c in crashes {
            assert!(rejoins
                .iter()
                .any(|r| r.node == c.node && r.round == c.round + 7));
        }
        let c = plan.crash_schedule(43, 50);
        assert_ne!(a, c, "different seeds must give different schedules");
    }

    #[test]
    fn crash_schedule_certain_crash_hits_round_zero() {
        let plan = FaultPlan::NONE.with_crash(1.0, 0);
        let sched = plan.crash_schedule(9, 4);
        assert_eq!(sched.len(), 4);
        assert!(sched.iter().all(|e| e.round == 0));
    }

    #[test]
    fn crash_schedule_empty_without_crash_faults() {
        assert!(FaultPlan::drop(0.5).crash_schedule(1, 100).is_empty());
    }

    #[test]
    fn setters_clamp_in_release_semantics() {
        // Exercise the clamping helper through the public surface with
        // in-range values (out-of-range trips the debug_assert above);
        // the helper itself is tested for the release-mode clamp.
        let p = FaultPlan::drop(1.0).with_stall(0.0).with_delay(5);
        assert_eq!(p.drop_p(), 1.0);
        assert_eq!(p.delay_max(), 5);
    }
}
