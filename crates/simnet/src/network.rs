//! The synchronous round loop.
//!
//! A [`Network`] owns one [`Protocol`] state per node plus the
//! [`Topology`]. Each call to [`Network::step`] executes one synchronous
//! round: every live node receives the messages addressed to it in the
//! previous round, runs its local computation, and emits messages for
//! the next round. All accounting (rounds, messages, bits) happens here.
//!
//! Messages travel through the double-buffered, port-indexed plane of
//! [`crate::mailbox`]: `Ctx::send` writes straight into a preallocated
//! slot slab, and receivers read the same slots in place next round
//! through an [`Inbox`] view. Delivery performs no allocation and no
//! sorting — inbox order is positional (ascending arrival port), which
//! is what the old sort-based delivery produced, so protocol semantics
//! are unchanged.

use crate::adversary::{Adversary, CongestMode, CrashKind, FaultPlan};
use crate::mailbox::{Inbox, Slab, DEAD_STAMP};
use crate::message::BitSize;
use crate::parallel::CostModel;
use crate::rng::SplitMix64;
use crate::stats::{timing, NetStats};
use crate::topology::{NodeId, Port, Topology, TopologyPatch};
use std::time::Instant;

/// A distributed algorithm, from the point of view of a single node.
///
/// The same `Protocol` value is stepped once per round. State lives in
/// the implementing struct; randomness comes from the per-node stream in
/// [`Ctx::rng`]; communication goes through [`Ctx::send`].
pub trait Protocol: Send {
    /// The message type this protocol puts on wires.
    type Msg: Send + Sync + BitSize;

    /// Execute one synchronous round.
    ///
    /// `inbox` holds the messages sent to this node in the previous
    /// round, indexed by the local port they arrived on (iteration is in
    /// ascending port order, hence ascending sender id, since neighbor
    /// lists are sorted). Round 0 has an empty inbox.
    fn on_round(&mut self, ctx: &mut Ctx<'_, Self::Msg>, inbox: Inbox<'_, Self::Msg>);
}

/// Per-node view of an epoch boundary, handed to [`Rewire::on_rewire`]
/// while [`Network::rewire`] installs a new topology.
pub struct RewireCtx<'a> {
    node: NodeId,
    topo: &'a Topology,
    port_map: &'a [Option<Port>],
    born: &'a [Port],
    round: u64,
}

impl RewireCtx<'_> {
    /// This node's id.
    #[inline]
    pub fn id(&self) -> NodeId {
        self.node
    }

    /// The round the rewired network will execute next — the first
    /// round of the new epoch. Protocols that pace themselves by an
    /// epoch-local clock should record this and derive their phase as
    /// `ctx.round() - epoch_start`: unlike a per-step counter, the
    /// derivation stays correct for nodes that [`crate::Ctx::sleep`]
    /// through rounds.
    #[inline]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The node's degree before the rewire.
    #[inline]
    pub fn old_degree(&self) -> usize {
        self.port_map.len()
    }

    /// The node's degree after the rewire.
    #[inline]
    pub fn new_degree(&self) -> usize {
        self.topo.degree(self.node)
    }

    /// Where old port `p` lives now, or `None` when its edge vanished.
    #[inline]
    pub fn new_port(&self, p: Port) -> Option<Port> {
        self.port_map[p]
    }

    /// Ports of the new topology whose edge was just inserted,
    /// ascending. Per-port protocol state has no old value to migrate
    /// for these.
    #[inline]
    pub fn born_ports(&self) -> &[Port] {
        self.born
    }

    /// The new topology.
    #[inline]
    pub fn topo(&self) -> &Topology {
        self.topo
    }
}

/// Protocol state that can survive an epoch boundary of a dynamic
/// network: remap port-indexed state through [`RewireCtx::new_port`],
/// initialize born ports, and invalidate anything (e.g. a matched
/// edge) whose port vanished.
pub trait Rewire {
    /// Migrate this node's state across a topology change. Called once
    /// per node by [`Network::rewire`], before any further round.
    fn on_rewire(&mut self, ctx: &RewireCtx<'_>);
}

/// Per-round, per-node execution context handed to [`Protocol::on_round`].
pub struct Ctx<'a, M> {
    id: NodeId,
    round: u64,
    topo: &'a Topology,
    rng: &'a mut SplitMix64,
    /// This node's port range of the outgoing slab (stamps).
    out_stamp: &'a mut [u64],
    /// This node's port range of the outgoing slab (payload slots).
    out_msg: &'a mut [Option<M>],
    /// Generation the outgoing slab is accepting this round.
    out_gen: u64,
    /// Set on the first send; the executor appends the node to the
    /// round's sender list so delivery touches only senders.
    sent_any: &'a mut bool,
    halted: &'a mut bool,
    /// Set by [`Ctx::sleep`]; cleared by the executor at every step, so
    /// sleeping must be re-asserted each time the node runs.
    dozing: &'a mut bool,
}

impl<'a, M> Ctx<'a, M> {
    /// Internal constructor used by the sequential and parallel executors.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        id: NodeId,
        round: u64,
        topo: &'a Topology,
        rng: &'a mut SplitMix64,
        out_stamp: &'a mut [u64],
        out_msg: &'a mut [Option<M>],
        out_gen: u64,
        sent_any: &'a mut bool,
        halted: &'a mut bool,
        dozing: &'a mut bool,
    ) -> Self {
        Ctx {
            id,
            round,
            topo,
            rng,
            out_stamp,
            out_msg,
            out_gen,
            sent_any,
            halted,
            dozing,
        }
    }

    /// This node's id.
    #[inline]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The current round number (0-based).
    #[inline]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Degree of this node.
    #[inline]
    pub fn degree(&self) -> usize {
        self.out_msg.len()
    }

    /// Sorted neighbor ids.
    #[inline]
    pub fn neighbors(&self) -> &[NodeId] {
        self.topo.neighbors(self.id)
    }

    /// Neighbor on `port`.
    #[inline]
    pub fn neighbor(&self, port: Port) -> NodeId {
        self.topo.neighbor(self.id, port)
    }

    /// Port leading to neighbor `u`, if adjacent.
    #[inline]
    pub fn port_to(&self, u: NodeId) -> Option<Port> {
        self.topo.port_to(self.id, u)
    }

    /// This node's deterministic RNG stream.
    #[inline]
    pub fn rng(&mut self) -> &mut SplitMix64 {
        self.rng
    }

    /// Send `msg` to the neighbor on `port`; delivered next round.
    ///
    /// The message plane holds exactly one slot per directed edge, so a
    /// node may send **at most one message per port per round** (the
    /// synchronous CONGEST contract). Sending twice on the same port in
    /// one round panics.
    #[inline]
    pub fn send(&mut self, port: Port, msg: M) {
        assert!(port < self.out_msg.len(), "send on invalid port");
        assert!(
            self.out_stamp[port] != self.out_gen,
            "duplicate send on port {port}: one message per port per round"
        );
        self.out_stamp[port] = self.out_gen;
        self.out_msg[port] = Some(msg);
        *self.sent_any = true;
    }

    /// Send a copy of `msg` to every neighbor.
    pub fn send_all(&mut self, msg: M)
    where
        M: Clone,
    {
        for port in 0..self.degree() {
            self.send(port, msg.clone());
        }
    }

    /// Stop participating: this node will not be stepped again and
    /// messages sent to it are dropped. Messages it sent *this* round
    /// are still delivered.
    #[inline]
    pub fn halt(&mut self) {
        *self.halted = true;
    }

    /// Park until something happens: this node is not stepped again
    /// until a message is delivered to it or it is woken externally
    /// ([`Network::wake`] / a rewire's dirty set). Unlike
    /// [`Ctx::halt`], mail addressed to a sleeping node is *kept* —
    /// its arrival is exactly what wakes the node.
    ///
    /// Sleep lasts until the next step: a woken node that still has
    /// nothing to do must call `sleep` again. Under the dense fallback
    /// scheduler the same contract holds (the sweep skips sleeping
    /// nodes without mail), so sleeping protocols remain bit-identical
    /// across [`SchedMode`]s; under [`SchedMode::Sparse`] a sleeping
    /// node additionally costs the round loop *nothing*.
    ///
    /// Messages sent this round are still delivered, and a node may
    /// both send and sleep (the replies will wake it).
    #[inline]
    pub fn sleep(&mut self) {
        *self.dozing = true;
    }
}

/// Result of driving a network with one of the `run_*` methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Rounds executed by this call (not cumulative).
    pub rounds: u64,
    /// True if every node halted.
    pub all_halted: bool,
    /// True if the run ended because the network went quiet (no
    /// messages in flight and none produced).
    pub quiescent: bool,
}

/// Which round scheduler drives [`Network::step`].
///
/// All modes step exactly the same set of nodes each round (the
/// scheduler contract below), so results are **bit-identical**; they
/// differ only in how that set is found:
///
/// * [`SchedMode::Sparse`] (the default) drains an epoch-stamped wake
///   list — round cost is proportional to the number of *active*
///   nodes, not `n`. This is the activity-driven plane: protocols that
///   halt or [`Ctx::sleep`] drop out of the per-round cost entirely.
/// * [`SchedMode::Dense`] sweeps `0..n` every round, skipping halted
///   and sleeping nodes — the classical executor, kept as a fallback
///   and as the reference the property suites compare against.
/// * [`SchedMode::Hybrid`] keeps **both frontier representations** and
///   switches per round with a deterministic `judge()` threshold, the
///   direction-optimizing pattern of parlay's LDD: high-activity
///   rounds run as a dense sweep (no wake-list sort, push, or
///   delivery-stamp dedup), low-activity rounds drain the sparse wake
///   list. Sparse→dense conversion is free (the halt/doze/mail flags
///   the dense sweep reads are maintained in every mode); dense→sparse
///   pays one O(n) wake-list rebuild from the scheduler predicate. The
///   judge never inspects wall-clock or thread counts, so a hybrid
///   run's representation sequence — and hence its `sched_overhead`
///   trace — is reproducible; everything else is bit-identical to the
///   other two modes.
///
/// **Scheduler contract** — a node `v` is stepped in round `r` iff it
/// is not halted and at least one of:
///
/// 1. `r` is the first round after construction (everyone starts
///    awake),
/// 2. `v` was stepped in round `r-1` and called neither [`Ctx::halt`]
///    nor [`Ctx::sleep`] (staying awake is the default),
/// 3. a message was delivered to `v` for round `r` (mail always wakes
///    a sleeping node), or
/// 4. `v` was woken externally since its last step ([`Network::wake`],
///    or the dirty set of a [`Network::rewire`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SchedMode {
    /// Activity-driven wake list: round cost ∝ active nodes.
    #[default]
    Sparse,
    /// Dense `0..n` sweep: round cost ∝ `n` (fallback / reference).
    Dense,
    /// Judge-switched dual representation: dense sweep above the
    /// activity threshold, sparse wake list below it.
    Hybrid,
}

/// Hybrid judge, upswitch: a round whose (upper-bound) scheduled count
/// is at least `n / HYBRID_DENSE_DIV` runs as a dense sweep. At that
/// activity the wake list's sort + per-node push + per-delivery stamp
/// dedup cost more than scanning the `n - active` idle flag slots.
pub(crate) const HYBRID_DENSE_DIV: usize = 8;

/// Hybrid judge, downswitch: a dense round whose *previous* round
/// stepped fewer than `n / HYBRID_SPARSE_DIV` nodes converts back to
/// the sparse representation (one O(n) wake-list rebuild). The gap to
/// [`HYBRID_DENSE_DIV`] is hysteresis so activity hovering near the
/// threshold does not thrash conversions.
pub(crate) const HYBRID_SPARSE_DIV: usize = 16;

/// Execution knobs shared by every layer that builds a [`Network`]:
/// worker-thread count, fault injection, and the round scheduler.
/// Algorithms that compose several network phases thread one `ExecCfg`
/// through all of them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecCfg {
    /// Worker threads for node stepping (1 = sequential). This is a
    /// *ceiling*, not a demand: the per-round cost model spawns fewer
    /// workers (down to none) when the measured workload would not pay
    /// for them. Results are bit-identical regardless of the value.
    pub threads: usize,
    /// Message-loss probability (0.0 = reliable). Kept as the
    /// historical shorthand for a uniform-drop plan: a nonzero value
    /// overrides the drop probability of [`ExecCfg::faults`] (see
    /// [`ExecCfg::effective_faults`]), and the drop decisions are
    /// bit-identical to the pre-adversary loss path.
    pub loss: f64,
    /// The full adversary plan (drop, burst, delay, stall, crash,
    /// CONGEST budget). [`FaultPlan::NONE`] by default.
    pub faults: FaultPlan,
    /// Round scheduler (sparse wake list / dense sweep / judge-switched
    /// hybrid). Results are bit-identical regardless of the value.
    pub sched: SchedMode,
    /// Collect the per-phase wall-clock breakdown into the
    /// [`NetStats::timings`] histogram registry (see
    /// [`crate::stats::timing`] for the names). Off by default: the
    /// samples cost a few clock reads per round and — like
    /// `sched_overhead` — are excluded from the bit-identity contract,
    /// so identity suites leave this off or mask
    /// [`NetStats::timings`].
    pub timing: bool,
    /// Test/bench escape hatch: bypass the cost model and spawn one
    /// worker per requested thread regardless of machine or workload,
    /// so the parallel partitioners run for real on any host. Never
    /// set this in production configs — on small workloads it
    /// re-creates the thread-spawn pathology the cost model exists to
    /// prevent.
    pub force_parallel: bool,
}

impl Default for ExecCfg {
    fn default() -> Self {
        ExecCfg::sequential()
    }
}

impl ExecCfg {
    /// Sequential, reliable execution (the paper's model).
    pub const fn sequential() -> Self {
        ExecCfg {
            threads: 1,
            loss: 0.0,
            faults: FaultPlan::NONE,
            sched: SchedMode::Sparse,
            timing: false,
            force_parallel: false,
        }
    }

    /// Parallel stepping with up to `threads` workers, reliable
    /// delivery.
    pub const fn parallel(threads: usize) -> Self {
        ExecCfg {
            threads,
            ..ExecCfg::sequential()
        }
    }

    /// The same configuration under the dense fallback scheduler.
    pub const fn dense(mut self) -> Self {
        self.sched = SchedMode::Dense;
        self
    }

    /// The same configuration under the judge-switched hybrid
    /// scheduler.
    pub const fn hybrid(mut self) -> Self {
        self.sched = SchedMode::Hybrid;
        self
    }

    /// The same configuration with per-phase timing gauges enabled.
    pub const fn timed(mut self) -> Self {
        self.timing = true;
        self
    }

    /// The same configuration with the cost model bypassed (testing
    /// only; see [`ExecCfg::force_parallel`]).
    pub const fn forced(mut self) -> Self {
        self.force_parallel = true;
        self
    }

    /// The same configuration under adversary plan `faults`.
    pub const fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// The plan the network actually installs: [`ExecCfg::faults`],
    /// with a nonzero legacy [`ExecCfg::loss`] overriding the drop
    /// probability (the historical knob wins, so existing loss-seeded
    /// configurations reproduce bit-for-bit).
    pub fn effective_faults(&self) -> FaultPlan {
        if self.loss > 0.0 {
            self.faults.with_drop(self.loss)
        } else {
            self.faults
        }
    }
}

/// Per-worker scratch of the parallel executor: the sender buffer and
/// the per-chunk counters, recorded contention-free per chunk and
/// merged in chunk (= node) order after the join. Reused every round;
/// deliberately not charged to the plane gauge so stats stay
/// bit-identical across thread counts.
///
/// Next-frontier (wake) output does **not** live here: each worker
/// writes wake ids into its own disjoint window of the shared,
/// round-sized `wake_next` buffer — a local queue bounded by the
/// chunk's active count, with no shared-structure contention and no
/// spill (the bound is exact: a chunk wakes at most the nodes it
/// steps). The merge is an in-order compaction of those windows.
#[derive(Default)]
pub(crate) struct WorkerScratch {
    /// Nodes of this chunk that sent at least one message. Capacity is
    /// reserved to the chunk's active count once per round, before the
    /// step loop, so the hot loop never grows it.
    pub(crate) touched: Vec<NodeId>,
    /// Wake entries this worker wrote into its `wake_next` window.
    pub(crate) wake_len: usize,
    /// Size of this worker's `wake_next` window (= chunk active count).
    pub(crate) wake_cap: usize,
    /// Nodes of this chunk that halted this round.
    pub(crate) halts: u64,
    /// Nodes of this chunk actually stepped this round.
    pub(crate) stepped: u64,
    /// Flight-recorder span bounds for this worker's section, in ns
    /// since the recorder epoch the main thread handed over. Written
    /// by the worker only when tracing is enabled; the main thread
    /// turns them into `WorkerSpan` events after the join (workers
    /// never touch the thread-local recorder). Observation only —
    /// never read by the algorithm.
    pub(crate) span_t0_ns: u64,
    pub(crate) span_t1_ns: u64,
}

impl WorkerScratch {
    /// Ready the scratch for a new round: clear, and size the sender
    /// buffer once so the step loop performs no reallocation.
    pub(crate) fn prepare(&mut self, chunk_nodes: usize) {
        self.touched.clear();
        self.touched.reserve(chunk_nodes);
        self.wake_len = 0;
        self.wake_cap = 0;
        self.halts = 0;
        self.stepped = 0;
        self.span_t0_ns = 0;
        self.span_t1_ns = 0;
    }
}

/// A synchronous network: topology + per-node protocol state.
pub struct Network<P: Protocol> {
    pub(crate) topo: Topology,
    pub(crate) nodes: Vec<P>,
    pub(crate) halted: Vec<bool>,
    /// Nodes not yet halted — maintained incrementally so
    /// [`Network::all_halted`] is O(1) instead of an O(n) scan.
    pub(crate) live: usize,
    /// `dozing[v]` = `v` called [`Ctx::sleep`] the last time it was
    /// stepped (cleared on every step; see the [`SchedMode`] contract).
    pub(crate) dozing: Vec<bool>,
    pub(crate) rngs: Vec<SplitMix64>,
    /// The double-buffered message plane: the slab indexed by the
    /// current round's parity collects this round's sends, the other
    /// one holds last round's (being read through [`Inbox`] views).
    pub(crate) planes: [Slab<P::Msg>; 2],
    /// Nodes that sent at least one message this round, in node order
    /// (delivery walks only these). Reused every round.
    pub(crate) touched: Vec<NodeId>,
    /// Per-worker scratch for the parallel executor. Reused every round.
    pub(crate) workers: Vec<WorkerScratch>,
    /// Sparse scheduler: nodes scheduled for the round about to
    /// execute, ascending once sorted at the top of `step`. An entry is
    /// valid only while `wake_stamp[v]` equals that round (epoch
    /// stamping — no per-round clearing of the dense bitset).
    pub(crate) wake_cur: Vec<NodeId>,
    /// Sparse scheduler: nodes scheduled for the *next* round
    /// (auto-reschedules in node order, then delivery wake-ups).
    pub(crate) wake_next: Vec<NodeId>,
    /// `wake_stamp[v]` = round `v` is scheduled for (dedupes wake-list
    /// pushes; `u64::MAX` = never).
    pub(crate) wake_stamp: Vec<u64>,
    /// `inbox_count[v]` = messages awaiting `v`, valid when
    /// `inbox_count_round[v]` equals the round about to read them
    /// (generation-stamped, so no per-round clearing).
    pub(crate) inbox_count: Vec<u32>,
    pub(crate) inbox_count_round: Vec<u64>,
    /// Messages delivered by the previous round (readable this round).
    pub(crate) in_flight: u64,
    /// Buffer allocations performed by the message plane, cumulative.
    pub(crate) alloc_events: u64,
    /// `alloc_events` at the end of the previous round (for the
    /// per-round gauge).
    pub(crate) alloc_mark: u64,
    pub(crate) stats: NetStats,
    pub(crate) round: u64,
    /// Number of worker threads for node stepping (1 = sequential).
    pub(crate) threads: usize,
    /// Test-only: bypass the cost model so unit tests exercise real
    /// multi-worker rounds on any machine and workload size (see
    /// [`ExecCfg::force_parallel`]).
    pub(crate) force_parallel: bool,
    /// Round scheduler (sparse wake list / dense sweep / hybrid).
    pub(crate) sched: SchedMode,
    /// The representation the *next* round will run in: `true` = dense
    /// flag sweep, `false` = sparse wake list. Fixed for the pure
    /// modes; flipped by the judge under [`SchedMode::Hybrid`]. While
    /// dense, the wake list is not maintained (it lapses) and is
    /// rebuilt from the scheduler predicate on conversion back.
    pub(crate) frontier_dense: bool,
    /// Judge input while the frontier is dense: the number of nodes the
    /// previous round stepped (while sparse, the wake-list length is
    /// the exact upcoming count, so this is not consulted).
    pub(crate) est_active: u64,
    /// Per-round seq-vs-parallel cost model (measured ns/work-unit
    /// EWMAs; purely a performance decision, results are bit-identical
    /// whichever path it picks).
    pub(crate) cost: CostModel,
    /// Largest worker count any round actually spawned (1 = every
    /// round ran sequentially). Bench/CI fingerprint material.
    pub(crate) peak_workers: usize,
    /// Collect the [`crate::stats::timing`] histograms (see
    /// [`ExecCfg::timing`]).
    pub(crate) timing: bool,
    /// The adversary plane every delivery passes through: fault-class
    /// RNG streams (independent of node streams so that enabling
    /// faults does not perturb node randomness), burst link states,
    /// the delayed-payload holding ring, and the pre-sampled crash
    /// schedule. Inert ([`FaultPlan::NONE`]) by default.
    pub(crate) adversary: Adversary<P::Msg>,
}

impl<P: Protocol> Network<P> {
    /// Create a network. `nodes[v]` is the protocol state of node `v`;
    /// its RNG stream is derived from `seed` and `v`.
    ///
    /// All message-plane buffers are allocated here, sized by the
    /// topology (one slot per directed edge, twice for the double
    /// buffer); steady-state stepping performs no further heap
    /// allocation.
    pub fn new(topo: Topology, nodes: Vec<P>, seed: u64) -> Self {
        assert_eq!(topo.len(), nodes.len(), "one protocol state per node");
        let n = topo.len();
        let total = topo.total_ports();
        let rngs = (0..n)
            .map(|v| SplitMix64::for_node(seed, v as u64))
            .collect();
        let mut alloc_events = 0u64;
        let planes = [
            Slab::new(total, &mut alloc_events),
            Slab::new(total, &mut alloc_events),
        ];
        // touched + inbox_count + inbox_count_round + dozing +
        // wake_cur + wake_next + wake_stamp — all preallocated here
        // (wake lists at full capacity: a node appears at most once per
        // round, so they never grow), charged identically in both
        // scheduling modes.
        alloc_events += 7;
        Network {
            topo,
            nodes,
            halted: vec![false; n],
            live: n,
            dozing: vec![false; n],
            rngs,
            planes,
            touched: Vec::with_capacity(n),
            workers: Vec::new(),
            // Round 0: everyone starts awake.
            wake_cur: (0..n as NodeId).collect(),
            wake_next: Vec::with_capacity(n),
            wake_stamp: vec![0; n],
            inbox_count: vec![0; n],
            inbox_count_round: vec![u64::MAX; n],
            in_flight: 0,
            alloc_events,
            alloc_mark: 0,
            stats: NetStats::default(),
            round: 0,
            threads: 1,
            force_parallel: false,
            sched: SchedMode::default(),
            frontier_dense: false,
            est_active: n as u64,
            cost: CostModel::new(),
            peak_workers: 1,
            timing: false,
            adversary: Adversary::new(seed),
        }
    }

    /// Use `threads` worker threads to step nodes (results are identical
    /// to sequential execution; see `parallel.rs`).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Inject message loss: every message is independently dropped with
    /// probability `p` **after** being charged to the statistics (the
    /// sender paid for it). The paper's model is fault-free; this knob
    /// exists for robustness testing — protocols are expected to keep
    /// their *safety* properties but may lose liveness.
    ///
    /// Shorthand for [`Network::with_faults`] with
    /// [`FaultPlan::drop`]`(p)` merged into the current plan. Like
    /// every plan setter, `p` is clamped to `[0, 1]` (with a
    /// `debug_assert` on out-of-range input) instead of being silently
    /// accepted.
    pub fn with_message_loss(self, p: f64) -> Self {
        let plan = self.adversary.plan.with_drop(p);
        self.with_faults(plan)
    }

    /// Install an adversary plan (drop / burst / delay / stall / crash
    /// / CONGEST budget — see [`crate::adversary`]). A pre-run builder
    /// step: the plan's RNG streams, burst states, and pre-sampled
    /// crash schedule are (re)derived from the construction seed and
    /// the topology, so installation is idempotent and same seed +
    /// same plan ⇒ bit-identical runs at any thread count and under
    /// any scheduler.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.adversary.install(plan, &self.topo);
        self
    }

    /// Select the round scheduler (construction-time knob; results are
    /// bit-identical across modes).
    pub fn with_sched(mut self, sched: SchedMode) -> Self {
        self.sched = sched;
        // Pure Dense runs dense from round 0; Sparse and Hybrid start
        // sparse (round 0 schedules everyone, so a hybrid judge
        // converts — for free — before the first step).
        self.frontier_dense = sched == SchedMode::Dense;
        self
    }

    /// Enable the per-phase timing gauges (see [`ExecCfg::timing`]).
    pub fn with_timing(mut self, timing: bool) -> Self {
        self.timing = timing;
        self
    }

    /// Apply all execution knobs of an [`ExecCfg`] at once.
    pub fn with_cfg(mut self, cfg: ExecCfg) -> Self {
        self.force_parallel = cfg.force_parallel;
        self.with_threads(cfg.threads)
            .with_faults(cfg.effective_faults())
            .with_sched(cfg.sched)
            .with_timing(cfg.timing)
    }

    /// Messages dropped by fault injection (Bernoulli + burst drops).
    pub fn dropped(&self) -> u64 {
        self.stats.dropped
    }

    /// The communication graph.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Immutable view of all node states.
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// Mutable view of all node states (for harness-level phase changes).
    pub fn nodes_mut(&mut self) -> &mut [P] {
        &mut self.nodes
    }

    /// Consume the network, returning node states and statistics.
    pub fn into_parts(self) -> (Vec<P>, NetStats) {
        (self.nodes, self.stats)
    }

    /// Accounting so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// True when every node has halted. O(1): halt bookkeeping is a
    /// maintained counter, not a scan (in both scheduling modes).
    pub fn all_halted(&self) -> bool {
        self.live == 0
    }

    /// Nodes not yet halted.
    pub fn live_nodes(&self) -> usize {
        self.live
    }

    /// True while the upcoming round schedules from the wake list
    /// (sparse representation). Dense rounds — pure [`SchedMode::Dense`]
    /// or a hybrid round above the judge threshold — derive scheduling
    /// from the halt/doze/mail flags and let the list lapse.
    #[inline]
    pub(crate) fn uses_wake_list(&self) -> bool {
        !self.frontier_dense
    }

    /// Wake `v` externally: un-halt it if needed, clear its sleep flag,
    /// and schedule it for the next round. The harness-level analogue
    /// of the wake-up a rewire's dirty set performs.
    ///
    /// A node the adversary has crashed refuses the wake-up: it stays
    /// down until its scheduled rejoin (resurrecting it early would
    /// let the harness undo a fault).
    pub fn wake(&mut self, v: NodeId) {
        if self.adversary.is_crashed(v as usize) {
            return;
        }
        if dobs::plane::enabled() {
            dobs::plane::record(dobs::Event::Wake {
                t_ns: dobs::plane::now_ns(),
                round: self.round,
                node: v as u64,
            });
        }
        let vi = v as usize;
        if self.halted[vi] {
            self.halted[vi] = false;
            self.live += 1;
        }
        self.dozing[vi] = false;
        // The wake list is live only in the sparse representation; a
        // dense round derives scheduling from the flags above, and
        // pushing here would grow a list the dense sweep never drains
        // (a hybrid dense→sparse conversion rebuilds it instead).
        if self.uses_wake_list() && self.wake_stamp[vi] != self.round {
            self.wake_stamp[vi] = self.round;
            self.wake_cur.push(v);
        }
    }

    /// Messages delivered last round and readable this round.
    pub fn in_flight(&self) -> u64 {
        self.in_flight
    }

    /// Plane-allocation gauge delta since the previous round (recorded
    /// into the round trace; 0 in steady state).
    pub(crate) fn take_alloc_delta(&mut self) -> u64 {
        let delta = self.alloc_events - self.alloc_mark;
        self.alloc_mark = self.alloc_events;
        delta
    }

    /// Largest worker count any round actually spawned so far (1 =
    /// everything ran sequentially — e.g. on a 1-core machine, or when
    /// every round's workload sat below the cost model's threshold).
    /// Benches record this next to the *requested* thread count so a
    /// `par_speedup ≈ 1.0` row is interpretable at a glance.
    pub fn peak_workers(&self) -> usize {
        self.peak_workers
    }

    /// The hybrid judge: pick the representation for the round about to
    /// execute and perform any conversion. Deterministic — inputs are
    /// node counts only, never wall-clock — so a hybrid run's
    /// representation sequence is reproducible.
    ///
    /// Upswitch (sparse→dense) triggers on the wake-list length (an
    /// exact upper bound on the upcoming scheduled count, stale entries
    /// included) and is free: the flags the dense sweep reads are
    /// maintained in every mode, the list simply lapses. Downswitch
    /// (dense→sparse) triggers on the previous round's stepped count
    /// and pays one O(n) wake-list rebuild from the scheduler
    /// predicate — charged to the `conversion_ns` timing histogram
    /// when timing is on, and amortized: it only happens when leaving
    /// a regime whose every round already cost O(n).
    ///
    /// Both switch directions emit a `dobs` [`ModeSwitch`] instant
    /// when a flight recorder is installed (observation only — the
    /// decision itself never reads the trace plane or the clock).
    ///
    /// [`ModeSwitch`]: dobs::Event::ModeSwitch
    fn choose_representation(&mut self) -> bool {
        match self.sched {
            SchedMode::Sparse => false,
            SchedMode::Dense => true,
            SchedMode::Hybrid => {
                let n = self.topo.len();
                if !self.frontier_dense {
                    if n > 0 && self.wake_cur.len() * HYBRID_DENSE_DIV >= n {
                        self.frontier_dense = true; // conversion is free
                        self.trace_mode_switch(true);
                    }
                } else if (self.est_active as usize) * HYBRID_SPARSE_DIV < n {
                    // dlint::allow(wall-clock, "timing gauge only: feeds the histogram, never steers execution; traced-vs-untraced bit-identity is property-tested")
                    let t0 = self.timing.then(Instant::now);
                    self.rebuild_wake_list();
                    self.frontier_dense = false;
                    if let Some(t0) = t0 {
                        self.stats
                            .timings
                            .record(timing::CONVERSION_NS, t0.elapsed().as_nanos() as u64);
                    }
                    self.trace_mode_switch(false);
                }
                self.frontier_dense
            }
        }
    }

    /// Record a scheduler representation switch into the installed
    /// flight recorder, if any.
    fn trace_mode_switch(&self, to_dense: bool) {
        if dobs::plane::enabled() {
            dobs::plane::record(dobs::Event::ModeSwitch {
                t_ns: dobs::plane::now_ns(),
                round: self.round,
                to_dense,
                wake_len: self.wake_cur.len() as u64,
            });
        }
    }

    /// Execute one synchronous round. Returns the number of messages
    /// sent during the round.
    ///
    /// Dispatch order: the hybrid judge picks the frontier
    /// representation, then the cost model picks sequential vs.
    /// parallel execution for that representation's workload. Both
    /// decisions are invisible in the results (bit-identity) — the
    /// judge is additionally deterministic, so the `sched_overhead`
    /// trace it shapes is reproducible too.
    pub fn step(&mut self) -> u64 {
        if self.adversary.has_crash_events() {
            self.apply_crash_events();
        }
        let dense = self.choose_representation();
        let workload = if dense {
            self.topo.len()
        } else {
            self.wake_cur.len()
        };
        let workers = if self.force_parallel {
            self.threads.min(workload.max(1))
        } else if self.threads > 1 {
            self.cost.plan(
                self.threads,
                crate::parallel::hw_parallelism(),
                workload,
                dense,
            )
        } else {
            1
        };
        self.peak_workers = self.peak_workers.max(workers);
        // The cost model learns from measured rounds; the timing gauges
        // want the same clock. One read serves both.
        let observe = self.threads > 1 && !self.force_parallel;
        // dlint::allow(wall-clock, "cost-model/gauge observation only: measured durations never steer the round schedule; traced-vs-untraced bit-identity is property-tested")
        let t0 = (observe || self.timing).then(Instant::now);
        // Flight-recorder span for the round (observation only; one
        // thread-local flag read when no recorder is installed).
        let traced = dobs::plane::enabled();
        let span_t0 = if traced { dobs::plane::now_ns() } else { 0 };
        let sent = match (dense, workers > 1) {
            (false, false) => self.step_sparse_seq(),
            (true, false) => self.step_dense_seq(),
            (false, true) => crate::parallel::step_parallel_sparse(self, workers),
            (true, true) => crate::parallel::step_parallel_dense(self, workers),
        };
        if let Some(t0) = t0 {
            let ns = t0.elapsed().as_nanos() as u64;
            if observe {
                self.cost.observe(dense, workers, workload, ns);
            }
            if self.timing {
                let phase = if dense {
                    timing::DENSE_UPDATE_NS
                } else {
                    timing::SPARSE_UPDATE_NS
                };
                self.stats.timings.record(phase, ns);
            }
        }
        if traced {
            let stepped = self.stats.per_round.last().map_or(0, |t| t.active);
            dobs::plane::record(dobs::Event::RoundSpan {
                round: self.round,
                t0_ns: span_t0,
                t1_ns: dobs::plane::now_ns(),
                stepped,
                sent,
                dense,
                workers: if workers > 1 { workers as u32 } else { 0 },
            });
        }
        sent
    }

    /// Apply the pre-sampled crash/rejoin events due at the top of the
    /// current round, before any node is stepped. Main-thread only and
    /// purely schedule-driven, so crash faults are bit-identical across
    /// executors and schedulers.
    fn apply_crash_events(&mut self) {
        let traced = dobs::plane::enabled();
        while let Some(ev) = self.adversary.next_crash(self.round) {
            let vi = ev.node as usize;
            match ev.kind {
                CrashKind::Crash => {
                    // A node that already halted on its own has nothing
                    // to take down — skip entirely (its rejoin event,
                    // if any, will find `crashed` unset and also skip).
                    if self.halted[vi] {
                        continue;
                    }
                    self.halted[vi] = true;
                    self.adversary.set_crashed(vi, true);
                    self.stats.crashed += 1;
                    // A permanent crash is as dead as a halt, so runs
                    // can terminate; a rejoin-pending node stays in
                    // `live` so the run loops keep stepping (possibly
                    // empty) rounds until it comes back.
                    if self.adversary.plan.rejoin_after() == 0 {
                        self.live -= 1;
                    }
                    if traced {
                        dobs::plane::record(dobs::Event::Fault {
                            t_ns: dobs::plane::now_ns(),
                            round: self.round,
                            node: ev.node as u64,
                            port: 0,
                            kind: dobs::FaultKind::Crash,
                        });
                    }
                }
                CrashKind::Rejoin => {
                    if !self.adversary.is_crashed(vi) {
                        continue; // the crash was skipped (node had halted)
                    }
                    self.adversary.set_crashed(vi, false);
                    // `live` was never decremented for a rejoin-pending
                    // crash, so only the flags come back.
                    self.halted[vi] = false;
                    self.dozing[vi] = false;
                    if self.uses_wake_list() && self.wake_stamp[vi] != self.round {
                        self.wake_stamp[vi] = self.round;
                        self.wake_cur.push(ev.node);
                    }
                    if traced {
                        dobs::plane::record(dobs::Event::Fault {
                            t_ns: dobs::plane::now_ns(),
                            round: self.round,
                            node: ev.node as u64,
                            port: 0,
                            kind: dobs::FaultKind::Rejoin,
                        });
                    }
                }
            }
        }
    }

    /// Close out a round: delivery accounting, round counter, gauges.
    /// Shared by both sequential executors (the parallel ones do the
    /// same after their join).
    pub(crate) fn finish_round(&mut self, stepped: u64, sched_overhead: u64) -> u64 {
        let round = self.round;
        let schedule = self.uses_wake_list();
        let (out_plane, _) = split_planes(&mut self.planes, round);
        let out = deliver(
            &self.topo,
            out_plane,
            &self.touched,
            &self.halted,
            &mut self.adversary,
            &mut self.stats,
            &mut self.inbox_count,
            &mut self.inbox_count_round,
            round + 1,
            schedule.then_some((&mut self.wake_stamp, &mut self.wake_next)),
        );
        self.in_flight = out.delivered;
        self.round += 1;
        if schedule {
            std::mem::swap(&mut self.wake_cur, &mut self.wake_next);
            // While sparse the wake list itself is the exact upcoming
            // count; keep the estimate fresh anyway for the round after
            // an upswitch.
            self.est_active = self.wake_cur.len() as u64;
        } else {
            self.est_active = stepped;
        }
        let allocs = self.take_alloc_delta();
        self.stats
            .record_round_gauges(out.sent, out.peak_inbox, allocs, stepped, sched_overhead);
        out.sent
    }

    /// The dense fallback sweep: O(n) per round, honoring the same
    /// halt/sleep/mail contract as the sparse scheduler.
    pub(crate) fn step_dense_seq(&mut self) -> u64 {
        let n = self.topo.len();
        let round = self.round;
        let (out_plane, in_plane) = split_planes(&mut self.planes, round);
        out_plane.advance();
        let out_gen = out_plane.gen;
        self.touched.clear();
        let mut stepped = 0u64;
        for v in 0..n {
            if self.halted[v] {
                continue;
            }
            let count = if self.inbox_count_round[v] == round {
                self.inbox_count[v]
            } else {
                0
            };
            if self.dozing[v] && count == 0 {
                continue; // asleep and no mail: contract says skip
            }
            stepped += 1;
            self.dozing[v] = false;
            let vid = v as NodeId;
            let inbox = Inbox::new(&self.topo, vid, in_plane, count);
            let base = self.topo.port_base(vid);
            let deg = self.topo.degree(vid);
            let mut sent_any = false;
            let mut ctx = Ctx::new(
                vid,
                round,
                &self.topo,
                &mut self.rngs[v],
                &mut out_plane.stamp[base..base + deg],
                &mut out_plane.msg[base..base + deg],
                out_gen,
                &mut sent_any,
                &mut self.halted[v],
                &mut self.dozing[v],
            );
            self.nodes[v].on_round(&mut ctx, inbox);
            if self.halted[v] {
                self.live -= 1;
            }
            if sent_any {
                self.touched.push(vid);
            }
        }
        self.finish_round(stepped, n as u64 - stepped)
    }

    /// The sparse activity-driven executor: drains the wake list, so
    /// the round costs O(active), not O(n). Bit-identical to the dense
    /// sweep (same stepped set, same delivery order).
    pub(crate) fn step_sparse_seq(&mut self) -> u64 {
        let round = self.round;
        // Auto-reschedules arrive in node order but delivery wake-ups
        // do not; one cheap mostly-sorted pass restores the ascending
        // order delivery (and the loss RNG stream) depends on.
        if !self.wake_cur.is_sorted() {
            self.wake_cur.sort_unstable();
        }
        let scanned = self.wake_cur.len() as u64;
        let (out_plane, in_plane) = split_planes(&mut self.planes, round);
        out_plane.advance();
        let out_gen = out_plane.gen;
        self.touched.clear();
        self.wake_next.clear();
        let mut stepped = 0u64;
        for i in 0..self.wake_cur.len() {
            let vid = self.wake_cur[i];
            let v = vid as usize;
            if self.halted[v] || self.wake_stamp[v] != round {
                continue; // stale entry (e.g. woken then halted)
            }
            stepped += 1;
            self.dozing[v] = false;
            let count = if self.inbox_count_round[v] == round {
                self.inbox_count[v]
            } else {
                0
            };
            let inbox = Inbox::new(&self.topo, vid, in_plane, count);
            let base = self.topo.port_base(vid);
            let deg = self.topo.degree(vid);
            let mut sent_any = false;
            let mut ctx = Ctx::new(
                vid,
                round,
                &self.topo,
                &mut self.rngs[v],
                &mut out_plane.stamp[base..base + deg],
                &mut out_plane.msg[base..base + deg],
                out_gen,
                &mut sent_any,
                &mut self.halted[v],
                &mut self.dozing[v],
            );
            self.nodes[v].on_round(&mut ctx, inbox);
            if self.halted[v] {
                self.live -= 1;
            } else if !self.dozing[v] {
                // Staying awake is the default: reschedule for round+1.
                self.wake_stamp[v] = round + 1;
                self.wake_next.push(vid);
            }
            if sent_any {
                self.touched.push(vid);
            }
        }
        self.finish_round(stepped, scanned - stepped)
    }

    /// Run until every node halts, or `max_rounds` elapse. Panics if the
    /// round budget is exhausted — a protocol that fails to halt within
    /// its theoretical bound is a bug we want loudly.
    pub fn run_until_halt(&mut self, max_rounds: u64) -> RunOutcome {
        let start = self.round;
        while !self.all_halted() {
            assert!(
                self.round - start < max_rounds,
                "protocol did not halt within {max_rounds} rounds"
            );
            self.step();
        }
        RunOutcome {
            rounds: self.round - start,
            all_halted: true,
            quiescent: false,
        }
    }

    /// Run until the network goes quiet: a round in which no messages
    /// were sent and none were in flight. Suitable for message-driven
    /// protocols. Stops early if all nodes halt.
    ///
    /// A network that is quiet from birth (no node sends in round 0) is
    /// recognized after exactly one round — the single round needed to
    /// observe that nobody spoke.
    pub fn run_until_quiet(&mut self, max_rounds: u64) -> RunOutcome {
        let start = self.round;
        loop {
            if self.all_halted() {
                return RunOutcome {
                    rounds: self.round - start,
                    all_halted: true,
                    quiescent: false,
                };
            }
            assert!(
                self.round - start < max_rounds,
                "network not quiet within {max_rounds} rounds"
            );
            let in_flight = self.in_flight;
            let sent = self.step();
            // Quiet requires the adversary's holding ring to be empty
            // too: a parked payload is still in flight, just late.
            // Pending *crash* events deliberately do not block quiet —
            // a network with no traffic left is idle even if a distant
            // crash is scheduled.
            if sent == 0 && in_flight == 0 && self.adversary.parked_empty() {
                return RunOutcome {
                    rounds: self.round - start,
                    all_halted: self.all_halted(),
                    quiescent: true,
                };
            }
        }
    }

    /// Run exactly `rounds` rounds (or until all nodes halt).
    pub fn run_rounds(&mut self, rounds: u64) -> RunOutcome {
        let start = self.round;
        for _ in 0..rounds {
            if self.all_halted() {
                break;
            }
            self.step();
        }
        RunOutcome {
            rounds: self.round - start,
            all_halted: self.all_halted(),
            quiescent: false,
        }
    }

    /// Nodes that sent at least one message in the most recent round,
    /// ascending. Used by dynamic-network harnesses to measure how far
    /// from the churn damage repair traffic actually travels.
    pub fn last_senders(&self) -> &[NodeId] {
        &self.touched
    }

    /// Install the new topology of `patch` at an epoch boundary,
    /// carrying the network across:
    ///
    /// * both message-plane slabs are remapped (`Slab::remap`):
    ///   in-flight messages on surviving directed edges keep their
    ///   slots (and are delivered next round as usual); messages on
    ///   removed edges are dropped; the whole migration moves payloads
    ///   in O(ports) with a constant number of buffer allocations,
    ///   never cloning a payload and never allocating per edge;
    /// * every node's protocol state is migrated through
    ///   [`Rewire::on_rewire`] with its old-port → new-port map and its
    ///   born ports;
    /// * nodes whose incident edges changed ([`TopologyPatch::dirty`])
    ///   are woken (un-halted) so they can take part in repair;
    /// * inbox accounting is recomputed for the surviving in-flight
    ///   mail (mail addressed to nodes still halted after the wake-up
    ///   is dropped, matching the delivery rule).
    ///
    /// The node population is fixed (`patch` must describe the same
    /// number of nodes); node churn is modelled by edge batches.
    /// Rounds, statistics, and per-node RNG streams continue across the
    /// boundary, so a rewired run remains bit-identical across thread
    /// counts.
    pub fn rewire(&mut self, patch: &TopologyPatch)
    where
        P: Rewire,
    {
        let new_topo = patch.topo();
        assert_eq!(
            new_topo.len(),
            self.topo.len(),
            "rewire preserves the node population"
        );
        if dobs::plane::enabled() {
            // Each added edge contributes one born port at both (dirty)
            // endpoints; the removed count follows from the edge delta.
            let born: usize = patch
                .dirty()
                .iter()
                .map(|&v| patch.born_ports(v).len())
                .sum();
            let added = (born / 2) as u64;
            let removed =
                (self.topo.num_edges() as u64 + added).saturating_sub(new_topo.num_edges() as u64);
            dobs::plane::record(dobs::Event::Rewire {
                t_ns: dobs::plane::now_ns(),
                round: self.round,
                added,
                removed,
                dirty: patch.dirty().len() as u64,
            });
        }
        let new_total = new_topo.total_ports();
        for plane in &mut self.planes {
            plane.remap(patch.slot_map(), new_total, &mut self.alloc_events);
        }
        // Adversary state follows the slot remap: burst link states
        // move with their surviving slots, parked payloads on removed
        // edges are dropped (same rule as the slabs' in-flight mail).
        self.adversary.on_rewire(patch, new_topo);
        let mut port_map: Vec<Option<Port>> = Vec::new(); // scratch, reused per node
        for v in 0..self.topo.len() {
            let vid = v as NodeId;
            let old_base = self.topo.port_base(vid);
            let new_base = new_topo.port_base(vid);
            port_map.clear();
            port_map.extend(
                (0..self.topo.degree(vid))
                    .map(|p| patch.new_slot(old_base + p).map(|s| s - new_base)),
            );
            let ctx = RewireCtx {
                node: vid,
                topo: new_topo,
                port_map: &port_map,
                born: patch.born_ports(vid),
                round: self.round,
            };
            self.nodes[v].on_rewire(&ctx);
        }
        for &v in patch.dirty() {
            let vi = v as usize;
            // Crashed nodes stay down through a rewire: resurrecting
            // them via the dirty set would undo the fault (and corrupt
            // the `live` accounting, which deferred their decrement).
            if self.adversary.is_crashed(vi) {
                continue;
            }
            if self.halted[vi] {
                self.halted[vi] = false;
                self.live += 1;
            }
            self.dozing[vi] = false;
        }
        self.topo = new_topo.clone();
        self.recount_inboxes();
        if self.uses_wake_list() {
            self.rebuild_wake_list();
        }
        // A rewire typically wakes a whole damage ball; refresh the
        // dense-side judge input so a hybrid run re-evaluates from the
        // post-rewire schedule size rather than a pre-churn count.
        self.est_active = self.est_active.max(patch.dirty().len() as u64);
    }

    /// Rebuild `inbox_count` / `in_flight` from the plane that will be
    /// read next round (after a rewire invalidated the delivery-time
    /// accounting).
    fn recount_inboxes(&mut self) {
        let round = self.round;
        let in_plane = &self.planes[((round + 1) % 2) as usize];
        let gen = in_plane.gen;
        let mut in_flight = 0u64;
        for v in 0..self.topo.len() {
            self.inbox_count[v] = 0;
            self.inbox_count_round[v] = round;
        }
        for v in 0..self.topo.len() as NodeId {
            let base = self.topo.port_base(v);
            for p in 0..self.topo.degree(v) {
                if in_plane.stamp[base + p] != gen {
                    continue;
                }
                let to = self.topo.neighbor(v, p) as usize;
                if self.halted[to] {
                    continue;
                }
                self.inbox_count[to] += 1;
                in_flight += 1;
            }
        }
        self.in_flight = in_flight;
    }

    /// Recompute the wake list for the next round from first
    /// principles (the dense sweep's predicate): scheduled iff live
    /// and (awake, or has mail). A rewire can both wake nodes (dirty
    /// set) and kill scheduled mail (remapped slabs drop removed
    /// edges' payloads), so patching the list incrementally would
    /// leak stale entries — rebuilding keeps the sparse schedule
    /// exactly equal to the dense one. O(n), like the rewire itself.
    fn rebuild_wake_list(&mut self) {
        let round = self.round;
        self.wake_cur.clear();
        for v in 0..self.topo.len() {
            let scheduled = !self.halted[v]
                && (!self.dozing[v]
                    || (self.inbox_count_round[v] == round && self.inbox_count[v] > 0));
            if scheduled {
                self.wake_stamp[v] = round;
                self.wake_cur.push(v as NodeId);
            }
        }
    }
}

/// Split the double buffer into (this round's out slab, last round's in
/// slab) by round parity.
pub(crate) fn split_planes<M>(planes: &mut [Slab<M>; 2], round: u64) -> (&mut Slab<M>, &Slab<M>) {
    let (a, b) = planes.split_at_mut(1);
    if round.is_multiple_of(2) {
        (&mut a[0], &b[0])
    } else {
        (&mut b[0], &a[0])
    }
}

/// Outcome of one delivery sweep.
pub(crate) struct DeliverOutcome {
    /// Messages sent (charged to stats, including lost ones).
    pub(crate) sent: u64,
    /// Messages actually readable next round (excludes lost messages
    /// and mail addressed to halted nodes).
    pub(crate) delivered: u64,
    /// Largest single inbox produced this round.
    pub(crate) peak_inbox: u64,
}

/// Account (and, under fault injection, cull, delay, or defer) the
/// messages written into `out` this round. Walks only the port ranges
/// of nodes that sent, in ascending node order then ascending port
/// order — a fixed order, so every adversary RNG stream is consumed
/// identically under sequential and parallel stepping. The fault-free
/// path performs **no allocation and no sorting**: the payloads stay
/// in their slots, where the receivers read them in place.
///
/// Per live slot, the adversary pipeline runs in this fixed,
/// documented order (each stream consumed only when its fault class is
/// enabled — see [`crate::adversary`]):
///
/// 1. charge statistics (the sender paid for the message);
/// 2. Bernoulli **drop** (the legacy `loss_rng` stream, drawn at the
///    legacy point, so pure-drop plans replay old lossy runs
///    bit-for-bit);
/// 3. **burst** drop if the slot's Markov link is down;
/// 4. **CONGEST** budget check — strict panics, degrade converts the
///    overflow into `⌈bits/B⌉ - 1` extra rounds and records
///    `deferred_bits`;
/// 5. receiver-halted check (mail to halted or crashed nodes is
///    dropped on the floor, unread — crash-stop);
/// 6. **stall** (+1 round) and **delay** (uniform `0..=D` rounds)
///    draws; a message owing extra rounds is parked in the holding
///    ring, otherwise it is delivered as usual.
///
/// After the sender walk, parked payloads due this round are
/// re-injected in deterministic `(slot, seq)` order: an occupied slot
/// postpones its payload one round, a halted/crashed receiver discards
/// it, and a delivered payload performs the same inbox/wake accounting
/// as a fresh message (its bits were charged at first crossing).
///
/// Under the sparse scheduler (`schedule` is `Some`), delivery is also
/// where mail wakes nodes: every receiver is stamped and appended to
/// the next round's wake list (deduped by the stamp, so a node already
/// auto-rescheduled is not pushed twice).
#[allow(clippy::too_many_arguments)]
pub(crate) fn deliver<M: BitSize>(
    topo: &Topology,
    out: &mut Slab<M>,
    touched: &[NodeId],
    halted: &[bool],
    adversary: &mut Adversary<M>,
    stats: &mut NetStats,
    inbox_count: &mut [u32],
    inbox_count_round: &mut [u64],
    read_round: u64,
    mut schedule: Option<(&mut [u64], &mut Vec<NodeId>)>,
) -> DeliverOutcome {
    let gen = out.gen;
    let mut sent = 0u64;
    let mut delivered = 0u64;
    let mut peak = 0u64;
    let faults = adversary.is_active();
    let traced = faults && dobs::plane::enabled();
    if faults {
        adversary.evolve_bursts();
    }
    let plan = adversary.plan;
    for &v in touched {
        let base = topo.port_base(v);
        for p in 0..topo.degree(v) {
            let slot = base + p;
            if out.stamp[slot] != gen {
                continue;
            }
            let bits = out.msg[slot]
                .as_ref()
                .expect("live slot holds a message")
                .bit_size();
            stats.record_message(bits);
            sent += 1;
            if plan.drop_p > 0.0 && adversary.drop_rng.bernoulli(plan.drop_p) {
                stats.dropped += 1;
                out.stamp[slot] = DEAD_STAMP; // fault injection ate it
                out.msg[slot] = None;
                if traced {
                    record_fault(read_round - 1, v, p, dobs::FaultKind::Drop);
                }
                continue;
            }
            if !adversary.burst_down.is_empty() && adversary.burst_down[slot] {
                stats.dropped += 1;
                out.stamp[slot] = DEAD_STAMP; // link is down this round
                out.msg[slot] = None;
                if traced {
                    record_fault(read_round - 1, v, p, dobs::FaultKind::BurstDrop);
                }
                continue;
            }
            let to = topo.neighbor(v, p) as usize;
            // One message per port per round, so the per-message size
            // *is* the edge's per-round bit usage.
            let mut congest_extra = 0u64;
            if bits > adversary.budget_bits {
                match plan.congest {
                    CongestMode::Strict => panic!(
                        "CONGEST violation: {bits}-bit message on edge {v}->{to} \
                         exceeds the {}-bit per-edge per-round budget",
                        adversary.budget_bits
                    ),
                    CongestMode::Degrade => {
                        congest_extra = (bits - 1) / adversary.budget_bits;
                        stats.deferred_bits += bits - adversary.budget_bits;
                        if traced {
                            dobs::plane::record(dobs::Event::BudgetViolation {
                                t_ns: dobs::plane::now_ns(),
                                round: read_round - 1,
                                node: v as u64,
                                port: p as u32,
                                bits,
                                budget: adversary.budget_bits,
                            });
                        }
                    }
                }
            }
            if halted[to] {
                continue; // dropped on the floor, unread
            }
            let stall_extra = if plan.stall_p > 0.0 && adversary.stall_rng.bernoulli(plan.stall_p) {
                1
            } else {
                0
            };
            let delay_extra = if plan.delay_max > 0 {
                adversary.delay_rng.below(plan.delay_max + 1)
            } else {
                0
            };
            let extra = congest_extra + stall_extra + delay_extra;
            if extra > 0 {
                stats.delayed += 1;
                let msg = out.msg[slot].take().expect("live slot holds a message");
                out.stamp[slot] = DEAD_STAMP; // parked, not in the plane
                adversary.park(read_round + extra, slot, to as NodeId, msg);
                if traced {
                    let kind = if stall_extra > 0 && delay_extra == 0 && congest_extra == 0 {
                        dobs::FaultKind::Stall
                    } else {
                        dobs::FaultKind::Delay
                    };
                    record_fault(read_round - 1, v, p, kind);
                }
                continue;
            }
            delivered += 1;
            let c = if inbox_count_round[to] == read_round {
                inbox_count[to] + 1
            } else {
                1
            };
            inbox_count[to] = c;
            inbox_count_round[to] = read_round;
            peak = peak.max(c as u64);
            if let Some((wake_stamp, wake_next)) = schedule.as_mut() {
                if wake_stamp[to] != read_round {
                    wake_stamp[to] = read_round;
                    wake_next.push(to as NodeId);
                }
            }
        }
    }
    // Holding-ring injection: payloads due this round enter the plane
    // the receivers read next round, in deterministic (slot, seq)
    // order. Entries are never overdue (everything due is processed
    // each round), so sorting by (due, slot, seq) puts the due set in
    // exactly (slot, seq) order at the front.
    if !adversary.parked_empty() {
        adversary
            .parked
            .sort_unstable_by_key(|e| (e.due, e.slot, e.seq));
        let mut i = 0;
        while i < adversary.parked.len() && adversary.parked[i].due <= read_round {
            let slot = adversary.parked[i].slot;
            let to = adversary.parked[i].to as usize;
            if out.stamp[slot] == gen {
                // The sender refilled the slot this round: postpone one
                // more round (adversarial reordering on a busy edge).
                adversary.parked[i].due = read_round + 1;
            } else if halted[to] {
                adversary.parked[i].msg = None; // receiver gone: discard
            } else {
                out.msg[slot] = adversary.parked[i].msg.take();
                out.stamp[slot] = gen;
                delivered += 1;
                let c = if inbox_count_round[to] == read_round {
                    inbox_count[to] + 1
                } else {
                    1
                };
                inbox_count[to] = c;
                inbox_count_round[to] = read_round;
                peak = peak.max(c as u64);
                if let Some((wake_stamp, wake_next)) = schedule.as_mut() {
                    if wake_stamp[to] != read_round {
                        wake_stamp[to] = read_round;
                        wake_next.push(to as NodeId);
                    }
                }
            }
            i += 1;
        }
        adversary.parked.retain(|e| e.msg.is_some());
    }
    DeliverOutcome {
        sent,
        delivered,
        peak_inbox: peak,
    }
}

/// Record one adversary fault instant into the installed flight
/// recorder (callers have already checked `dobs::plane::enabled()`).
fn record_fault(round: u64, node: NodeId, port: usize, kind: dobs::FaultKind) {
    dobs::plane::record(dobs::Event::Fault {
        t_ns: dobs::plane::now_ns(),
        round,
        node: node as u64,
        port: port as u32,
        kind,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mailbox::Inbox;

    /// Flood the maximum id; halt when stable for 2 rounds.
    struct MaxFlood {
        best: u32,
        quiet: u32,
    }
    impl Protocol for MaxFlood {
        type Msg = u32;
        fn on_round(&mut self, ctx: &mut Ctx<'_, u32>, inbox: Inbox<'_, u32>) {
            let before = self.best;
            for e in inbox.iter() {
                self.best = self.best.max(*e.msg);
            }
            if ctx.round() == 0 || self.best > before {
                ctx.send_all(self.best);
                self.quiet = 0;
            } else {
                self.quiet += 1;
                if self.quiet >= 2 {
                    ctx.halt();
                }
            }
        }
    }

    fn path_net(n: usize) -> Network<MaxFlood> {
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        let topo = Topology::from_edges(n, &edges);
        let nodes = (0..n as u32)
            .map(|v| MaxFlood { best: v, quiet: 0 })
            .collect();
        Network::new(topo, nodes, 1)
    }

    #[test]
    fn max_flood_converges_on_path() {
        let mut net = path_net(10);
        let out = net.run_until_halt(100);
        assert!(out.all_halted);
        assert!(net.nodes().iter().all(|s| s.best == 9));
        // Information must travel the diameter: at least n-1 rounds.
        assert!(out.rounds >= 9);
    }

    #[test]
    fn stats_count_messages_and_bits() {
        let mut net = path_net(4);
        net.run_until_halt(100);
        let s = net.stats();
        assert!(s.messages > 0);
        assert_eq!(s.bits, s.messages * 32, "every message is one u32");
        assert_eq!(s.max_msg_bits, 32);
    }

    #[test]
    fn run_rounds_is_exact() {
        let mut net = path_net(6);
        let out = net.run_rounds(3);
        assert_eq!(out.rounds, 3);
        assert_eq!(net.round(), 3);
    }

    #[test]
    fn quiet_detection() {
        // Nodes that send only in round 0 and never halt.
        struct OneShot;
        impl Protocol for OneShot {
            type Msg = u8;
            fn on_round(&mut self, ctx: &mut Ctx<'_, u8>, _inbox: Inbox<'_, u8>) {
                if ctx.round() == 0 {
                    ctx.send_all(1);
                }
            }
        }
        let topo = Topology::from_edges(3, &[(0, 1), (1, 2)]);
        let mut net = Network::new(topo, vec![OneShot, OneShot, OneShot], 0);
        let out = net.run_until_quiet(50);
        assert!(out.quiescent);
        assert!(out.rounds <= 4);
    }

    #[test]
    fn born_quiet_network_needs_one_round() {
        // Regression: a network in which nobody ever sends must be
        // declared quiescent after exactly one observation round, not
        // spin a gratuitous extra round (the old `rounds > 1` guard).
        struct Mute;
        impl Protocol for Mute {
            type Msg = u8;
            fn on_round(&mut self, _ctx: &mut Ctx<'_, u8>, _inbox: Inbox<'_, u8>) {}
        }
        let topo = Topology::from_edges(3, &[(0, 1), (1, 2)]);
        let mut net = Network::new(topo, vec![Mute, Mute, Mute], 0);
        let out = net.run_until_quiet(50);
        assert!(out.quiescent);
        assert_eq!(out.rounds, 1);
    }

    #[test]
    #[should_panic(expected = "did not halt")]
    fn halting_budget_enforced() {
        struct Chatty;
        impl Protocol for Chatty {
            type Msg = u8;
            fn on_round(&mut self, ctx: &mut Ctx<'_, u8>, _inbox: Inbox<'_, u8>) {
                ctx.send_all(0);
            }
        }
        let topo = Topology::from_edges(2, &[(0, 1)]);
        let mut net = Network::new(topo, vec![Chatty, Chatty], 0);
        net.run_until_halt(10);
    }

    #[test]
    fn halted_nodes_drop_mail() {
        struct HaltFirst {
            got: u64,
        }
        impl Protocol for HaltFirst {
            type Msg = u8;
            fn on_round(&mut self, ctx: &mut Ctx<'_, u8>, inbox: Inbox<'_, u8>) {
                self.got += inbox.len() as u64;
                if ctx.id() == 0 {
                    ctx.halt();
                } else if ctx.round() < 3 {
                    ctx.send_all(7);
                } else {
                    ctx.halt();
                }
            }
        }
        let topo = Topology::from_edges(2, &[(0, 1)]);
        let mut net = Network::new(topo, vec![HaltFirst { got: 0 }, HaltFirst { got: 0 }], 0);
        net.run_until_halt(20);
        // Node 0 halted in round 0 and never received node 1's messages.
        assert_eq!(net.nodes()[0].got, 0);
    }

    #[derive(Clone)]
    struct Probe {
        left: Option<u32>,
        right: Option<u32>,
    }

    impl Protocol for Probe {
        type Msg = u32;
        fn on_round(&mut self, ctx: &mut Ctx<'_, u32>, inbox: Inbox<'_, u32>) {
            if ctx.round() == 0 {
                ctx.send_all(100 + ctx.id());
            } else if ctx.id() == 1 {
                self.left = inbox.get(0).copied();
                self.right = inbox.get(1).copied();
                assert_eq!(inbox.len(), 2);
                let seen: Vec<(u32, usize, u32)> =
                    inbox.iter().map(|e| (e.from, e.port, *e.msg)).collect();
                assert_eq!(seen, vec![(0, 0, 100), (2, 1, 102)]);
                ctx.halt();
            } else {
                ctx.halt();
            }
        }
    }

    #[test]
    fn inbox_is_port_indexed() {
        // Node 1 on a path 0-1-2 receives from both sides and can read
        // each port in O(1); ports are ordered by neighbor id.
        let topo = Topology::from_edges(3, &[(0, 1), (1, 2)]);
        let mut net = Network::new(
            topo,
            vec![
                Probe {
                    left: None,
                    right: None
                };
                3
            ],
            0,
        );
        net.run_rounds(2);
        assert_eq!(net.nodes()[1].left, Some(100));
        assert_eq!(net.nodes()[1].right, Some(102));
    }

    #[test]
    #[should_panic(expected = "duplicate send")]
    fn double_send_on_one_port_panics() {
        struct Doubler;
        impl Protocol for Doubler {
            type Msg = u8;
            fn on_round(&mut self, ctx: &mut Ctx<'_, u8>, _inbox: Inbox<'_, u8>) {
                ctx.send(0, 1);
                ctx.send(0, 2);
            }
        }
        let topo = Topology::from_edges(2, &[(0, 1)]);
        let mut net = Network::new(topo, vec![Doubler, Doubler], 0);
        net.step();
    }

    /// Counts everything it ever received, echoes on every port each
    /// round, and tracks rewires; per-port state is the receive count
    /// per port so remaps are observable.
    struct Echo {
        per_port: Vec<u64>,
        rewires: u64,
        born_seen: usize,
    }
    impl Protocol for Echo {
        type Msg = u32;
        fn on_round(&mut self, ctx: &mut Ctx<'_, u32>, inbox: Inbox<'_, u32>) {
            for e in inbox.iter() {
                self.per_port[e.port] += 1;
            }
            if ctx.round() < 8 {
                ctx.send_all(ctx.id());
            }
        }
    }
    impl crate::network::Rewire for Echo {
        fn on_rewire(&mut self, ctx: &RewireCtx<'_>) {
            let mut per_port = vec![0u64; ctx.new_degree()];
            for (p, &c) in self.per_port.iter().enumerate() {
                if let Some(np) = ctx.new_port(p) {
                    per_port[np] = c;
                }
            }
            self.per_port = per_port;
            self.rewires += 1;
            self.born_seen += ctx.born_ports().len();
        }
    }

    fn echo_net(n: usize, edges: &[(u32, u32)]) -> Network<Echo> {
        let topo = Topology::from_edges(n, edges);
        let nodes = (0..n as u32)
            .map(|v| Echo {
                per_port: vec![0; topo.degree(v)],
                rewires: 0,
                born_seen: 0,
            })
            .collect();
        Network::new(topo, nodes, 5)
    }

    #[test]
    fn rewire_preserves_in_flight_mail_on_surviving_edges() {
        // Path 0-1-2: run one round (everyone sends), then rewire away
        // (1,2) and add (0,2) with the sends still in flight. Mail on
        // (0,1) must arrive; mail on (1,2) must vanish.
        let mut net = echo_net(3, &[(0, 1), (1, 2)]);
        net.step();
        assert_eq!(net.in_flight(), 4);
        let patch = net.topology().rewired(&[(1, 2)], &[(0, 2)]);
        net.rewire(&patch);
        assert_eq!(net.in_flight(), 2, "only the surviving edge's mail remains");
        net.step();
        // Node 0: received 1's round-0 send on port 0 (edge kept).
        assert_eq!(net.nodes()[0].per_port, vec![1, 0]);
        // Node 2 lost its only old edge; its in-flight mail died.
        assert_eq!(net.nodes()[2].per_port, vec![0]);
        assert!(net.nodes().iter().all(|n| n.rewires == 1));
        // Born ports: (0,2) seen at node 0 and node 2.
        assert_eq!(net.nodes()[0].born_seen, 1);
        assert_eq!(net.nodes()[2].born_seen, 1);
        assert_eq!(net.nodes()[1].born_seen, 0);
    }

    #[test]
    fn rewire_wakes_dirty_nodes_and_traffic_flows_on_new_edges() {
        let mut net = echo_net(4, &[(0, 1), (2, 3)]);
        net.run_rounds(2);
        let patch = net.topology().rewired(&[], &[(1, 2)]);
        net.rewire(&patch);
        net.run_rounds(2);
        // Node 1 now hears node 2 on its new port 1.
        assert!(net.nodes()[1].per_port[1] > 0, "new edge must carry mail");
        assert_eq!(net.topology().num_edges(), 3);
    }

    #[test]
    fn rewire_keeps_thread_count_bit_identity() {
        let run = |threads: usize| {
            let mut net = echo_net(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)])
                .with_threads(threads);
            net.run_rounds(3);
            let patch = net.topology().rewired(&[(2, 3), (5, 0)], &[(0, 3), (1, 4)]);
            net.rewire(&patch);
            net.run_rounds(3);
            let states: Vec<Vec<u64>> = net.nodes().iter().map(|n| n.per_port.clone()).collect();
            (states, net.stats().clone())
        };
        let (s1, st1) = run(1);
        let (s8, st8) = run(8);
        assert_eq!(s1, s8);
        assert_eq!(st1, st8);
    }

    /// Sleeps whenever its inbox is empty; logs every round it runs.
    struct Sleeper {
        stepped_at: Vec<u64>,
    }
    impl Protocol for Sleeper {
        type Msg = u8;
        fn on_round(&mut self, ctx: &mut Ctx<'_, u8>, inbox: Inbox<'_, u8>) {
            self.stepped_at.push(ctx.round());
            if inbox.is_empty() {
                ctx.sleep();
            }
        }
    }

    /// Pings port 0 at fixed rounds, never sleeps, halts at the end.
    struct Pinger {
        at: Vec<u64>,
    }
    impl Protocol for Pinger {
        type Msg = u8;
        fn on_round(&mut self, ctx: &mut Ctx<'_, u8>, _inbox: Inbox<'_, u8>) {
            if self.at.contains(&ctx.round()) {
                ctx.send(0, 1);
            }
            if ctx.round() >= *self.at.iter().max().unwrap() + 2 {
                ctx.halt();
            }
        }
    }

    #[test]
    fn mail_wakes_a_sleeping_node_in_both_modes() {
        let run = |sched: SchedMode| {
            let topo = Topology::from_edges(2, &[(0, 1)]);
            // Node 1 is a Sleeper reached through node 0's port 0.
            struct Pair;
            let _ = Pair; // (nodes are heterogeneous via an enum below)
            #[allow(clippy::large_enum_variant)]
            enum N {
                P(Pinger),
                S(Sleeper),
            }
            impl Protocol for N {
                type Msg = u8;
                fn on_round(&mut self, ctx: &mut Ctx<'_, u8>, inbox: Inbox<'_, u8>) {
                    match self {
                        N::P(p) => p.on_round(ctx, inbox),
                        N::S(s) => s.on_round(ctx, inbox),
                    }
                }
            }
            let nodes = vec![
                N::P(Pinger { at: vec![3, 7] }),
                N::S(Sleeper {
                    stepped_at: Vec::new(),
                }),
            ];
            let mut net = Network::new(topo, nodes, 1).with_sched(sched);
            net.run_rounds(12);
            let log = match &net.nodes()[1] {
                N::S(s) => s.stepped_at.clone(),
                _ => unreachable!(),
            };
            (log, net.stats().clone())
        };
        let (log_s, stats_s) = run(SchedMode::Sparse);
        let (log_d, stats_d) = run(SchedMode::Dense);
        // The sleeper runs in round 0, then when mail arrives (one
        // round after each ping), plus one more round each time to
        // re-assert sleep (it only calls `sleep` on an empty inbox).
        assert_eq!(log_s, vec![0, 4, 5, 8, 9]);
        assert_eq!(log_d, log_s, "dense and sparse stepped sets diverged");
        assert_eq!(stats_s.node_steps, stats_d.node_steps);
        assert_eq!(stats_s.messages, stats_d.messages);
    }

    #[test]
    fn sparse_round_cost_tracks_active_nodes() {
        // A path of sleepers: after round 0 everyone is asleep and the
        // wake list is empty, so rounds step zero nodes.
        let topo = Topology::from_edges(64, &(0..63).map(|i| (i, i + 1)).collect::<Vec<_>>());
        let nodes = (0..64)
            .map(|_| Sleeper {
                stepped_at: Vec::new(),
            })
            .collect();
        let mut net = Network::new(topo, nodes, 3);
        net.run_rounds(5);
        let s = net.stats();
        assert_eq!(s.per_round[0].active, 64, "round 0 steps everyone");
        assert!(
            s.per_round[1..].iter().all(|r| r.active == 0),
            "sleeping nodes must not be stepped"
        );
        assert_eq!(s.node_steps, 64);
        assert!(!net.all_halted(), "sleeping is not halting");
    }

    #[test]
    fn explicit_wake_schedules_a_sleeper() {
        let topo = Topology::from_edges(3, &[(0, 1), (1, 2)]);
        let nodes = (0..3)
            .map(|_| Sleeper {
                stepped_at: Vec::new(),
            })
            .collect();
        let mut net = Network::new(topo, nodes, 9);
        net.run_rounds(3);
        assert_eq!(net.nodes()[1].stepped_at, vec![0]);
        net.wake(1);
        net.run_rounds(2);
        assert_eq!(net.nodes()[1].stepped_at, vec![0, 3]);
        assert_eq!(net.nodes()[0].stepped_at, vec![0], "others stay asleep");
    }

    #[test]
    fn halting_maintains_the_live_counter() {
        let mut net = path_net(10);
        assert_eq!(net.live_nodes(), 10);
        net.run_until_halt(100);
        assert_eq!(net.live_nodes(), 0);
        assert!(net.all_halted());
    }

    #[test]
    fn steady_state_allocates_nothing() {
        let mut net = path_net(12);
        net.run_until_halt(100);
        let s = net.stats();
        // All plane allocations happen at construction, charged to the
        // first round's gauge; every later round must be zero.
        assert!(s.per_round[0].plane_allocs > 0);
        assert!(s.per_round[1..].iter().all(|r| r.plane_allocs == 0));
        assert_eq!(s.plane_allocs, s.per_round[0].plane_allocs);
        assert!(s.peak_inbox >= 1);
    }
}
