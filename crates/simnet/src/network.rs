//! The synchronous round loop.
//!
//! A [`Network`] owns one [`Protocol`] state per node plus the
//! [`Topology`]. Each call to [`Network::step`] executes one synchronous
//! round: every live node receives the messages addressed to it in the
//! previous round, runs its local computation, and emits messages for
//! the next round. All accounting (rounds, messages, bits) happens here.

use crate::message::{BitSize, Envelope};
use crate::rng::SplitMix64;
use crate::stats::NetStats;
use crate::topology::{NodeId, Port, Topology};

/// A distributed algorithm, from the point of view of a single node.
///
/// The same `Protocol` value is stepped once per round. State lives in
/// the implementing struct; randomness comes from the per-node stream in
/// [`Ctx::rng`]; communication goes through [`Ctx::send`].
pub trait Protocol: Send {
    /// The message type this protocol puts on wires.
    type Msg: Clone + Send + Sync + BitSize;

    /// Execute one synchronous round.
    ///
    /// `inbox` holds the messages sent to this node in the previous
    /// round, ordered by the local port they arrived on (hence by sender
    /// id, since neighbor lists are sorted). Round 0 has an empty inbox.
    fn on_round(&mut self, ctx: &mut Ctx<'_, Self::Msg>, inbox: &[Envelope<Self::Msg>]);
}

/// Per-round, per-node execution context handed to [`Protocol::on_round`].
pub struct Ctx<'a, M> {
    id: NodeId,
    round: u64,
    topo: &'a Topology,
    rng: &'a mut SplitMix64,
    out: &'a mut Vec<(Port, M)>,
    halted: &'a mut bool,
}

impl<'a, M> Ctx<'a, M> {
    /// Internal constructor used by the sequential and parallel executors.
    pub(crate) fn new(
        id: NodeId,
        round: u64,
        topo: &'a Topology,
        rng: &'a mut SplitMix64,
        out: &'a mut Vec<(Port, M)>,
        halted: &'a mut bool,
    ) -> Self {
        Ctx { id, round, topo, rng, out, halted }
    }

    /// This node's id.
    #[inline]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The current round number (0-based).
    #[inline]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Degree of this node.
    #[inline]
    pub fn degree(&self) -> usize {
        self.topo.degree(self.id)
    }

    /// Sorted neighbor ids.
    #[inline]
    pub fn neighbors(&self) -> &[NodeId] {
        self.topo.neighbors(self.id)
    }

    /// Neighbor on `port`.
    #[inline]
    pub fn neighbor(&self, port: Port) -> NodeId {
        self.topo.neighbor(self.id, port)
    }

    /// Port leading to neighbor `u`, if adjacent.
    #[inline]
    pub fn port_to(&self, u: NodeId) -> Option<Port> {
        self.topo.port_to(self.id, u)
    }

    /// This node's deterministic RNG stream.
    #[inline]
    pub fn rng(&mut self) -> &mut SplitMix64 {
        self.rng
    }

    /// Send `msg` to the neighbor on `port`; delivered next round.
    #[inline]
    pub fn send(&mut self, port: Port, msg: M) {
        debug_assert!(port < self.topo.degree(self.id), "send on invalid port");
        self.out.push((port, msg));
    }

    /// Send a copy of `msg` to every neighbor.
    pub fn send_all(&mut self, msg: M)
    where
        M: Clone,
    {
        for port in 0..self.degree() {
            self.out.push((port, msg.clone()));
        }
    }

    /// Stop participating: this node will not be stepped again and
    /// messages sent to it are dropped. Messages it sent *this* round
    /// are still delivered.
    #[inline]
    pub fn halt(&mut self) {
        *self.halted = true;
    }
}

/// Result of driving a network with one of the `run_*` methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Rounds executed by this call (not cumulative).
    pub rounds: u64,
    /// True if every node halted.
    pub all_halted: bool,
    /// True if the run ended because the network went quiet (no
    /// messages in flight and none produced).
    pub quiescent: bool,
}

/// A synchronous network: topology + per-node protocol state.
pub struct Network<P: Protocol> {
    pub(crate) topo: Topology,
    pub(crate) nodes: Vec<P>,
    pub(crate) halted: Vec<bool>,
    pub(crate) rngs: Vec<SplitMix64>,
    pub(crate) inboxes: Vec<Vec<Envelope<P::Msg>>>,
    pub(crate) stats: NetStats,
    pub(crate) round: u64,
    /// Number of worker threads for node stepping (1 = sequential).
    pub(crate) threads: usize,
    /// Message-loss probability (fault injection; 0.0 = reliable).
    pub(crate) loss: f64,
    /// RNG stream deciding drops (independent of node streams so that
    /// enabling faults does not perturb node randomness).
    pub(crate) loss_rng: SplitMix64,
    /// Messages dropped by fault injection.
    pub(crate) dropped: u64,
}

impl<P: Protocol> Network<P> {
    /// Create a network. `nodes[v]` is the protocol state of node `v`;
    /// its RNG stream is derived from `seed` and `v`.
    pub fn new(topo: Topology, nodes: Vec<P>, seed: u64) -> Self {
        assert_eq!(topo.len(), nodes.len(), "one protocol state per node");
        let n = topo.len();
        let rngs = (0..n).map(|v| SplitMix64::for_node(seed, v as u64)).collect();
        Network {
            topo,
            nodes,
            halted: vec![false; n],
            rngs,
            inboxes: vec![Vec::new(); n],
            stats: NetStats::default(),
            round: 0,
            threads: 1,
            loss: 0.0,
            loss_rng: SplitMix64::for_node(seed, u64::MAX),
            dropped: 0,
        }
    }

    /// Use `threads` worker threads to step nodes (results are identical
    /// to sequential execution; see `parallel.rs`).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Inject message loss: every message is independently dropped with
    /// probability `p` **after** being charged to the statistics (the
    /// sender paid for it). The paper's model is fault-free; this knob
    /// exists for robustness testing — protocols are expected to keep
    /// their *safety* properties but may lose liveness.
    pub fn with_message_loss(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        self.loss = p;
        self
    }

    /// Messages dropped by fault injection so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The communication graph.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Immutable view of all node states.
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// Mutable view of all node states (for harness-level phase changes).
    pub fn nodes_mut(&mut self) -> &mut [P] {
        &mut self.nodes
    }

    /// Consume the network, returning node states and statistics.
    pub fn into_parts(self) -> (Vec<P>, NetStats) {
        (self.nodes, self.stats)
    }

    /// Accounting so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// True when every node has halted.
    pub fn all_halted(&self) -> bool {
        self.halted.iter().all(|&h| h)
    }

    /// Execute one synchronous round. Returns the number of messages
    /// sent during the round.
    pub fn step(&mut self) -> u64 {
        if self.threads > 1 {
            return crate::parallel::step_parallel(self);
        }
        let n = self.topo.len();
        let mut sent: Vec<(NodeId, Port, P::Msg)> = Vec::new();
        let mut out: Vec<(Port, P::Msg)> = Vec::new();
        for v in 0..n {
            if self.halted[v] {
                continue;
            }
            let inbox = std::mem::take(&mut self.inboxes[v]);
            let mut ctx = Ctx {
                id: v as NodeId,
                round: self.round,
                topo: &self.topo,
                rng: &mut self.rngs[v],
                out: &mut out,
                halted: &mut self.halted[v],
            };
            self.nodes[v].on_round(&mut ctx, &inbox);
            for (port, msg) in out.drain(..) {
                sent.push((v as NodeId, port, msg));
            }
        }
        let count = self.deliver(sent);
        self.round += 1;
        self.stats.record_round(count);
        count
    }

    /// Route raw `(from, port, msg)` triples into inboxes, updating
    /// message/bit statistics. Inboxes are kept sorted by arrival port
    /// so delivery order is deterministic and scheduler-independent.
    pub(crate) fn deliver(&mut self, sent: Vec<(NodeId, Port, P::Msg)>) -> u64 {
        let mut count = 0u64;
        for (from, port, msg) in sent {
            let to = self.topo.neighbor(from, port);
            let bits = msg.bit_size();
            self.stats.record_message(bits);
            count += 1;
            if self.loss > 0.0 && self.loss_rng.bernoulli(self.loss) {
                self.dropped += 1;
                continue; // fault injection ate it
            }
            if self.halted[to as usize] {
                continue; // dropped on the floor
            }
            let rev = self.topo.reverse_port(from, port);
            self.inboxes[to as usize].push(Envelope { from, port: rev, msg });
        }
        for inbox in &mut self.inboxes {
            inbox.sort_by_key(|e| e.port);
        }
        count
    }

    /// Run until every node halts, or `max_rounds` elapse. Panics if the
    /// round budget is exhausted — a protocol that fails to halt within
    /// its theoretical bound is a bug we want loudly.
    pub fn run_until_halt(&mut self, max_rounds: u64) -> RunOutcome {
        let start = self.round;
        while !self.all_halted() {
            assert!(
                self.round - start < max_rounds,
                "protocol did not halt within {max_rounds} rounds"
            );
            self.step();
        }
        RunOutcome { rounds: self.round - start, all_halted: true, quiescent: false }
    }

    /// Run until the network goes quiet: a round in which no messages
    /// were sent and none were in flight. Suitable for message-driven
    /// protocols. Stops early if all nodes halt.
    pub fn run_until_quiet(&mut self, max_rounds: u64) -> RunOutcome {
        let start = self.round;
        loop {
            if self.all_halted() {
                return RunOutcome { rounds: self.round - start, all_halted: true, quiescent: false };
            }
            assert!(
                self.round - start < max_rounds,
                "network not quiet within {max_rounds} rounds"
            );
            let in_flight: usize = self.inboxes.iter().map(Vec::len).sum();
            let sent = self.step();
            if sent == 0 && in_flight == 0 && self.round - start > 1 {
                return RunOutcome {
                    rounds: self.round - start,
                    all_halted: self.all_halted(),
                    quiescent: true,
                };
            }
        }
    }

    /// Run exactly `rounds` rounds (or until all nodes halt).
    pub fn run_rounds(&mut self, rounds: u64) -> RunOutcome {
        let start = self.round;
        for _ in 0..rounds {
            if self.all_halted() {
                break;
            }
            self.step();
        }
        RunOutcome {
            rounds: self.round - start,
            all_halted: self.all_halted(),
            quiescent: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Flood the maximum id; halt when stable for 2 rounds.
    struct MaxFlood {
        best: u32,
        quiet: u32,
    }
    impl Protocol for MaxFlood {
        type Msg = u32;
        fn on_round(&mut self, ctx: &mut Ctx<'_, u32>, inbox: &[Envelope<u32>]) {
            let before = self.best;
            for e in inbox {
                self.best = self.best.max(e.msg);
            }
            if ctx.round() == 0 || self.best > before {
                ctx.send_all(self.best);
                self.quiet = 0;
            } else {
                self.quiet += 1;
                if self.quiet >= 2 {
                    ctx.halt();
                }
            }
        }
    }

    fn path_net(n: usize) -> Network<MaxFlood> {
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        let topo = Topology::from_edges(n, &edges);
        let nodes = (0..n as u32).map(|v| MaxFlood { best: v, quiet: 0 }).collect();
        Network::new(topo, nodes, 1)
    }

    #[test]
    fn max_flood_converges_on_path() {
        let mut net = path_net(10);
        let out = net.run_until_halt(100);
        assert!(out.all_halted);
        assert!(net.nodes().iter().all(|s| s.best == 9));
        // Information must travel the diameter: at least n-1 rounds.
        assert!(out.rounds >= 9);
    }

    #[test]
    fn stats_count_messages_and_bits() {
        let mut net = path_net(4);
        net.run_until_halt(100);
        let s = net.stats();
        assert!(s.messages > 0);
        assert_eq!(s.bits, s.messages * 32, "every message is one u32");
        assert_eq!(s.max_msg_bits, 32);
    }

    #[test]
    fn run_rounds_is_exact() {
        let mut net = path_net(6);
        let out = net.run_rounds(3);
        assert_eq!(out.rounds, 3);
        assert_eq!(net.round(), 3);
    }

    #[test]
    fn quiet_detection() {
        // Nodes that send only in round 0 and never halt.
        struct OneShot;
        impl Protocol for OneShot {
            type Msg = u8;
            fn on_round(&mut self, ctx: &mut Ctx<'_, u8>, _inbox: &[Envelope<u8>]) {
                if ctx.round() == 0 {
                    ctx.send_all(1);
                }
            }
        }
        let topo = Topology::from_edges(3, &[(0, 1), (1, 2)]);
        let mut net = Network::new(topo, vec![OneShot, OneShot, OneShot], 0);
        let out = net.run_until_quiet(50);
        assert!(out.quiescent);
        assert!(out.rounds <= 4);
    }

    #[test]
    #[should_panic(expected = "did not halt")]
    fn halting_budget_enforced() {
        struct Chatty;
        impl Protocol for Chatty {
            type Msg = u8;
            fn on_round(&mut self, ctx: &mut Ctx<'_, u8>, _inbox: &[Envelope<u8>]) {
                ctx.send_all(0);
            }
        }
        let topo = Topology::from_edges(2, &[(0, 1)]);
        let mut net = Network::new(topo, vec![Chatty, Chatty], 0);
        net.run_until_halt(10);
    }

    #[test]
    fn halted_nodes_drop_mail() {
        struct HaltFirst {
            got: u64,
        }
        impl Protocol for HaltFirst {
            type Msg = u8;
            fn on_round(&mut self, ctx: &mut Ctx<'_, u8>, inbox: &[Envelope<u8>]) {
                self.got += inbox.len() as u64;
                if ctx.id() == 0 {
                    ctx.halt();
                } else if ctx.round() < 3 {
                    ctx.send_all(7);
                } else {
                    ctx.halt();
                }
            }
        }
        let topo = Topology::from_edges(2, &[(0, 1)]);
        let mut net = Network::new(topo, vec![HaltFirst { got: 0 }, HaltFirst { got: 0 }], 0);
        net.run_until_halt(20);
        // Node 0 halted in round 0 and never received node 1's messages.
        assert_eq!(net.nodes()[0].got, 0);
    }
}
