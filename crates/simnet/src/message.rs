//! Message envelopes and bit-size accounting.
//!
//! Every message type used with the simulator implements [`BitSize`],
//! reporting the number of bits a real implementation would put on the
//! wire. The paper's results distinguish `O(log n)`-bit messages
//! (Theorems 3.8, 3.11, 4.5) from `O(|V|+|E|)`-bit messages (Theorem
//! 3.1), so this accounting is part of what our experiments validate.

/// Number of bits of a message on the wire.
///
/// Implementations should be *honest upper bounds*: an id is `log n`
/// bits but we charge the full fixed width of the carrying integer type
/// unless the protocol documents tighter packing (protocols that rely on
/// `O(log Δ)`-bit messages override this with an explicit size).
pub trait BitSize {
    /// Size of this value in bits when serialized.
    fn bit_size(&self) -> u64;
}

macro_rules! impl_bitsize_prim {
    ($($t:ty),*) => {$(
        impl BitSize for $t {
            #[inline]
            fn bit_size(&self) -> u64 { (core::mem::size_of::<$t>() * 8) as u64 }
        }
    )*};
}

impl_bitsize_prim!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl BitSize for bool {
    #[inline]
    fn bit_size(&self) -> u64 {
        1
    }
}

impl BitSize for () {
    #[inline]
    fn bit_size(&self) -> u64 {
        0
    }
}

impl<T: BitSize> BitSize for Option<T> {
    fn bit_size(&self) -> u64 {
        1 + match self {
            Some(v) => v.bit_size(),
            None => 0,
        }
    }
}

impl<T: BitSize> BitSize for Vec<T> {
    fn bit_size(&self) -> u64 {
        // Length prefix (64 bits, generous) plus payload.
        64 + self.iter().map(BitSize::bit_size).sum::<u64>()
    }
}

impl<T: BitSize, U: BitSize> BitSize for (T, U) {
    fn bit_size(&self) -> u64 {
        self.0.bit_size() + self.1.bit_size()
    }
}

impl<T: BitSize, U: BitSize, V: BitSize> BitSize for (T, U, V) {
    fn bit_size(&self) -> u64 {
        self.0.bit_size() + self.1.bit_size() + self.2.bit_size()
    }
}

impl<T: BitSize> BitSize for Box<T> {
    fn bit_size(&self) -> u64 {
        (**self).bit_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_sizes() {
        assert_eq!(0u32.bit_size(), 32);
        assert_eq!(0u64.bit_size(), 64);
        assert_eq!(true.bit_size(), 1);
        assert_eq!(().bit_size(), 0);
    }

    #[test]
    fn container_sizes() {
        assert_eq!(Some(1u32).bit_size(), 33);
        assert_eq!(None::<u32>.bit_size(), 1);
        assert_eq!(vec![1u8, 2, 3].bit_size(), 64 + 24);
        assert_eq!((1u32, 2u64).bit_size(), 96);
        assert_eq!((1u8, 2u8, true).bit_size(), 17);
        assert_eq!(Box::new(7u16).bit_size(), 16);
    }
}
