//! The zero-allocation, double-buffered message plane.
//!
//! Messages live in **slabs**: flat, CSR-aligned slot arrays with one
//! slot per directed port (`topo.total_ports()` slots in total; port `p`
//! of node `v` is slot `topo.port_base(v) + p`). A slot is *live* when
//! its generation stamp equals the slab's current generation, so
//! clearing a slab for the next round is a single counter increment —
//! no per-slot work, no frees, no allocation.
//!
//! A [`crate::Network`] owns **two** slabs and alternates them by round
//! parity: the slab written by `Ctx::send` in round `r` is read (in
//! place — delivery never copies a payload) through [`Inbox`] views in
//! round `r + 1`, while the other slab is recycled for round `r + 1`'s
//! sends. Because the sender's out-slot `(v, p)` *is* the receiver's
//! in-slot (the receiver reads it through `reverse_port`), delivery
//! order is positional: inboxes are port-ordered by construction and
//! never sorted.
//!
//! The plane enforces the synchronous CONGEST contract: **at most one
//! message per port per round** ([`crate::Ctx::send`] panics on a
//! duplicate). Payloads are dropped lazily — a slot written in round `r`
//! keeps its (dead) payload until round `r + 2` overwrites it, bounding
//! residency at one extra round, exactly like a NIC ring buffer.

use crate::topology::{NodeId, Port, Topology};

/// Stamp marking a slot that must never read as live (initial state and
/// messages killed by fault injection). Generations start at 0 and only
/// grow, so `u64::MAX` is unreachable.
pub(crate) const DEAD_STAMP: u64 = u64::MAX;

/// One half of the double-buffered plane: a flat slot array with a
/// generation counter. All fields are crate-internal; protocols interact
/// with slabs only through [`Inbox`] and [`crate::Ctx::send`].
pub(crate) struct Slab<M> {
    /// Generation at which each slot was last written.
    pub(crate) stamp: Vec<u64>,
    /// Slot payloads; `msg[i]` is meaningful only when
    /// `stamp[i] == gen`.
    pub(crate) msg: Vec<Option<M>>,
    /// Current generation; bumped once per round by [`Slab::advance`].
    pub(crate) gen: u64,
}

impl<M> Slab<M> {
    /// Allocate a slab with `total_ports` slots. Counts its buffer
    /// allocations into `alloc_events` (the plane-allocation gauge).
    pub(crate) fn new(total_ports: usize, alloc_events: &mut u64) -> Self {
        *alloc_events += 2; // stamp + msg buffers
        Slab {
            stamp: vec![DEAD_STAMP; total_ports],
            msg: (0..total_ports).map(|_| None).collect(),
            gen: 0,
        }
    }

    /// O(1) bulk clear: every slot written under the previous generation
    /// becomes dead.
    #[inline]
    pub(crate) fn advance(&mut self) {
        self.gen += 1;
    }

    /// Migrate the slab across a topology change ([`crate::Network::rewire`]).
    ///
    /// `slot_map[old] = new` relocates each surviving directed-edge
    /// slot; [`crate::topology::SLOT_GONE`] entries (removed edges)
    /// drop their payloads. Live payloads are *moved*, never cloned, so
    /// the cost is O(ports) plus exactly two buffer allocations
    /// (counted in `alloc_events`) — independent of how many edges
    /// changed.
    pub(crate) fn remap(&mut self, slot_map: &[usize], new_total: usize, alloc_events: &mut u64) {
        debug_assert_eq!(slot_map.len(), self.stamp.len());
        *alloc_events += 2; // replacement stamp + msg buffers
        let mut stamp = vec![DEAD_STAMP; new_total];
        let mut msg: Vec<Option<M>> = (0..new_total).map(|_| None).collect();
        for (old, &new) in slot_map.iter().enumerate() {
            if new != crate::topology::SLOT_GONE && self.stamp[old] == self.gen {
                stamp[new] = self.gen;
                msg[new] = self.msg[old].take();
            }
        }
        self.stamp = stamp;
        self.msg = msg;
    }
}

/// A message as seen by the receiver: who sent it, on which local port
/// it arrived, and a borrow of the payload (which stays in the plane —
/// delivery is zero-copy).
#[derive(Debug)]
pub struct Received<'a, M> {
    /// Sender's node id.
    pub from: NodeId,
    /// Receiver-side port the message arrived on (index into the
    /// receiver's neighbor list).
    pub port: Port,
    /// The payload, borrowed from the message plane.
    pub msg: &'a M,
}

// Manual impls: `derive` would needlessly require `M: Clone/Copy`.
impl<M> Clone for Received<'_, M> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<M> Copy for Received<'_, M> {}

/// Port-indexed view of one node's inbox for the current round.
///
/// The view is a cheap `Copy` handle into the plane:
///
/// * [`Inbox::get`] is O(1) random access by arrival port;
/// * [`Inbox::iter`] yields [`Received`] entries in ascending port
///   order (hence ascending sender id), the same order the old
///   sort-based delivery guaranteed;
/// * [`Inbox::len`] is O(1) (maintained by delivery accounting).
pub struct Inbox<'a, M> {
    topo: &'a Topology,
    node: NodeId,
    stamp: &'a [u64],
    msg: &'a [Option<M>],
    gen: u64,
    count: u32,
}

impl<M> Clone for Inbox<'_, M> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<M> Copy for Inbox<'_, M> {}

impl<'a, M> Inbox<'a, M> {
    pub(crate) fn new(topo: &'a Topology, node: NodeId, slab: &'a Slab<M>, count: u32) -> Self {
        Inbox {
            topo,
            node,
            stamp: &slab.stamp,
            msg: &slab.msg,
            gen: slab.gen,
            count,
        }
    }

    /// Number of messages delivered to this node this round.
    #[inline]
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// True when nothing arrived this round.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The message that arrived on `port`, if any — O(1).
    ///
    /// This is the access pattern port-indexed protocols want ("did my
    /// mate write to me?") and needed a linear scan under the old
    /// envelope-vector inbox.
    ///
    /// Panics if `port` is not one of this node's ports: the CSR slot
    /// arithmetic below would otherwise land in a *different* node's
    /// port range and silently hand back foreign mail.
    #[inline]
    pub fn get(&self, port: Port) -> Option<&'a M> {
        assert!(
            port < self.topo.degree(self.node),
            "inbox read on invalid port"
        );
        let sender = self.topo.neighbor(self.node, port);
        let slot = self.topo.port_base(sender) + self.topo.reverse_port(self.node, port);
        if self.stamp[slot] == self.gen {
            self.msg[slot].as_ref()
        } else {
            None
        }
    }

    /// Iterate received messages in ascending port order.
    #[inline]
    pub fn iter(&self) -> InboxIter<'a, M> {
        InboxIter {
            inbox: *self,
            port: 0,
            degree: self.topo.degree(self.node),
        }
    }
}

impl<'a, M> IntoIterator for Inbox<'a, M> {
    type Item = Received<'a, M>;
    type IntoIter = InboxIter<'a, M>;
    fn into_iter(self) -> InboxIter<'a, M> {
        self.iter()
    }
}

impl<'a, M> IntoIterator for &Inbox<'a, M> {
    type Item = Received<'a, M>;
    type IntoIter = InboxIter<'a, M>;
    fn into_iter(self) -> InboxIter<'a, M> {
        self.iter()
    }
}

/// Iterator over an [`Inbox`], in ascending port order.
pub struct InboxIter<'a, M> {
    inbox: Inbox<'a, M>,
    port: Port,
    degree: usize,
}

impl<'a, M> Iterator for InboxIter<'a, M> {
    type Item = Received<'a, M>;

    fn next(&mut self) -> Option<Received<'a, M>> {
        while self.port < self.degree {
            let port = self.port;
            self.port += 1;
            if let Some(msg) = self.inbox.get(port) {
                return Some(Received {
                    from: self.inbox.topo.neighbor(self.inbox.node, port),
                    port,
                    msg,
                });
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, Some(self.degree - self.port))
    }
}
