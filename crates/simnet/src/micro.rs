//! A localized micro-executor: the slab message plane on a small
//! (typically induced-subgraph) topology, with per-node RNG streams
//! chosen by the caller and per-node halt rounds recorded.
//!
//! This is the simulation engine of the LCA query plane
//! (`dmatch::oracle::MatchingOracle`). A point query materializes a
//! ball around the query vertex, relabels it to local ids, and runs the
//! protocol *only there*. Two deviations from [`Network`] make that
//! sound:
//!
//! * **Caller-assigned RNG streams.** [`Network::new`] seeds node `v`
//!   from stream id `v` — correct when local ids are global ids, wrong
//!   in a relabeled ball. [`MicroNet::new`] takes the stream id for
//!   every node explicitly (the oracle passes the *global* ids), so a
//!   ball node flips exactly the coins its global twin would.
//! * **Budgeted, non-panicking run.** A ball whose boundary cuts the
//!   component can deadlock nodes near the cut (their conversation
//!   partner is missing). [`Network::run_until_halt`] treats budget
//!   exhaustion as a bug; here it is an expected outcome that simply
//!   leaves those nodes uncertified, so [`MicroNet::run`] stops quietly
//!   at the budget.
//!
//! The recorded halt round is what certification consumes: a node's
//! state after `t` executed rounds is a function of the initial states
//! within distance `t` (information travels one hop per round), so a
//! node that halted in round `h` is *exact* — bit-identical to the
//! global run — iff `h < dist(node, contaminated frontier)`.

use crate::network::{ExecCfg, Network, Protocol};
use crate::rng::SplitMix64;
use crate::stats::NetStats;
use crate::topology::Topology;

/// A single-threaded, budgeted network over caller-chosen RNG streams.
pub struct MicroNet<P: Protocol> {
    net: Network<P>,
    /// `halt_round[v]` = 0-based round in which `v` called `halt()`,
    /// `None` while it is still live.
    halt_round: Vec<Option<u64>>,
}

impl<P: Protocol> MicroNet<P> {
    /// Build the executor. `streams[v]` is the RNG stream id for local
    /// node `v` — pass global ids when `topo` is a relabeled subgraph,
    /// so local coin flips match the global run (`SplitMix64::for_node`
    /// seeding, same as [`Network::new`]).
    pub fn new(topo: Topology, nodes: Vec<P>, seed: u64, streams: &[u64]) -> Self {
        assert_eq!(nodes.len(), streams.len(), "one stream id per node");
        let n = nodes.len();
        let mut net = Network::new(topo, nodes, seed).with_cfg(ExecCfg::sequential());
        net.rngs = streams
            .iter()
            .map(|&sid| SplitMix64::for_node(seed, sid))
            .collect();
        MicroNet {
            net,
            halt_round: vec![None; n],
        }
    }

    /// Run until all nodes halt or `budget` rounds elapse (no panic on
    /// exhaustion — unhalted nodes just stay uncertified). Returns
    /// whether every node halted.
    pub fn run(&mut self, budget: u64) -> bool {
        while !self.net.all_halted() && self.net.round() < budget {
            self.net.run_rounds(1);
            let just_finished = self.net.round() - 1;
            for (v, hr) in self.halt_round.iter_mut().enumerate() {
                if hr.is_none() && self.net.halted[v] {
                    *hr = Some(just_finished);
                }
            }
        }
        self.net.all_halted()
    }

    /// 0-based round in which local node `v` halted, or `None` if it
    /// is still live.
    pub fn halt_round(&self, v: usize) -> Option<u64> {
        self.halt_round[v]
    }

    /// Rounds executed so far.
    pub fn rounds(&self) -> u64 {
        self.net.round()
    }

    /// Final protocol states + accounting.
    pub fn into_parts(self) -> (Vec<P>, NetStats) {
        self.net.into_parts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mailbox::Inbox;
    use crate::network::Ctx;

    /// Each node draws one random value in round 0, halts in round 1.
    #[derive(Debug)]
    struct Draw {
        value: Option<u64>,
    }

    impl Protocol for Draw {
        type Msg = ();

        fn on_round(&mut self, ctx: &mut Ctx<'_, Self::Msg>, _inbox: Inbox<'_, Self::Msg>) {
            match ctx.round() {
                0 => self.value = Some(ctx.rng().next()),
                _ => ctx.halt(),
            }
        }
    }

    #[test]
    fn streams_override_matches_global_ids() {
        // Local node v simulating global node g_v must draw what a
        // Network indexed by global ids would give g_v.
        let seed = 42;
        let globals = [7u64, 19, 23];
        let topo = Topology::from_edges(3, &[(0, 1), (1, 2)]);
        let nodes = (0..3).map(|_| Draw { value: None }).collect();
        let mut micro = MicroNet::new(topo, nodes, seed, &globals);
        assert!(micro.run(10));
        let (states, _) = micro.into_parts();
        for (v, &gid) in globals.iter().enumerate() {
            let mut want = SplitMix64::for_node(seed, gid);
            assert_eq!(states[v].value, Some(want.next()), "node {v}");
        }
    }

    #[test]
    fn halt_rounds_recorded() {
        let topo = Topology::from_edges(2, &[(0, 1)]);
        let nodes = vec![Draw { value: None }, Draw { value: None }];
        let mut micro = MicroNet::new(topo, nodes, 1, &[0, 1]);
        assert!(micro.run(10));
        assert_eq!(micro.halt_round(0), Some(1));
        assert_eq!(micro.halt_round(1), Some(1));
        assert_eq!(micro.rounds(), 2);
    }

    /// A node that never halts must exhaust the budget quietly.
    #[derive(Debug)]
    struct Stubborn;

    impl Protocol for Stubborn {
        type Msg = ();

        fn on_round(&mut self, _ctx: &mut Ctx<'_, Self::Msg>, _inbox: Inbox<'_, Self::Msg>) {}
    }

    #[test]
    fn budget_exhaustion_is_quiet() {
        let topo = Topology::from_edges(1, &[]);
        let mut micro = MicroNet::new(topo, vec![Stubborn], 5, &[0]);
        assert!(!micro.run(8));
        assert_eq!(micro.rounds(), 8);
        assert_eq!(micro.halt_round(0), None);
    }
}
