//! Deterministic random number generation.
//!
//! Every node in a [`crate::Network`] owns an independent RNG stream
//! derived from the master seed and the node id via SplitMix64. This
//! makes runs reproducible bit-for-bit, independent of whether nodes are
//! stepped sequentially or in parallel.

/// SplitMix64 (Steele, Lea, Flood 2014): a tiny, fast, high-quality
/// 64-bit generator. Used both directly (node RNG streams) and as a seed
/// scrambler.
///
/// Not cryptographically secure — this is a simulation RNG.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a raw seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derive the RNG stream for node `id` under master seed `seed`.
    ///
    /// Streams for distinct `(seed, id)` pairs are decorrelated by
    /// running the scrambler twice with a large odd constant separating
    /// the id space from the seed space.
    pub fn for_node(seed: u64, id: u64) -> Self {
        let mut s = SplitMix64::new(seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // Burn one output so that node 0 with seed 0 does not start at
        // the fixed point of the scrambler.
        let _ = s.next();
        s
    }

    /// Next raw 64-bit output.
    ///
    /// Deliberately named `next` (the SplitMix64 literature's name).
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. Uses Lemire's multiply-shift
    /// rejection method to avoid modulo bias.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        loop {
            let x = self.next();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with success probability `p`.
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.f64() < p
    }
}

impl SplitMix64 {
    /// Fill `dest` with random bytes (kept for harness-level hashing).
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SplitMix64::for_node(7, 3);
        let mut b = SplitMix64::for_node(7, 3);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn distinct_nodes_get_distinct_streams() {
        let mut a = SplitMix64::for_node(7, 3);
        let mut b = SplitMix64::for_node(7, 4);
        let same = (0..64).filter(|_| a.next() == b.next()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_respects_bound_and_covers_range() {
        let mut r = SplitMix64::new(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = r.below(10) as usize;
            assert!(x < 10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(99);
        for _ in 0..1000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bernoulli_mean_is_close() {
        let mut r = SplitMix64::new(5);
        let hits = (0..20_000).filter(|_| r.bernoulli(0.3)).count();
        let mean = hits as f64 / 20_000.0;
        assert!((mean - 0.3).abs() < 0.02, "mean {mean} too far from 0.3");
    }

    #[test]
    fn fill_bytes_partial_chunks() {
        let mut r = SplitMix64::new(11);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
