//! Deterministic random number generation.
//!
//! Every node in a [`crate::Network`] owns an independent RNG stream
//! derived from the master seed and the node id via SplitMix64. This
//! makes runs reproducible bit-for-bit, independent of whether nodes are
//! stepped sequentially or in parallel.

/// SplitMix64 (Steele, Lea, Flood 2014): a tiny, fast, high-quality
/// 64-bit generator. Used both directly (node RNG streams) and as a seed
/// scrambler.
///
/// Not cryptographically secure — this is a simulation RNG.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a raw seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derive the RNG stream for node `id` under master seed `seed`.
    ///
    /// The state of a SplitMix64 is a `+γ` counter, so *every* stream
    /// walks the same 2⁶⁴-cycle output orbit — two streams differ only
    /// in their starting offset. Seeding node streams at the raw
    /// `seed ^ id·γ` (as earlier revisions did) puts nodes at
    /// *adjacent* offsets: node id+2 replays node id's outputs two
    /// steps later, and two neighbors that consume outputs at a
    /// state-dependent rate (e.g. one draw when "female", two when
    /// "male" in Israeli–Itai-style protocols) perform a ±1 random
    /// walk on their offset difference — which locks them into
    /// identical coin flips forever the first time it hits zero.
    /// Jumping through one scrambler application instead places each
    /// `(seed, id)` pair at a pseudorandom orbit offset, separating
    /// streams by ~2⁶³ positions in expectation.
    pub fn for_node(seed: u64, id: u64) -> Self {
        let mut scrambler = SplitMix64::new(seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        SplitMix64::new(scrambler.next())
    }

    /// Next raw 64-bit output.
    ///
    /// Deliberately named `next` (the SplitMix64 literature's name).
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. Uses Lemire's multiply-shift
    /// rejection method to avoid modulo bias.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        loop {
            let x = self.next();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with success probability `p`.
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.f64() < p
    }
}

/// Registry of every reserved RNG stream id in the workspace.
///
/// [`SplitMix64::for_node`] takes a stream id; per-node protocol
/// streams use the node id itself, and every *non-node* consumer
/// (churn schedule, adversary fault classes, switch traffic, …) must
/// reserve a named id here instead of inventing a magic literal at the
/// call site — scattered literals are exactly what the `rng-hygiene`
/// dlint rule rejects.
///
/// The values are **frozen**: committed `BENCH_*.json` records and
/// golden traces were produced with them, so renumbering is a silent
/// bit-identity break. The low ids predate this registry and collide
/// with node streams only on graphs larger than the current stress
/// ceiling (smallest is `SWITCH_TRAFFIC` = 0x7AFF = 31 743 nodes,
/// vs. 2¹⁵ node stress topologies). New streams must come from the
/// high block counting down from `u64::MAX` (next free:
/// `u64::MAX - 5`), which no realizable node id reaches.
pub mod streams {
    /// Adversary: per-message drop coin flips.
    pub const ADV_DROP: u64 = u64::MAX;
    /// Adversary: partition burst scheduling.
    pub const ADV_BURST: u64 = u64::MAX - 1;
    /// Adversary: per-message delay jitter.
    pub const ADV_DELAY: u64 = u64::MAX - 2;
    /// Adversary: node stall scheduling.
    pub const ADV_STALL: u64 = u64::MAX - 3;
    /// Adversary: crash-site selection.
    pub const ADV_CRASH: u64 = u64::MAX - 4;
    /// Dynamic plane: churn arrival/departure schedule.
    pub const CHURN: u64 = 0xC4A7;
    /// Core: Luby-style MIS coin flips in the generic reduction.
    pub const GENERIC_MIS: u64 = 0xA160;
    /// Core: palette sampling in the general-graph coloring stage.
    pub const GENERAL_COLOR: u64 = 0x000C_010B;
    /// Switch plane: scheduler tie-breaking.
    pub const SWITCH_SCHED: u64 = 0x9147;
    /// Switch plane: synthetic traffic arrivals.
    pub const SWITCH_TRAFFIC: u64 = 0x7AFF;
    /// Switch plane: port failure injection.
    pub const SWITCH_FAILURE: u64 = 0xFA11;

    /// Every reserved id, for the distinctness test and for docs.
    pub const ALL: [(&str, u64); 11] = [
        ("ADV_DROP", ADV_DROP),
        ("ADV_BURST", ADV_BURST),
        ("ADV_DELAY", ADV_DELAY),
        ("ADV_STALL", ADV_STALL),
        ("ADV_CRASH", ADV_CRASH),
        ("CHURN", CHURN),
        ("GENERIC_MIS", GENERIC_MIS),
        ("GENERAL_COLOR", GENERAL_COLOR),
        ("SWITCH_SCHED", SWITCH_SCHED),
        ("SWITCH_TRAFFIC", SWITCH_TRAFFIC),
        ("SWITCH_FAILURE", SWITCH_FAILURE),
    ];
}

impl SplitMix64 {
    /// Fill `dest` with random bytes (kept for harness-level hashing).
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SplitMix64::for_node(7, 3);
        let mut b = SplitMix64::for_node(7, 3);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn distinct_nodes_get_distinct_streams() {
        let mut a = SplitMix64::for_node(7, 3);
        let mut b = SplitMix64::for_node(7, 4);
        let same = (0..64).filter(|_| a.next() == b.next()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn node_streams_are_not_shifted_copies() {
        // Regression: with raw `seed ^ id·γ` seeding, node id+2's
        // stream was node id's stream advanced by exactly two outputs,
        // which let adjacent protocol nodes lock into identical coin
        // sequences. No small shift may reproduce one stream from
        // another.
        for (a_id, b_id) in [(1u64, 3u64), (0, 1), (2, 7)] {
            let a: Vec<u64> = {
                let mut r = SplitMix64::for_node(5, a_id);
                (0..48).map(|_| r.next()).collect()
            };
            let b: Vec<u64> = {
                let mut r = SplitMix64::for_node(5, b_id);
                (0..48).map(|_| r.next()).collect()
            };
            for shift in 0..16 {
                assert!(
                    a[shift..shift + 16] != b[..16],
                    "stream {b_id} replays stream {a_id} at shift {shift}"
                );
                assert!(
                    b[shift..shift + 16] != a[..16],
                    "stream {a_id} replays stream {b_id} at shift {shift}"
                );
            }
        }
    }

    #[test]
    fn reserved_stream_ids_are_pairwise_distinct() {
        for (i, &(na, a)) in streams::ALL.iter().enumerate() {
            for &(nb, b) in &streams::ALL[i + 1..] {
                assert_ne!(a, b, "streams {na} and {nb} share id {a:#x}");
            }
        }
    }

    #[test]
    fn below_respects_bound_and_covers_range() {
        let mut r = SplitMix64::new(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = r.below(10) as usize;
            assert!(x < 10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(99);
        for _ in 0..1000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bernoulli_mean_is_close() {
        let mut r = SplitMix64::new(5);
        let hits = (0..20_000).filter(|_| r.bernoulli(0.3)).count();
        let mean = hits as f64 / 20_000.0;
        assert!((mean - 0.3).abs() < 0.02, "mean {mean} too far from 0.3");
    }

    #[test]
    fn fill_bytes_partial_chunks() {
        let mut r = SplitMix64::new(11);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
