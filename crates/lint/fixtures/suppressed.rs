//! Suppression-syntax corpus: one valid allow, plus the three
//! hygiene failures (missing reason, unknown rule, stale target).
//!
//! NOT compiled: corpus input for `tests/corpus.rs`.

use std::collections::HashSet;
use std::time::Instant;

/// A justified suppression: the finding on the next code line is
/// silenced and counted, not reported.
fn justified(view: &HashSet<u32>) -> usize {
    // dlint::allow(unordered-iter, "order is folded through max(), which is commutative")
    view.iter().copied().max().unwrap_or(0) as usize
}

/// Reason-less allow: the wall-clock finding below must STILL be
/// reported, plus a suppression-hygiene finding for the empty reason.
fn no_reason() -> Instant {
    // dlint::allow(wall-clock, "")
    Instant::now()
}

/// Unknown rule name: hygiene finding, and the env probe still fires.
fn bad_rule() -> Option<String> {
    // dlint::allow(wall-clocks, "typo in the rule name")
    std::env::var("THREADS").ok()
}

/// Stale allow: there is nothing to suppress here, so the suppression
/// itself is the finding.
fn stale() -> u32 {
    // dlint::allow(float-eq, "left behind after the comparison was rewritten")
    41 + 1
}
