//! Tokenizer edge cases: every pattern hidden inside a string, raw
//! string, or comment must be invisible; the live sites at the bottom
//! must each fire exactly once.
//!
//! NOT compiled: corpus input for `tests/corpus.rs`.

use std::collections::HashSet;

/* A block comment mentioning set.iter() and Instant::now() is not code.
   /* Nested blocks nest: std::env::var("HIDDEN") stays hidden. */
   Still the same comment. */

fn hidden_in_strings() -> Vec<String> {
    vec![
        "Instant::now() in a plain string".to_string(),
        r#"set.iter() in a raw string with a "quote" inside"#.to_string(),
        r##"fences: r#"SplitMix64::new(42)"# is still string"##.to_string(),
        String::from_utf8_lossy(b"bytes.iter() \x21").to_string(),
    ]
}

// A line comment: for x in set { departed.push(x) } — not code either.

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_scoped_hash_iteration_is_exempt() {
        let set: HashSet<u32> = HashSet::new();
        let _: Vec<u32> = set.into_iter().collect();
        let _ = std::time::Instant::now();
    }
}

// --- live sites: one finding each ------------------------------------

fn raw_rng(seed: u64) -> u64 {
    // rng-hygiene: raw construction bypasses the stream registry.
    let mut state = seed;
    let _ = SplitMix64::new(seed);
    state = state.wrapping_add(1);
    state
}

fn literal_stream(seed: u64) -> u64 {
    // rng-hygiene: magic literal stream id.
    let _ = SplitMix64::for_node(seed, 0xBEEF);
    seed
}

fn float_gate(x: f64) -> bool {
    // float-eq: exact comparison in a determinism-gated path.
    x == 0.1
}

struct SplitMix64;
impl SplitMix64 {
    fn new(_s: u64) -> u64 {
        0
    }
    fn for_node(_s: u64, _id: u64) -> u64 {
        0
    }
}
