//! Resurrection of the PR 5 Barabási–Albert incident: each new node's
//! attachment targets were deduplicated in a `HashSet` and the edges
//! appended by iterating it. The *edge order* of the generated graph —
//! and with it every edge id downstream — depended on per-instance
//! hash state instead of the seed.
//!
//! NOT compiled: this file is corpus input for `tests/corpus.rs`,
//! which pins the findings dlint must produce on it.

use std::collections::HashSet;

fn barabasi_albert(n: u32, m: usize, rng: &mut impl FnMut(u64) -> u64) -> Vec<(u32, u32)> {
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut stubs: Vec<u32> = Vec::new();
    for v in 1..n {
        let mut targets: HashSet<u32> = HashSet::new();
        while targets.len() < m.min(v as usize) {
            let t = if stubs.is_empty() {
                rng(v as u64) as u32
            } else {
                stubs[rng(stubs.len() as u64) as usize]
            };
            if t != v {
                targets.insert(t);
            }
        }
        // BUG: hash-state order becomes the graph's edge order.
        for &t in &targets {
            edges.push((v, t));
            stubs.push(v);
            stubs.push(t);
        }
    }
    edges
}
