//! Negative corpus: everything here is determinism-sound and must
//! produce zero findings.
//!
//! NOT compiled: corpus input for `tests/corpus.rs`.

use std::collections::{BTreeSet, HashSet};

/// Ordered iteration is fine.
fn ordered(xs: &BTreeSet<u32>) -> Vec<u32> {
    xs.iter().copied().collect()
}

/// Membership-only HashSet use is fine: no iteration, no order.
fn membership(seen: &HashSet<u32>, v: u32) -> bool {
    seen.contains(&v)
}

/// Sorting immediately after collection washes the hash order out
/// before anything observes it — dlint flags the *collect from iter*
/// shape, so the sound spelling goes through an ordered set.
fn collected(xs: &[u32]) -> Vec<u32> {
    let set: BTreeSet<u32> = xs.iter().copied().collect();
    set.into_iter().collect()
}

/// Derived node streams with the node id are the sanctioned RNG shape.
fn node_stream(seed: u64, id: u64) -> u64 {
    seed.wrapping_mul(id)
}

/// Float comparisons through an explicit tolerance are fine.
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test code may iterate hash containers freely: assertions that
    /// are order-insensitive (counts, memberships) are idiomatic here.
    #[test]
    fn hash_iteration_in_tests_is_exempt() {
        let s: HashSet<u32> = [3, 1, 2].into_iter().collect();
        assert_eq!(s.iter().count(), 3);
        let mut drained: Vec<u32> = s.into_iter().collect();
        drained.sort_unstable();
        assert_eq!(drained, vec![1, 2, 3]);
    }
}
