//! Resurrection of the PR 2 churn-rejoin incident: the set of leaving
//! nodes was collected in a `HashSet` and then *iterated* to fill the
//! departure FIFO. Per-instance hash state (not the seed) decided the
//! FIFO order, so later epochs' rejoin edges — and every golden trace
//! downstream — differed between bit-identical seeds.
//!
//! NOT compiled: this file is corpus input for `tests/corpus.rs`,
//! which pins the findings dlint must produce on it.

use std::collections::{HashSet, VecDeque};

fn node_churn(live: &[u32], k: usize, rng: &mut impl FnMut(u64) -> u64) -> VecDeque<u32> {
    let mut leaving: HashSet<u32> = HashSet::new();
    while leaving.len() < k {
        let v = live[rng(live.len() as u64) as usize];
        leaving.insert(v);
    }
    let mut departed: VecDeque<u32> = VecDeque::new();
    // BUG: hash-state order enters the rejoin FIFO.
    for &v in leaving.iter() {
        departed.push_back(v);
    }
    // Same bug, sink form: the FIFO inherits the set's arbitrary order.
    departed.extend(&leaving);
    departed
}
