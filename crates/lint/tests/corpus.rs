//! Golden-finding tests over the fixture corpus.
//!
//! The two historical incidents (the PR 2 churn-rejoin FIFO and the
//! PR 5 Barabási–Albert attachment targets, both seed-nondeterminism
//! escapes that property tests caught only after merge) are pinned
//! here verbatim: dlint must flag them, at these exact lines, forever.

use dlint::analyzer::analyze_source;
use dlint::RuleId;
use std::path::PathBuf;
use std::process::Command;

/// Read a fixture and analyze it under its workspace-relative path
/// (rule scopes match on the path, so it must look real).
fn analyze_fixture(name: &str) -> dlint::analyzer::Analysis {
    let src = std::fs::read_to_string(fixture_path(name))
        .unwrap_or_else(|e| panic!("fixture {name}: {e}"));
    analyze_source(&format!("crates/lint/fixtures/{name}"), &src)
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

/// (rule, line) pairs, sorted, for golden comparison.
fn hits(a: &dlint::analyzer::Analysis) -> Vec<(RuleId, u32)> {
    a.findings.iter().map(|f| (f.rule, f.line)).collect()
}

#[test]
fn pr2_churn_fifo_is_flagged() {
    let a = analyze_fixture("pr2_churn_fifo.rs");
    assert_eq!(
        hits(&a),
        vec![
            // The FIFO fill loop iterating the HashSet…
            (RuleId::UnorderedIter, 20),
            // …and the sink form that extends the FIFO from it.
            (RuleId::UnorderedIter, 24),
        ],
        "findings drifted: {:?}",
        a.findings
    );
}

#[test]
fn pr5_ba_attachment_is_flagged() {
    let a = analyze_fixture("pr5_ba_attachment.rs");
    assert_eq!(
        hits(&a),
        vec![(RuleId::UnorderedIter, 28)],
        "findings drifted: {:?}",
        a.findings
    );
}

#[test]
fn clean_fixture_is_clean() {
    let a = analyze_fixture("clean.rs");
    assert!(a.findings.is_empty(), "false positives: {:?}", a.findings);
    assert_eq!(a.suppressed, 0);
}

#[test]
fn suppression_corpus() {
    let a = analyze_fixture("suppressed.rs");
    // The justified allow silences exactly one finding…
    assert_eq!(a.suppressed, 1);
    // …and the three hygiene failures surface alongside the findings
    // their broken allows failed to silence.
    assert_eq!(
        hits(&a),
        vec![
            (RuleId::SuppressionHygiene, 19), // empty reason
            (RuleId::WallClock, 20),          // …which therefore still fires
            (RuleId::SuppressionHygiene, 25), // unknown rule name
            (RuleId::AmbientEnv, 26),         // …which therefore still fires
            (RuleId::SuppressionHygiene, 32), // stale: suppresses nothing
        ],
        "findings drifted: {:?}",
        a.findings
    );
}

#[test]
fn tokenizer_edge_cases() {
    let a = analyze_fixture("edges.rs");
    // Everything inside strings, raw strings, nested comments, and the
    // #[cfg(test)] module is invisible; only the three live sites fire.
    assert_eq!(
        hits(&a),
        vec![
            (RuleId::RngHygiene, 41), // raw SplitMix64::new
            (RuleId::RngHygiene, 48), // literal stream id
            (RuleId::FloatEq, 54),    // exact float comparison
        ],
        "findings drifted: {:?}",
        a.findings
    );
}

/// The real binary, on the real historical-bug fixtures, must gate:
/// exit code 1 and both files in the JSON report.
#[test]
fn binary_gates_on_historical_bugs() {
    let json = std::env::temp_dir().join(format!("dlint_corpus_{}.json", std::process::id()));
    let out = Command::new(env!("CARGO_BIN_EXE_dlint"))
        .arg(fixture_path("pr2_churn_fifo.rs"))
        .arg(fixture_path("pr5_ba_attachment.rs"))
        .arg("--json")
        .arg(&json)
        .output()
        .expect("spawn dlint");
    assert_eq!(out.status.code(), Some(1), "exit code must gate");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("pr2_churn_fifo.rs:20"), "stdout: {stdout}");
    assert!(
        stdout.contains("pr5_ba_attachment.rs:28"),
        "stdout: {stdout}"
    );
    let report = std::fs::read_to_string(&json).expect("json report written");
    let _ = std::fs::remove_file(&json);
    assert!(report.contains("\"rule\": \"unordered-iter\""), "{report}");
    assert!(report.contains("pr5_ba_attachment.rs"), "{report}");
}

/// The clean fixture through the real binary: exit 0.
#[test]
fn binary_passes_clean_fixture() {
    let out = Command::new(env!("CARGO_BIN_EXE_dlint"))
        .arg(fixture_path("clean.rs"))
        .output()
        .expect("spawn dlint");
    assert_eq!(out.status.code(), Some(0), "clean file must pass");
}
