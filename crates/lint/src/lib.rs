//! `dlint` — the determinism static-analysis pass.
//!
//! Every guarantee this workspace ships rests on one invariant: **same
//! seed ⇒ bit-identical run**. The property suites enforce it
//! dynamically; `dlint` enforces the *source-level rules* that keep it
//! true, so the bug class that broke it twice (seed-nondeterministic
//! `HashSet` iteration — the PR 2 churn-rejoin FIFO and the PR 5
//! Barabási–Albert attachment targets, both caught late by property
//! tests) cannot land a third time. The full contract the rules encode
//! lives in `DETERMINISM.md` at the workspace root.
//!
//! The analyzer is dependency-free: a hand-rolled tokenizer
//! (string/char/comment/raw-string aware — [`tokenizer`]), a
//! token-pattern rule engine with `#[cfg(test)]` scoping and sanctioned
//! path lists ([`analyzer`]), and human + JSON rendering with
//! exit-code gating ([`report`]).
//!
//! Rules:
//!
//! | rule | fires on |
//! |---|---|
//! | `unordered-iter` | iterating / draining / `extend`ing from a `HashSet`/`HashMap` in non-test code |
//! | `wall-clock` | `Instant::now` / `SystemTime` outside the dobs clock and the bench crate |
//! | `ambient-env` | `std::env::var*` / `available_parallelism` outside the sanctioned knob modules |
//! | `rng-hygiene` | raw `SplitMix64::new` or literal stream ids outside the RNG registries |
//! | `float-eq` | `==` / `!=` on `f32`/`f64` in determinism-gated crates |
//! | `suppression-hygiene` | malformed, reason-less, or stale `dlint::allow` comments |
//!
//! Per-site suppression: `// dlint::allow(<rule>, "<reason>")` on the
//! offending line or the line above. The reason is mandatory — an
//! empty one is itself a finding — and a suppression that no longer
//! suppresses anything is flagged as stale.

pub mod analyzer;
pub mod report;
pub mod tokenizer;
pub mod walk;

pub use analyzer::{analyze_source, Analysis, Finding, RuleId};
pub use report::Report;

/// Analyze a set of (path, source) pairs into one report. Paths must be
/// workspace-relative with forward slashes.
pub fn analyze_all<'a, I>(files: I) -> Report
where
    I: IntoIterator<Item = (&'a str, &'a str)>,
{
    let mut findings = Vec::new();
    let mut suppressed = 0usize;
    let mut files_scanned = 0usize;
    for (path, src) in files {
        let a = analyze_source(path, src);
        findings.extend(a.findings);
        suppressed += a.suppressed;
        files_scanned += 1;
    }
    findings.sort();
    Report {
        findings,
        files_scanned,
        suppressed,
    }
}
