//! Workspace discovery and file walking.

use std::path::{Path, PathBuf};

/// Directories never scanned during a workspace walk. The fixture
/// corpus is input data for the corpus tests, not workspace code.
const SKIP_DIRS: [&str; 3] = ["target", ".git", "fixtures"];

/// Walk upward from `start` to the workspace root (the first ancestor
/// whose `Cargo.toml` declares `[workspace]`).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Member directories named in the root manifest (`members = [...]`).
/// Used for reporting; the walk itself is recursive so that new crates
/// are covered the moment they exist on disk.
pub fn workspace_members(root: &Path) -> Vec<String> {
    let Ok(text) = std::fs::read_to_string(root.join("Cargo.toml")) else {
        return Vec::new();
    };
    let Some(start) = text.find("members") else {
        return Vec::new();
    };
    let Some(open) = text[start..].find('[') else {
        return Vec::new();
    };
    let Some(close) = text[start + open..].find(']') else {
        return Vec::new();
    };
    let body = &text[start + open + 1..start + open + close];
    body.split(',')
        .filter_map(|s| {
            let s = s.trim().trim_matches('"');
            (!s.is_empty()).then(|| s.to_string())
        })
        .collect()
}

/// All `.rs` files under `dir` (sorted for deterministic reports),
/// skipping `target`, `.git`, `fixtures`, and hidden directories.
pub fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    collect(dir, &mut out);
    out.sort();
    out
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            collect(&path, out);
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
}

/// Workspace-relative path with forward slashes (what the rule scopes
/// match against).
pub fn rel_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
