//! The rule engine: scopes (test code, sanctioned paths), per-file
//! identifier typing, the five determinism rules, and suppression
//! handling.
//!
//! Everything here is a *token-pattern* analysis — deliberately
//! heuristic, tuned to over-approximate (a false positive costs one
//! written justification; a false negative costs a nondeterminism
//! incident). The two historical incidents this pass exists to prevent
//! (`crates/lint/fixtures/` resurrects both) were each a single
//! hash-order iteration that survived review and two release cycles.

use crate::tokenizer::{lex, Lexed, Tok, TokKind};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Rule identifiers. `SuppressionHygiene` is the engine's own meta-rule
/// (malformed/reason-less/unused `dlint::allow`); the other five are
/// the determinism contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    UnorderedIter,
    WallClock,
    AmbientEnv,
    RngHygiene,
    FloatEq,
    SuppressionHygiene,
}

impl RuleId {
    pub const ALL: [RuleId; 6] = [
        RuleId::UnorderedIter,
        RuleId::WallClock,
        RuleId::AmbientEnv,
        RuleId::RngHygiene,
        RuleId::FloatEq,
        RuleId::SuppressionHygiene,
    ];

    /// The name used in reports and in `dlint::allow(<name>, "…")`.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::UnorderedIter => "unordered-iter",
            RuleId::WallClock => "wall-clock",
            RuleId::AmbientEnv => "ambient-env",
            RuleId::RngHygiene => "rng-hygiene",
            RuleId::FloatEq => "float-eq",
            RuleId::SuppressionHygiene => "suppression-hygiene",
        }
    }

    pub fn from_name(s: &str) -> Option<RuleId> {
        RuleId::ALL.iter().copied().find(|r| r.name() == s)
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    pub line: u32,
    pub col: u32,
    pub rule: RuleId,
    pub message: String,
}

/// Paths (workspace-relative prefixes) where a rule does not apply.
/// These are the *sanctioned* sites of the determinism contract — see
/// DETERMINISM.md for the rationale behind each entry.
struct Scope {
    /// Prefixes where the rule is off.
    allow_prefixes: &'static [&'static str],
    /// If non-empty, the rule applies *only* under these prefixes.
    restrict_prefixes: &'static [&'static str],
}

fn scope_of(rule: RuleId) -> Scope {
    match rule {
        // Hash containers may be *built* anywhere; iterating one is an
        // ordering decision and must happen through an ordered
        // structure everywhere outside test code.
        RuleId::UnorderedIter => Scope {
            allow_prefixes: &[],
            restrict_prefixes: &[],
        },
        // The dobs clock is the one sanctioned time source; the bench
        // crate measures wall time by design (its outputs are gated by
        // host-fingerprint-aware benchdiff, never by bit-identity).
        RuleId::WallClock => Scope {
            allow_prefixes: &["crates/obs/src/plane.rs", "crates/bench/"],
            restrict_prefixes: &[],
        },
        // Experiment knobs (E17_N, CHURN_FAMILY, …) are read in the
        // bench crate only; everything else must take configuration as
        // explicit arguments.
        RuleId::AmbientEnv => Scope {
            allow_prefixes: &["crates/bench/"],
            restrict_prefixes: &[],
        },
        // The two RNG registry modules own raw construction: simnet's
        // SplitMix64 itself and the graph generators' scrambled
        // wrapper. Everyone else derives streams via
        // `SplitMix64::for_node(seed, streams::…)`.
        RuleId::RngHygiene => Scope {
            allow_prefixes: &["crates/simnet/src/rng.rs", "crates/graph/src/rng.rs"],
            restrict_prefixes: &[],
        },
        // Exact float comparison is flagged in the determinism-gated
        // crates (where a `==` on an accumulated weight is usually a
        // latent tolerance bug). The fixtures dir opts in so the corpus
        // can exercise the rule.
        RuleId::FloatEq => Scope {
            allow_prefixes: &[],
            restrict_prefixes: &[
                "crates/core/",
                "crates/simnet/",
                "crates/dynamic/",
                "crates/graph/",
                "crates/switch/",
                "src/",
                "examples/",
                "crates/lint/fixtures/",
            ],
        },
        RuleId::SuppressionHygiene => Scope {
            allow_prefixes: &[],
            restrict_prefixes: &[],
        },
    }
}

/// True when `rule` applies to the file at workspace-relative `path`.
fn rule_applies(rule: RuleId, path: &str) -> bool {
    let s = scope_of(rule);
    if s.allow_prefixes.iter().any(|p| path.starts_with(p)) {
        return false;
    }
    if !s.restrict_prefixes.is_empty() && !s.restrict_prefixes.iter().any(|p| path.starts_with(p)) {
        return false;
    }
    true
}

/// True when the whole file is test/bench code by location: anything
/// under a `tests/` or `benches/` directory.
fn path_is_test_code(path: &str) -> bool {
    path.split('/')
        .any(|seg| seg == "tests" || seg == "benches")
}

/// A parsed `dlint::allow(rule, "reason")` comment.
#[derive(Debug)]
struct Allow {
    rule: RuleId,
    /// Line the suppression targets (its own line if it shares it with
    /// code, otherwise the next line that has code).
    target: u32,
    /// Where the comment itself sits (for hygiene reports).
    at: u32,
    used: std::cell::Cell<bool>,
}

/// Identifier classification gathered from declarations in the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IdKind {
    Hash,
    Float,
}

pub struct Analysis {
    pub findings: Vec<Finding>,
    pub suppressed: usize,
}

/// Analyze one file's source. `path` must be workspace-relative with
/// forward slashes — scoping (sanctioned paths, `tests/` detection) is
/// driven by it.
pub fn analyze_source(path: &str, src: &str) -> Analysis {
    let lx = lex(src);
    let file_is_test = path_is_test_code(path);
    let test_lines = if file_is_test {
        TestLines::All
    } else {
        TestLines::Set(cfg_test_lines(&lx))
    };

    let allows = collect_allows(&lx);
    let idents = classify_idents(&lx.toks);

    let mut raw: Vec<Finding> = Vec::new();
    for rule in [
        RuleId::UnorderedIter,
        RuleId::WallClock,
        RuleId::AmbientEnv,
        RuleId::RngHygiene,
        RuleId::FloatEq,
    ] {
        if !rule_applies(rule, path) {
            continue;
        }
        let hits = match rule {
            RuleId::UnorderedIter => check_unordered_iter(&lx.toks, &idents),
            RuleId::WallClock => check_wall_clock(&lx.toks),
            RuleId::AmbientEnv => check_ambient_env(&lx.toks),
            RuleId::RngHygiene => check_rng_hygiene(&lx.toks),
            RuleId::FloatEq => check_float_eq(&lx.toks, &idents),
            RuleId::SuppressionHygiene => unreachable!(),
        };
        for (tok_line, tok_col, msg) in hits {
            if test_lines.contains(tok_line) {
                continue;
            }
            raw.push(Finding {
                file: path.to_string(),
                line: tok_line,
                col: tok_col,
                rule,
                message: msg,
            });
        }
    }

    // Apply suppressions.
    let mut findings = Vec::new();
    let mut suppressed = 0usize;
    for f in raw {
        let hit = allows
            .iter()
            .find(|a| matches!(a, Ok(a) if a.rule == f.rule && a.target == f.line));
        match hit {
            Some(Ok(a)) => {
                a.used.set(true);
                suppressed += 1;
            }
            _ => findings.push(f),
        }
    }

    // Suppression hygiene: malformed allows, and allows that suppress
    // nothing (stale after a fix — delete them so the contract stays
    // readable).
    for a in &allows {
        match a {
            Err((line, msg)) => findings.push(Finding {
                file: path.to_string(),
                line: *line,
                col: 1,
                rule: RuleId::SuppressionHygiene,
                message: msg.clone(),
            }),
            Ok(a) if !a.used.get() && !test_lines.contains(a.target) => {
                findings.push(Finding {
                    file: path.to_string(),
                    line: a.at,
                    col: 1,
                    rule: RuleId::SuppressionHygiene,
                    message: format!(
                        "unused suppression: no `{}` finding on line {} — delete the stale allow",
                        a.rule, a.target
                    ),
                });
            }
            _ => {}
        }
    }

    findings.sort();
    Analysis {
        findings,
        suppressed,
    }
}

// ---------------------------------------------------------------------
// Test-region detection
// ---------------------------------------------------------------------

enum TestLines {
    All,
    Set(BTreeSet<u32>),
}

impl TestLines {
    fn contains(&self, line: u32) -> bool {
        match self {
            TestLines::All => true,
            TestLines::Set(s) => s.contains(&line),
        }
    }
}

/// Lines covered by `#[test]` / `#[cfg(test)]`-guarded items. The item
/// following the attribute extends to its matching close brace (or the
/// terminating `;` for brace-less items).
fn cfg_test_lines(lx: &Lexed) -> BTreeSet<u32> {
    let toks = &lx.toks;
    let mut lines = BTreeSet::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_punct("#") || i + 1 >= toks.len() || !toks[i + 1].is_punct("[") {
            i += 1;
            continue;
        }
        // Scan the attribute to its matching `]`.
        let mut j = i + 2;
        let mut depth = 1usize;
        let mut saw_test = false;
        let mut saw_not = false;
        while j < toks.len() && depth > 0 {
            match toks[j].text.as_str() {
                "[" => depth += 1,
                "]" => depth -= 1,
                "test" if toks[j].kind == TokKind::Ident => saw_test = true,
                "not" if toks[j].kind == TokKind::Ident => saw_not = true,
                _ => {}
            }
            j += 1;
        }
        if !saw_test || saw_not {
            i = j;
            continue;
        }
        let attr_start_line = toks[i].line;
        // Skip any further attributes on the item.
        while j + 1 < toks.len() && toks[j].is_punct("#") && toks[j + 1].is_punct("[") {
            let mut d = 1usize;
            let mut k = j + 2;
            while k < toks.len() && d > 0 {
                match toks[k].text.as_str() {
                    "[" => d += 1,
                    "]" => d -= 1,
                    _ => {}
                }
                k += 1;
            }
            j = k;
        }
        // The guarded item: up to a `;` at depth 0 or the matching `}`
        // of its first `{`.
        let mut end = j;
        let mut bdepth = 0usize;
        while end < toks.len() {
            match toks[end].text.as_str() {
                "{" => bdepth += 1,
                "}" => {
                    bdepth = bdepth.saturating_sub(1);
                    if bdepth == 0 {
                        break;
                    }
                }
                ";" if bdepth == 0 => break,
                _ => {}
            }
            end += 1;
        }
        let end_line = toks.get(end).map_or(u32::MAX, |t| t.line);
        for l in attr_start_line..=end_line {
            lines.insert(l);
        }
        i = end + 1;
    }
    lines
}

// ---------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------

/// Parse `dlint::allow(rule, "reason")` comments. `Err` carries a
/// hygiene message for malformed ones.
/// A comment is a directive only when its body *starts with*
/// `dlint::allow` and it is not a doc comment — prose that merely
/// mentions the syntax (like this sentence) is ignored.
fn allow_directive(text: &str) -> Option<&str> {
    let body = if let Some(b) = text.strip_prefix("//") {
        if b.starts_with('/') || b.starts_with('!') {
            return None;
        }
        b
    } else if let Some(b) = text.strip_prefix("/*") {
        if b.starts_with('*') || b.starts_with('!') {
            return None;
        }
        b
    } else {
        text
    };
    body.trim_start().strip_prefix("dlint::allow")
}

fn collect_allows(lx: &Lexed) -> Vec<Result<Allow, (u32, String)>> {
    let mut out = Vec::new();
    for c in &lx.comments {
        let Some(rest) = allow_directive(&c.text) else {
            continue;
        };
        let parsed = parse_allow_args(rest);
        match parsed {
            Ok((rule_name, reason)) => {
                let Some(rule) = RuleId::from_name(&rule_name) else {
                    out.push(Err((
                        c.line,
                        format!("unknown rule `{rule_name}` in dlint::allow"),
                    )));
                    continue;
                };
                if reason.trim().is_empty() {
                    out.push(Err((
                        c.line,
                        format!(
                            "dlint::allow({rule_name}) has no reason — every suppression must \
                             say *why* the site is sound"
                        ),
                    )));
                    continue;
                }
                // Target: the comment's own line if it shares it with
                // code, else the next line carrying code.
                let target = if lx.line_has_code(c.line) {
                    c.line
                } else {
                    (c.line + 1..c.line + 16)
                        .find(|&l| lx.line_has_code(l))
                        .unwrap_or(c.line + 1)
                };
                out.push(Ok(Allow {
                    rule,
                    target,
                    at: c.line,
                    used: std::cell::Cell::new(false),
                }));
            }
            Err(msg) => out.push(Err((c.line, format!("malformed dlint::allow: {msg}")))),
        }
    }
    out
}

/// Parse `(rule-name, "reason")` after the `dlint::allow` marker.
fn parse_allow_args(rest: &str) -> Result<(String, String), String> {
    let rest = rest.trim_start();
    let Some(inner) = rest.strip_prefix('(') else {
        return Err("expected `(` after dlint::allow".into());
    };
    let Some(close) = inner.rfind(')') else {
        return Err("missing closing `)`".into());
    };
    let inner = &inner[..close];
    let Some(comma) = inner.find(',') else {
        return Err("expected `dlint::allow(rule, \"reason\")`".into());
    };
    let rule = inner[..comma].trim().to_string();
    let reason_part = inner[comma + 1..].trim();
    let reason = reason_part
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| "reason must be a double-quoted string".to_string())?;
    if rule.is_empty() {
        return Err("empty rule name".into());
    }
    Ok((rule, reason.to_string()))
}

// ---------------------------------------------------------------------
// Identifier classification
// ---------------------------------------------------------------------

/// Map identifier → kind from declarations: type ascriptions
/// (`x: HashSet<…>`, fn params, struct fields) and inferred
/// constructions (`let x = HashMap::new()`).
fn classify_idents(toks: &[Tok]) -> BTreeMap<String, IdKind> {
    let mut map = BTreeMap::new();
    let hashy = |t: &Tok| t.is_ident("HashSet") || t.is_ident("HashMap");
    let floaty = |t: &Tok| t.is_ident("f32") || t.is_ident("f64");
    for i in 0..toks.len() {
        // `name : …Type…` — scan the ascription until a stop token at
        // angle-depth 0.
        if toks[i].kind == TokKind::Ident && i + 1 < toks.len() && toks[i + 1].is_punct(":") {
            let mut depth = 0i32;
            let mut j = i + 2;
            while j < toks.len() {
                let t = &toks[j];
                match t.text.as_str() {
                    "<" => depth += 1,
                    ">" => depth -= 1,
                    "(" | "[" => depth += 1,
                    ")" | "]" => {
                        depth -= 1;
                        if depth < 0 {
                            break;
                        }
                    }
                    "=" | ";" | "{" | "}" => break,
                    "," if depth <= 0 => break,
                    _ => {}
                }
                if hashy(t) {
                    map.insert(toks[i].text.clone(), IdKind::Hash);
                    break;
                }
                if floaty(t) {
                    map.insert(toks[i].text.clone(), IdKind::Float);
                    break;
                }
                j += 1;
            }
        }
        // `let [mut] name = <path>…` with HashSet/HashMap in the
        // constructor path before the first `(`.
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            if j < toks.len() && toks[j].is_ident("mut") {
                j += 1;
            }
            if j + 1 < toks.len() && toks[j].kind == TokKind::Ident && toks[j + 1].is_punct("=") {
                let name = &toks[j].text;
                let mut k = j + 2;
                while k < toks.len() {
                    let t = &toks[k];
                    if t.is_punct("(") || t.is_punct(";") {
                        break;
                    }
                    if hashy(t) {
                        map.insert(name.clone(), IdKind::Hash);
                        break;
                    }
                    k += 1;
                }
            }
        }
    }
    map
}

// ---------------------------------------------------------------------
// Receiver-chain resolution
// ---------------------------------------------------------------------

/// Given the index of a `.` token, walk the postfix chain backwards and
/// report whether its root (or any path segment in it) is a hash
/// container: `added.iter()`, `self.view.keys()`,
/// `HashSet::from([…]).into_iter()`.
fn chain_is_hash(toks: &[Tok], dot: usize, idents: &BTreeMap<String, IdKind>) -> bool {
    let mut j = dot as isize - 1;
    loop {
        if j < 0 {
            return false;
        }
        let t = &toks[j as usize];
        match t.kind {
            TokKind::Ident => {
                if t.is_ident("HashSet") || t.is_ident("HashMap") {
                    return true;
                }
                if idents.get(&t.text) == Some(&IdKind::Hash) {
                    return true;
                }
                // Continue leftwards only through `.`/`::` chains.
                if j >= 1 {
                    let prev = &toks[j as usize - 1];
                    if prev.is_punct(".") || prev.is_punct("::") {
                        j -= 2;
                        continue;
                    }
                }
                return false;
            }
            TokKind::Punct if t.text == ")" || t.text == "]" => {
                // Skip the bracketed group.
                let open = if t.text == ")" { "(" } else { "[" };
                let close = &t.text;
                let mut depth = 1i32;
                j -= 1;
                while j >= 0 && depth > 0 {
                    let u = &toks[j as usize];
                    if u.text == *close {
                        depth += 1;
                    } else if u.text == open {
                        depth -= 1;
                    }
                    j -= 1;
                }
            }
            TokKind::Punct if t.text == "." || t.text == "::" => j -= 1,
            _ => return false,
        }
    }
}

// ---------------------------------------------------------------------
// The rules (each returns (line, col, message))
// ---------------------------------------------------------------------

type Hit = (u32, u32, String);

const ITER_METHODS: [&str; 14] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "drain",
    "retain",
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
];

fn check_unordered_iter(toks: &[Tok], idents: &BTreeMap<String, IdKind>) -> Vec<Hit> {
    let mut hits = Vec::new();
    // Method-style iteration: `recv.iter()` etc.
    for i in 0..toks.len() {
        if toks[i].kind == TokKind::Ident
            && ITER_METHODS.contains(&toks[i].text.as_str())
            && i >= 1
            && toks[i - 1].is_punct(".")
            && i + 1 < toks.len()
            && toks[i + 1].is_punct("(")
            && chain_is_hash(toks, i - 1, idents)
        {
            hits.push((
                toks[i].line,
                toks[i].col,
                format!(
                    ".{}() on a HashSet/HashMap: iteration order depends on per-instance \
                     hash state, not the seed — use BTreeSet/BTreeMap, sort first, or \
                     justify why order cannot escape",
                    toks[i].text
                ),
            ));
        }
    }
    // Sink-style draining: `target.extend(<hash place>)` hands the
    // container's arbitrary order straight to an order-sensitive
    // collection (the PR 2 departure-FIFO incident was exactly this
    // shape).
    for i in 0..toks.len() {
        if toks[i].is_ident("extend")
            && i >= 1
            && toks[i - 1].is_punct(".")
            && i + 1 < toks.len()
            && toks[i + 1].is_punct("(")
        {
            // The argument list, up to the matching `)`.
            let mut depth = 1i32;
            let mut j = i + 2;
            let mut arg: Vec<usize> = Vec::new();
            while j < toks.len() && depth > 0 {
                match toks[j].text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    _ => {}
                }
                if depth > 0 {
                    arg.push(j);
                }
                j += 1;
            }
            // Flag only the plain-place form `extend(&set)` /
            // `extend(set)`: anything with calls inside was either
            // caught at its `.iter()` or produces its own order.
            let simple = !arg.is_empty()
                && arg.iter().all(|&k| {
                    toks[k].kind == TokKind::Ident || toks[k].is_punct("&") || toks[k].is_punct(".")
                });
            if simple
                && arg
                    .iter()
                    .any(|&k| idents.get(&toks[k].text) == Some(&IdKind::Hash))
            {
                hits.push((
                    toks[i].line,
                    toks[i].col,
                    "extend from a HashSet/HashMap into an order-sensitive collection: \
                     the receiver inherits per-instance hash order — sort first or use an \
                     ordered source"
                        .to_string(),
                ));
            }
        }
    }
    // `for pat in <expr> {` where <expr> ends in a hash-typed place.
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("for") {
            i += 1;
            continue;
        }
        // Find the `in` of this `for` (patterns cannot contain `in`).
        let Some(in_pos) = toks[i + 1..].iter().position(|t| t.is_ident("in")) else {
            break;
        };
        let in_pos = i + 1 + in_pos;
        // Expression runs to the body `{` at depth 0.
        let mut depth = 0i32;
        let mut j = in_pos + 1;
        let mut expr_end = None;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => {
                    expr_end = Some(j);
                    break;
                }
                "{" => depth += 1,
                "}" => depth -= 1,
                ";" if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(body) = expr_end else {
            i = in_pos + 1;
            continue;
        };
        // Root of the iterated expression: its *last* token when that
        // is a plain identifier (method-call endings were caught above).
        let last = &toks[body - 1];
        if last.kind == TokKind::Ident && idents.get(&last.text) == Some(&IdKind::Hash) {
            hits.push((
                last.line,
                last.col,
                format!(
                    "`for … in {}` iterates a HashSet/HashMap: order depends on per-instance \
                     hash state, not the seed — use BTreeSet/BTreeMap, sort first, or justify \
                     why order cannot escape",
                    last.text
                ),
            ));
        }
        i = body + 1;
    }
    hits
}

fn check_wall_clock(toks: &[Tok]) -> Vec<Hit> {
    let mut hits = Vec::new();
    for i in 0..toks.len() {
        if toks[i].is_ident("Instant")
            && i + 2 < toks.len()
            && toks[i + 1].is_punct("::")
            && toks[i + 2].is_ident("now")
        {
            hits.push((
                toks[i].line,
                toks[i].col,
                "Instant::now outside the dobs clock / bench crate: wall time must never \
                 steer a determinism-gated computation"
                    .to_string(),
            ));
        }
        if toks[i].is_ident("SystemTime") {
            hits.push((
                toks[i].line,
                toks[i].col,
                "SystemTime outside the dobs clock / bench crate: wall time must never \
                 steer a determinism-gated computation"
                    .to_string(),
            ));
        }
    }
    hits
}

fn check_ambient_env(toks: &[Tok]) -> Vec<Hit> {
    let mut hits = Vec::new();
    for i in 0..toks.len() {
        if toks[i].is_ident("env")
            && i + 2 < toks.len()
            && toks[i + 1].is_punct("::")
            && (toks[i + 2].is_ident("var")
                || toks[i + 2].is_ident("var_os")
                || toks[i + 2].is_ident("vars"))
        {
            hits.push((
                toks[i].line,
                toks[i].col,
                "std::env read outside the sanctioned knob modules: ambient configuration \
                 makes runs irreproducible from (seed, args) alone"
                    .to_string(),
            ));
        }
        if toks[i].is_ident("available_parallelism") && toks[i].kind == TokKind::Ident {
            hits.push((
                toks[i].line,
                toks[i].col,
                "available_parallelism outside the sanctioned knob modules / CostModel: \
                 host shape must not steer a determinism-gated computation"
                    .to_string(),
            ));
        }
    }
    hits
}

fn check_rng_hygiene(toks: &[Tok]) -> Vec<Hit> {
    let mut hits = Vec::new();
    for i in 0..toks.len() {
        // Raw construction: SplitMix64::new(…) — all node/stream
        // derivation must go through for_node (the scrambler jump; see
        // the PR 2 stream-correlation incident in simnet::rng docs).
        if toks[i].is_ident("SplitMix64")
            && i + 2 < toks.len()
            && toks[i + 1].is_punct("::")
            && toks[i + 2].is_ident("new")
        {
            hits.push((
                toks[i].line,
                toks[i].col,
                "raw SplitMix64::new outside the RNG registry: adjacent ad-hoc seeds walk \
                 the same +γ orbit (the PR 2 stream-correlation bug) — derive streams with \
                 SplitMix64::for_node and a simnet::streams id"
                    .to_string(),
            ));
        }
        // Ad-hoc stream ids: for_node(seed, <numeric literal>) — the
        // second argument must be a named constant from the
        // simnet::streams registry so ids are provably collision-free.
        if toks[i].is_ident("for_node") && i + 1 < toks.len() && toks[i + 1].is_punct("(") {
            let mut depth = 1i32;
            let mut j = i + 2;
            let mut args: Vec<Vec<usize>> = vec![Vec::new()];
            while j < toks.len() && depth > 0 {
                match toks[j].text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "," if depth == 1 => {
                        args.push(Vec::new());
                        j += 1;
                        continue;
                    }
                    _ => {}
                }
                if depth > 0 {
                    args.last_mut().expect("non-empty").push(j);
                }
                j += 1;
            }
            if let Some(second) = args.get(1) {
                let has_ident = second.iter().any(|&k| toks[k].kind == TokKind::Ident);
                let has_num = second.iter().any(|&k| toks[k].kind == TokKind::Num);
                if has_num && !has_ident {
                    let k = second[0];
                    hits.push((
                        toks[k].line,
                        toks[k].col,
                        "literal stream id in SplitMix64::for_node: use a named constant \
                         from the simnet::streams registry so reserved ids stay \
                         collision-free"
                            .to_string(),
                    ));
                }
            }
        }
    }
    hits
}

fn check_float_eq(toks: &[Tok], idents: &BTreeMap<String, IdKind>) -> Vec<Hit> {
    let mut hits = Vec::new();
    let floatish = |t: &Tok| {
        t.is_float_literal()
            || (t.kind == TokKind::Ident && idents.get(&t.text) == Some(&IdKind::Float))
    };
    for i in 0..toks.len() {
        if !(toks[i].is_punct("==") || toks[i].is_punct("!=")) {
            continue;
        }
        let prev = if i >= 1 { Some(&toks[i - 1]) } else { None };
        let next = toks.get(i + 1);
        if prev.is_some_and(floatish) || next.is_some_and(floatish) {
            hits.push((
                toks[i].line,
                toks[i].col,
                format!(
                    "`{}` on f32/f64 in a determinism-gated crate: exact float comparison \
                     is either a tolerance bug or needs a written justification",
                    toks[i].text
                ),
            ));
        }
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        analyze_source(path, src).findings
    }

    #[test]
    fn flags_hashset_iteration() {
        let src = "fn f() { let mut s: HashSet<u32> = HashSet::new(); for x in &s { use_(x); } }";
        let f = run("crates/x/src/a.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RuleId::UnorderedIter);
    }

    #[test]
    fn flags_inferred_hashmap_drain() {
        let src = "fn f() { let mut m = std::collections::HashMap::new(); m.insert(1, 2); \
                   for (k, v) in m.drain() { use_(k, v); } }";
        let f = run("crates/x/src/a.rs", src);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn membership_is_clean() {
        let src = "fn f(s: &HashSet<u32>) -> bool { s.contains(&3) && s.len() > 1 }";
        assert!(run("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn btree_is_clean() {
        let src = "fn f() { let s: BTreeSet<u32> = BTreeSet::new(); for x in &s { use_(x); } }";
        assert!(run("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_mod_is_skipped() {
        let src = "#[cfg(test)]\nmod tests {\n fn f() { let s: HashSet<u32> = HashSet::new(); \
                   for x in &s { use_(x); } }\n}";
        assert!(run("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn cfg_not_test_is_not_skipped() {
        let src = "#[cfg(not(test))]\nmod real {\n fn f() { let s: HashSet<u32> = HashSet::new(); \
                   for x in s.iter() { use_(x); } }\n}";
        assert_eq!(run("crates/x/src/a.rs", src).len(), 1);
    }

    #[test]
    fn tests_dir_is_skipped() {
        let src = "fn f() { let s: HashSet<u32> = HashSet::new(); for x in &s { use_(x); } }";
        assert!(run("crates/x/tests/a.rs", src).is_empty());
    }

    #[test]
    fn wall_clock_and_scopes() {
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(run("crates/core/src/a.rs", src).len(), 1);
        assert!(run("crates/bench/src/a.rs", src).is_empty());
        assert!(run("crates/obs/src/plane.rs", src).is_empty());
    }

    #[test]
    fn rng_hygiene_literal_stream_id() {
        let ok = "fn f(seed: u64) { let r = SplitMix64::for_node(seed, streams::CHURN); }";
        let bad = "fn f(seed: u64) { let r = SplitMix64::for_node(seed, 0xC4A7); }";
        let raw = "fn f(seed: u64) { let r = SplitMix64::new(seed ^ 17); }";
        assert!(run("crates/x/src/a.rs", ok).is_empty());
        assert_eq!(run("crates/x/src/a.rs", bad).len(), 1);
        assert_eq!(run("crates/x/src/a.rs", raw).len(), 1);
        // The registry itself may construct raw generators.
        assert!(run("crates/simnet/src/rng.rs", raw).is_empty());
    }

    #[test]
    fn float_eq_literal_and_typed() {
        let lit = "fn f(w: f64) -> bool { w == 1.0 }";
        let typed = "fn g(a: f64, b: u32) -> bool { a != a && b == 3 }";
        assert_eq!(run("crates/core/src/a.rs", lit).len(), 1);
        assert_eq!(run("crates/core/src/a.rs", typed).len(), 1);
        // Out of the determinism-gated scope: not flagged.
        assert!(run("crates/obs/src/a.rs", lit).is_empty());
    }

    #[test]
    fn suppression_with_reason() {
        let src =
            "fn f() {\n    // dlint::allow(wall-clock, \"probe only feeds a log line\")\n    \
                   let t = Instant::now();\n}";
        let a = analyze_source("crates/core/src/a.rs", src);
        assert!(a.findings.is_empty());
        assert_eq!(a.suppressed, 1);
    }

    #[test]
    fn suppression_same_line() {
        let src = "fn f() { let t = Instant::now(); } // dlint::allow(wall-clock, \"trace-only\")";
        assert!(run("crates/core/src/a.rs", src).is_empty());
    }

    #[test]
    fn reasonless_suppression_is_a_finding() {
        let src = "// dlint::allow(wall-clock, \"\")\nfn f() { let t = Instant::now(); }";
        let f = run("crates/core/src/a.rs", src);
        assert!(f.iter().any(|x| x.rule == RuleId::SuppressionHygiene));
        assert!(f.iter().any(|x| x.rule == RuleId::WallClock));
    }

    #[test]
    fn unused_suppression_is_a_finding() {
        let src = "// dlint::allow(wall-clock, \"stale\")\nfn f() { let x = 3; }";
        let f = run("crates/core/src/a.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RuleId::SuppressionHygiene);
    }

    #[test]
    fn unknown_rule_in_suppression() {
        let src = "// dlint::allow(no-such-rule, \"x\")\nfn f() {}";
        let f = run("crates/core/src/a.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RuleId::SuppressionHygiene);
    }

    #[test]
    fn strings_and_comments_do_not_trip_rules() {
        let src = r#"fn f() { let s = "Instant::now() HashSet env::var"; /* SystemTime */ }"#;
        assert!(run("crates/core/src/a.rs", src).is_empty());
    }
}
