//! A lightweight Rust tokenizer: exact enough for determinism linting,
//! tiny enough to stay dependency-free.
//!
//! The lexer understands everything that can *hide* code from a naive
//! grep — line comments, nested block comments, string literals,
//! raw strings with arbitrary `#` fences, byte strings, char literals
//! vs. lifetimes — and nothing it does not need (no keyword table, no
//! expression grammar). Rules pattern-match over the token stream;
//! comments are lexed on the side because the suppression syntax
//! (`// dlint::allow(rule, "reason")`) lives in them.

/// Token classification. `Punct` carries the (possibly fused) operator
/// text: `::`, `->`, `=>`, `==`, `!=`, `<=`, `>=` and `..` are single
/// tokens, every other symbol is one character.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (the rules do their own keyword checks).
    Ident,
    /// Numeric literal, suffix included (`0xC4A7`, `1.0e-9f64`).
    Num,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`). Distinguished from `Char` so `'a'` vs `'a` is
    /// handled once, here.
    Lifetime,
    /// Operator / delimiter.
    Punct,
}

/// One token with its source position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
}

impl Tok {
    /// True for an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True for a punct token with exactly this text.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }

    /// True when the numeric literal is float-shaped: a decimal point,
    /// an `f32`/`f64` suffix, or a decimal exponent (`1e9`). Hex/octal/
    /// binary literals are never float-shaped.
    pub fn is_float_literal(&self) -> bool {
        if self.kind != TokKind::Num {
            return false;
        }
        let t = &self.text;
        if t.starts_with("0x") || t.starts_with("0X") || t.starts_with("0b") || t.starts_with("0o")
        {
            return false;
        }
        t.contains('.') || t.ends_with("f32") || t.ends_with("f64") || t.contains(['e', 'E'])
    }
}

/// One comment (`//…` without the newline, or `/*…*/` fences included).
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    /// Line the comment starts on.
    pub line: u32,
}

/// Tokenized file: code tokens and comments, both in source order.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// True when `line` carries at least one code token.
    pub fn line_has_code(&self, line: u32) -> bool {
        // Token lines are non-decreasing; a binary search would do, but
        // files are small and this is called rarely.
        self.toks.iter().any(|t| t.line == line)
    }
}

/// Tokenize `src`. Never fails: unterminated literals are swallowed to
/// the end of input (the analyzer lints real, compiling code; garbage
/// in just degrades to fewer tokens, not a crash).
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    // Advance over `n` chars, maintaining line/col.
    macro_rules! bump {
        ($n:expr) => {{
            for _ in 0..$n {
                if i < b.len() {
                    if b[i] == '\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
            }
        }};
    }

    let is_ident_start = |c: char| c.is_alphabetic() || c == '_';
    let is_ident_cont = |c: char| c.is_alphanumeric() || c == '_';

    while i < b.len() {
        let c = b[i];
        let (tl, tc) = (line, col);

        // Whitespace.
        if c.is_whitespace() {
            bump!(1);
            continue;
        }

        // Comments.
        if c == '/' && i + 1 < b.len() && b[i + 1] == '/' {
            let start = i;
            while i < b.len() && b[i] != '\n' {
                bump!(1);
            }
            out.comments.push(Comment {
                text: b[start..i].iter().collect(),
                line: tl,
            });
            continue;
        }
        if c == '/' && i + 1 < b.len() && b[i + 1] == '*' {
            let start = i;
            bump!(2);
            let mut depth = 1usize;
            while i < b.len() && depth > 0 {
                if b[i] == '/' && i + 1 < b.len() && b[i + 1] == '*' {
                    depth += 1;
                    bump!(2);
                } else if b[i] == '*' && i + 1 < b.len() && b[i + 1] == '/' {
                    depth -= 1;
                    bump!(2);
                } else {
                    bump!(1);
                }
            }
            out.comments.push(Comment {
                text: b[start..i].iter().collect(),
                line: tl,
            });
            continue;
        }

        // Raw strings and byte strings: r"…", r#"…"#, br"…", b"…", b'…'.
        if c == 'r' || c == 'b' {
            // Longest prefix of r/b that introduces a literal.
            let mut j = i;
            let mut saw_b = false;
            let mut saw_r = false;
            if b[j] == 'b' {
                saw_b = true;
                j += 1;
            }
            if j < b.len() && b[j] == 'r' {
                saw_r = true;
                j += 1;
            }
            let is_raw_intro = saw_r && j < b.len() && (b[j] == '"' || b[j] == '#');
            let is_plain_b = saw_b && !saw_r && j < b.len() && (b[j] == '"' || b[j] == '\'');
            if is_raw_intro {
                // Count the fence.
                let mut hashes = 0usize;
                while j < b.len() && b[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < b.len() && b[j] == '"' {
                    j += 1;
                    // Scan to closing `"` + fence.
                    'raw: while j < b.len() {
                        if b[j] == '"' {
                            let mut k = 0usize;
                            while k < hashes && j + 1 + k < b.len() && b[j + 1 + k] == '#' {
                                k += 1;
                            }
                            if k == hashes {
                                j += 1 + hashes;
                                break 'raw;
                            }
                        }
                        j += 1;
                    }
                    let n = j - i;
                    out.toks.push(Tok {
                        kind: TokKind::Str,
                        text: b[i..j].iter().collect(),
                        line: tl,
                        col: tc,
                    });
                    bump!(n);
                    continue;
                }
                // `r#ident` raw identifier: fall through to ident lexing.
            } else if is_plain_b {
                // Re-dispatch on the quote with the prefix consumed: the
                // quote branch below handles escapes for both.
                let quote = b[j];
                let start = i;
                let mut k = j + 1;
                while k < b.len() {
                    if b[k] == '\\' {
                        k += 2;
                        continue;
                    }
                    if b[k] == quote {
                        k += 1;
                        break;
                    }
                    k += 1;
                }
                let n = k - start;
                out.toks.push(Tok {
                    kind: if quote == '"' {
                        TokKind::Str
                    } else {
                        TokKind::Char
                    },
                    text: b[start..k.min(b.len())].iter().collect(),
                    line: tl,
                    col: tc,
                });
                bump!(n);
                continue;
            }
            // Not a literal intro — plain identifier starting with r/b.
        }

        // Strings.
        if c == '"' {
            let start = i;
            let mut j = i + 1;
            while j < b.len() {
                if b[j] == '\\' {
                    j += 2;
                    continue;
                }
                if b[j] == '"' {
                    j += 1;
                    break;
                }
                j += 1;
            }
            let n = j.min(b.len()) - start;
            out.toks.push(Tok {
                kind: TokKind::Str,
                text: b[start..j.min(b.len())].iter().collect(),
                line: tl,
                col: tc,
            });
            bump!(n);
            continue;
        }

        // Char literal vs lifetime.
        if c == '\'' {
            let next = b.get(i + 1).copied();
            let after = b.get(i + 2).copied();
            let is_lifetime = matches!(next, Some(nc) if is_ident_start(nc)) && after != Some('\'');
            if is_lifetime {
                let start = i;
                let mut j = i + 1;
                while j < b.len() && is_ident_cont(b[j]) {
                    j += 1;
                }
                let n = j - start;
                out.toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: b[start..j].iter().collect(),
                    line: tl,
                    col: tc,
                });
                bump!(n);
                continue;
            }
            // Char literal with escapes ('\'', '\u{1F600}').
            let start = i;
            let mut j = i + 1;
            while j < b.len() {
                if b[j] == '\\' {
                    j += 2;
                    continue;
                }
                if b[j] == '\'' {
                    j += 1;
                    break;
                }
                j += 1;
            }
            let n = j.min(b.len()) - start;
            out.toks.push(Tok {
                kind: TokKind::Char,
                text: b[start..j.min(b.len())].iter().collect(),
                line: tl,
                col: tc,
            });
            bump!(n);
            continue;
        }

        // Numbers (suffixes and `1.5` fractions included; `1.max(2)` and
        // `0..n` keep the dot out of the number).
        if c.is_ascii_digit() {
            let start = i;
            let mut j = i;
            while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == '_') {
                j += 1;
            }
            // Fraction: a dot followed by a digit (not `..`, not a
            // method call on the literal).
            if j < b.len() && b[j] == '.' && j + 1 < b.len() && b[j + 1].is_ascii_digit() {
                j += 1;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
            }
            // Signed exponent (`1e-9`, `2.5E+3`): the alnum scan stops
            // at the sign, glue it back on.
            if j < b.len()
                && (b[j] == '+' || b[j] == '-')
                && matches!(b[j - 1], 'e' | 'E')
                && j + 1 < b.len()
                && b[j + 1].is_ascii_digit()
            {
                j += 1;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
            }
            let n = j - start;
            out.toks.push(Tok {
                kind: TokKind::Num,
                text: b[start..j].iter().collect(),
                line: tl,
                col: tc,
            });
            bump!(n);
            continue;
        }

        // Identifiers / keywords (incl. r#raw idents).
        if is_ident_start(c) {
            let start = i;
            let mut j = i;
            if b[j] == 'r'
                && j + 1 < b.len()
                && b[j + 1] == '#'
                && j + 2 < b.len()
                && is_ident_start(b[j + 2])
            {
                j += 2; // r#ident
            }
            while j < b.len() && is_ident_cont(b[j]) {
                j += 1;
            }
            let n = j - start;
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text: b[start..j].iter().collect(),
                line: tl,
                col: tc,
            });
            bump!(n);
            continue;
        }

        // Punctuation, fusing the operators the rules care about.
        let two: String = b[i..(i + 2).min(b.len())].iter().collect();
        let fused = matches!(
            two.as_str(),
            "::" | "->" | "=>" | "==" | "!=" | "<=" | ">=" | ".."
        );
        let n = if fused { 2 } else { 1 };
        out.toks.push(Tok {
            kind: TokKind::Punct,
            text: b[i..i + n].iter().collect(),
            line: tl,
            col: tc,
        });
        bump!(n);
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).toks.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn strings_hide_code() {
        let l = lex(r#"let s = "HashSet::new().iter()";"#);
        assert_eq!(
            l.toks.iter().filter(|t| t.kind == TokKind::Ident).count(),
            2, // let, s
        );
    }

    #[test]
    fn raw_strings_with_fences() {
        let l = lex(r###"let s = r#"a "quoted" HashSet"#; x.iter()"###);
        let idents: Vec<_> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["let", "s", "x", "iter"]);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still comment */ fn f() {}");
        assert!(l.toks[0].is_ident("fn"));
        assert_eq!(l.comments.len(), 1);
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        let lifetimes = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let chars = l.toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!((lifetimes, chars), (2, 2));
    }

    #[test]
    fn float_vs_int_vs_range() {
        let l = lex("a == 1.0; b == 0x1F; 0..n; 2e-9; 3f64; 4.max(5)");
        let nums: Vec<_> = l.toks.iter().filter(|t| t.kind == TokKind::Num).collect();
        let flags: Vec<bool> = nums.iter().map(|t| t.is_float_literal()).collect();
        assert_eq!(
            nums.iter().map(|t| t.text.as_str()).collect::<Vec<_>>(),
            ["1.0", "0x1F", "0", "2e-9", "3f64", "4", "5"]
        );
        assert_eq!(flags, [true, false, false, true, true, false, false]);
    }

    #[test]
    fn fused_operators() {
        assert!(texts("a == b != c :: d").contains(&"==".to_string()));
        let l = lex("x != 0.0");
        assert!(l.toks[1].is_punct("!="));
    }

    #[test]
    fn byte_literals() {
        let l = lex("let x = b\"HashSet\"; let y = b'\\n'; let z = br##\"iter\"##;");
        assert!(l
            .toks
            .iter()
            .all(|t| t.kind != TokKind::Ident || !t.text.contains("HashSet")));
    }

    #[test]
    fn comment_lines_recorded() {
        let l = lex("// dlint::allow(wall-clock, \"x\")\nfn f() {}");
        assert_eq!(l.comments[0].line, 1);
        assert!(l.comments[0].text.contains("dlint::allow"));
        assert!(l.line_has_code(2));
        assert!(!l.line_has_code(1));
    }
}
