//! `dlint` CLI: determinism static analysis over the workspace.
//!
//! ```text
//! dlint --workspace [--json PATH]     # lint every workspace .rs file
//! dlint --self-check                  # lint dlint's own source (must be clean)
//! dlint <files-or-dirs>…              # lint explicit paths (fixtures, spot checks)
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage/IO error.

use dlint::walk;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workspace = false;
    let mut self_check = false;
    let mut json_path: Option<String> = None;
    let mut paths: Vec<String> = Vec::new();

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => workspace = true,
            "--self-check" => self_check = true,
            "--json" => match it.next() {
                Some(p) => json_path = Some(p.clone()),
                None => return usage("--json needs a path"),
            },
            "--help" | "-h" => {
                print!(
                    "dlint: determinism static analysis\n\n\
                     usage:\n  dlint --workspace [--json PATH]\n  dlint --self-check\n  \
                     dlint <files-or-dirs>...\n\nexit codes: 0 clean, 1 findings, 2 error\n"
                );
                return ExitCode::SUCCESS;
            }
            p if !p.starts_with('-') => paths.push(p.to_string()),
            other => return usage(&format!("unknown flag {other}")),
        }
    }
    if !workspace && !self_check && paths.is_empty() {
        return usage("nothing to lint: pass --workspace, --self-check, or paths");
    }

    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => return io_err(&format!("cannot read cwd: {e}")),
    };
    let root = walk::find_workspace_root(&cwd).unwrap_or_else(|| cwd.clone());

    // Assemble the file list.
    let mut files: Vec<PathBuf> = Vec::new();
    if workspace {
        files.extend(walk::rust_files(&root));
    }
    if self_check {
        files.extend(walk::rust_files(&root.join("crates/lint/src")));
    }
    for p in &paths {
        let pb = PathBuf::from(p);
        let pb = if pb.is_absolute() { pb } else { cwd.join(pb) };
        if pb.is_dir() {
            files.extend(walk::rust_files(&pb));
        } else if pb.is_file() {
            files.push(pb);
        } else {
            return io_err(&format!("no such file or directory: {p}"));
        }
    }
    files.sort();
    files.dedup();

    // Read and analyze.
    let mut sources: Vec<(String, String)> = Vec::new();
    for f in &files {
        match std::fs::read_to_string(f) {
            Ok(src) => sources.push((walk::rel_path(&root, f), src)),
            Err(e) => return io_err(&format!("cannot read {}: {e}", f.display())),
        }
    }
    let report = dlint::analyze_all(sources.iter().map(|(p, s)| (p.as_str(), s.as_str())));

    print!("{}", report.render_human());
    if let Some(jp) = json_path {
        if let Err(e) = std::fs::write(Path::new(&jp), report.render_json()) {
            return io_err(&format!("cannot write {jp}: {e}"));
        }
    }
    ExitCode::from(report.exit_code() as u8)
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("dlint: {msg} (try --help)");
    ExitCode::from(2)
}

fn io_err(msg: &str) -> ExitCode {
    eprintln!("dlint: {msg}");
    ExitCode::from(2)
}
