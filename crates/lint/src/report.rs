//! Human and JSON rendering of findings, with exit-code policy.

use crate::analyzer::Finding;

/// Summary of a whole run.
pub struct Report {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
    pub suppressed: usize,
}

impl Report {
    /// Exit code the binary should use: 0 clean, 1 findings.
    pub fn exit_code(&self) -> i32 {
        if self.findings.is_empty() {
            0
        } else {
            1
        }
    }

    /// `file:line:col: rule: message` lines plus a tail summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}:{}: {}: {}\n",
                f.file,
                f.line,
                f.col,
                f.rule.name(),
                f.message
            ));
        }
        out.push_str(&format!(
            "dlint: {} finding{} across {} file{} ({} suppressed by dlint::allow)\n",
            self.findings.len(),
            if self.findings.len() == 1 { "" } else { "s" },
            self.files_scanned,
            if self.files_scanned == 1 { "" } else { "s" },
            self.suppressed,
        ));
        out
    }

    /// Machine-readable report (consumed by the CI artifact; schema is
    /// additive-only).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"file\": {}, \"line\": {}, \"col\": {}, \"rule\": {}, \"message\": {}}}",
                json_str(&f.file),
                f.line,
                f.col,
                json_str(f.rule.name()),
                json_str(&f.message),
            ));
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str(&format!(
            "],\n  \"files_scanned\": {},\n  \"suppressed\": {}\n}}\n",
            self.files_scanned, self.suppressed
        ));
        out
    }
}

/// Minimal JSON string escaping (the report contains only paths and
/// fixed message text).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::RuleId;

    #[test]
    fn exit_codes() {
        let clean = Report {
            findings: vec![],
            files_scanned: 3,
            suppressed: 1,
        };
        assert_eq!(clean.exit_code(), 0);
        let dirty = Report {
            findings: vec![Finding {
                file: "a.rs".into(),
                line: 1,
                col: 2,
                rule: RuleId::WallClock,
                message: "x".into(),
            }],
            files_scanned: 1,
            suppressed: 0,
        };
        assert_eq!(dirty.exit_code(), 1);
        assert!(dirty.render_human().contains("a.rs:1:2: wall-clock"));
        assert!(dirty.render_json().contains("\"rule\": \"wall-clock\""));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\n"), r#""a\"b\\c\n""#);
    }
}
