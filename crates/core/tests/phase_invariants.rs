//! In-crate integration tests for dmatch: phase-level invariants that
//! span the bipartite machinery, the general reduction, and the
//! weighted reduction.

use dgraph::generators::random::{bipartite_gnp, gnp};
use dgraph::generators::weights::{apply_weights, WeightModel};
use dgraph::Matching;
use dmatch::bipartite::{aug_until_maximal, count, SubgraphSpec};
use dmatch::weighted::MwmBox;
use dmatch::{Algorithm, Session};

#[test]
fn aug_applies_exactly_the_shortfall_on_simple_instances() {
    // On a perfect-matching-friendly instance, running phases to k
    // leaves exactly opt - |M| ≤ opt/k unmatched headroom.
    for seed in 0..5 {
        let (g, sides) = bipartite_gnp(16, 16, 0.25, seed);
        let opt = dgraph::hopcroft_karp::max_matching(&g, &sides).size();
        let out = Session::on(&g)
            .algorithm(Algorithm::Bipartite { k: 4 })
            .sides(&sides)
            .seed(seed)
            .build()
            .run_to_completion();
        assert!(opt - out.matching.size() <= opt / 4 + 1, "seed {seed}");
    }
}

#[test]
fn counting_pass_is_idempotent_and_side_effect_free() {
    let (g, sides) = bipartite_gnp(10, 10, 0.3, 3);
    let spec = SubgraphSpec::full_bipartite(&g, &sides);
    let m = dgraph::greedy::greedy_maximal(&g);
    let a = count::run(&g, &m, &spec, 5, 1);
    let b = count::run(&g, &m, &spec, 5, 1);
    assert_eq!(a.dist, b.dist);
    assert_eq!(a.total, b.total);
    assert_eq!(a.leaders, b.leaders);
    // The matching itself is untouched by counting.
    assert!(m.validate(&g).is_ok());
}

#[test]
fn aug_until_maximal_monotone_in_ell() {
    // Larger ℓ can only (weakly) increase the matching achieved from
    // the same start.
    for seed in 0..5 {
        let (g, sides) = bipartite_gnp(14, 14, 0.2, 40 + seed);
        let spec = SubgraphSpec::full_bipartite(&g, &sides);
        let m0 = Matching::new(g.n());
        let mut last = 0usize;
        for ell in [1usize, 3, 5, 7] {
            let out = aug_until_maximal(&g, &m0, &spec, ell, seed);
            assert!(out.matching.size() >= last, "seed {seed}, ℓ={ell}");
            last = out.matching.size();
        }
    }
}

#[test]
fn subgraph_augmentations_never_touch_out_nodes() {
    // Algorithm 4 safety: monochromatic matched pairs are outside V̂
    // and must be preserved verbatim by the Aug call.
    for seed in 0..10 {
        let g = gnp(24, 0.2, 70 + seed);
        let m = dgraph::greedy::greedy_maximal(&g);
        let colors: Vec<bool> = (0..g.n())
            .map(|v| (v * 7 + seed as usize).is_multiple_of(3))
            .collect();
        let spec = SubgraphSpec::from_coloring(&g, &m, &colors);
        let out = aug_until_maximal(&g, &m, &spec, 3, seed);
        for v in 0..g.n() as u32 {
            if let Some(w) = m.mate(v) {
                if colors[v as usize] == colors[w as usize] {
                    assert_eq!(
                        out.matching.mate(v),
                        Some(w),
                        "seed {seed}: monochromatic pair ({v},{w}) was disturbed"
                    );
                }
            }
        }
    }
}

#[test]
fn weighted_iterations_respect_black_box_contract() {
    // Algorithm 5 must work with *any* δ-MWM box, including an
    // intentionally weak one — here the parallel-class box under a
    // pathological power-law weight distribution.
    for seed in 0..4 {
        let g = apply_weights(
            &gnp(16, 0.3, 90 + seed),
            WeightModel::PowerLaw {
                lo: 1.0,
                alpha: 0.7,
            },
            seed,
        );
        let r = Session::on(&g)
            .algorithm(Algorithm::Weighted {
                epsilon: 0.2,
                mwm_box: MwmBox::ParClass,
            })
            .seed(seed)
            .build()
            .run_to_completion();
        assert!(r.matching.validate(&g).is_ok());
        let opt = dgraph::mwm_exact::max_weight_exact(&g);
        assert!(
            r.matching.weight(&g) >= 0.3 * opt - 1e-9,
            "seed {seed}: {} < 0.3·{opt}",
            r.matching.weight(&g)
        );
    }
}

#[test]
fn line_graph_mm_and_israeli_itai_are_both_valid_baselines() {
    for seed in 0..5 {
        let g = gnp(30, 0.12, seed);
        let (a, _) = dmatch::line_mm::maximal_matching(&g, seed);
        let b = Session::on(&g)
            .algorithm(Algorithm::IsraeliItai)
            .seed(seed)
            .build()
            .run_to_completion()
            .matching;
        let opt = dgraph::blossom::max_matching(&g).size();
        assert!(2 * a.size() >= opt);
        assert!(2 * b.size() >= opt);
    }
}
