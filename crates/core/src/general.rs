//! Algorithm 4 / Theorem 3.11: `(1-1/k)`-MCM in **general** graphs by
//! randomized reduction to the bipartite machinery.
//!
//! Each iteration: every node colors itself red or blue with equal
//! probability; the bipartite subgraph `Ĝ` (free nodes plus
//! bichromatically matched pairs, bichromatic edges) is formed, and
//! `Aug(Ĝ, M, 2k-1)` applies a maximal set of disjoint augmenting
//! paths of length ≤ 2k-1 (Observation 3.1 makes them valid in `G`).
//! After `2^{2k+1}(k+1) ln k` iterations the matching is a
//! `(1-1/k)`-MCM with high probability (Lemmas 3.9, 3.10).
//!
//! The coloring is drawn per node from its own RNG stream and shared
//! with neighbors in one single-bit exchange round (charged to the
//! stats); everything else runs through [`crate::bipartite`].

use crate::bipartite::{self, SubgraphSpec};
use dgraph::{Graph, Matching};
use simnet::rng::streams;
use simnet::{ExecCfg, NetStats, SplitMix64};

/// The paper's iteration count `⌈2^{2k+1} (k+1) ln k⌉` (Line 2 of
/// Algorithm 4). The analysis assumes `k > 2`; for `k ≤ 2` we
/// substitute `ln 2` to keep the formula total.
pub fn iteration_bound(k: usize) -> u64 {
    let lnk = (k as f64).ln().max(std::f64::consts::LN_2);
    (2f64.powi(2 * k as i32 + 1) * (k as f64 + 1.0) * lnk).ceil() as u64
}

/// Options for [`run_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct GeneralOpts {
    /// Sampling iterations; `None` uses [`iteration_bound`].
    pub iterations: Option<u64>,
    /// Stop early after this many consecutive iterations without any
    /// augmentation (an oracle check; `None` disables). The paper runs
    /// the full budget; experiments compare both (E4).
    pub early_stop_after: Option<u64>,
}

/// Outcome of Algorithm 4.
#[derive(Debug)]
pub struct GeneralRun {
    /// Final matching: `(1-1/k)`-MCM whp.
    pub matching: Matching,
    /// Sampling iterations actually executed.
    pub iterations: u64,
    /// Total augmenting paths applied.
    pub applied: usize,
    /// Accumulated statistics (color exchanges + all `Aug` calls).
    pub stats: NetStats,
}

/// The RNG stream drawing the red/blue colorings. Both the legacy
/// entry points and the `dmatch::session` driver must derive it
/// identically (asserted bit-identical by `tests/prop_session.rs`).
pub(crate) fn color_rng(seed: u64) -> SplitMix64 {
    SplitMix64::for_node(seed, streams::GENERAL_COLOR)
}

/// One sampling iteration of Algorithm 4 (Lines 3–6): color, build `Ĝ`,
/// `Aug`, apply — the single source of truth shared by
/// [`run_with_cfg`]'s loop and the stepwise `dmatch::session` driver.
/// Returns the number of augmenting paths applied.
#[allow(clippy::too_many_arguments)] // the phase contract: graph, state, schedule, knobs
pub(crate) fn sample_iteration(
    g: &Graph,
    m: &mut Matching,
    ell: usize,
    it: u64,
    seed: u64,
    cfg: ExecCfg,
    rng: &mut SplitMix64,
    stats: &mut NetStats,
) -> usize {
    // Line 3: random red/blue coloring. Each node draws one bit and
    // tells its neighbors — one round of 1-bit messages.
    let colors: Vec<bool> = (0..g.n()).map(|_| rng.bernoulli(0.5)).collect();
    stats.record_messages(2 * g.m() as u64, 1);
    stats.record_round(2 * g.m() as u64);

    // Line 4: Ĝ. Line 5: Aug(Ĝ, M, 2k-1). Line 6: M ← M ⊕ P.
    let spec = SubgraphSpec::from_coloring(g, m, &colors);
    let out =
        bipartite::aug_until_maximal_cfg(g, m, &spec, ell, seed ^ (it.wrapping_mul(0x9E37)), cfg);
    stats.absorb(&out.stats);
    *m = out.matching;
    out.applied
}

/// Run Algorithm 4 with the paper's default budget.
///
/// ```
/// use dgraph::generators::structured::cycle;
/// // Odd cycles are non-bipartite: this is Algorithm 4's territory.
/// let g = cycle(15);
/// #[allow(deprecated)]
/// let r = dmatch::general::run(&g, 2, 3);
/// assert!(2 * r.matching.size() >= dgraph::blossom::max_matching(&g).size());
/// ```
#[deprecated(
    since = "0.1.0",
    note = "use `Session::on(g).algorithm(Algorithm::General { k, early_stop: None })`"
)]
#[allow(deprecated)]
pub fn run(g: &Graph, k: usize, seed: u64) -> GeneralRun {
    run_with(g, k, seed, GeneralOpts::default())
}

/// Run Algorithm 4 with explicit options.
#[deprecated(
    since = "0.1.0",
    note = "use `Session::on(g).algorithm(Algorithm::General { k, early_stop })` \
            (+ `.sampling_iterations(n)` for an explicit budget)"
)]
#[allow(deprecated)]
pub fn run_with(g: &Graph, k: usize, seed: u64, opts: GeneralOpts) -> GeneralRun {
    run_with_cfg(g, k, seed, opts, ExecCfg::default())
}

/// [`run_with`] under explicit execution knobs.
#[deprecated(
    since = "0.1.0",
    note = "use `Session::on(g).algorithm(Algorithm::General { k, early_stop }).exec(cfg)`"
)]
pub fn run_with_cfg(g: &Graph, k: usize, seed: u64, opts: GeneralOpts, cfg: ExecCfg) -> GeneralRun {
    assert!(k >= 1, "k must be positive");
    let budget = opts.iterations.unwrap_or_else(|| iteration_bound(k));
    let ell = 2 * k - 1;
    let mut m = Matching::new(g.n());
    let mut stats = NetStats::default();
    let mut rng = color_rng(seed);
    let mut applied = 0usize;
    let mut idle_streak = 0u64;
    let mut iterations = 0u64;

    for it in 0..budget {
        iterations = it + 1;
        let newly = sample_iteration(g, &mut m, ell, it, seed, cfg, &mut rng, &mut stats);
        applied += newly;

        if newly == 0 {
            idle_streak += 1;
            if opts.early_stop_after.is_some_and(|s| idle_streak >= s) {
                break;
            }
        } else {
            idle_streak = 0;
        }
    }
    GeneralRun {
        matching: m,
        iterations,
        applied,
        stats,
    }
}

#[cfg(test)]
#[allow(deprecated)] // the shims stay covered until they are removed
mod tests {
    use super::*;
    use dgraph::generators::random::gnp;
    use dgraph::generators::structured::{cycle, p4_chain};

    fn early(stop: u64) -> GeneralOpts {
        GeneralOpts {
            iterations: None,
            early_stop_after: Some(stop),
        }
    }

    #[test]
    fn iteration_bound_matches_formula() {
        // k = 3: 2^7 · 4 · ln 3 = 512 · 1.0986… ≈ 562.5 → 563.
        assert_eq!(iteration_bound(3), 563);
        assert!(iteration_bound(4) > iteration_bound(3));
    }

    #[test]
    fn ratio_on_random_graphs() {
        for seed in 0..4 {
            let g = gnp(24, 0.15, seed);
            let k = 3;
            let r = run_with(&g, k, seed * 31, early(40));
            assert!(r.matching.validate(&g).is_ok());
            let opt = dgraph::blossom::max_matching(&g).size();
            let bound = 1.0 - 1.0 / k as f64;
            let got = if opt == 0 {
                1.0
            } else {
                r.matching.size() as f64 / opt as f64
            };
            assert!(got >= bound - 1e-9, "seed {seed}: ratio {got} < {bound}");
        }
    }

    #[test]
    fn handles_odd_cycles() {
        // C9 is non-bipartite; optimum 4. With k = 3 we need ≥ 2/3·4 ≥ 3.
        let g = cycle(9);
        let r = run_with(&g, 3, 5, early(40));
        assert!(r.matching.size() >= 3, "got {}", r.matching.size());
    }

    #[test]
    fn p4_chains_reach_optimum() {
        let g = p4_chain(6);
        let r = run_with(&g, 2, 9, early(30));
        // Optimum 12; (1-1/2) guarantee is weak, but the sampler should
        // reach optimality quickly on disjoint P4s with length-3 phases.
        assert!(r.matching.size() >= 9);
    }

    #[test]
    fn no_short_augmenting_path_survives_whp() {
        use dgraph::augmenting::has_augmenting_path_within;
        let g = gnp(20, 0.2, 77);
        let k = 2;
        let r = run_with(&g, k, 3, early(60));
        // After enough productive iterations the matching should admit
        // no augmenting path of length ≤ 2k-1 (this is what drives
        // Lemma 3.9 to its fixed point).
        assert!(
            !has_augmenting_path_within(&g, &r.matching, 2 * k - 1),
            "short augmenting path survived"
        );
    }

    #[test]
    fn early_stop_limits_iterations() {
        let g = gnp(16, 0.2, 2);
        let r = run_with(&g, 3, 1, early(5));
        assert!(r.iterations < iteration_bound(3));
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(0, vec![]);
        let r = run_with(&g, 3, 0, early(1));
        assert_eq!(r.matching.size(), 0);
    }

    #[test]
    fn stats_accumulate_across_iterations() {
        let g = gnp(18, 0.2, 4);
        let r = run_with(&g, 2, 6, early(10));
        assert!(r.stats.rounds > r.iterations, "each iteration costs rounds");
    }
}
