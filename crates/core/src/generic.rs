//! The generic `(1-ε)`-MCM algorithm — Algorithms 1 and 2, Theorem 3.1.
//!
//! Phases `ℓ = 1, 3, …, 2k-1`. In phase `ℓ`:
//!
//! 1. **Ball gathering (Algorithm 2, real messages).** For `2ℓ+1`
//!    rounds every node floods the *delta* of its local view (edges
//!    with matched flags, free-vertex flags). After the phase, node `v`
//!    knows its distance-`2ℓ` ball — enough to see every augmenting
//!    path through `v` *and* every path conflicting with one of those.
//!    Message sizes are the real encoded view deltas, exactly the
//!    `O(|V|+|E|)`-bit messages Theorem 3.1 allows.
//! 2. **Conflict-graph MIS (Step 5, emulated).** The paper runs Luby's
//!    MIS on the conflict graph `C_M(ℓ)`, each conflict-graph round
//!    costing `O(ℓ)` routing rounds in `G` (Lemma 3.3). We execute the
//!    same Luby process centrally with a seeded RNG and *charge* each
//!    iteration `ℓ` network rounds and one token of `O(ℓ log n)` bits
//!    per alive path per hop, per Lemma 3.3's accounting. (A faithful
//!    per-message implementation of this step is exponential in `ℓ` in
//!    traffic; the paper itself only bounds it through the lemma.)
//! 3. **Augmentation (Step 7).** `M ← M ⊕ P`, charged `ℓ` rounds
//!    (leaders notify along their paths).
//!
//! Because every phase applies a *maximal* set of (automatically
//! shortest — see Lemma 3.4's invariant, asserted in debug builds)
//! augmenting paths of length `ℓ`, the final matching is a
//! `(1 - 1/(k+1))`-MCM **deterministically**, not just in expectation.

use dgraph::augmenting::{enumerate_augmenting_paths, is_maximal_disjoint};
use dgraph::{Graph, Matching, NodeId};
use simnet::rng::streams;
use simnet::{BitSize, Ctx, ExecCfg, Inbox, NetStats, Network, Protocol, SplitMix64};
use std::collections::BTreeSet;
use std::sync::Arc;

/// One knowledge item of the flooded view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ViewItem {
    /// An edge and whether it is currently matched.
    Edge(NodeId, NodeId, bool),
    /// A vertex known to be free.
    Free(NodeId),
}

impl BitSize for ViewItem {
    fn bit_size(&self) -> u64 {
        match self {
            ViewItem::Edge(..) => 1 + 32 + 32 + 1,
            ViewItem::Free(_) => 1 + 32,
        }
    }
}

/// A delta message: the items learned in the previous round, shared via
/// `Arc` so that sending to all neighbors does not copy the payload.
#[derive(Debug, Clone)]
pub struct DeltaMsg(pub Arc<Vec<ViewItem>>);

impl BitSize for DeltaMsg {
    fn bit_size(&self) -> u64 {
        64 + self.0.iter().map(BitSize::bit_size).sum::<u64>()
    }
}

/// Ball-gathering protocol node (Algorithm 2).
struct GatherNode {
    // Ordered set: the first-round flood serializes the whole view
    // into a message, so its iteration order must not depend on hash
    // state.
    view: BTreeSet<ViewItem>,
    rounds: u64,
    /// Non-participants (outside the repair region of an incremental
    /// run) take no part at all: they halt in round 0, so with the
    /// sparse scheduler a repair's gathering rounds cost O(|ball|),
    /// not O(n). (Their merged views are never consulted — every
    /// augmenting path, and every view the phase inspects, lives
    /// inside the region by the `repair` precondition.)
    participating: bool,
}

impl Protocol for GatherNode {
    type Msg = DeltaMsg;

    fn on_round(&mut self, ctx: &mut Ctx<'_, DeltaMsg>, inbox: Inbox<'_, DeltaMsg>) {
        if !self.participating {
            ctx.halt();
            return;
        }
        // Merge what arrived, keeping only genuinely new items.
        let mut learned: Vec<ViewItem> = Vec::new();
        for env in inbox.iter() {
            for &item in env.msg.0.iter() {
                if self.view.insert(item) {
                    learned.push(item);
                }
            }
        }
        let r = ctx.round();
        if r + 1 < self.rounds {
            let outgoing = if r == 0 {
                // First round: flood the initial local knowledge.
                self.view.iter().copied().collect::<Vec<_>>()
            } else {
                std::mem::take(&mut learned)
            };
            if !outgoing.is_empty() {
                ctx.send_all(DeltaMsg(Arc::new(outgoing)));
            }
        } else {
            ctx.halt();
        }
    }
}

/// Run the ball-gathering phase: after it, node `v`'s view contains all
/// edges/free-flags whose origin is within distance `rounds - 1`.
pub(crate) fn gather_balls(
    g: &Graph,
    m: &Matching,
    radius: usize,
    seed: u64,
) -> (Vec<BTreeSet<ViewItem>>, NetStats) {
    gather_balls_cfg(g, m, radius, seed, ExecCfg::default())
}

/// [`gather_balls`] under explicit execution knobs.
pub(crate) fn gather_balls_cfg(
    g: &Graph,
    m: &Matching,
    radius: usize,
    seed: u64,
    cfg: ExecCfg,
) -> (Vec<BTreeSet<ViewItem>>, NetStats) {
    gather_balls_region(g, m, radius, seed, cfg, None)
}

/// Ball gathering, optionally restricted to a *region*: when
/// `region[v]` is false, node `v` never sends (its knowledge stays
/// local and does not propagate). Incremental repair uses this to keep
/// gathering traffic inside the damage neighborhood.
pub(crate) fn gather_balls_region(
    g: &Graph,
    m: &Matching,
    radius: usize,
    seed: u64,
    cfg: ExecCfg,
    region: Option<&[bool]>,
) -> (Vec<BTreeSet<ViewItem>>, NetStats) {
    let rounds = radius as u64 + 1;
    let nodes: Vec<GatherNode> = (0..g.n() as NodeId)
        .map(|v| {
            let mut view = BTreeSet::new();
            for &(_, e) in g.incident(v) {
                let (a, b) = g.endpoints(e);
                view.insert(ViewItem::Edge(a, b, m.contains(g, e)));
            }
            if m.is_free(v) {
                view.insert(ViewItem::Free(v));
            }
            GatherNode {
                view,
                rounds,
                participating: region.is_none_or(|r| r[v as usize]),
            }
        })
        .collect();
    let mut net = Network::new(crate::state::topology_of(g), nodes, seed).with_cfg(cfg);
    if cfg.effective_faults().breaks_synchrony() {
        // Crashed nodes never step (and so never halt), and delayed
        // payloads keep the plane busy past the schedule: run the fixed
        // window and take whatever views the survivors gathered.
        net.run_rounds(rounds + 2);
    } else {
        net.run_until_halt(rounds + 2);
    }
    let (nodes, stats) = net.into_parts();
    (nodes.into_iter().map(|n| n.view).collect(), stats)
}

/// Result of the central Luby emulation on the conflict graph.
pub(crate) struct ConflictMis {
    /// Indices of the chosen (independent, maximal) paths.
    pub(crate) chosen: Vec<usize>,
    /// Luby iterations executed (each costs `O(ℓ)` rounds in `G`).
    pub(crate) iterations: u64,
    /// Alive-path count summed over iterations (for bit charging).
    alive_work: u64,
}

/// The canonical key of an augmenting path: a scrambled fold of its
/// (global) vertex sequence, direction-normalized so both traversal
/// orders hash alike. Keys — not enumeration indices — address paths
/// in the MIS priority draws, which is what makes the process a pure
/// function of the path set (see [`conflict_graph_mis`]).
pub(crate) fn path_key(path: &[NodeId]) -> u64 {
    let mut acc = path.len() as u64;
    let fold = |acc: u64, v: NodeId| {
        let mut s = SplitMix64::for_node(acc, v as u64);
        s.next()
    };
    if path.last() < path.first() {
        for &v in path.iter().rev() {
            acc = fold(acc, v);
        }
    } else {
        for &v in path {
            acc = fold(acc, v);
        }
    }
    acc
}

/// Priority of the path with canonical key `key` in Luby iteration
/// `iteration` of the phase-`ell` conflict-graph MIS. A pure function
/// of `(seed, ell, iteration, key)` anchored at the frozen
/// [`streams::GENERIC_MIS`] stream — *not* a draw from a shared
/// sequential stream, so the value does not depend on how many other
/// paths exist or in which order they were enumerated.
pub(crate) fn path_priority(seed: u64, ell: u64, iteration: u64, key: u64) -> u64 {
    let mut base = SplitMix64::for_node(seed, streams::GENERIC_MIS);
    let mut a = SplitMix64::for_node(base.next() ^ ell, iteration);
    let mut b = SplitMix64::for_node(a.next(), key);
    b.next()
}

/// Luby's MIS on the conflict graph of `paths` (two paths conflict iff
/// they share a vertex), executed centrally. This is exactly the
/// process of [20]: every alive path draws a priority and joins when it
/// beats all alive conflicting paths.
///
/// Priorities are *keyed*: path `i` draws
/// [`path_priority`]`(seed, ell, t, keys[i])` in iteration `t`, and
/// ties break on `(key, vertex sequence)` rather than the enumeration
/// index. Consequences, both load-bearing:
///
/// * the chosen set is a deterministic function of the path *set* —
///   enumeration order is irrelevant — and it factorizes over the
///   connected components of the conflict graph, since a path's fate
///   depends only on draws inside its component;
/// * a restricted re-run over any vertex set that contains a whole
///   conflict component reproduces that component's decisions
///   bit-for-bit. This is the locality property
///   `dmatch::oracle::MatchingOracle` certifies its Generic answers
///   with.
pub(crate) fn conflict_graph_mis(
    n: usize,
    paths: &[Vec<NodeId>],
    keys: &[u64],
    seed: u64,
    ell: usize,
) -> ConflictMis {
    let p = paths.len();
    debug_assert_eq!(keys.len(), p);
    let mut vertex_paths: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, path) in paths.iter().enumerate() {
        for &v in path {
            vertex_paths[v as usize].push(i);
        }
    }
    let mut alive = vec![true; p];
    let mut alive_count = p;
    let mut chosen = Vec::new();
    let mut iterations = 0u64;
    let mut alive_work = 0u64;
    let mut prio = vec![0u64; p];
    while alive_count > 0 {
        iterations += 1;
        alive_work += alive_count as u64;
        for (i, pr) in prio.iter_mut().enumerate() {
            if alive[i] {
                *pr = path_priority(seed, ell as u64, iterations, keys[i]);
            }
        }
        let mut winners = Vec::new();
        'paths: for i in 0..p {
            if !alive[i] {
                continue;
            }
            for &v in &paths[i] {
                for &j in &vertex_paths[v as usize] {
                    if j != i
                        && alive[j]
                        && (prio[j], keys[j], &paths[j][..]) > (prio[i], keys[i], &paths[i][..])
                    {
                        continue 'paths;
                    }
                }
            }
            winners.push(i);
        }
        for &w in &winners {
            if !alive[w] {
                continue; // already killed by an earlier winner this iteration
            }
            chosen.push(w);
            // Winners are mutually non-conflicting by construction, so
            // killing neighbors cannot kill another winner.
            for &v in &paths[w] {
                for &j in &vertex_paths[v as usize] {
                    if alive[j] {
                        alive[j] = false;
                        alive_count -= 1;
                    }
                }
            }
        }
    }
    ConflictMis {
        chosen,
        iterations,
        alive_work,
    }
}

/// Per-phase log entry.
#[derive(Debug, Clone)]
pub struct PhaseLog {
    /// Path length `ℓ` of the phase.
    pub ell: usize,
    /// Augmenting paths present in the conflict graph.
    pub conflict_nodes: usize,
    /// Paths applied (size of the MIS).
    pub applied: usize,
    /// Luby iterations on the conflict graph.
    pub mis_iterations: u64,
    /// Matching size after the phase.
    pub matching_size: usize,
}

/// Output of [`run`].
pub struct GenericRun {
    /// The final matching — a `(1 - 1/(k+1))`-MCM.
    pub matching: Matching,
    /// Combined network statistics (gathering measured, MIS/augment
    /// charged per Lemma 3.3).
    pub stats: NetStats,
    /// Per-phase details.
    pub phases: Vec<PhaseLog>,
}

/// Run Algorithm 1 with parameter `k` (phases `ℓ = 1, 3, …, 2k-1`),
/// producing a `(1 - 1/(k+1))`-approximate maximum cardinality
/// matching of `g`.
#[deprecated(
    since = "0.1.0",
    note = "use `dmatch::session::Session::on(g).algorithm(Algorithm::Generic { k })` (see the \
            migration table in the crate docs)"
)]
#[allow(deprecated)]
pub fn run(g: &Graph, k: usize, seed: u64) -> GenericRun {
    run_cfg(g, k, seed, ExecCfg::default())
}

/// [`run`] under explicit execution knobs (threads / fault injection
/// apply to the measured ball-gathering phases).
#[deprecated(
    since = "0.1.0",
    note = "use `Session::on(g).algorithm(Algorithm::Generic { k }).exec(cfg)`"
)]
pub fn run_cfg(g: &Graph, k: usize, seed: u64, cfg: ExecCfg) -> GenericRun {
    run_inner(g, &Matching::new(g.n()), k, seed, cfg, None)
}

/// Warm-start entry point: run the phases `ℓ = 1, 3, …, 2k-1` starting
/// from `initial` instead of the empty matching.
///
/// Correctness is unchanged — phase `ℓ` applies a maximal set of
/// disjoint augmenting paths of length `ℓ`, and augmentation never
/// frees a matched vertex, so after the last phase no augmenting path
/// of length `≤ 2k-1` survives and the result is a
/// `(1 - 1/(k+1))`-MCM regardless of the starting matching. A good
/// warm start (e.g. the surviving matching after churn) leaves far
/// fewer augmenting paths, which shrinks the conflict graphs and the
/// charged MIS/augmentation traffic.
#[deprecated(
    since = "0.1.0",
    note = "use `Session::on(g).algorithm(Algorithm::Generic { k }).warm_start(initial)`"
)]
#[allow(deprecated)]
pub fn run_from(g: &Graph, initial: &Matching, k: usize, seed: u64) -> GenericRun {
    run_from_cfg(g, initial, k, seed, ExecCfg::default())
}

/// [`run_from`] under explicit execution knobs.
#[deprecated(
    since = "0.1.0",
    note = "use `Session::on(g).algorithm(Algorithm::Generic { k }).warm_start(initial).exec(cfg)`"
)]
pub fn run_from_cfg(
    g: &Graph,
    initial: &Matching,
    k: usize,
    seed: u64,
    cfg: ExecCfg,
) -> GenericRun {
    run_inner(g, initial, k, seed, cfg, None)
}

/// Incremental repair after a churn batch: warm-start from the
/// surviving matching `initial` and keep all gathering traffic inside
/// the ball `B(damage, 4k+2)`.
///
/// `damage` is the set of vertices whose incident structure changed:
/// endpoints of inserted edges and endpoints of *matched* edges that
/// were removed (removing an unmatched edge only destroys augmenting
/// paths). Every augmenting path of length `≤ 2k-1` in the new
/// instance either survived from the previous epoch — impossible if
/// the previous matching met the bound — or touches `damage`; all
/// vertices such a path visits, and all vertices whose matched status
/// later changes during the phases, stay within distance `O(k)` of
/// `damage`, so restricting the flooding region loses nothing
/// (debug-asserted). With no damage the previous guarantee still holds
/// and the repair is free.
#[deprecated(
    since = "0.1.0",
    note = "complete a Generic session, then `Session::resume_after_rewire(RewirePatch::new(g, damage))`"
)]
#[allow(deprecated)]
pub fn repair(g: &Graph, initial: &Matching, damage: &[NodeId], k: usize, seed: u64) -> GenericRun {
    repair_cfg(g, initial, damage, k, seed, ExecCfg::default())
}

/// [`repair`] under explicit execution knobs.
#[deprecated(
    since = "0.1.0",
    note = "complete a Generic session, then `Session::resume_after_rewire(RewirePatch::new(g, damage))`"
)]
pub fn repair_cfg(
    g: &Graph,
    initial: &Matching,
    damage: &[NodeId],
    k: usize,
    seed: u64,
    cfg: ExecCfg,
) -> GenericRun {
    if damage.is_empty() {
        return GenericRun {
            matching: initial.clone(),
            stats: NetStats::default(),
            phases: Vec::new(),
        };
    }
    let damage = normalize_damage(damage);
    let region = ball(g, &damage, 4 * k + 2);
    run_inner(g, initial, k, seed, cfg, Some(region))
}

/// Sort + dedupe a damage list. Callers hand us raw endpoint dumps
/// (`RewirePatch` explicitly allows duplicates), and a hub that lost
/// ten edges would otherwise seed the BFS ten times and inflate every
/// `damage`-derived gauge (`center_edges`, woken counts) by its
/// multiplicity.
pub(crate) fn normalize_damage(damage: &[NodeId]) -> Vec<NodeId> {
    let mut d = damage.to_vec();
    d.sort_unstable();
    d.dedup();
    d
}

/// `region[v]` = v is within `radius` hops of a seed. Shared with the
/// session driver ([`crate::session::Session::resume_after_rewire`]),
/// which restricts repair gathering to `B(damage, 4k+2)` exactly like
/// [`repair_cfg`].
pub(crate) fn ball(g: &Graph, seeds: &[NodeId], radius: usize) -> Vec<bool> {
    let mut dist = vec![usize::MAX; g.n()];
    let mut queue = std::collections::VecDeque::new();
    for &s in seeds {
        if dist[s as usize] == usize::MAX {
            dist[s as usize] = 0;
            queue.push_back(s);
        }
    }
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize];
        if d == radius {
            continue;
        }
        for &(u, _) in g.incident(v) {
            if dist[u as usize] == usize::MAX {
                dist[u as usize] = d + 1;
                queue.push_back(u);
            }
        }
    }
    dist.into_iter().map(|d| d != usize::MAX).collect()
}

/// One phase of Algorithm 1 (`ℓ = 2·phase_idx + 1`): ball gathering,
/// conflict-graph MIS, augmentation — the single source of truth shared
/// by [`run_from_cfg`]'s loop and the stepwise `dmatch::session` driver.
/// MIS priorities are keyed by `(seed, ell, iteration, path key)` (see
/// [`path_priority`]), so the phase carries no RNG state between calls.
pub(crate) fn phase_step(
    g: &Graph,
    m: &mut Matching,
    phase_idx: usize,
    seed: u64,
    cfg: ExecCfg,
    region: Option<&[bool]>,
    stats: &mut NetStats,
) -> PhaseLog {
    let ell = 2 * phase_idx + 1;
    let id_bits = simnet::id_bits(g.n());
    // Step 4 (Algorithm 2): gather distance-2ℓ balls, real messages.
    let (views, gstats) =
        gather_balls_region(g, m, 2 * ell, seed.wrapping_add(ell as u64), cfg, region);
    stats.absorb(&gstats);

    // Enumerate the conflict-graph nodes. (Each node could do this
    // from its view — the tests verify that every path and its
    // conflicts are visible in the gathered balls — but we run the
    // enumeration once globally for speed.)
    let paths = enumerate_augmenting_paths(g, m, ell);
    if let Some(region) = region {
        // Incremental runs: every augmenting path must live inside
        // the damage ball (see `repair`). A path outside it means
        // the warm start violated the precondition (it still had
        // short augmenting paths away from the damage) — silently
        // skipping such paths would return a matching below the
        // promised bound, so fail loudly instead.
        assert!(
            paths.iter().all(|p| p.iter().all(|&v| region[v as usize])),
            "phase {ell}: an augmenting path escaped the damage ball — \
             incremental repair requires a warm start with no augmenting \
             path of length ≤ 2k-1 outside the churned region (use a \
             plain warm start for arbitrary starting matchings)"
        );
    }
    debug_assert!(
        paths.iter().all(|p| p.len() == ell + 1),
        "phase {ell}: all augmenting paths must have length exactly ℓ (Lemma 3.4 invariant)"
    );
    // View completeness only holds on a fault-free plane: the
    // adversary can eat or delay exactly the delta that would have
    // carried a path into some node's ball. Safety is unaffected (path
    // enumeration is global); the gathered traffic just degrades.
    debug_assert!(
        cfg.effective_faults().is_active()
            || paths.iter().all(|p| p.iter().all(|&v| {
                p.windows(2).all(|w| {
                    let e = g.edge_between(w[0], w[1]).unwrap();
                    let (a, b) = g.endpoints(e);
                    views[v as usize].contains(&ViewItem::Edge(a, b, m.contains(g, e)))
                })
            })),
        "phase {ell}: some node cannot see a path through it in its gathered ball"
    );

    // Step 5: MIS on C_M(ℓ) via Luby, charged per Lemma 3.3.
    let keys: Vec<u64> = paths.iter().map(|p| path_key(p)).collect();
    let cm = conflict_graph_mis(g.n(), &paths, &keys, seed, ell);
    debug_assert!({
        let chosen = cm.chosen.clone();
        is_maximal_disjoint(g, &paths, &chosen)
    });
    // Charging: each conflict-graph round is emulated by O(ℓ)
    // routing rounds in G; each alive path moves one token of
    // O(ℓ·log n) bits per hop.
    let token_bits = (ell as u64) * (id_bits + 64);
    for _ in 0..cm.iterations * ell as u64 {
        stats.record_round(0);
    }
    stats.record_messages(cm.alive_work * ell as u64, token_bits);

    // Step 7: apply the augmentations; leaders notify along paths.
    for &i in &cm.chosen {
        m.augment_path(g, &paths[i]);
    }
    for _ in 0..ell {
        stats.record_round(cm.chosen.len() as u64);
    }

    PhaseLog {
        ell,
        conflict_nodes: paths.len(),
        applied: cm.chosen.len(),
        mis_iterations: cm.iterations,
        matching_size: m.size(),
    }
}

fn run_inner(
    g: &Graph,
    initial: &Matching,
    k: usize,
    seed: u64,
    cfg: ExecCfg,
    region: Option<Vec<bool>>,
) -> GenericRun {
    assert!(k >= 1, "k must be positive");
    let mut m = initial.clone();
    debug_assert!(m.validate(g).is_ok(), "warm start must be a valid matching");
    let mut stats = NetStats::default();
    let mut phases = Vec::new();

    for phase_idx in 0..k {
        if g.n() == 0 {
            break;
        }
        phases.push(phase_step(
            g,
            &mut m,
            phase_idx,
            seed,
            cfg,
            region.as_deref(),
            &mut stats,
        ));
    }
    GenericRun {
        matching: m,
        stats,
        phases,
    }
}

#[cfg(test)]
#[allow(deprecated)] // the shims stay covered until they are removed
mod tests {
    use super::*;
    use dgraph::generators::random::{bipartite_gnp, gnp};
    use dgraph::generators::structured::{cycle, p4_chain, path};

    fn ratio(g: &Graph, m: &Matching) -> f64 {
        let opt = dgraph::blossom::max_matching(g).size();
        if opt == 0 {
            1.0
        } else {
            m.size() as f64 / opt as f64
        }
    }

    #[test]
    fn k1_is_maximal_matching() {
        let g = gnp(40, 0.1, 1);
        let r = run(&g, 1, 7);
        assert!(r.matching.is_maximal(&g));
        assert!(ratio(&g, &r.matching) >= 0.5);
    }

    #[test]
    fn guarantee_holds_per_k() {
        for seed in 0..6 {
            let g = gnp(30, 0.12, seed);
            for k in 1..=3 {
                let r = run(&g, k, seed * 10 + k as u64);
                assert!(r.matching.validate(&g).is_ok());
                let bound = 1.0 - 1.0 / (k as f64 + 1.0);
                assert!(
                    ratio(&g, &r.matching) >= bound - 1e-9,
                    "seed {seed}, k {k}: ratio {} < {bound}",
                    ratio(&g, &r.matching)
                );
            }
        }
    }

    #[test]
    fn no_short_augmenting_path_after_phase() {
        use dgraph::augmenting::has_augmenting_path_within;
        for seed in 0..5 {
            let g = gnp(24, 0.15, 40 + seed);
            for k in 1..=3usize {
                let r = run(&g, k, seed);
                assert!(
                    !has_augmenting_path_within(&g, &r.matching, 2 * k - 1),
                    "seed {seed}, k {k}: an augmenting path of length ≤ {} survived",
                    2 * k - 1
                );
            }
        }
    }

    #[test]
    fn p4_chain_needs_k2() {
        // On P4 chains, k=1 can stop at the ½ trap; k=2 must reach the
        // optimum (shortest surviving augmenting path would have
        // length 3 = 2k-1, which phase 2 eliminates).
        let g = p4_chain(8);
        let r = run(&g, 2, 3);
        assert_eq!(r.matching.size(), 16);
    }

    #[test]
    fn exact_on_paths_and_cycles_with_moderate_k() {
        let g = path(13); // optimum 6
        let r = run(&g, 6, 1);
        assert_eq!(r.matching.size(), 6);
        let g = cycle(9); // optimum 4
        let r = run(&g, 4, 2);
        assert_eq!(r.matching.size(), 4);
    }

    #[test]
    fn bipartite_ratio_tracks_k() {
        let (g, _) = bipartite_gnp(25, 25, 0.1, 5);
        let r1 = run(&g, 1, 1);
        let r3 = run(&g, 3, 1);
        assert!(r3.matching.size() >= r1.matching.size());
        assert!(ratio(&g, &r3.matching) >= 0.75 - 1e-9);
    }

    #[test]
    fn phase_log_is_coherent() {
        let g = gnp(30, 0.1, 9);
        let r = run(&g, 3, 4);
        assert_eq!(r.phases.len(), 3);
        assert_eq!(r.phases[0].ell, 1);
        assert_eq!(r.phases[2].ell, 5);
        assert_eq!(r.phases.last().unwrap().matching_size, r.matching.size());
        for p in &r.phases {
            assert!(p.applied <= p.conflict_nodes);
        }
    }

    #[test]
    fn stats_reflect_large_messages() {
        let g = gnp(30, 0.15, 2);
        let r = run(&g, 2, 8);
        // Ball gathering ships whole subgraphs: messages far larger
        // than CONGEST's O(log n).
        assert!(r.stats.max_msg_bits > 64, "max = {}", r.stats.max_msg_bits);
        assert!(r.stats.rounds > 0);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = Graph::new(0, vec![]);
        let r = run(&g, 3, 0);
        assert_eq!(r.matching.size(), 0);
    }

    #[test]
    fn warm_start_preserves_guarantee() {
        for seed in 0..5 {
            let g = gnp(28, 0.14, 70 + seed);
            let init = dgraph::greedy::greedy_maximal(&g);
            for k in 1..=3 {
                let r = run_from(&g, &init, k, seed);
                assert!(r.matching.validate(&g).is_ok());
                assert!(
                    r.matching.size() >= init.size(),
                    "augmentation can only grow the matching"
                );
                let bound = 1.0 - 1.0 / (k as f64 + 1.0);
                assert!(
                    ratio(&g, &r.matching) >= bound - 1e-9,
                    "seed {seed}, k {k}: warm-start ratio {} < {bound}",
                    ratio(&g, &r.matching)
                );
            }
        }
    }

    #[test]
    fn repair_ignores_damage_duplicates() {
        // A duplicated-hub damage list (one entry per lost edge) must
        // behave exactly like its deduped form: same matching, same
        // stats, same phase logs.
        let g = gnp(40, 0.08, 91);
        let k = 2;
        let full = run(&g, k, 7);
        let &e = full.matching.edge_ids(&g).first().expect("nonempty");
        let (a, b) = g.endpoints(e);
        let (g2, _) = g.edge_subgraph(|x| x != e);
        let mut m = Matching::new(g2.n());
        for &eid in &full.matching.edge_ids(&g) {
            if eid != e {
                let (u, v) = g.endpoints(eid);
                m.add(&g2, g2.edge_between(u, v).expect("surviving edge"));
            }
        }
        let clean = repair(&g2, &m, &[a, b], k, 8);
        let dup = repair(&g2, &m, &[b, b, a, b, a, a], k, 8);
        assert_eq!(clean.matching, dup.matching);
        assert_eq!(clean.stats, dup.stats);
        assert_eq!(clean.phases.len(), dup.phases.len());
    }

    #[test]
    fn mis_priorities_are_enumeration_order_independent() {
        // The keyed draws must make the chosen set a function of the
        // path *set*: reversing the enumeration order cannot change it.
        let g = gnp(30, 0.12, 17);
        let m = Matching::new(g.n());
        let paths = enumerate_augmenting_paths(&g, &m, 1);
        assert!(paths.len() > 2, "fixture needs a real conflict graph");
        let keys: Vec<u64> = paths.iter().map(|p| path_key(p)).collect();
        let fwd = conflict_graph_mis(g.n(), &paths, &keys, 3, 1);
        let rev_paths: Vec<Vec<NodeId>> = paths.iter().rev().cloned().collect();
        let rev_keys: Vec<u64> = keys.iter().rev().copied().collect();
        let rev = conflict_graph_mis(g.n(), &rev_paths, &rev_keys, 3, 1);
        let mut a: Vec<&Vec<NodeId>> = fwd.chosen.iter().map(|&i| &paths[i]).collect();
        let mut b: Vec<&Vec<NodeId>> = rev.chosen.iter().map(|&i| &rev_paths[i]).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn path_key_is_direction_invariant() {
        let p: Vec<NodeId> = vec![3, 9, 4, 12];
        let mut q = p.clone();
        q.reverse();
        assert_eq!(path_key(&p), path_key(&q));
        assert_ne!(path_key(&p), path_key(&[3, 9, 4]));
    }

    #[test]
    fn repair_localizes_and_keeps_bound() {
        use dgraph::augmenting::has_augmenting_path_within;
        for seed in 0..4 {
            let g = gnp(40, 0.08, 90 + seed);
            let k = 2;
            let full = run(&g, k, seed);
            // Damage the instance: remove one matched edge (both
            // endpoints become free) — the classic churn event.
            let Some(&e) = full.matching.edge_ids(&g).first() else {
                continue;
            };
            let (a, b) = g.endpoints(e);
            let (g2, _back) = g.edge_subgraph(|x| x != e);
            let mut m = Matching::new(g2.n());
            for &eid in &full.matching.edge_ids(&g) {
                if eid != e {
                    let (u, v) = g.endpoints(eid);
                    let e2 = g2.edge_between(u, v).expect("surviving edge");
                    m.add(&g2, e2);
                }
            }
            let r = repair(&g2, &m, &[a, b], k, seed + 1);
            assert!(r.matching.validate(&g2).is_ok());
            assert!(
                !has_augmenting_path_within(&g2, &r.matching, 2 * k - 1),
                "seed {seed}: repair left a short augmenting path"
            );
            // Localized repair must cost far fewer messages than a
            // cold run on the same instance.
            let cold = run(&g2, k, seed + 1);
            assert!(
                r.stats.messages <= cold.stats.messages,
                "seed {seed}: repair sent {} messages vs cold {}",
                r.stats.messages,
                cold.stats.messages
            );
        }
    }

    #[test]
    fn repair_with_no_damage_is_free() {
        let g = gnp(20, 0.15, 3);
        let full = run(&g, 2, 1);
        let r = repair(&g, &full.matching, &[], 2, 2);
        assert_eq!(r.matching, full.matching);
        assert_eq!(r.stats.messages, 0);
        assert_eq!(r.stats.rounds, 0);
    }
}
