//! The generic `(1-ε)`-MCM algorithm — Algorithms 1 and 2, Theorem 3.1.
//!
//! Phases `ℓ = 1, 3, …, 2k-1`. In phase `ℓ`:
//!
//! 1. **Ball gathering (Algorithm 2, real messages).** For `2ℓ+1`
//!    rounds every node floods the *delta* of its local view (edges
//!    with matched flags, free-vertex flags). After the phase, node `v`
//!    knows its distance-`2ℓ` ball — enough to see every augmenting
//!    path through `v` *and* every path conflicting with one of those.
//!    Message sizes are the real encoded view deltas, exactly the
//!    `O(|V|+|E|)`-bit messages Theorem 3.1 allows.
//! 2. **Conflict-graph MIS (Step 5, emulated).** The paper runs Luby's
//!    MIS on the conflict graph `C_M(ℓ)`, each conflict-graph round
//!    costing `O(ℓ)` routing rounds in `G` (Lemma 3.3). We execute the
//!    same Luby process centrally with a seeded RNG and *charge* each
//!    iteration `ℓ` network rounds and one token of `O(ℓ log n)` bits
//!    per alive path per hop, per Lemma 3.3's accounting. (A faithful
//!    per-message implementation of this step is exponential in `ℓ` in
//!    traffic; the paper itself only bounds it through the lemma.)
//! 3. **Augmentation (Step 7).** `M ← M ⊕ P`, charged `ℓ` rounds
//!    (leaders notify along their paths).
//!
//! Because every phase applies a *maximal* set of (automatically
//! shortest — see Lemma 3.4's invariant, asserted in debug builds)
//! augmenting paths of length `ℓ`, the final matching is a
//! `(1 - 1/(k+1))`-MCM **deterministically**, not just in expectation.

use dgraph::augmenting::{enumerate_augmenting_paths, is_maximal_disjoint};
use dgraph::{Graph, Matching, NodeId};
use simnet::{BitSize, Ctx, ExecCfg, Inbox, NetStats, Network, Protocol, SplitMix64};
use std::collections::HashSet;
use std::sync::Arc;

/// One knowledge item of the flooded view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViewItem {
    /// An edge and whether it is currently matched.
    Edge(NodeId, NodeId, bool),
    /// A vertex known to be free.
    Free(NodeId),
}

impl BitSize for ViewItem {
    fn bit_size(&self) -> u64 {
        match self {
            ViewItem::Edge(..) => 1 + 32 + 32 + 1,
            ViewItem::Free(_) => 1 + 32,
        }
    }
}

/// A delta message: the items learned in the previous round, shared via
/// `Arc` so that sending to all neighbors does not copy the payload.
#[derive(Debug, Clone)]
pub struct DeltaMsg(pub Arc<Vec<ViewItem>>);

impl BitSize for DeltaMsg {
    fn bit_size(&self) -> u64 {
        64 + self.0.iter().map(BitSize::bit_size).sum::<u64>()
    }
}

/// Ball-gathering protocol node (Algorithm 2).
struct GatherNode {
    view: HashSet<ViewItem>,
    rounds: u64,
}

impl Protocol for GatherNode {
    type Msg = DeltaMsg;

    fn on_round(&mut self, ctx: &mut Ctx<'_, DeltaMsg>, inbox: Inbox<'_, DeltaMsg>) {
        // Merge what arrived, keeping only genuinely new items.
        let mut learned: Vec<ViewItem> = Vec::new();
        for env in inbox.iter() {
            for &item in env.msg.0.iter() {
                if self.view.insert(item) {
                    learned.push(item);
                }
            }
        }
        let r = ctx.round();
        if r + 1 < self.rounds {
            let outgoing = if r == 0 {
                // First round: flood the initial local knowledge.
                self.view.iter().copied().collect::<Vec<_>>()
            } else {
                std::mem::take(&mut learned)
            };
            if !outgoing.is_empty() {
                ctx.send_all(DeltaMsg(Arc::new(outgoing)));
            }
        } else {
            ctx.halt();
        }
    }
}

/// Run the ball-gathering phase: after it, node `v`'s view contains all
/// edges/free-flags whose origin is within distance `rounds - 1`.
pub(crate) fn gather_balls(
    g: &Graph,
    m: &Matching,
    radius: usize,
    seed: u64,
) -> (Vec<HashSet<ViewItem>>, NetStats) {
    gather_balls_cfg(g, m, radius, seed, ExecCfg::default())
}

/// [`gather_balls`] under explicit execution knobs.
pub(crate) fn gather_balls_cfg(
    g: &Graph,
    m: &Matching,
    radius: usize,
    seed: u64,
    cfg: ExecCfg,
) -> (Vec<HashSet<ViewItem>>, NetStats) {
    let rounds = radius as u64 + 1;
    let nodes: Vec<GatherNode> = (0..g.n() as NodeId)
        .map(|v| {
            let mut view = HashSet::new();
            for &(_, e) in g.incident(v) {
                let (a, b) = g.endpoints(e);
                view.insert(ViewItem::Edge(a, b, m.contains(g, e)));
            }
            if m.is_free(v) {
                view.insert(ViewItem::Free(v));
            }
            GatherNode { view, rounds }
        })
        .collect();
    let mut net = Network::new(crate::state::topology_of(g), nodes, seed).with_cfg(cfg);
    net.run_until_halt(rounds + 2);
    let (nodes, stats) = net.into_parts();
    (nodes.into_iter().map(|n| n.view).collect(), stats)
}

/// Result of the central Luby emulation on the conflict graph.
struct ConflictMis {
    /// Indices of the chosen (independent, maximal) paths.
    chosen: Vec<usize>,
    /// Luby iterations executed (each costs `O(ℓ)` rounds in `G`).
    iterations: u64,
    /// Alive-path count summed over iterations (for bit charging).
    alive_work: u64,
}

/// Luby's MIS on the conflict graph of `paths` (two paths conflict iff
/// they share a vertex), executed centrally with the given RNG. This is
/// exactly the process of [20]: every alive path draws a priority and
/// joins when it beats all alive conflicting paths.
fn conflict_graph_mis(n: usize, paths: &[Vec<NodeId>], rng: &mut SplitMix64) -> ConflictMis {
    let p = paths.len();
    let mut vertex_paths: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, path) in paths.iter().enumerate() {
        for &v in path {
            vertex_paths[v as usize].push(i);
        }
    }
    let mut alive = vec![true; p];
    let mut alive_count = p;
    let mut chosen = Vec::new();
    let mut iterations = 0u64;
    let mut alive_work = 0u64;
    let mut prio = vec![0u64; p];
    while alive_count > 0 {
        iterations += 1;
        alive_work += alive_count as u64;
        for (i, pr) in prio.iter_mut().enumerate() {
            if alive[i] {
                *pr = rng.next();
            }
        }
        let mut winners = Vec::new();
        'paths: for i in 0..p {
            if !alive[i] {
                continue;
            }
            for &v in &paths[i] {
                for &j in &vertex_paths[v as usize] {
                    if j != i && alive[j] && (prio[j], j) > (prio[i], i) {
                        continue 'paths;
                    }
                }
            }
            winners.push(i);
        }
        for &w in &winners {
            if !alive[w] {
                continue; // already killed by an earlier winner this iteration
            }
            chosen.push(w);
            // Winners are mutually non-conflicting by construction, so
            // killing neighbors cannot kill another winner.
            for &v in &paths[w] {
                for &j in &vertex_paths[v as usize] {
                    if alive[j] {
                        alive[j] = false;
                        alive_count -= 1;
                    }
                }
            }
        }
    }
    ConflictMis {
        chosen,
        iterations,
        alive_work,
    }
}

/// Per-phase log entry.
#[derive(Debug, Clone)]
pub struct PhaseLog {
    /// Path length `ℓ` of the phase.
    pub ell: usize,
    /// Augmenting paths present in the conflict graph.
    pub conflict_nodes: usize,
    /// Paths applied (size of the MIS).
    pub applied: usize,
    /// Luby iterations on the conflict graph.
    pub mis_iterations: u64,
    /// Matching size after the phase.
    pub matching_size: usize,
}

/// Output of [`run`].
pub struct GenericRun {
    /// The final matching — a `(1 - 1/(k+1))`-MCM.
    pub matching: Matching,
    /// Combined network statistics (gathering measured, MIS/augment
    /// charged per Lemma 3.3).
    pub stats: NetStats,
    /// Per-phase details.
    pub phases: Vec<PhaseLog>,
}

/// Run Algorithm 1 with parameter `k` (phases `ℓ = 1, 3, …, 2k-1`),
/// producing a `(1 - 1/(k+1))`-approximate maximum cardinality
/// matching of `g`.
pub fn run(g: &Graph, k: usize, seed: u64) -> GenericRun {
    run_cfg(g, k, seed, ExecCfg::default())
}

/// [`run`] under explicit execution knobs (threads / fault injection
/// apply to the measured ball-gathering phases).
pub fn run_cfg(g: &Graph, k: usize, seed: u64, cfg: ExecCfg) -> GenericRun {
    assert!(k >= 1, "k must be positive");
    let mut m = Matching::new(g.n());
    let mut stats = NetStats::default();
    let mut phases = Vec::new();
    let mut rng = SplitMix64::for_node(seed, 0xA160); // MIS priorities
    let id_bits = simnet::id_bits(g.n());

    for phase_idx in 0..k {
        let ell = 2 * phase_idx + 1;
        if g.n() == 0 {
            break;
        }
        // Step 4 (Algorithm 2): gather distance-2ℓ balls, real messages.
        let (views, gstats) = gather_balls_cfg(g, &m, 2 * ell, seed.wrapping_add(ell as u64), cfg);
        stats.absorb(&gstats);

        // Enumerate the conflict-graph nodes. (Each node could do this
        // from its view — the tests verify that every path and its
        // conflicts are visible in the gathered balls — but we run the
        // enumeration once globally for speed.)
        let paths = enumerate_augmenting_paths(g, &m, ell);
        debug_assert!(
            paths.iter().all(|p| p.len() == ell + 1),
            "phase {ell}: all augmenting paths must have length exactly ℓ (Lemma 3.4 invariant)"
        );
        debug_assert!(
            paths.iter().all(|p| p.iter().all(|&v| {
                p.windows(2).all(|w| {
                    let e = g.edge_between(w[0], w[1]).unwrap();
                    let (a, b) = g.endpoints(e);
                    views[v as usize].contains(&ViewItem::Edge(a, b, m.contains(g, e)))
                })
            })),
            "phase {ell}: some node cannot see a path through it in its gathered ball"
        );

        // Step 5: MIS on C_M(ℓ) via Luby, charged per Lemma 3.3.
        let cm = conflict_graph_mis(g.n(), &paths, &mut rng);
        debug_assert!({
            let chosen = cm.chosen.clone();
            is_maximal_disjoint(g, &paths, &chosen)
        });
        // Charging: each conflict-graph round is emulated by O(ℓ)
        // routing rounds in G; each alive path moves one token of
        // O(ℓ·log n) bits per hop.
        let token_bits = (ell as u64) * (id_bits + 64);
        for _ in 0..cm.iterations * ell as u64 {
            stats.record_round(0);
        }
        stats.record_messages(cm.alive_work * ell as u64, token_bits);

        // Step 7: apply the augmentations; leaders notify along paths.
        for &i in &cm.chosen {
            m.augment_path(g, &paths[i]);
        }
        for _ in 0..ell {
            stats.record_round(cm.chosen.len() as u64);
        }

        phases.push(PhaseLog {
            ell,
            conflict_nodes: paths.len(),
            applied: cm.chosen.len(),
            mis_iterations: cm.iterations,
            matching_size: m.size(),
        });
    }
    GenericRun {
        matching: m,
        stats,
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgraph::generators::random::{bipartite_gnp, gnp};
    use dgraph::generators::structured::{cycle, p4_chain, path};

    fn ratio(g: &Graph, m: &Matching) -> f64 {
        let opt = dgraph::blossom::max_matching(g).size();
        if opt == 0 {
            1.0
        } else {
            m.size() as f64 / opt as f64
        }
    }

    #[test]
    fn k1_is_maximal_matching() {
        let g = gnp(40, 0.1, 1);
        let r = run(&g, 1, 7);
        assert!(r.matching.is_maximal(&g));
        assert!(ratio(&g, &r.matching) >= 0.5);
    }

    #[test]
    fn guarantee_holds_per_k() {
        for seed in 0..6 {
            let g = gnp(30, 0.12, seed);
            for k in 1..=3 {
                let r = run(&g, k, seed * 10 + k as u64);
                assert!(r.matching.validate(&g).is_ok());
                let bound = 1.0 - 1.0 / (k as f64 + 1.0);
                assert!(
                    ratio(&g, &r.matching) >= bound - 1e-9,
                    "seed {seed}, k {k}: ratio {} < {bound}",
                    ratio(&g, &r.matching)
                );
            }
        }
    }

    #[test]
    fn no_short_augmenting_path_after_phase() {
        use dgraph::augmenting::has_augmenting_path_within;
        for seed in 0..5 {
            let g = gnp(24, 0.15, 40 + seed);
            for k in 1..=3usize {
                let r = run(&g, k, seed);
                assert!(
                    !has_augmenting_path_within(&g, &r.matching, 2 * k - 1),
                    "seed {seed}, k {k}: an augmenting path of length ≤ {} survived",
                    2 * k - 1
                );
            }
        }
    }

    #[test]
    fn p4_chain_needs_k2() {
        // On P4 chains, k=1 can stop at the ½ trap; k=2 must reach the
        // optimum (shortest surviving augmenting path would have
        // length 3 = 2k-1, which phase 2 eliminates).
        let g = p4_chain(8);
        let r = run(&g, 2, 3);
        assert_eq!(r.matching.size(), 16);
    }

    #[test]
    fn exact_on_paths_and_cycles_with_moderate_k() {
        let g = path(13); // optimum 6
        let r = run(&g, 6, 1);
        assert_eq!(r.matching.size(), 6);
        let g = cycle(9); // optimum 4
        let r = run(&g, 4, 2);
        assert_eq!(r.matching.size(), 4);
    }

    #[test]
    fn bipartite_ratio_tracks_k() {
        let (g, _) = bipartite_gnp(25, 25, 0.1, 5);
        let r1 = run(&g, 1, 1);
        let r3 = run(&g, 3, 1);
        assert!(r3.matching.size() >= r1.matching.size());
        assert!(ratio(&g, &r3.matching) >= 0.75 - 1e-9);
    }

    #[test]
    fn phase_log_is_coherent() {
        let g = gnp(30, 0.1, 9);
        let r = run(&g, 3, 4);
        assert_eq!(r.phases.len(), 3);
        assert_eq!(r.phases[0].ell, 1);
        assert_eq!(r.phases[2].ell, 5);
        assert_eq!(r.phases.last().unwrap().matching_size, r.matching.size());
        for p in &r.phases {
            assert!(p.applied <= p.conflict_nodes);
        }
    }

    #[test]
    fn stats_reflect_large_messages() {
        let g = gnp(30, 0.15, 2);
        let r = run(&g, 2, 8);
        // Ball gathering ships whole subgraphs: messages far larger
        // than CONGEST's O(log n).
        assert!(r.stats.max_msg_bits > 64, "max = {}", r.stats.max_msg_bits);
        assert!(r.stats.rounds > 0);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = Graph::new(0, vec![]);
        let r = run(&g, 3, 0);
        assert_eq!(r.matching.size(), 0);
    }
}
