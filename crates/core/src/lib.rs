//! # dmatch — the algorithms of *Improved Distributed Approximate
//! Matching* (Lotker, Patt-Shamir, Pettie; SPAA 2008)
//!
//! Every algorithm family of the paper, implemented over the
//! synchronous round simulator of [`simnet`]:
//!
//! | Paper artifact | Module | Guarantee |
//! |---|---|---|
//! | Israeli–Itai '86 baseline | [`israeli_itai`] | maximal (½-MCM), `O(log n)` rounds whp |
//! | Luby MIS primitive | [`luby`] | MIS, `O(log n)` rounds whp |
//! | Algorithm 1+2 (Theorem 3.1) | [`generic`] | `(1-1/(k+1))`-MCM, `O(k³ log n)` rounds, large messages |
//! | Algorithm 3 + token MIS (Theorem 3.8) | [`bipartite`] | bipartite `(1-1/k)`-MCM, small messages |
//! | Algorithm 4 (Theorem 3.11) | [`general`] | general `(1-1/k)`-MCM whp via red/blue sampling |
//! | Algorithm 5 (Theorem 4.5) | [`weighted`] | `(½-ε)`-MWM via a δ-MWM black box |
//! | δ-MWM black boxes (LPS'07 [18] substitute) | [`weighted`] | constant-factor MWM |
//!
//! All protocols exchange real messages with accounted bit sizes; see
//! each module's docs for where (and how) the implementation deviates
//! from the paper's telegraphic description, and `DESIGN.md` at the
//! workspace root for the substitution table.

pub mod bipartite;
pub mod general;
pub mod generic;
pub mod israeli_itai;
pub mod line_mm;
pub mod luby;
pub mod paper;
pub mod runner;
pub mod state;
pub mod weighted;

pub use runner::{Algorithm, RunReport, TerminationMode};
pub use state::topology_of;
