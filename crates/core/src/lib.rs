//! # dmatch — the algorithms of *Improved Distributed Approximate
//! Matching* (Lotker, Patt-Shamir, Pettie; SPAA 2008)
//!
//! Every algorithm family of the paper, implemented over the
//! synchronous round simulator of [`simnet`]:
//!
//! | Paper artifact | Module | Guarantee |
//! |---|---|---|
//! | Israeli–Itai '86 baseline | [`israeli_itai`] | maximal (½-MCM), `O(log n)` rounds whp |
//! | Luby MIS primitive | [`luby`] | MIS, `O(log n)` rounds whp |
//! | Algorithm 1+2 (Theorem 3.1) | [`generic`] | `(1-1/(k+1))`-MCM, `O(k³ log n)` rounds, large messages |
//! | Algorithm 3 + token MIS (Theorem 3.8) | [`bipartite`] | bipartite `(1-1/k)`-MCM, small messages |
//! | Algorithm 4 (Theorem 3.11) | [`general`] | general `(1-1/k)`-MCM whp via red/blue sampling |
//! | Algorithm 5 (Theorem 4.5) | [`weighted`] | `(½-ε)`-MWM via a δ-MWM black box |
//! | δ-MWM black boxes (LPS'07 \[18\] substitute) | [`weighted`] | constant-factor MWM |
//!
//! All protocols exchange real messages with accounted bit sizes; see
//! each module's docs for where (and how) the implementation deviates
//! from the paper's telegraphic description, and `DESIGN.md` at the
//! workspace root for the substitution table.
//!
//! ## The `Session` driver (and migrating from the free functions)
//!
//! Every algorithm is driven through one builder-first [`session::Session`]:
//! build it (`Session::on(&g).algorithm(…).seed(…).build()`), then
//! `run_to_completion()`, or `step()` phase by phase with mid-run
//! `snapshot()`s, per-round/per-phase [`session::Observer`] callbacks,
//! and — for the incremental algorithms — churn-epoch repair via
//! `resume_after_rewire`. The pre-`Session` free functions survive as
//! `#[deprecated]` shims, asserted bit-identical to their session
//! equivalents (matching **and** full `NetStats`) by
//! `tests/prop_session.rs`:
//!
//! | Deprecated free function | Session equivalent |
//! |---|---|
//! | `runner::run(g, sides, alg, seed, term)` | `Session::on(g).algorithm(alg).sides(s).seed(seed).termination(term).build().run_to_completion()` |
//! | `runner::run_cfg(…, cfg)` | `… .exec(cfg) …` |
//! | `israeli_itai::maximal_matching{,_cfg}(g, seed)` | `Session::on(g).algorithm(Algorithm::IsraeliItai)…` |
//! | `israeli_itai::maximal_matching_from(g, m, seed)` | `… .warm_start(m) …` |
//! | `generic::run{,_cfg}(g, k, seed)` | `… .algorithm(Algorithm::Generic { k }) …` |
//! | `generic::run_from{,_cfg}(g, m, k, seed)` | `… .warm_start(m) …` |
//! | `generic::repair{,_cfg}(g, m, damage, k, seed)` | complete a Generic session, then `resume_after_rewire(RewirePatch::new(g, damage))` |
//! | `bipartite::run{,_cfg}(g, sides, k, seed)` | `… .algorithm(Algorithm::Bipartite { k }).sides(sides) …` |
//! | `bipartite::run_phased{,_cfg}(…)` | drive `step()` and read `Session::phase_log()` |
//! | `general::run{,_with,_with_cfg}(g, k, seed, opts)` | `… .algorithm(Algorithm::General { k, early_stop })` (+ `.sampling_iterations(n)`) |
//! | `weighted::run{,_cfg}(g, ε, box, seed)` | `… .algorithm(Algorithm::Weighted { epsilon, mwm_box })`; weight trajectory via the [`session::ConvergenceCurve`] observer |
//! | `weighted::classes::run_parallel{,_cfg}(g, seed)` | `… .algorithm(Algorithm::DeltaMwm { mwm_box: MwmBox::ParClass })` |
//!
//! Still first-class (not deprecated): the per-phase primitives the
//! session itself drives — `israeli_itai::maximal_matching_from_cfg`,
//! `bipartite::aug_until_maximal{,_cfg}`, `MwmBox::run{,_cfg}` — and
//! the specialized regimes (`israeli_itai::truncated_matching`,
//! `israeli_itai::lossy_matching`, `bipartite::run_to_optimal`).

pub mod bipartite;
pub mod general;
pub mod generic;
pub mod israeli_itai;
pub mod line_mm;
pub mod luby;
pub mod oracle;
pub mod paper;
pub mod runner;
pub mod session;
pub mod state;
pub mod weighted;

pub use oracle::MatchingOracle;
pub use runner::{Algorithm, RunReport, TerminationMode};
pub use session::{
    Control, ConvergenceCurve, CurvePoint, MatchingDelta, NullObserver, Observer, Phase,
    PhaseEvent, PhaseInfo, RewirePatch, RoundBudget, RoundEvent, Session, SessionBuilder, Snapshot,
};
pub use state::topology_of;
