//! Maximal matching via Luby's MIS on the line graph.
//!
//! The classical reduction (and the conceptual seed of the paper's
//! conflict graph): a maximal matching of `G` is a maximal independent
//! set of `L(G)`. We run our distributed [`crate::luby`] protocol on
//! `L(G)` as the communication topology and map the MIS back.
//!
//! Note on the model: the *physical* network is `G`; executing an
//! `L(G)` protocol on `G` costs a constant-factor emulation (each edge
//! is simulated by its lower-id endpoint, and `L(G)`-neighbors share a
//! physical node or a physical edge). We report the `L(G)` rounds —
//! the emulation factor is ≤ 2 — and use this implementation as a
//! cross-check of Israeli–Itai, not as a headline algorithm.

use dgraph::{line_graph, Graph, Matching};
use simnet::NetStats;

/// Compute a maximal matching of `g` by Luby MIS on `L(g)`.
pub fn maximal_matching(g: &Graph, seed: u64) -> (Matching, NetStats) {
    if g.m() == 0 {
        return (Matching::new(g.n()), NetStats::default());
    }
    let lg = line_graph::line_graph(g);
    let topo = crate::state::topology_of(&lg);
    let (flags, stats) = crate::luby::mis(&topo, seed);
    (line_graph::matching_from_independent_set(g, &flags), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgraph::generators::random::gnp;
    use dgraph::generators::structured::{complete, path};

    #[test]
    fn produces_maximal_matchings() {
        for seed in 0..10 {
            let g = gnp(40, 0.1, seed);
            let (m, _) = maximal_matching(&g, seed);
            assert!(m.validate(&g).is_ok(), "seed {seed}");
            assert!(m.is_maximal(&g), "seed {seed}");
        }
    }

    #[test]
    fn agrees_with_israeli_itai_on_quality_class() {
        // Both are maximal ⇒ both are ½-approximations; sizes are
        // within a factor 2 of each other.
        for seed in 0..5 {
            let g = gnp(30, 0.15, 50 + seed);
            let (a, _) = maximal_matching(&g, seed);
            #[allow(deprecated)]
            let (b, _) = crate::israeli_itai::maximal_matching(&g, seed);
            assert!(2 * a.size() >= b.size() && 2 * b.size() >= a.size());
        }
    }

    #[test]
    fn logarithmic_rounds() {
        let g = complete(48); // L(K48) is large and dense
        let (m, stats) = maximal_matching(&g, 3);
        assert_eq!(m.size(), 24);
        assert!(stats.rounds <= 3 * 80, "{} rounds", stats.rounds);
    }

    #[test]
    fn trivial_graphs() {
        let g = Graph::new(4, vec![]);
        assert_eq!(maximal_matching(&g, 0).0.size(), 0);
        let g = path(2);
        assert_eq!(maximal_matching(&g, 0).0.size(), 1);
    }
}
