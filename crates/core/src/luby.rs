//! Luby's randomized maximal independent set (MIS).
//!
//! The paper uses an MIS subroutine (citing Luby \[20\] and
//! Alon–Babai–Itai \[1\]) in Step 5 of Algorithm 1, and its bipartite
//! token construction (Section 3.2) *emulates* exactly this variant:
//! every node picks a random priority and joins the MIS when it beats
//! all neighbors; winners and their neighbors drop out; repeat.
//! `O(log n)` iterations with high probability.
//!
//! One iteration spans three rounds: priorities out, winners announce,
//! losers retire.

use simnet::{BitSize, Ctx, ExecCfg, Inbox, NetStats, Network, Protocol, Topology};

/// Wire messages.
#[derive(Debug, Clone, Copy)]
pub enum LubyMsg {
    /// Random priority for the current iteration.
    Priority(u64),
    /// "I joined the MIS" — receivers are dominated and retire.
    InMis,
}

impl BitSize for LubyMsg {
    fn bit_size(&self) -> u64 {
        match self {
            LubyMsg::Priority(_) => 1 + 64,
            LubyMsg::InMis => 1,
        }
    }
}

/// Per-node state.
#[derive(Default)]
pub struct LubyNode {
    /// Decision: `Some(true)` in the MIS, `Some(false)` dominated.
    pub in_mis: Option<bool>,
    prio: u64,
}

impl Protocol for LubyNode {
    type Msg = LubyMsg;

    fn on_round(&mut self, ctx: &mut Ctx<'_, LubyMsg>, inbox: Inbox<'_, LubyMsg>) {
        match ctx.round() % 3 {
            0 => {
                self.prio = ctx.rng().next();
                ctx.send_all(LubyMsg::Priority(self.prio));
            }
            1 => {
                // Beat every still-active neighbor (ties by id — the
                // message's sender id is available in the envelope).
                let me = (self.prio, ctx.id());
                let wins = inbox.iter().all(|e| match *e.msg {
                    LubyMsg::Priority(p) => me > (p, e.from),
                    LubyMsg::InMis => true,
                });
                if wins {
                    self.in_mis = Some(true);
                    ctx.send_all(LubyMsg::InMis);
                    ctx.halt();
                }
            }
            2 => {
                if inbox.iter().any(|e| matches!(e.msg, LubyMsg::InMis)) {
                    self.in_mis = Some(false);
                    ctx.halt();
                }
            }
            _ => unreachable!(),
        }
    }
}

/// Round budget (`O(log n)` iterations whp, generous constants).
pub fn round_budget(n: usize) -> u64 {
    3 * (200 + 60 * simnet::id_bits(n.max(2)))
}

/// Compute an MIS of `topo`. Returns the indicator vector and stats.
pub fn mis(topo: &Topology, seed: u64) -> (Vec<bool>, NetStats) {
    mis_cfg(topo, seed, ExecCfg::default())
}

/// [`mis`] under explicit execution knobs.
///
/// Fault-free only: this helper sits below the `Session` adversary
/// dispatch, and its every-node-decided extraction assumes reliable
/// delivery — install no active [`simnet::FaultPlan`] in `cfg`.
pub fn mis_cfg(topo: &Topology, seed: u64, cfg: ExecCfg) -> (Vec<bool>, NetStats) {
    let n = topo.len();
    if n == 0 {
        return (Vec::new(), NetStats::default());
    }
    let nodes: Vec<LubyNode> = (0..n).map(|_| LubyNode::default()).collect();
    let mut net = Network::new(topo.clone(), nodes, seed).with_cfg(cfg);
    net.run_until_halt(round_budget(n));
    let (nodes, stats) = net.into_parts();
    let flags = nodes
        .iter()
        .map(|s| s.in_mis.expect("every node decided"))
        .collect();
    (flags, stats)
}

/// Check MIS validity: independent and dominating.
pub fn is_valid_mis(topo: &Topology, flags: &[bool]) -> bool {
    let independent = (0..topo.len() as u32)
        .all(|v| !flags[v as usize] || topo.neighbors(v).iter().all(|&u| !flags[u as usize]));
    let dominating = (0..topo.len() as u32)
        .all(|v| flags[v as usize] || topo.neighbors(v).iter().any(|&u| flags[u as usize]));
    independent && dominating
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo_path(n: usize) -> Topology {
        Topology::from_edges(
            n,
            &(0..n as u32 - 1).map(|i| (i, i + 1)).collect::<Vec<_>>(),
        )
    }

    #[test]
    fn valid_on_paths_and_cliques() {
        let t = topo_path(20);
        let (f, _) = mis(&t, 3);
        assert!(is_valid_mis(&t, &f));

        let mut edges = Vec::new();
        for u in 0..10u32 {
            for v in u + 1..10 {
                edges.push((u, v));
            }
        }
        let t = Topology::from_edges(10, &edges);
        let (f, _) = mis(&t, 4);
        assert!(is_valid_mis(&t, &f));
        assert_eq!(
            f.iter().filter(|&&x| x).count(),
            1,
            "clique MIS is a single node"
        );
    }

    #[test]
    fn isolated_nodes_always_join() {
        let t = Topology::from_edges(4, &[(0, 1)]);
        let (f, _) = mis(&t, 9);
        assert!(f[2] && f[3]);
        assert!(is_valid_mis(&t, &f));
    }

    #[test]
    fn logarithmic_rounds_on_random_graph() {
        let mut edges = Vec::new();
        let mut rng = simnet::SplitMix64::new(5);
        let n = 256u32;
        for u in 0..n {
            for v in u + 1..n {
                if rng.bernoulli(0.02) {
                    edges.push((u, v));
                }
            }
        }
        let t = Topology::from_edges(n as usize, &edges);
        let (f, stats) = mis(&t, 6);
        assert!(is_valid_mis(&t, &f));
        assert!(stats.rounds <= 3 * 60, "{} rounds", stats.rounds);
    }

    #[test]
    fn deterministic_in_seed() {
        let t = topo_path(30);
        assert_eq!(mis(&t, 11).0, mis(&t, 11).0);
    }

    #[test]
    fn empty_topology() {
        let t = Topology::from_edges(0, &[]);
        let (f, _) = mis(&t, 0);
        assert!(f.is_empty());
    }
}
